"""Table 4: GPFS small-write IOPS — HDD vs SSD vs STT-MRAM on the DMI link."""

from bench_util import run_once

from repro import run_table4
from repro.core import calibration as cal


def test_table4_gpfs_iops(benchmark):
    table = run_once(benchmark, run_table4, writes=20)
    print("\n" + table.format())

    hdd = table.cell("Technology", "Hard Disk Drive", "IOPS")
    ssd = table.cell("Technology", "SSD", "IOPS")
    mram = table.cell("Technology", "STT-MRAM (ConTutto)", "IOPS")

    # absolute bands around the published numbers
    assert 50 <= hdd <= 120, f"HDD {hdd:.0f} IOPS vs paper 75"
    assert 10_000 <= ssd <= 20_000, f"SSD {ssd:.0f} IOPS vs paper 15K"
    assert 90_000 <= mram <= 180_000, f"MRAM {mram:.0f} IOPS vs paper 125K"

    # the ordering and the headline factor
    assert hdd < ssd < mram
    assert 6 <= mram / ssd <= 12, (
        f"MRAM/SSD = {mram / ssd:.1f}x vs paper {cal.TABLE4_MRAM_OVER_SSD}x"
    )

    benchmark.extra_info.update(
        hdd_iops=round(hdd), ssd_iops=round(ssd), mram_iops=round(mram),
        mram_over_ssd=round(mram / ssd, 1),
    )
