"""Campaign scaling: serial vs parallel vs cached wall-clock.

Runs the same reduced experiment matrix three ways through the campaign
engine and records the wall-clock of each into ``BENCH_campaign.json``
(schema ``repro.bench/v1``) — the start of the campaign performance
trajectory:

1. **serial**   — one inline worker, cold cache (the historical
   ``regenerate_experiments.py`` path);
2. **parallel** — a process pool (``min(4, cpu_count)`` workers), cold
   cache; on a multi-core host this is bounded below by the single
   longest job, on a single-core host it degenerates to serial plus
   pool overhead (``cpu_count`` is recorded so readers can tell);
3. **cached**   — a re-run against the warm cache: every job served by
   content address, no simulation at all.

Standalone:      python benchmarks/bench_campaign_scaling.py
Under pytest:    pytest benchmarks/bench_campaign_scaling.py -s
"""

import json
import multiprocessing
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.campaign import CampaignRunner, ResultCache, ScenarioMatrix  # noqa: E402

#: artifact written next to this file (CI uploads it)
ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_campaign.json")


def scaling_matrix() -> ScenarioMatrix:
    """A reduced paper sweep: every simulating experiment, small knobs.

    Small enough for CI (a few seconds serial), varied enough that the
    parallel schedule has real work to overlap.
    """
    matrix = ScenarioMatrix(base_seed=0)
    matrix.add("table2", samples=8, seed=0)
    matrix.add("fig6", samples=8, seed=0)
    matrix.add("table3", samples=8, seed=0)
    matrix.add("fig7", samples=8, seed=0)
    matrix.add("table4", writes=8, seed=0)
    matrix.add("table5", size_mib=4, seed=0)
    matrix.add("fio", ios=8, seed=0)
    return matrix


def _timed_run(jobs, workers, cache):
    t0 = time.perf_counter()
    report = CampaignRunner(jobs, workers=workers, cache=cache).run()
    elapsed = time.perf_counter() - t0
    if report.failed:
        raise RuntimeError(
            f"campaign failed: {[o.job.job_id for o in report.failed]}"
        )
    return elapsed, report


def run_scaling(artifact_path: str = ARTIFACT) -> dict:
    jobs = scaling_matrix().expand()
    cpu_count = multiprocessing.cpu_count()
    # always at least 2 so the pool path is actually exercised; on a
    # single-core host that measures pure scheduling overhead
    workers = max(2, min(4, cpu_count))

    serial_s, serial_report = _timed_run(jobs, workers=1, cache=None)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(os.path.join(tmp, "cache"))
        parallel_s, parallel_report = _timed_run(jobs, workers=workers, cache=cache)
        cached_s, cached_report = _timed_run(
            jobs, workers=1, cache=ResultCache(os.path.join(tmp, "cache"))
        )

    if [t.rows for t in parallel_report.tables()] != [t.rows for t in serial_report.tables()]:
        raise RuntimeError("parallel campaign diverged from the serial tables")
    if cached_report.cache_hits != len(jobs):
        raise RuntimeError(
            f"warm re-run hit cache on {cached_report.cache_hits}/{len(jobs)} jobs"
        )

    record = {
        "schema": "repro.bench/v1",
        "benchmark": "campaign_scaling",
        "cpu_count": cpu_count,
        "parallel_workers": workers,
        "jobs": len(jobs),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "cached_s": round(cached_s, 4),
        "speedup_parallel": round(serial_s / parallel_s, 3),
        "speedup_cached": round(serial_s / cached_s, 1),
        "per_job_s": {
            o.job.job_id: round(o.duration_s, 4) for o in serial_report.outcomes
        },
    }
    with open(artifact_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return record


#: absolute ceiling on the fio[ios=8] job (seconds).  The table-driven
#: scrambling/CRC + tuple-heap rewrite runs it in ~1.0 s; 3.0 s is ~3x
#: headroom for slow CI machines while still catching any reintroduction
#: of per-bit/per-byte Python on the frame path (which costs 5x+).
FIO_CEILING_S = 3.0


def test_campaign_scaling(tmp_path):
    """Pytest entry: artifact is coherent and the cache path dominates."""
    record = run_scaling(str(tmp_path / "BENCH_campaign.json"))
    assert record["jobs"] >= 7
    # the content-addressed cache must beat re-simulating by a wide margin
    assert record["speedup_cached"] > 5
    # the kernel fast-path regression gate (see docs/kernel.md)
    fio_s = record["per_job_s"]["fio[ios=8]#s0"]
    assert fio_s < FIO_CEILING_S, (
        f"fio[ios=8] took {fio_s:.2f}s (ceiling {FIO_CEILING_S}s): "
        "the DMI/kernel hot path has regressed"
    )
    # parallel never loses badly: on one core it degenerates to ~serial
    # (pool overhead only); with real cores it must actually win
    if record["cpu_count"] >= 2:
        assert record["speedup_parallel"] > 1.1
    else:
        assert record["speedup_parallel"] > 0.7


if __name__ == "__main__":
    result = run_scaling()
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"\nwrote {ARTIFACT}", file=sys.stderr)
