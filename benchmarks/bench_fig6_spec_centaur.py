"""Figure 6: SPEC CINT2006 ratios with variable latency on Centaur."""

from bench_util import run_once

from repro import run_fig6


def test_fig6_spec_on_centaur(benchmark):
    table = run_once(benchmark, run_fig6, samples=16)
    print("\n" + table.format())

    assert len(table.rows) == 12  # the full CINT2006 suite

    # ratios fall monotonically as the latency knobs slow memory down
    for row in table.rows:
        ratios = row[1:]
        assert ratios == sorted(ratios, reverse=True), row[0]

    # over the Figure 6 range (79 -> 249 ns) degradation stays mild for most
    mild = sum(1 for row in table.rows if row[1] / row[-1] - 1 < 0.10)
    assert mild >= 9  # at most a small sensitive tail

    worst = max(row[1] / row[-1] - 1 for row in table.rows)
    benchmark.extra_info["worst_degradation_pct"] = round(worst * 100, 1)
