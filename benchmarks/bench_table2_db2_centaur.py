"""Table 2: Centaur latency settings vs DB2 BLU query runtime."""

from bench_util import run_once

from repro import run_table2
from repro.core import calibration as cal


def test_table2_db2_on_centaur(benchmark):
    table = run_once(benchmark, run_table2, samples=16)
    print("\n" + table.format())

    latencies = table.column("Latency (ns)")
    runtimes = table.column("DB2 runtime (s)")

    # latency knobs produce a monotone latency ladder with the paper's deltas
    assert latencies == sorted(latencies)
    paper = [lat for _, lat, _ in cal.TABLE2_ROWS]
    for i in range(1, len(paper)):
        measured_delta = latencies[i] - latencies[0]
        assert abs(measured_delta - (paper[i] - paper[0])) < 10

    # headline claim: >3x latency -> <8% runtime increase
    assert latencies[-1] / latencies[0] > 2.5
    assert runtimes[-1] / runtimes[0] - 1 < cal.TABLE2_MAX_DEGRADATION

    benchmark.extra_info["degradation_pct"] = round(
        (runtimes[-1] / runtimes[0] - 1) * 100, 2
    )
