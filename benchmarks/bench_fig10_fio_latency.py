"""Figure 10: FIO latency for different non-volatile technologies/attach points."""

from bench_util import run_once

from repro.core.experiment import run_fio_matrix


def _matrix(ios=24):
    return run_fio_matrix(ios=ios)


def test_fig10_fio_latency(benchmark):
    _, fig10 = run_once(benchmark, _matrix)
    print("\n" + fig10.format())

    lat = {row[0]: (row[1], row[2]) for row in fig10.rows}

    # latency ordering is the IOPS ordering reversed
    read_order = [lat[n][0] for n in (
        "mram_contutto", "mram_pcie", "nvram_pcie", "flash_x4_pcie"
    )]
    assert read_order == sorted(read_order)

    # MRAM-on-ConTutto vs NVRAM-on-PCIe (paper: 6.6x read / 15x write)
    read_x = lat["nvram_pcie"][0] / lat["mram_contutto"][0]
    write_x = lat["nvram_pcie"][1] / lat["mram_contutto"][1]
    assert 5.0 <= read_x <= 9.5
    assert 10.0 <= write_x <= 20.0

    # NVDIMM-on-ConTutto vs NVRAM-on-PCIe (paper: 7.5x read / 12.5x write —
    # the abstract's headline "up to 12.5x lower latency")
    nv_read_x = lat["nvram_pcie"][0] / lat["nvdimm_contutto"][0]
    nv_write_x = lat["nvram_pcie"][1] / lat["nvdimm_contutto"][1]
    assert 5.5 <= nv_read_x <= 10.5
    assert 9.0 <= nv_write_x <= 19.0

    # attach point alone (paper: 2.4x read / 5x write)
    attach_read_x = lat["mram_pcie"][0] / lat["mram_contutto"][0]
    attach_write_x = lat["mram_pcie"][1] / lat["mram_contutto"][1]
    assert 1.8 <= attach_read_x <= 3.6
    assert 3.0 <= attach_write_x <= 7.0

    benchmark.extra_info.update(
        mram_ct_vs_nvram_read=round(read_x, 1),
        mram_ct_vs_nvram_write=round(write_x, 1),
        nvdimm_ct_vs_nvram_write=round(nv_write_x, 1),
    )
