"""Make the shared benchmark helpers importable from any bench directory."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
