"""Figure 8: endurance comparison between non-volatile memory technologies."""

from bench_util import run_once

from repro import run_fig8
from repro.core import calibration as cal
from repro.memory import ENDURANCE_MLC_NAND, ENDURANCE_STT_MRAM, memory_bus_lifetime_s
from repro.units import MIB


def test_fig8_endurance(benchmark):
    table = run_once(benchmark, run_fig8)
    print("\n" + table.format())

    # every technology from the figure, in ascending endurance order
    cycles = [float(c) for c in table.column("Write cycles")]
    assert cycles == sorted(cycles)
    for tech, paper_cycles in cal.FIG8_ENDURANCE_CYCLES.items():
        measured = float(table.cell("Technology", tech, "Write cycles"))
        assert measured == paper_cycles

    # the quantitative punchline: flash dies in under an hour of memory-bus
    # writes, STT-MRAM outlives the machine
    flash_life = memory_bus_lifetime_s(ENDURANCE_MLC_NAND, 256 * MIB, 10e9)
    mram_life = memory_bus_lifetime_s(ENDURANCE_STT_MRAM, 256 * MIB, 10e9)
    assert flash_life < 3_600
    assert mram_life > 3.15e7
    benchmark.extra_info["mram_over_flash"] = f"{mram_life / flash_life:.0e}x"
