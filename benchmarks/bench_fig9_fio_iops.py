"""Figure 9: FIO IOPS for different non-volatile technologies/attach points."""

from bench_util import run_once

from repro.core.experiment import run_fio_matrix


def _matrix(ios=24):
    return run_fio_matrix(ios=ios)


def test_fig9_fio_iops(benchmark):
    fig9, _ = run_once(benchmark, _matrix)
    print("\n" + fig9.format())

    iops = {row[0]: (row[1], row[2]) for row in fig9.rows}

    # ordering: flash-PCIe < NVRAM-PCIe < MRAM-PCIe < ConTutto attaches
    read_order = [iops[n][0] for n in (
        "flash_x4_pcie", "nvram_pcie", "mram_pcie", "mram_contutto"
    )]
    assert read_order == sorted(read_order)

    # MRAM-on-ConTutto vs NVRAM-on-PCIe (paper: 4.5x read / 6.2x write)
    read_x = iops["mram_contutto"][0] / iops["nvram_pcie"][0]
    write_x = iops["mram_contutto"][1] / iops["nvram_pcie"][1]
    assert 3.0 <= read_x <= 9.0
    assert 4.0 <= write_x <= 9.5

    # NVDIMM-on-ConTutto vs NVRAM-on-PCIe (paper: 6.5x read / 7.5x write)
    nv_read_x = iops["nvdimm_contutto"][0] / iops["nvram_pcie"][0]
    nv_write_x = iops["nvdimm_contutto"][1] / iops["nvram_pcie"][1]
    assert 4.5 <= nv_read_x <= 10.0
    assert 5.0 <= nv_write_x <= 11.0

    # same technology, better attach point (paper: 1.5x read / 2.2x write)
    attach_read_x = iops["mram_contutto"][0] / iops["mram_pcie"][0]
    assert 1.2 <= attach_read_x <= 3.5

    benchmark.extra_info.update(
        mram_ct_vs_nvram_read=round(read_x, 1),
        mram_ct_vs_nvram_write=round(write_x, 1),
        nvdimm_ct_vs_nvram_read=round(nv_read_x, 1),
    )
