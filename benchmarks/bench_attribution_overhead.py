"""Attribution must cost ~nothing when telemetry is off.

The journey/occupancy hooks live on the hottest paths in the simulation —
host command issue, frame dispatch, controller submit — behind the
ambient-probe nil-check.  This guard measures the same experiment with
telemetry disabled before and at this commit's instrumentation points:
the untraced run must stay within noise of the traced run's *simulation*
work, i.e. the nil-checks must not show up.

Method: run ``run_table3`` untraced (the hot path executes every hook
site with ``probe.session is None``) and compare against the traced run.
A fixed absolute budget would flake across machines, so the assertion is
relative: the untraced run must not be slower than the traced run — if
the disabled hooks cost real time, tracing (which does strictly more
work) could not beat them.
"""

import time

from bench_util import run_once

from repro import run_table3
from repro.telemetry import TraceSession


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_disabled_attribution_overhead(benchmark):
    # warm caches (imports, numpy init) off the clock
    run_table3(samples=2)

    def untraced():
        run_table3(samples=8)

    def traced():
        with TraceSession("bench", max_events=0):
            run_table3(samples=8)

    untraced_s = min(_timed(untraced) for _ in range(3))
    traced_s = min(_timed(traced) for _ in range(3))
    run_once(benchmark, untraced)

    benchmark.extra_info["untraced_s"] = round(untraced_s, 4)
    benchmark.extra_info["traced_s"] = round(traced_s, 4)
    # disabled hooks are one attribute load + is-None test; the untraced
    # run must not cost more than the traced run (15% cushion for timer
    # noise on a shared machine)
    assert untraced_s <= traced_s * 1.15, (
        f"disabled-telemetry run ({untraced_s:.3f}s) measurably slower than "
        f"traced run ({traced_s:.3f}s): the nil-check pattern regressed"
    )
