"""The abstract's headline claims, asserted in one place.

"...pin-compatible with POWER8 buffered memory DIMMs ... running at
aggregate memory channel speeds of 35 GB/s per link.  Enablement of
STT-MRAM and NVDIMM using ConTutto shows up to 12.5x lower latency and
7.5x higher bandwidth compared to the respective technologies when
attached to the PCIe bus."
"""

from bench_util import run_once

from repro.core.experiment import run_fio_matrix
from repro.dmi import DOWN_LANES, UP_LANES
from repro.units import GIB


def test_abstract_headline_claims(benchmark):
    def experiment():
        # channel capacity: 14 + 21 lanes x 8 Gb/s = 35 GB/s aggregate
        lanes = DOWN_LANES + UP_LANES
        aggregate_gb_s = lanes * 8 / 8  # 8 Gb/s per lane -> GB/s
        fig9, fig10 = run_fio_matrix(ios=24)
        return aggregate_gb_s, fig9, fig10

    aggregate_gb_s, fig9, fig10 = run_once(benchmark, experiment)

    # the structural 35 GB/s per-link claim
    assert aggregate_gb_s == 35.0

    lat = {row[0]: (row[1], row[2]) for row in fig10.rows}
    iops = {row[0]: (row[1], row[2]) for row in fig9.rows}

    # "up to 12.5x lower latency": best latency ratio of a ConTutto attach
    # vs the same-class technology on PCIe
    best_latency_x = max(
        lat["nvram_pcie"][1] / lat["nvdimm_contutto"][1],   # NVDIMM class
        lat["mram_pcie"][1] / lat["mram_contutto"][1],      # MRAM class
    )
    # "7.5x higher bandwidth" (IOPS)
    best_iops_x = max(
        iops["nvdimm_contutto"][1] / iops["nvram_pcie"][1],
        iops["mram_contutto"][1] / iops["mram_pcie"][1],
    )
    print(f"\n  DMI link aggregate: {aggregate_gb_s:.0f} GB/s (paper: 35)")
    print(f"  best latency improvement: {best_latency_x:.1f}x (paper: up to 12.5x)")
    print(f"  best IOPS improvement:    {best_iops_x:.1f}x (paper: up to 7.5x)")

    assert 9.0 <= best_latency_x <= 20.0
    assert 5.0 <= best_iops_x <= 11.0
    benchmark.extra_info.update(
        latency_x=round(best_latency_x, 1), iops_x=round(best_iops_x, 1)
    )
