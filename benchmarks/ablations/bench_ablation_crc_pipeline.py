"""Ablation: CRC pipeline depth vs FRTL and timing closure (Section 3.3).

The design-space story as executable constraints:

* four CRC stages + the receiver clock-crossing FIFO close timing trivially
  but cost 16 ns more FRTL per direction-pair — each fabric stage is 8
  memory-bus cycles;
* two CRC stages with the FIFO bypassed meet the FRTL budget, but only
  close timing with pre-placed RX flops AND an over-constrained CRC feed;
* one CRC stage is hopeless at 250 MHz no matter the physical tricks.
"""

from bench_util import run_once

from repro.fpga import FpgaTimingConfig, INITIAL_TIMING, SHIPPING_TIMING, TimingClosure


def test_crc_pipeline_ablation(benchmark):
    def experiment():
        rows = []
        configs = {
            "initial (4-stage CRC + RX FIFO)": INITIAL_TIMING,
            "shipping (2-stage, FIFO bypass, both optimizations)": SHIPPING_TIMING,
            "2-stage, no pre-placement": FpgaTimingConfig(preplace_rx_flops=False),
            "2-stage, no over-constraint": FpgaTimingConfig(overconstrain_crc_feed=False),
            "1-stage CRC": FpgaTimingConfig(crc_stages=1),
        }
        for name, config in configs.items():
            closure = TimingClosure(config)
            rows.append((
                name,
                closure.frtl_contribution_ps() / 1000,
                closure.estimated_fmax_mhz(),
                closure.meets_timing(),
            ))
        return rows

    rows = run_once(benchmark, experiment)
    print()
    for name, frtl_ns, fmax, met in rows:
        print(f"  {name:52s} FRTL +{frtl_ns:5.1f} ns  "
              f"Fmax {fmax:5.0f} MHz  timing {'MET' if met else 'MISSED'}")

    by_name = {r[0]: r for r in rows}
    initial = by_name["initial (4-stage CRC + RX FIFO)"]
    shipping = by_name["shipping (2-stage, FIFO bypass, both optimizations)"]

    # both baseline facts from the paper hold:
    assert initial[3] and shipping[3]
    assert shipping[1] < initial[1]                       # lower FRTL
    # six fabric stages saved: 2 FIFO + 2 CRC on RX, 2 CRC on TX = 24 ns,
    # i.e. 48 memory-bus cycles recovered from the FRTL budget
    assert initial[1] - shipping[1] == 24.0
    # the optimizations are individually necessary:
    assert not by_name["2-stage, no pre-placement"][3]
    assert not by_name["2-stage, no over-constraint"][3]
    assert not by_name["1-stage CRC"][3]
    benchmark.extra_info["frtl_saved_ns"] = initial[1] - shipping[1]
