"""Ablation: the replay 'freeze' workaround (Section 3.3).

The FPGA cannot fence MBS and switch to its replay buffer within the
POWER8's replay-start window.  The shipping design cheats by re-sending the
last upstream frame until ready.  This ablation disables the cheat and
shows the channel failing under the same error injection the shipping
design survives.
"""

from ablation_util import make_test_channel, train_channel
from bench_util import run_once

from repro.dmi import Command, EndpointConfig, Opcode
from repro.sim import Simulator


def _run(freeze: bool, ops: int = 120):
    sim = Simulator()
    config = EndpointConfig(
        tx_overhead_ps=20_000, rx_overhead_ps=20_000,
        replay_prep_ps=40_000, freeze_workaround=freeze,
        max_replay_start_ps=24_000,
    )
    channel = make_test_channel(sim, error_rate=0.06, buffer_config=config, seed=31)
    train_channel(sim, channel)
    completed = 0
    for i in range(ops):
        if not channel.operational:
            break
        sig = channel.host.issue(Command(Opcode.READ, 128 * i, i % 32))
        try:
            sim.run_until_signal(sig, timeout_ps=10**11)
        except Exception:
            break
        completed += 1
    return channel, completed


def test_freeze_workaround_ablation(benchmark):
    def experiment():
        with_freeze, ops_with = _run(freeze=True)
        without_freeze, ops_without = _run(freeze=False)
        return with_freeze, ops_with, without_freeze, ops_without

    with_freeze, ops_with, without_freeze, ops_without = run_once(benchmark, experiment)

    print(f"\nfreeze ON : {ops_with} ops, operational={with_freeze.operational}, "
          f"freeze frames={with_freeze.buffer_endpoint.freeze_frames_sent}")
    print(f"freeze OFF: {ops_without} ops, operational={without_freeze.operational}, "
          f"failure={without_freeze.failure}")

    # shipping design: survives; ablated design: channel goes down
    assert with_freeze.operational
    assert ops_with == 120
    assert not without_freeze.operational
    assert "freeze workaround is disabled" in str(without_freeze.failure)
    benchmark.extra_info.update(ops_with_freeze=ops_with, ops_without=ops_without)
