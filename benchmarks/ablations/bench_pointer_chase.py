"""The paper's open question: pointer chasing under added memory latency.

Section 4.1 closes with: "there can be other memory-bound applications
such as graph and pointer chasing applications where the performance
degradation could be much higher.  The effects on such computations need
to be further studied and ConTutto provides a unique platform to study
such effects."

This bench performs that study on the simulated platform: a dependent
chain of cache-line loads (no memory-level parallelism to hide anything)
driven through the full DMI machinery at each knob setting.  Result: chase
time scales essentially 1:1 with latency to memory — the 6x latency that
cost the SPEC suite a median of ~2% costs the pointer chase ~6x.
"""

from bench_util import run_once

from repro import CardSpec, ContuttoSystem
from repro.buffer import LATENCY_OPTIMIZED
from repro.sim import Rng
from repro.units import GIB, MIB
from repro.workloads import TraceSpec, pointer_chase


def _chase_time_ns(system, kind: str, hops: int = 48) -> float:
    """Walk a dependent chain; every hop waits for the previous load."""
    region = system.region_for_slot(system.slots_of_kind(kind)[0])
    spec = TraceSpec(base=region.base, size_bytes=min(region.os_size, 8 * MIB),
                     num_accesses=hops)
    chain = pointer_chase(spec, Rng(17))
    t0 = system.sim.now_ps
    for addr in chain:
        system.sim.run_until_signal(system.socket.read_line(addr), timeout_ps=10**13)
    return (system.sim.now_ps - t0) / hops / 1000  # ns per hop


def test_pointer_chase_scales_with_latency(benchmark):
    def experiment():
        results = {}
        centaur = ContuttoSystem.build(
            [CardSpec(slot=0, kind="centaur", capacity_per_dimm=1 * GIB,
                      centaur_config=LATENCY_OPTIMIZED)]
        )
        results["centaur"] = (
            centaur.measure_latency_ns("centaur", samples=12),
            _chase_time_ns(centaur, "centaur"),
        )
        for knob in (0, 7):
            system = ContuttoSystem.build(
                [CardSpec(slot=0, kind="contutto", capacity_per_dimm=4 * GIB,
                          knob_position=knob)]
            )
            results[f"contutto@{knob}"] = (
                system.measure_latency_ns("contutto", samples=12),
                _chase_time_ns(system, "contutto"),
            )
        return results

    results = run_once(benchmark, experiment)
    print()
    base_lat, base_hop = results["centaur"]
    for name, (latency, hop) in results.items():
        print(f"  {name:12s} latency {latency:5.0f} ns -> {hop:6.0f} ns/hop "
              f"(chase slowdown {hop / base_hop:.1f}x at {latency / base_lat:.1f}x latency)")

    # the chase tracks latency ~1:1: a 6x latency costs ~6x chase time
    worst_lat, worst_hop = results["contutto@7"]
    latency_x = worst_lat / base_lat
    chase_x = worst_hop / base_hop
    assert chase_x > 0.8 * latency_x
    assert chase_x > 4.0  # catastrophically worse than SPEC's median ~2%
    benchmark.extra_info.update(
        latency_x=round(latency_x, 2), chase_x=round(chase_x, 2)
    )
