"""Ablation benchmark helpers: path setup + DMI channel factory."""

import os
import sys



from repro.dmi import (  # noqa: E402
    DmiChannel,
    EndpointConfig,
    LinkErrorModel,
    LinkTrainer,
    Opcode,
    Response,
    SerialLink,
    TrainingConfig,
)
from repro.sim import Rng, dmi_link_clock  # noqa: E402


def make_test_channel(sim, error_rate=0.0, buffer_config=None, seed=0,
                      service_delay_ps=50_000):
    """A DMI channel over a simple in-memory store (for protocol ablations)."""
    clock = dmi_link_clock(8.0)
    down = SerialLink(
        sim, "down", 14, clock, cdr_capture=True,
        error_model=LinkErrorModel(frame_error_rate=error_rate),
        rng=Rng(1000 + seed, "down"),
    )
    up = SerialLink(
        sim, "up", 21, clock,
        error_model=LinkErrorModel(frame_error_rate=error_rate),
        rng=Rng(2000 + seed, "up"),
    )
    store = {}

    def handler(cmd, respond):
        if cmd.opcode is Opcode.WRITE:
            store[cmd.address] = cmd.data
            sim.call_after(service_delay_ps, respond, Response(cmd.tag, cmd.opcode))
        elif cmd.opcode is Opcode.READ:
            data = store.get(cmd.address, bytes(128))
            sim.call_after(service_delay_ps, respond, Response(cmd.tag, cmd.opcode, data))

    buffer_config = buffer_config or EndpointConfig(
        tx_overhead_ps=2_000, rx_overhead_ps=2_000,
        replay_prep_ps=30_000, freeze_workaround=True,
        max_replay_start_ps=10_000,
    )
    return DmiChannel(sim, down, up, EndpointConfig(), buffer_config, handler)


def train_channel(sim, channel, seed=7):
    trainer = LinkTrainer(sim, TrainingConfig(), Rng(seed, "train"))
    proc = trainer.train(channel)
    sim.run_until_signal(proc.done, timeout_ps=10**12)
    return proc.result
