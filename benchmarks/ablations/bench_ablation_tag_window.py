"""Ablation: the 32-tag command window vs buffer latency (Section 2.3).

"Since the number of tags maintained by the processor is fixed, for the
FPGA-based design to not throttle the processor, the latency of response
from the FPGA must not be so high that the processor cycles through all
the tags" — this ablation sweeps the window size against a
ConTutto-latency buffer and shows throughput collapsing once the window
no longer covers the bandwidth-delay product.
"""

from ablation_util import make_test_channel, train_channel
from bench_util import run_once

from repro.dmi import Command, Opcode
from repro.processor import HostMemoryController
from repro.sim import Simulator
from repro.units import S


def _throughput(num_tags: int, reads: int = 96) -> float:
    """Pipelined read throughput (GB/s) with a given tag-window size."""
    sim = Simulator()
    channel = make_test_channel(sim, service_delay_ps=300_000)  # ~ConTutto-slow
    train_channel(sim, channel)
    host_mc = HostMemoryController(sim, channel, num_tags=num_tags)
    done = []
    t0 = sim.now_ps

    signals = [host_mc.read_line(128 * i) for i in range(reads)]
    for sig in signals:
        sim.run_until_signal(sig, timeout_ps=10**13)
    elapsed = sim.now_ps - t0
    return reads * 128 / (elapsed / S) / 1e9


def test_tag_window_ablation(benchmark):
    def experiment():
        return {tags: _throughput(tags) for tags in (1, 2, 4, 8, 16, 32)}

    results = run_once(benchmark, experiment)
    print()
    for tags, gbps in results.items():
        print(f"  {tags:2d} tags: {gbps:6.2f} GB/s  {'#' * int(gbps * 10)}")

    # throughput grows with the window until another resource saturates
    assert results[2] > 1.5 * results[1]
    assert results[8] > 2.5 * results[1]
    assert results[32] >= results[8] * 0.95
    # a one-tag window is fully serialized: one line per round trip
    assert results[1] < 0.6
    benchmark.extra_info.update({f"tags_{k}": round(v, 2) for k, v in results.items()})
