"""Make the shared helpers importable for the ablation benches."""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(_HERE))  # benchmarks/ for bench_util
sys.path.insert(0, _HERE)                   # ablations/ for ablation_util
