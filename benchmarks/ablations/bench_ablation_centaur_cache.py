"""Ablation: Centaur's 16 MB eDRAM cache and next-line prefetcher.

The FPGA design omits Centaur's cache "for simplicity" — this ablation
quantifies what that omission costs on a streaming read pattern: with the
cache and prefetcher, the second touch of a line and the next sequential
line are served from eDRAM instead of DRAM.
"""

from bench_util import run_once

from repro.buffer import Centaur, CentaurConfig
from repro.dmi import Command, Opcode
from repro.memory import DdrDram
from repro.sim import Signal, Simulator
from repro.units import MIB


def _sequential_read_latency(cache: bool, prefetch: bool, lines: int = 32) -> float:
    """Mean sequential-read service latency (ns) at the buffer."""
    sim = Simulator()
    config = CentaurConfig(cache_enabled=cache, prefetch_enabled=prefetch)
    centaur = Centaur(sim, [DdrDram(64 * MIB, refresh_enabled=False) for _ in range(4)], config)
    total = 0
    for i in range(lines):
        done = Signal("r")
        t0 = sim.now_ps
        centaur.handle_command(Command(Opcode.READ, 128 * i, i % 32), done.trigger)
        sim.run_until_signal(done, timeout_ps=10**12)
        total += sim.now_ps - t0  # demand latency only...
        sim.run()  # ...then let prefetches land before the next demand read
    return total / lines / 1000


def test_centaur_cache_ablation(benchmark):
    def experiment():
        return {
            "cache + prefetch": _sequential_read_latency(True, True),
            "cache only": _sequential_read_latency(True, False),
            "no cache (ConTutto-like)": _sequential_read_latency(False, False),
        }

    results = run_once(benchmark, experiment)
    print()
    for name, latency in results.items():
        print(f"  {name:26s} {latency:6.1f} ns mean sequential read")

    # the prefetcher turns sequential demand misses into eDRAM hits
    # (every other line is served at cache-hit latency)
    assert results["cache + prefetch"] < results["cache only"]
    assert results["cache + prefetch"] < 0.7 * results["no cache (ConTutto-like)"]
    benchmark.extra_info.update(
        {k.replace(" ", "_"): round(v, 1) for k, v in results.items()}
    )
