"""Channel scaling: the Figure 1 bandwidth architecture.

POWER8 reaches its 410 GB/s peak by populating eight DMI channels
(Figure 1); throughput must scale near-linearly as channels are added.
This bench measures pipelined read throughput with one and two populated
channels and checks the scaling factor.
"""

from bench_util import run_once

from repro import CardSpec, ContuttoSystem
from repro.units import CACHE_LINE_BYTES, GIB, S


def _throughput(num_channels: int, lines_per_channel: int = 96) -> float:
    system = ContuttoSystem.build(
        [
            CardSpec(slot=slot, kind="centaur", capacity_per_dimm=1 * GIB)
            for slot in range(num_channels)
        ]
    )
    sim = system.sim
    t0 = sim.now_ps
    signals = []
    for i in range(lines_per_channel):
        for channel in range(num_channels):
            addr = channel * 4 * GIB + i * CACHE_LINE_BYTES
            signals.append(system.socket.read_line(addr))
    for sig in signals:
        sim.run_until_signal(sig, timeout_ps=10**13)
    total_bytes = num_channels * lines_per_channel * CACHE_LINE_BYTES
    return total_bytes / ((sim.now_ps - t0) / S) / 1e9


def test_channel_scaling(benchmark):
    def experiment():
        return {n: _throughput(n) for n in (1, 2, 4)}

    results = run_once(benchmark, experiment)
    print()
    for channels, gbps in results.items():
        print(f"  {channels} channel(s): {gbps:6.1f} GB/s "
              f"({gbps / results[1]:.2f}x of one channel)")

    assert results[2] > 1.6 * results[1]
    assert results[4] > 3.0 * results[1]
    benchmark.extra_info.update(
        {f"ch{k}_gbps": round(v, 1) for k, v in results.items()}
    )
