"""Fault injection must cost ~nothing when no plan is active.

The fault hooks ride the hottest paths: the journey tracker's
``fault_probe`` nil-check on every journey finish, the ``force_drops``
check in the link error model on every frame, and the ``_bank_faults``
dict check on every DRAM access.  This guard runs the same experiment
with and without an (empty-effect) fault controller attached: the
no-faults run must stay within noise of the faulted run's simulation
work — if the dormant hooks cost real time, the run doing strictly more
work could not beat them.
"""

import time

from bench_util import run_once

from repro import run_table3
from repro.telemetry import TraceSession


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_dormant_fault_hooks_overhead(benchmark):
    # warm caches (imports, numpy init) off the clock
    run_table3(samples=2)

    def no_faults():
        run_table3(samples=8)

    def with_probe():
        # trace AND attach a live fault probe with zero windows: every
        # journey finish walks the probe on top of the tracing work
        from repro.faults import FaultController, FaultPlan
        from repro.sim import Simulator

        controller = FaultController(Simulator(), FaultPlan(specs=()))
        with TraceSession("bench", max_events=0) as session:
            session.journeys.fault_probe = controller.fault_tags
            run_table3(samples=8)

    no_faults_s = min(_timed(no_faults) for _ in range(3))
    with_probe_s = min(_timed(with_probe) for _ in range(3))
    run_once(benchmark, no_faults)

    benchmark.extra_info["no_faults_s"] = round(no_faults_s, 4)
    benchmark.extra_info["traced_s"] = round(with_probe_s, 4)
    # dormant hooks are an attribute load + truthiness test each; the
    # plain run must not cost more than the traced run (15% cushion for
    # timer noise on a shared machine)
    assert no_faults_s <= with_probe_s * 1.15, (
        f"no-faults run ({no_faults_s:.3f}s) measurably slower than the "
        f"traced run ({with_probe_s:.3f}s): a fault hook leaked onto the "
        "clean path"
    )
