"""Figure 7: SPEC ratios with variable memory latency on ConTutto."""

from bench_util import run_once

from repro import run_fig7


def test_fig7_spec_on_contutto(benchmark):
    table = run_once(benchmark, run_fig7, samples=16)
    print("\n" + table.format())

    degradations = [float(row[-1].rstrip("%")) / 100 for row in table.rows]
    n = len(degradations)
    assert n == 12

    # the published population shape at ~6x latency:
    under_2 = sum(1 for d in degradations if d < 0.02)
    under_10 = sum(1 for d in degradations if d < 0.10)
    over_50 = sum(1 for d in degradations if d > 0.50)
    band = sum(1 for d in degradations if 0.15 <= d <= 0.35)

    assert under_2 >= n * 0.4, "about half the suite under 2%"
    assert under_10 >= n * 0.6, "two-thirds under 10%"
    assert band >= 2, "a 15-35% band exists"
    assert over_50 == 1, "exactly one benchmark above 50% (mcf)"

    benchmark.extra_info.update(
        under_2pct=under_2, under_10pct=under_10, over_50pct=over_50,
        max_degradation_pct=round(max(degradations) * 100, 1),
    )
