"""Kernel self-profiler: hotspot map plus the zero-cost-disabled guard.

The DES kernel's dispatch loops check ``profile.active`` once per
``run()`` call and take the historical untimed loop when no profiler is
installed (see :mod:`repro.sim.profile`).  This benchmark guards that
promise the same way ``bench_attribution_overhead.py`` guards the
telemetry nil-checks: the unprofiled run must not be measurably slower
than the profiled run of the same experiment — if the disabled path
cost real time, the profiled run (which does strictly more work per
event) could not keep up.

It also records the hotspot map itself into ``BENCH_kernel.json``
(schema ``repro.bench/v1``) — per-callback wall share and event counts
for ``run_table3`` — the baseline any kernel overhaul (calendar queue,
event batching) will be judged against.

Standalone:      python benchmarks/bench_kernel_hotspots.py
Under pytest:    pytest benchmarks/bench_kernel_hotspots.py -s
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_util import run_once  # noqa: E402

from repro import run_table3  # noqa: E402
from repro.sim import profile  # noqa: E402

#: artifact written next to this file (CI uploads it)
ARTIFACT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_kernel.json"
)

#: sample count: big enough that the kernel loop dominates, small
#: enough for CI
SAMPLES = 8

#: timing-noise cushion on a shared machine, mirroring
#: bench_attribution_overhead.py
NOISE_CUSHION = 1.15


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_hotspots(artifact_path: str = ARTIFACT) -> dict:
    run_table3(samples=2)  # warm caches off the clock

    def unprofiled():
        run_table3(samples=SAMPLES)

    def profiled_run():
        with profile.profiled():
            run_table3(samples=SAMPLES)

    unprofiled_s = min(_timed(unprofiled) for _ in range(3))
    profiled_s = min(_timed(profiled_run) for _ in range(3))

    with profile.profiled() as prof:
        run_table3(samples=SAMPLES)
    hotspots = prof.hotspots()

    record = {
        "schema": "repro.bench/v1",
        "benchmark": "kernel_hotspots",
        "experiment": f"table3[samples={SAMPLES}]",
        "unprofiled_s": round(unprofiled_s, 4),
        "profiled_s": round(profiled_s, 4),
        "profiler_overhead": round(profiled_s / unprofiled_s, 3),
        "events": prof.events,
        "kernel_wall_s": round(prof.total_wall_s, 4),
        "hotspots": [
            {
                "key": row["key"],
                "count": row["count"],
                "wall_share": round(row["wall_share"], 4),
                "mean_us": round(row["mean_us"], 3),
            }
            for row in hotspots[:12]
        ],
    }
    with open(artifact_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return record


def test_kernel_hotspots(benchmark, tmp_path):
    """Pytest entry: disabled-path guard plus artifact coherence."""
    record = run_hotspots(str(tmp_path / "BENCH_kernel.json"))
    run_once(benchmark, lambda: run_table3(samples=SAMPLES))
    benchmark.extra_info.update({
        "unprofiled_s": record["unprofiled_s"],
        "profiled_s": record["profiled_s"],
        "events": record["events"],
    })

    # the zero-cost-disabled guard: no profiler installed means the
    # historical untimed loop, so the unprofiled run must not lose to
    # the profiled one (which times every dispatch)
    assert record["unprofiled_s"] <= record["profiled_s"] * NOISE_CUSHION, (
        f"unprofiled run ({record['unprofiled_s']:.3f}s) measurably slower "
        f"than profiled run ({record['profiled_s']:.3f}s): the "
        "profile.active check leaked into the disabled path"
    )
    # the map itself must be non-trivial and internally consistent
    assert record["events"] > 0
    assert record["hotspots"], "profiler saw no callbacks"
    shares = [row["wall_share"] for row in record["hotspots"]]
    assert shares == sorted(shares, reverse=True)
    assert sum(row["count"] for row in record["hotspots"]) <= record["events"]


if __name__ == "__main__":
    result = run_hotspots()
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"\nwrote {ARTIFACT}", file=sys.stderr)
