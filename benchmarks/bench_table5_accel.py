"""Table 5: performance of accelerated functions on ConTutto."""

from bench_util import run_once

from repro import run_table5


def test_table5_accelerated_functions(benchmark):
    table = run_once(benchmark, run_table5, size_mib=16)
    print("\n" + table.format())

    rows = {row[0]: row for row in table.rows}

    memcpy_gbps = float(rows["Memory copy"][1].split()[0])
    minmax_gbps = float(rows["Min/max (32-bit ints)"][1].split()[0])
    fft_gs = float(rows["1024-pt FFT"][1].split()[0])

    # paper: 6 GB/s, 10.5 GB/s, 1.3 Gsamples/s
    assert 4.5 <= memcpy_gbps <= 7.5
    assert 8.5 <= minmax_gbps <= 13.0
    assert 0.9 <= fft_gs <= 1.7

    # min/max is read-only, so it's roughly 2x the copy rate
    assert 1.6 <= minmax_gbps / memcpy_gbps <= 2.4

    # every kernel beats its software baseline (paper: 2x to 20x)
    speedups = [float(row[3].rstrip("x")) for row in table.rows]
    assert all(s > 1.5 for s in speedups)
    assert max(speedups) > 15  # the min/max scalar loop loses by ~20x

    benchmark.extra_info.update(
        memcpy_gbps=memcpy_gbps, minmax_gbps=minmax_gbps, fft_gsamples=fft_gs,
    )
