"""Shared benchmark helpers.

Every benchmark regenerates one paper table/figure through the experiment
harness, records the measured values as ``extra_info`` (so they appear in
``pytest-benchmark``'s JSON output), asserts the paper's qualitative
claims, and prints the full table.

Run:  pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The experiments are deterministic discrete-event simulations — repeated
    rounds would measure the same thing — so one round with one iteration
    is both faster and honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
