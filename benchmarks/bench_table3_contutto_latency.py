"""Table 3: variable latency settings on ConTutto."""

from bench_util import run_once

from repro import run_table3
from repro.core import calibration as cal


def test_table3_contutto_latencies(benchmark):
    table = run_once(benchmark, run_table3, samples=16)
    print("\n" + table.format())

    for label, paper_ns in cal.TABLE3_LATENCIES_NS.items():
        measured = table.cell("Configuration", label, "Latency (ns)")
        assert abs(measured - paper_ns) / paper_ns < 0.10, (
            f"{label}: {measured:.0f} ns vs paper {paper_ns} ns"
        )
        benchmark.extra_info[label] = round(measured, 1)

    matched = table.cell(
        "Configuration", "centaur_function_matched", "Latency (ns)"
    )
    assert abs(matched - cal.TABLE3_FUNCTION_MATCHED_NS) / cal.TABLE3_FUNCTION_MATCHED_NS < 0.10

    base = table.cell("Configuration", "contutto_base", "Latency (ns)")
    optimized = table.cell("Configuration", "centaur", "Latency (ns)")
    # the paper's framing: ~27-33% over matched Centaur, ~280% over optimized
    assert 0.2 <= base / matched - 1 <= 0.5
    assert 2.5 <= base / optimized - 1 <= 3.5
