"""Table 1: FPGA resource utilization of the base ConTutto design."""

from bench_util import run_once

from repro import run_table1
from repro.core import calibration as cal


def test_table1_resources(benchmark):
    table = run_once(benchmark, run_table1)
    print("\n" + table.format())

    for resource, (available, utilized) in cal.TABLE1_RESOURCES.items():
        row = table.row_by("Resource", resource)
        assert row[1] == available, f"{resource} availability"
        assert row[2] == utilized, f"{resource} utilization"
        benchmark.extra_info[f"{resource}_utilized"] = row[2]

    # the paper's point: significant headroom remains for acceleration
    alms_row = table.row_by("Resource", "ALMs")
    assert alms_row[2] / alms_row[1] < 0.5
