"""Latency-sensitivity study: the Section 4.1 experiment, end to end.

Sweeps the ConTutto latency knob, measures the resulting latency to memory
on the live system, then evaluates the SPEC CINT2006 suite and the DB2 BLU
query workload at each measured point — answering the question the paper
asks for disaggregated/remote memory: *how much does added memory latency
actually cost real applications?*

Run:  python examples/latency_sensitivity.py
"""

from repro import CardSpec, ContuttoSystem
from repro.buffer import LATENCY_OPTIMIZED
from repro.units import GIB
from repro.workloads import Db2BluWorkload, SpecSuite


def measure_knob(knob: int) -> float:
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=4 * GIB,
                  knob_position=knob)]
    )
    return system.measure_latency_ns("contutto", samples=16)


def main() -> None:
    print("Measuring latency at each ConTutto knob position...")
    baseline_system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="centaur", capacity_per_dimm=1 * GIB,
                  centaur_config=LATENCY_OPTIMIZED)]
    )
    baseline_ns = baseline_system.measure_latency_ns("centaur", samples=16)
    print(f"  Centaur baseline: {baseline_ns:.0f} ns")

    points = {}
    for knob in (0, 2, 4, 6, 7):
        points[knob] = measure_knob(knob)
        print(f"  knob @ {knob}: {points[knob]:.0f} ns "
              f"(+{points[knob] - points[0]:.0f} ns vs base)")

    suite = SpecSuite()
    worst_knob = max(points)
    print(f"\nSPEC CINT2006 degradation at knob @{worst_knob} "
          f"({points[worst_knob]:.0f} ns, "
          f"{points[worst_knob] / baseline_ns:.1f}x baseline latency):")
    degradations = suite.degradations(baseline_ns, points[worst_knob])
    for name, degradation in sorted(degradations.items(), key=lambda kv: kv[1]):
        bar = "#" * int(degradation * 100)
        print(f"  {name:18s} {degradation:7.1%}  {bar}")

    pop = suite.population_summary(baseline_ns, points[worst_knob])
    print(f"\npopulation: {pop['under_2pct']:.0%} of the suite under 2% "
          f"degradation, {pop['under_10pct']:.0%} under 10%, "
          f"worst {pop['max']:.0%}")
    print("(paper: about half <2%, two-thirds <10%, one benchmark >50%)")

    db2 = Db2BluWorkload()
    print("\nDB2 BLU 29-query runtime vs latency:")
    for knob in sorted(points):
        runtime = db2.total_runtime_s(points[knob])
        print(f"  knob @ {knob} ({points[knob]:5.0f} ns): {runtime:7.0f} s "
              f"(+{db2.degradation(baseline_ns, points[knob]):.1%})")
    print("\nConclusion (the paper's): for this application class, even 6x "
          "memory latency costs little — a case for disaggregated memory.")


if __name__ == "__main__":
    main()
