"""GPFS write-cache scenario: the Table 4 experiment as an application.

A filesystem issuing small synchronous random writes compares three
persistent stores: the bare disk (every write seeks), a SAS SSD, and
STT-MRAM on the memory bus used as a write cache in front of the disk —
the configuration that gave the paper its 8.3x-over-SSD headline.

Run:  python examples/gpfs_write_cache.py
"""

from repro import CardSpec, ContuttoSystem
from repro.sim import Simulator
from repro.storage import (
    HardDiskDrive,
    NvWriteCache,
    PmemBlockDevice,
    SolidStateDrive,
    WriteCacheConfig,
)
from repro.units import GIB, MIB
from repro.workloads import GpfsJob, GpfsWriter


class DirectStore:
    def __init__(self, device):
        self.device = device

    def write(self, offset, nbytes):
        return self.device.submit_write(offset % self.device.capacity_bytes, nbytes)


def main() -> None:
    job = GpfsJob(total_writes=24)

    print("GPFS-style single-threaded synchronous 4K random writes\n")

    sim = Simulator()
    hdd = HardDiskDrive(sim, 1 * GIB)
    hdd_result = GpfsWriter(sim).run(DirectStore(hdd), job)
    print(f"  HDD (SAS)               : {hdd_result.iops:10,.0f} IOPS "
          f"({hdd_result.mean_latency_us:8.0f} us/write, {hdd.seeks} seeks)")

    sim = Simulator()
    ssd = SolidStateDrive(sim, 1 * GIB)
    ssd_result = GpfsWriter(sim).run(DirectStore(ssd), job)
    print(f"  SSD (SAS)               : {ssd_result.iops:10,.0f} IOPS "
          f"({ssd_result.mean_latency_us:8.1f} us/write)")

    system = ContuttoSystem.build(
        [
            CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
            CardSpec(slot=0, kind="contutto", memory="mram",
                     capacity_per_dimm=128 * MIB),
        ]
    )
    pmem_blk = PmemBlockDevice(system.pmem_region())
    backing_hdd = HardDiskDrive(system.sim, 4 * GIB)
    cache = NvWriteCache(
        system.sim, pmem_blk, backing_hdd,
        WriteCacheConfig(segment_bytes=4 * MIB, segments=16),
    )
    mram_result = GpfsWriter(system.sim).run(cache, job)
    print(f"  STT-MRAM on DMI + cache : {mram_result.iops:10,.0f} IOPS "
          f"({mram_result.mean_latency_us:8.1f} us/write)")

    print(f"\n  MRAM over SSD : {mram_result.iops / ssd_result.iops:6.1f}x "
          f"(paper: 8.3x)")
    print(f"  MRAM over HDD : {mram_result.iops / hdd_result.iops:6.0f}x")
    print(f"\n  writes staged in the NVM log: {cache.writes_staged}; "
          f"destages to disk so far: {cache.destages} "
          f"(each one large sequential write instead of many seeks)")


if __name__ == "__main__":
    main()
