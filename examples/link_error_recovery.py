"""DMI link error recovery: CRC, replay, and the freeze workaround.

The protocol machinery of Sections 2.3 and 3.3 in action: bit errors are
injected on the physical lanes, corrupted frames fail CRC and are silently
dropped, the transmitter notices missing ACKs after the trained FRTL, and
replays — with ConTutto re-transmitting its last upstream frame ("freezing"
the flow) while its fabric fences MBS and switches to the replay buffer.

Also demonstrates the firmware's training-retry path: training "often does
not complete successfully in a single try", and the FSP retries with an
FPGA-only reset rather than bringing the system down.

Run:  python examples/link_error_recovery.py
"""

from repro import CardSpec, ContuttoSystem
from repro.dmi import TrainingConfig
from repro.processor import SocketConfig
from repro.units import CACHE_LINE_BYTES, GIB


def noisy_traffic() -> None:
    print("=== Traffic over a noisy DMI link (3% frame error rate) ===")
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)],
        socket_config=SocketConfig(frame_error_rate=0.03),
        seed=11,
    )
    for i in range(30):
        payload = bytes([(i + j) % 256 for j in range(CACHE_LINE_BYTES)])
        system.sim.run_until_signal(
            system.socket.write_line(i * CACHE_LINE_BYTES, payload),
            timeout_ps=10**13,
        )
        data = system.sim.run_until_signal(
            system.socket.read_line(i * CACHE_LINE_BYTES), timeout_ps=10**13
        )
        assert data == payload, f"data corruption at line {i}!"

    channel = system.socket.slots[0].channel
    host, buffer = channel.host_endpoint, channel.buffer_endpoint
    print(f"  30 write+read pairs completed correctly")
    print(f"  frames dropped by CRC: host={host.crc_drops} buffer={buffer.crc_drops}")
    print(f"  replays triggered:     host={host.replays_triggered} "
          f"buffer={buffer.replays_triggered}")
    print(f"  freeze frames sent by the FPGA while preparing replay: "
          f"{buffer.freeze_frames_sent}")
    print(f"  duplicates discarded:  host={host.duplicates_seen} "
          f"buffer={buffer.duplicates_seen}")
    print(f"  channel still operational: {channel.operational}")


def training_retries() -> None:
    print("\n=== Link training with low per-attempt lock probability ===")
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)],
        training=TrainingConfig(phase_lock_probability=0.35, max_phase_attempts=4),
        seed=23,
    )
    report = system.boot_report
    card = system.cards[0]
    attempts = report.training_attempts.get(0, 0)
    print(f"  training attempts: {attempts}")
    print(f"  FPGA-only resets between attempts (system never went down): "
          f"{card.fsi_slave.fpga_resets}")
    print(f"  booted: {report.booted}")
    for entry in system.fsp.error_log:
        print(f"  FSP log [{entry.severity:5s}] {entry.component}: {entry.message}")


if __name__ == "__main__":
    noisy_traffic()
    training_retries()
