"""Beyond the base design: expansion blocks and RAS features.

Exercises the parts of the platform the paper sketches for the future plus
the reliability machinery a production deployment would need:

* the on-card **TCAM** as a routing/lookup accelerator;
* **card-to-card PCIe transfers** that bypass the POWER8 memory bus;
* **dynamic reprogramming** of the Access processor from an executable
  image stored in the DIMMs;
* **SEC-DED ECC**: a flipped DRAM cell corrected invisibly under live
  traffic;
* **runtime channel recovery**: a failed DMI channel retrained without a
  system reboot.

Run:  python examples/expansion_and_ras.py
"""

from repro import CardSpec, ContuttoSystem
from repro.accel import AccessProcessor, encode_program, sum_words
from repro.errors import ReplayError
from repro.fpga import CardToCardLink, ConTuttoBuffer, TernaryCam
from repro.memory import DdrDram, MemoryController
from repro.sim import Simulator
from repro.units import GIB, MIB, S


def tcam_demo() -> None:
    print("=== TCAM: longest-prefix routing lookups in one cycle ===")
    sim = Simulator()
    cam = TernaryCam(sim, entries=256, key_bits=32)
    cam.add_prefix_route(0, 0x0A000100, 24)  # 10.0.1.0/24  -> entry 0
    cam.add_prefix_route(1, 0x0A000000, 8)   # 10.0.0.0/8   -> entry 1
    for key, label in [(0x0A000142, "10.0.1.66"), (0x0A050505, "10.5.5.5"),
                       (0x0B000001, "11.0.0.1")]:
        index, _ = cam.lookup(key)
        route = {0: "/24 route", 1: "/8 route", None: "no route"}[index]
        print(f"  {label:12s} -> {route}")
    print(f"  {cam.lookups} lookups, every one a single 4 ns cycle")


def card_to_card_demo() -> None:
    print("\n=== Card-to-card PCIe transfer (memory bus untouched) ===")
    sim = Simulator()
    card_a = ConTuttoBuffer(sim, [DdrDram(256 * MIB, name=f"a{i}", refresh_enabled=False)
                                  for i in range(2)], name="card_a")
    card_b = ConTuttoBuffer(sim, [DdrDram(256 * MIB, name=f"b{i}", refresh_enabled=False)
                                  for i in range(2)], name="card_b")
    link = CardToCardLink(sim, card_a, card_b)
    nbytes = 4 * MIB
    t0 = sim.now_ps
    proc = link.transfer(card_a, 0, card_b, 0, nbytes)
    moved = sim.run_until_signal(proc.done, timeout_ps=10**13)
    gbps = moved / ((sim.now_ps - t0) / S) / 1e9
    print(f"  moved {moved // MIB} MiB at {gbps:.2f} GB/s over the PCIe pipe")
    print(f"  DMI commands consumed on either card: "
          f"{card_a.mbs.commands + card_b.mbs.commands}")


def reprogramming_demo() -> None:
    print("\n=== Dynamic Access-processor reprogramming from the DIMMs ===")
    sim = Simulator()
    dimms = [DdrDram(64 * MIB, refresh_enabled=False) for _ in range(2)]
    ap = AccessProcessor(sim, [MemoryController(sim, d) for d in dimms])
    values = [100, 200, 300, 400]
    # lay out the data and the executable image in the flat DIMM space
    chunk = 8 << 10
    data = b"".join(v.to_bytes(8, "little") for v in values)
    dimms[0].backing.write(0, data)
    program = sum_words(0, len(values))
    image = encode_program(program)
    image_addr = 1 * MIB
    chunk_no = image_addr // chunk
    dimms[chunk_no % 2].backing.write((chunk_no // 2) * chunk, image)

    loader = ap.load_program_from_memory(image_addr, len(program))
    sim.run()
    print(f"  fetched + checksummed a {loader.result}-instruction image "
          f"from the DIMMs")
    proc = ap.run()
    sim.run()
    print(f"  executed: sum({values}) = {proc.result[0].regs[4]}")


def ecc_demo() -> None:
    print("\n=== SEC-DED ECC under live traffic ===")
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB, ecc=True)]
    )
    payload = bytes(range(128))
    system.sim.run_until_signal(system.socket.write_line(0, payload))
    dimm = system.buffer_in_slot(0).ports[0].device
    dimm.inject_bit_error(0, bit=42)
    print("  flipped one stored cell bit behind the buffer...")
    data = system.sim.run_until_signal(system.socket.read_line(0))
    print(f"  read through DMI: intact={data == payload}, "
          f"corrections logged={dimm.ecc_corrections} "
          f"(cell scrubbed on the way)")


def recovery_demo() -> None:
    print("\n=== Runtime DMI channel recovery (no reboot) ===")
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)]
    )
    system.sim.run_until_signal(system.socket.write_line(0, bytes([7] * 128)))
    channel = system.socket.slots[0].channel
    channel._on_fail(ReplayError("induced fault"))
    print(f"  channel failed: operational={channel.operational}")
    recovered = system.socket.recover_channel(0)
    data = system.sim.run_until_signal(system.socket.read_line(0))
    print(f"  recovered={recovered}, memory intact={data == bytes([7] * 128)}, "
          f"fresh FRTL={system.socket.slots[0].frtl_ps / 1000:.1f} ns")


if __name__ == "__main__":
    tcam_demo()
    card_to_card_demo()
    reprogramming_demo()
    ecc_demo()
    recovery_demo()
