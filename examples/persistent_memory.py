"""Storage-class memory on the memory bus: the Section 4.2 experiments.

Attaches STT-MRAM behind a ConTutto card, drives it through the pmem-style
driver (with real flush/sync through the FPGA's added flush command),
demonstrates NVDIMM-N save/restore across a power cycle, and compares the
DMI attach point against PCIe with the FIO workload.

Run:  python examples/persistent_memory.py
"""

from repro import CardSpec, ContuttoSystem
from repro.memory import NvdimmState
from repro.sim import Simulator
from repro.storage import MRAM_PCIE, NVRAM_PCIE, PcieAttachedStore, PmemBlockDevice
from repro.units import GIB, MIB
from repro.workloads import FioJob, FioRunner


def mram_on_the_memory_bus() -> None:
    print("=== STT-MRAM behind ConTutto (pmem driver) ===")
    system = ContuttoSystem.build(
        [
            CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
            CardSpec(slot=0, kind="contutto", memory="mram",
                     capacity_per_dimm=128 * MIB),
        ]
    )
    region = system.socket.memory_map.nvm_regions()[0]
    print(f"firmware placed {region.os_size / MIB:.0f} MB of MRAM at "
          f"{region.base:#x} (hardware window {region.hw_size / GIB:.0f} GB — "
          f"the 4 GB 'lie' to the processor)")

    pmem = system.pmem_region()
    system.sim.run_until_signal(pmem.write(0, b"persistent payload").done,
                                timeout_ps=10**12)
    system.sim.run_until_signal(pmem.persist())
    print("wrote and persisted (flush command drained the FPGA write queue)")

    data = system.sim.run_until_signal(pmem.read(0, 18).done, timeout_ps=10**12)
    print(f"read back: {data!r}")


def nvdimm_power_cycle() -> None:
    print("\n=== NVDIMM-N power-loss save/restore ===")
    system = ContuttoSystem.build(
        [
            CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
            CardSpec(slot=0, kind="contutto", memory="nvdimm",
                     capacity_per_dimm=64 * MIB),
        ]
    )
    pmem = system.pmem_region()
    system.sim.run_until_signal(pmem.write(0, b"do not lose me").done,
                                timeout_ps=10**12)
    system.sim.run_until_signal(pmem.persist())

    nvdimms = [port.device for port in system.buffer_in_slot(0).ports]
    now = system.sim.now_ps
    for dimm in nvdimms:
        t = dimm.power_loss(now)
        print(f"  {dimm.name}: power lost -> {dimm.state.value} "
              f"(supercap-powered DRAM->flash save)")
        dimm.power_restore(t)
        print(f"  {dimm.name}: power restored -> {dimm.state.value}")
    data = system.sim.run_until_signal(pmem.read(0, 14).done, timeout_ps=10**12)
    print(f"after the power cycle: {data!r}")
    assert data == b"do not lose me"


def attach_point_comparison() -> None:
    print("\n=== FIO: the same technologies, different attach points ===")
    rows = []

    for label, profile in (("NVRAM on PCIe", NVRAM_PCIE), ("MRAM on PCIe", MRAM_PCIE)):
        sim = Simulator()
        store = PcieAttachedStore(sim, 1 * GIB, profile)
        result = FioRunner(sim).run(store, FioJob(rw="randread", total_ios=16))
        rows.append((label, result.mean_latency_us))

    system = ContuttoSystem.build(
        [
            CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
            CardSpec(slot=0, kind="contutto", memory="mram",
                     capacity_per_dimm=128 * MIB),
        ]
    )
    store = PmemBlockDevice(system.pmem_region())
    result = FioRunner(system.sim).run(store, FioJob(rw="randread", total_ios=16))
    rows.append(("MRAM on ConTutto (DMI)", result.mean_latency_us))

    for label, latency in rows:
        print(f"  {label:24s} 4K read latency {latency:6.2f} us")
    pcie = rows[0][1]
    dmi = rows[-1][1]
    print(f"\nthe memory-bus attach point is {pcie / dmi:.1f}x lower latency "
          f"than NVRAM-on-PCIe (paper: 6.6x)")


if __name__ == "__main__":
    mram_on_the_memory_bus()
    nvdimm_power_cycle()
    attach_point_comparison()
