"""Near-memory acceleration: the Section 4.3 experiments.

Shows both acceleration styles:

* a hand-written Access-processor microprogram (assembled and executed on
  the programmable state machine) that scans memory with loads;
* the block accelerators of Table 5 — memcpy, min/max, FFT — driven by
  control blocks, with measured throughput against the software baselines;
* an in-line accelerated operation (min-store) through the full DMI path.

Run:  python examples/near_memory_accel.py
"""

import numpy as np

from repro import CardSpec, ContuttoSystem
from repro.accel import (
    AccessProcessor,
    ControlBlock,
    FftEngineFarm,
    InlineAccelClient,
    KERNEL_FFT,
    KERNEL_MEMCOPY,
    KERNEL_MINMAX,
    MemcopyEngine,
    MinMaxEngine,
    SoftwareBaselines,
    assemble,
    pack_lanes,
    unpack_lanes,
)
from repro.memory import DdrDram, MemoryController
from repro.sim import Simulator
from repro.units import GIB, MIB, S

CHUNK = 8 << 10


def platform(capacity=512 * MIB):
    sim = Simulator()
    dimms = [DdrDram(capacity, name=f"dimm{i}", refresh_enabled=False) for i in range(2)]
    ports = [MemoryController(sim, d) for d in dimms]
    return sim, dimms, AccessProcessor(sim, ports)


def seed(dimms, raw):
    for pos in range(0, len(raw), CHUNK):
        chunk_no = pos // CHUNK
        dimms[chunk_no % 2].backing.write((chunk_no // 2) * CHUNK, raw[pos:pos + CHUNK])


def microprogram_demo() -> None:
    print("=== Access-processor microprogram: sum 8 64-bit words ===")
    sim, dimms, ap = platform()
    values = list(range(10, 90, 10))
    seed(dimms, b"".join(v.to_bytes(8, "little") for v in values))
    source = """
        ldi r1, 0        ; address cursor
        ldi r2, 8        ; word count
        ldi r3, 0        ; loop index
        ldi r4, 0        ; accumulator
        loop:
        ld r5, [r1]
        add r4, r4, r5
        addi r1, r1, 8
        addi r3, r3, 1
        bne r3, r2, loop
        halt
    """
    ap.load_program(assemble(source))
    proc = ap.run()
    sim.run()
    total = proc.result[0].regs[4]
    print(f"  program summed {values} -> {total} "
          f"({ap.perf.instructions} instructions, {ap.perf.loads} loads)")
    assert total == sum(values)


def block_accelerators_demo(size_mib: int = 8) -> None:
    print(f"\n=== Block accelerators over {size_mib} MiB (Table 5 kernels) ===")
    nbytes = size_mib * MIB
    software = SoftwareBaselines()
    rng = np.random.default_rng(3)

    sim, dimms, ap = platform()
    ints = rng.integers(-(2**31), 2**31 - 1, nbytes // 4, dtype=np.int32)
    seed(dimms, ints.tobytes())
    engine = MinMaxEngine(sim, ap)
    t0 = sim.now_ps
    cb = engine.run_to_completion(ControlBlock(opcode=KERNEL_MINMAX, src=0, length=nbytes))
    gbps = nbytes / ((sim.now_ps - t0) / S) / 1e9
    print(f"  min/max : {gbps:5.1f} GB/s vs software {software.minmax_gb_s():.1f} "
          f"GB/s ({gbps / software.minmax_gb_s():.0f}x)  "
          f"[min={cb.result0}, max={cb.result1} — matches numpy: "
          f"{cb.result0 == int(ints.min()) and cb.result1 == int(ints.max())}]")

    sim, dimms, ap = platform()
    seed(dimms, bytes(nbytes))
    engine = MemcopyEngine(sim, ap)
    t0 = sim.now_ps
    engine.run_to_completion(
        ControlBlock(opcode=KERNEL_MEMCOPY, src=0, dst=nbytes, length=nbytes)
    )
    gbps = nbytes / ((sim.now_ps - t0) / S) / 1e9
    print(f"  memcpy  : {gbps:5.1f} GB/s vs software {software.memcopy_gb_s():.1f} "
          f"GB/s ({gbps / software.memcopy_gb_s():.1f}x)")

    sim, dimms, ap = platform()
    samples = (rng.standard_normal(nbytes // 8) + 1j * rng.standard_normal(nbytes // 8))
    seed(dimms, samples.astype(np.complex64).tobytes())
    farm = FftEngineFarm(sim, ap, num_engines=8)
    t0 = sim.now_ps
    farm.run_to_completion(ControlBlock(opcode=KERNEL_FFT, src=0, dst=nbytes, length=nbytes))
    moved = 2 * (nbytes // 8) / ((sim.now_ps - t0) / S) / 1e9
    print(f"  1024-FFT: {moved:5.2f} Gsamples/s vs software "
          f"{software.fft_gsamples_s():.2f} Gs/s "
          f"({moved / software.fft_gsamples_s():.1f}x)  "
          f"[{farm.blocks_transformed} real transforms computed]")


def inline_accel_demo() -> None:
    print("\n=== In-line acceleration through the DMI channel ===")
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB,
                  inline_accel=True)]
    )
    host_mc = system.socket.slots[0].host_mc
    client = InlineAccelClient(system.sim, host_mc)
    system.sim.run_until_signal(host_mc.write_line(0, pack_lanes(list(range(32)))))

    t0 = system.sim.now_ps
    system.sim.run_until_signal(client.min_store(0, [15] * 32))
    inline_ns = (system.sim.now_ps - t0) / 1000
    t0 = system.sim.now_ps
    system.sim.run_until_signal(client.software_min_store(0, [15] * 32))
    software_ns = (system.sim.now_ps - t0) / 1000
    data = system.sim.run_until_signal(host_mc.read_line(0))
    print(f"  min-store result lanes 0..7: {unpack_lanes(data)[:8]}")
    print(f"  in-line: {inline_ns:.0f} ns, software read-modify-write: "
          f"{software_ns:.0f} ns ({software_ns / inline_ns:.1f}x slower — "
          f"two dependent DMI round trips vs one)")


if __name__ == "__main__":
    microprogram_demo()
    block_accelerators_demo()
    inline_accel_demo()
