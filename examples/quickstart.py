"""Quickstart: build a POWER8 system with a ConTutto card and measure it.

Builds the paper's basic configuration — a ConTutto FPGA card replacing a
CDIMM — boots it through the firmware flow (power sequencing, presence
detect, link training with retries, memory-map construction), then runs
simple traffic and the latency measurement of Tables 2/3.

Run:  python examples/quickstart.py
"""

from repro import CardSpec, ContuttoSystem
from repro.buffer import LATENCY_OPTIMIZED
from repro.units import GIB


def main() -> None:
    print("Building a system: 1x ConTutto (8 GB DDR3) + 1x Centaur CDIMM...")
    system = ContuttoSystem.build(
        [
            CardSpec(slot=0, kind="contutto", capacity_per_dimm=4 * GIB),
            CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB,
                     centaur_config=LATENCY_OPTIMIZED),
        ]
    )
    report = system.boot_report
    print(f"booted: channels {report.trained_channels}, "
          f"training attempts {report.training_attempts}")
    print(f"memory map: {system.total_memory_bytes / GIB:.0f} GiB total")
    for region in system.socket.memory_map.regions:
        print(f"  [{region.base:#014x}) {region.os_size / GIB:5.2f} GiB "
              f"{region.memory_type:6s} via DMI channel {region.channel}")

    # plain loads and stores through the full DMI machinery
    print("\nWriting and reading a cache line through the DMI channel...")
    payload = bytes(range(128))
    system.sim.run_until_signal(system.socket.write_line(0x10_000, payload))
    data = system.sim.run_until_signal(system.socket.read_line(0x10_000))
    assert data == payload
    print("  roundtrip OK")

    # the paper's latency measurement (Tables 2/3 methodology)
    print("\nMeasured latency to memory (single-command average):")
    centaur_ns = system.measure_latency_ns("centaur", samples=24)
    contutto_ns = system.measure_latency_ns("contutto", samples=24)
    print(f"  Centaur CDIMM : {centaur_ns:6.1f} ns   (paper: ~97 ns)")
    print(f"  ConTutto      : {contutto_ns:6.1f} ns   (paper: ~390 ns)")
    print(f"  FPGA overhead : {contutto_ns / centaur_ns:.1f}x")

    # link-level statistics from the run
    slot = system.socket.slots[0]
    print(f"\nDMI channel 0: FRTL {slot.frtl_ps / 1000:.1f} ns, "
          f"host frames accepted "
          f"{slot.channel.host_endpoint.frames_accepted}")


if __name__ == "__main__":
    main()
