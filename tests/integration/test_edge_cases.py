"""Edge cases and failure paths across module boundaries."""

import pytest

from repro import CardSpec, ContuttoSystem
from repro.buffer import Centaur
from repro.errors import FirmwareError, SimulationError
from repro.firmware import (
    CardDescriptor,
    CentaurFsiSlave,
    ConTuttoFsiSlave,
    CsrBlock,
    IplFlow,
    PluggedCard,
    PowerSequencer,
)
from repro.errors import PlugRuleError
from repro.memory import DdrDram
from repro.processor import Power8Socket
from repro.sim import Process, Simulator, Signal
from repro.units import GIB, MIB


class TestProcessEdgeCases:
    def test_joining_finished_process_resumes_immediately(self):
        sim = Simulator()

        def fast():
            yield 10
            return "done-first"

        child = Process(sim, fast())
        sim.run()  # child finishes before the parent even starts

        def parent():
            result = yield child
            return result

        proc = Process(sim, parent())
        sim.run()
        assert proc.result == "done-first"

    def test_zero_delay_yields_run_in_order(self):
        sim = Simulator()
        order = []

        def worker(tag):
            yield 0
            order.append(tag)

        Process(sim, worker("a"))
        Process(sim, worker("b"))
        sim.run()
        assert order == ["a", "b"]


class TestBootFailurePaths:
    def test_presence_mismatch_detected(self):
        sim = Simulator()
        socket = Power8Socket(sim)
        flow = IplFlow(sim, socket)
        # a Centaur buffer behind a ConTutto FSI identity
        buffer = Centaur(sim, [DdrDram(1 * GIB)])
        card = CardDescriptor(
            slot=0, buffer=buffer,
            fsi_slave=ConTuttoFsiSlave(sim, CsrBlock()),
        )
        with pytest.raises(FirmwareError, match="presence detect"):
            flow.boot([card])

    def test_plug_rule_violation_aborts_boot(self):
        sim = Simulator()
        socket = Power8Socket(sim)
        flow = IplFlow(sim, socket)
        cards = [
            CardDescriptor(
                slot=1,  # odd slot: illegal for ConTutto-sized cards
                buffer=_contutto(sim),
                fsi_slave=ConTuttoFsiSlave(sim, CsrBlock()),
                sequencer=PowerSequencer(sim),
            )
        ]
        with pytest.raises(PlugRuleError):
            flow.boot(cards)

    def test_boot_report_duration_accumulates_power_and_training(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)]
        )
        # power sequencing (ms) + FPGA config (120 ms) + training (us)
        assert system.boot_report.duration_ps > 120 * 10**9


def _contutto(sim):
    from repro.fpga import ConTuttoBuffer

    return ConTuttoBuffer(sim, [DdrDram(64 * MIB, refresh_enabled=False)])


class TestDeterminism:
    def test_full_system_experiment_is_bit_deterministic(self):
        def run():
            system = ContuttoSystem.build(
                [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)],
                seed=99,
            )
            latency = system.measure_latency_ns("contutto", samples=8)
            return latency, system.sim.now_ps

        assert run() == run()

    def test_different_seeds_differ_somewhere(self):
        def training_duration(seed):
            system = ContuttoSystem.build(
                [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)],
                seed=seed,
            )
            return system.boot_report.duration_ps

        durations = {training_duration(s) for s in range(6)}
        assert len(durations) > 1  # alignment retries vary with the seed


class TestMiscGuards:
    def test_signal_value_none_before_trigger(self):
        sig = Signal("x")
        assert sig.value is None
        assert not sig.triggered

    def test_simulator_run_is_not_reentrant(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.call_after(10, reenter)
        sim.run()

    def test_centaur_rejects_empty_device_list(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Centaur(Simulator(), [])
