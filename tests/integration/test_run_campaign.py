"""End-to-end campaign CLI: parallel run, cache re-run, serial parity."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_cli(script, *args):
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / script), *args],
        capture_output=True, text=True, env=ENV,
    )
    assert proc.returncode == 0, proc.stderr
    return proc


@pytest.fixture(scope="module")
def campaign_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign")
    out1, out2, cache = root / "out1", root / "out2", root / "cache"
    run_cli(
        "run_campaign.py", "--jobs", "2", "--only", "table3", "--only", "table1",
        "--out", str(out1), "--cache-dir", str(cache),
    )
    run_cli(
        "run_campaign.py", "--jobs", "2", "--only", "table3", "--only", "table1",
        "--out", str(out2), "--cache-dir", str(cache),
    )
    return out1, out2


def job_records(out_dir):
    records = []
    for line in (out_dir / "manifest.jsonl").read_text().splitlines():
        record = json.loads(line)
        if record["kind"] == "job":
            records.append(record)
    return records


class TestCampaignCli:
    def test_first_run_executes_everything(self, campaign_dirs):
        out1, _ = campaign_dirs
        records = job_records(out1)
        assert {r["experiment"] for r in records} == {"table1", "table3"}
        assert all(r["status"] == "ok" and r["source"] == "run" for r in records)

    def test_second_run_is_all_cache_hits(self, campaign_dirs):
        _, out2 = campaign_dirs
        records = job_records(out2)
        assert records, "manifest empty on re-run"
        assert all(r["source"] == "cache" for r in records)

    def test_cached_tables_identical(self, campaign_dirs):
        out1, out2 = campaign_dirs
        first = (out1 / "experiments.md").read_text()
        assert first == (out2 / "experiments.md").read_text()
        assert first.count("###") == 2  # one block per table

    def test_matches_serial_regenerate_byte_for_byte(self, campaign_dirs, tmp_path):
        out1, _ = campaign_dirs
        serial = tmp_path / "serial.md"
        run_cli(
            "regenerate_experiments.py", "--only", "table3", "--only", "table1",
            "--out", str(serial),
        )
        assert serial.read_text() == (out1 / "experiments.md").read_text()

    def test_telemetry_artifact_merges_jobs(self, campaign_dirs):
        out1, _ = campaign_dirs
        records = [
            json.loads(line)
            for line in (out1 / "metrics.jsonl").read_text().splitlines()
        ]
        assert records[0]["kind"] == "meta"
        assert records[0]["experiment"] == "campaign"
        snapshots = [r for r in records if r["kind"] == "snapshot"]
        assert snapshots[-1]["label"] == "merged"
        assert snapshots[-1]["metrics"]["dmi.frames_sent"] > 0
