"""Runtime channel-failure recovery without a system reboot."""

import pytest

from repro import CardSpec, ContuttoSystem
from repro.dmi import Command, Opcode
from repro.errors import ReplayError
from repro.units import CACHE_LINE_BYTES, GIB


def make_system(seed=3):
    return ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)],
        seed=seed,
    )


def force_channel_failure(system, slot=0):
    """Drive the channel into the failed state through its own machinery."""
    channel = system.socket.slots[slot].channel
    channel._on_fail(ReplayError("induced for the recovery test"))
    assert not channel.operational


class TestChannelRecovery:
    def test_recover_restores_traffic(self):
        system = make_system()
        payload = bytes([0x42] * CACHE_LINE_BYTES)
        system.sim.run_until_signal(system.socket.write_line(0, payload))

        force_channel_failure(system)
        recovered = system.socket.recover_channel(0)
        assert recovered
        assert system.socket.slots[0].channel.operational

        # new traffic flows; previously written memory is still there
        data = system.sim.run_until_signal(system.socket.read_line(0))
        assert data == payload
        system.sim.run_until_signal(
            system.socket.write_line(CACHE_LINE_BYTES, payload)
        )

    def test_recovery_releases_stuck_tags(self):
        system = make_system()
        host_mc = system.socket.slots[0].host_mc
        # strand some commands: issue then kill the channel before completion
        for tag in range(5):
            host_mc.tags.try_acquire()
        force_channel_failure(system)
        system.socket.recover_channel(0)
        assert host_mc.tags.free_count == host_mc.tags.num_tags

    def test_recovery_measures_fresh_frtl(self):
        system = make_system()
        frtl_before = system.socket.slots[0].frtl_ps
        force_channel_failure(system)
        system.socket.recover_channel(0)
        assert system.socket.slots[0].frtl_ps > 0
        assert system.socket.slots[0].frtl_ps == pytest.approx(frtl_before, rel=0.2)

    def test_repeated_failures_recoverable(self):
        system = make_system()
        for round_no in range(3):
            force_channel_failure(system)
            assert system.socket.recover_channel(0), f"round {round_no}"
            data = system.sim.run_until_signal(system.socket.read_line(0))
            assert data == bytes(CACHE_LINE_BYTES)

    def test_channel_reset_clears_protocol_state(self):
        system = make_system()
        channel = system.socket.slots[0].channel
        system.sim.run_until_signal(system.socket.read_line(0))
        assert channel.host_endpoint._last_accepted is not None
        channel.reset()
        assert channel.host_endpoint._last_accepted is None
        assert channel.host_endpoint._next_tx_seq == 0
        assert channel.buffer_endpoint._replay.outstanding == 0
        assert not channel.host.in_flight
