"""End-to-end telemetry: a traced experiment produces coherent artifacts."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import run_table3
from repro.processor import SocketConfig
from repro.telemetry import TraceSession, final_snapshot, read_jsonl

REPO = Path(__file__).resolve().parents[2]

#: spans, instants, and the journey flow chain (s/t/f)
ALLOWED_PH = {"B", "E", "X", "i", "s", "t", "f"}


def run_script(script, *args):
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / script), *args],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


@pytest.fixture(scope="module")
def traced_table3():
    with TraceSession("table3") as session:
        table = run_table3(samples=4)
    return session, table


class TestTracedRun:
    def test_dmi_round_trip_spans_emitted(self, traced_table3):
        session, _ = traced_table3
        cmd_spans = [
            e for e in session.events
            if e.ph == "X" and e.category == "dmi" and e.name.startswith("cmd.")
        ]
        assert cmd_spans, "no DMI command round-trip spans"
        assert all(e.dur_ps > 0 for e in cmd_spans)

    def test_component_coverage(self, traced_table3):
        session, _ = traced_table3
        assert {"kernel", "dmi", "buffer", "memory"} <= set(session.categories())

    def test_chrome_timestamps_monotonic(self, traced_table3):
        session, _ = traced_table3
        events = session.chrome_events()
        assert len(events) > 100
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_counters_match_run_scale(self, traced_table3):
        session, table = traced_table3
        snap = session.snapshots[-1]["metrics"]
        # table3 measures 6 configurations x 4 samples = 24 reads; every
        # read is one host command with a frame each way plus command misc
        assert snap["dmi.frames_sent"] >= 24
        assert snap["dmi.frames_accepted"] >= 24
        assert snap["buffer.cache.hits"] + snap["buffer.cache.misses"] >= 4
        assert snap["kernel.events"] > 0
        assert len(table.rows) == 6

    def test_kernel_events_cover_signal_driven_runs(self):
        # experiments drive the kernel through run_until_signal, which must
        # honour kernel_events just like run() does
        with TraceSession("t", kernel_events=True) as session:
            run_table3(samples=2)
        kernel_instants = [
            e for e in session.events if e.ph == "i" and e.category == "kernel"
        ]
        assert len(kernel_instants) > 100

    def test_tracing_leaves_results_unchanged(self, traced_table3):
        _, traced = traced_table3
        plain = run_table3(samples=4)
        assert [row[:2] for row in plain.rows] == [
            row[:2] for row in traced.rows
        ]


class TestAttribution:
    """The tentpole acceptance: journeys explain the measured latency."""

    def test_journeys_tile_the_measured_latency(self, traced_table3):
        session, table = traced_table3
        breakdown = session.breakdown()
        assert breakdown.check(tolerance=0.01) == []
        host_path_ps = SocketConfig().host_path_ps
        for label in ("centaur", "contutto_base", "contutto_knob7"):
            measured_ns = table.cell("Configuration", label, "Latency (ns)")
            # stage means must sum to the end-to-end journey mean, and the
            # journey mean plus the fixed host path must reproduce the
            # measured latency within 1%
            stage_sum = sum(
                r["mean_ps"] for r in breakdown.stage_table(label)
            )
            e2e = breakdown.end_to_end(label)["mean"]
            assert stage_sum == pytest.approx(e2e, rel=0.01)
            journey_ns = (e2e + host_path_ps) / 1000
            assert journey_ns == pytest.approx(measured_ns, rel=0.01)

    def test_stage_deltas_explain_table3(self, traced_table3):
        session, table = traced_table3
        breakdown = session.breakdown()
        # the per-stage deltas must account for the whole ConTutto-minus-
        # Centaur difference (the Table 3 decomposition), and the latency
        # knob must land in the buffer stage, not in memory or the link
        measured_delta_ps = 1000 * (
            table.cell("Configuration", "contutto_base", "Latency (ns)")
            - table.cell("Configuration", "centaur_function_matched", "Latency (ns)")
        )
        rows = breakdown.delta("contutto_base", "function_matched")
        assert sum(r["delta_ps"] for r in rows) == pytest.approx(
            measured_delta_ps, rel=0.01
        )
        knob = {r["stage"]: r["delta_ps"]
                for r in breakdown.delta("contutto_knob7", "contutto_base")}
        assert knob["buffer"] > 0
        assert knob.get("memory.service", 0) == pytest.approx(0, abs=1)

    def test_boot_traffic_kept_out_of_measurement_scenarios(self, traced_table3):
        session, _ = traced_table3
        per_scenario = {}
        for journey in session.journeys.completed:
            per_scenario.setdefault(journey.scenario, []).append(journey)
        measured = {s for s in per_scenario if not s.endswith(":boot")}
        assert measured == {
            "centaur", "function_matched", "contutto_base",
            "contutto_knob2", "contutto_knob6", "contutto_knob7",
        }
        # exactly the measurement reads land in each configuration's bucket
        for scenario in measured:
            journeys = per_scenario[scenario]
            assert len(journeys) == 4              # the fixture's samples=4
            assert all(j.op == "read" for j in journeys)

    def test_occupancy_sampled_during_runs(self, traced_table3):
        session, _ = traced_table3
        snap = session.snapshots[-1]["metrics"]
        assert snap["occupancy.samples"] > 0
        assert any(k.startswith("occupancy.dmi.") for k in snap)
        assert any(k.startswith("occupancy.memory.") for k in snap)
        # per-bank busy sources ride along with the aggregate banks_busy
        assert any(".bank0_busy" in k for k in snap)

    def test_journeys_carry_queue_depth_at_issue(self, traced_table3):
        from repro.telemetry.attribution.artifact import journey_record

        session, _ = traced_table3
        journeys = session.journeys.completed
        # every line command passes the host MC, which stamps the tag
        # window's in-flight count (this command excluded) at issue time
        assert journeys and all(j.depth is not None for j in journeys)
        assert all(0 <= j.depth < 64 for j in journeys)
        records = [journey_record(j) for j in journeys]
        assert all("depth" in r for r in records)


class TestCli:
    def test_trace_experiment_bundle(self, tmp_path):
        out = tmp_path / "t3"
        proc = run_script(
            "trace_experiment.py", "table3", "--out", str(out), "--samples", "4"
        )
        assert proc.returncode == 0, proc.stderr

        events = json.loads((out / "trace.json").read_text())
        assert isinstance(events, list) and events
        for e in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
            assert e["ph"] in ALLOWED_PH
        assert len({e["cat"] for e in events}) >= 4

        # journey stage spans linked by flow events sharing a journey id
        flows = [e for e in events if e["ph"] in {"s", "t", "f"}]
        assert flows, "no journey flow events in the trace"
        ids = {e["id"] for e in flows}
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"] for e in flows if e["ph"] == "f"}
        assert starts == finishes == ids
        assert any(e["cat"] == "journey" and e["ph"] == "X" for e in events)

        records = read_jsonl(out / "metrics.jsonl")
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "meta"
        assert "result" in kinds
        snap = final_snapshot(records)["metrics"]
        assert snap["dmi.frames_sent"] > 0
        assert "buffer.cache.misses" in snap

        attribution = read_jsonl(out / "attribution.jsonl")
        assert attribution[0]["kind"] == "meta"
        assert attribution[0]["journeys"] >= 24
        assert any(r["kind"] == "journey" for r in attribution)
        assert any(r["kind"] == "stage_summary" for r in attribution)

    def test_analyzer_round_trips_cleanly(self, tmp_path):
        out = tmp_path / "t3"
        proc = run_script(
            "trace_experiment.py", "table3", "--out", str(out), "--samples", "4"
        )
        assert proc.returncode == 0, proc.stderr
        check = run_script("analyze_latency.py", str(out), "--check")
        assert check.returncode == 0, check.stderr
        assert "warning" not in check.stderr
        assert "Latency breakdown: contutto_base" in check.stdout
        assert "Stage deltas" in check.stdout
        # centaur is auto-picked as the delta baseline
        assert "- centaur (" in check.stdout
        # depth-annotated DMI journeys unlock the contention tables
        assert "DRAM bank contention: contutto_base" in check.stdout
        assert "hottest bank holds" in check.stdout
        assert "Queue depth vs latency: contutto_base" in check.stdout
        # table3 issues serially, so depth is constant and r is undefined
        assert "correlation undefined" in check.stdout

    def test_unknown_experiment_is_a_clean_error(self):
        proc = run_script("trace_experiment.py", "table99")
        assert proc.returncode == 2
        assert "unknown experiment 'table99'" in proc.stderr
        assert "Traceback" not in proc.stderr
        assert "table3" in proc.stderr          # lists the known names

    def test_help_documents_seed_semantics(self):
        proc = run_script("trace_experiment.py", "--help")
        assert proc.returncode == 0
        assert "--seed" in proc.stdout
        # the help must explain how --seed composes with each experiment's
        # historical base seeds, not just restate the flag name
        assert "historical base seeds" in " ".join(proc.stdout.split())
        assert "known experiments:" in proc.stdout
