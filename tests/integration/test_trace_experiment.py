"""End-to-end telemetry: a traced experiment produces coherent artifacts."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import run_table3
from repro.telemetry import TraceSession, final_snapshot, read_jsonl

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def traced_table3():
    with TraceSession("table3") as session:
        table = run_table3(samples=4)
    return session, table


class TestTracedRun:
    def test_dmi_round_trip_spans_emitted(self, traced_table3):
        session, _ = traced_table3
        cmd_spans = [
            e for e in session.events
            if e.ph == "X" and e.category == "dmi" and e.name.startswith("cmd.")
        ]
        assert cmd_spans, "no DMI command round-trip spans"
        assert all(e.dur_ps > 0 for e in cmd_spans)

    def test_component_coverage(self, traced_table3):
        session, _ = traced_table3
        assert {"kernel", "dmi", "buffer", "memory"} <= set(session.categories())

    def test_chrome_timestamps_monotonic(self, traced_table3):
        session, _ = traced_table3
        events = session.chrome_events()
        assert len(events) > 100
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_counters_match_run_scale(self, traced_table3):
        session, table = traced_table3
        snap = session.snapshots[-1]["metrics"]
        # table3 measures 6 configurations x 4 samples = 24 reads; every
        # read is one host command with a frame each way plus command misc
        assert snap["dmi.frames_sent"] >= 24
        assert snap["dmi.frames_accepted"] >= 24
        assert snap["buffer.cache.hits"] + snap["buffer.cache.misses"] >= 4
        assert snap["kernel.events"] > 0
        assert len(table.rows) == 6

    def test_kernel_events_cover_signal_driven_runs(self):
        # experiments drive the kernel through run_until_signal, which must
        # honour kernel_events just like run() does
        with TraceSession("t", kernel_events=True) as session:
            run_table3(samples=2)
        kernel_instants = [
            e for e in session.events if e.ph == "i" and e.category == "kernel"
        ]
        assert len(kernel_instants) > 100

    def test_tracing_leaves_results_unchanged(self, traced_table3):
        _, traced = traced_table3
        plain = run_table3(samples=4)
        assert [row[:2] for row in plain.rows] == [
            row[:2] for row in traced.rows
        ]


class TestCli:
    def test_trace_experiment_bundle(self, tmp_path):
        out = tmp_path / "t3"
        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "trace_experiment.py"),
             "table3", "--out", str(out), "--samples", "4"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr

        events = json.loads((out / "trace.json").read_text())
        assert isinstance(events, list) and events
        for e in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
            assert e["ph"] in {"B", "E", "X", "i"}
        assert len({e["cat"] for e in events}) >= 4

        records = read_jsonl(out / "metrics.jsonl")
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "meta"
        assert "result" in kinds
        snap = final_snapshot(records)["metrics"]
        assert snap["dmi.frames_sent"] > 0
        assert "buffer.cache.misses" in snap
