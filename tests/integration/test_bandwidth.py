"""Channel throughput and multi-channel scaling.

The platform's bandwidth story: each DMI channel carries 35 signals at
8 Gb/s (35 GB/s raw aggregate, Section 1's headline), frame/protocol
overheads take their cut, and a fully configured socket scales across
channels (Figure 1: 8 channels for 410 GB/s peak).
"""

import pytest

from repro import CardSpec, ContuttoSystem
from repro.buffer import LATENCY_OPTIMIZED
from repro.units import CACHE_LINE_BYTES, GIB, S


def pipelined_read_throughput(system, region_base, lines=192):
    """Pipelined line reads (tag window keeps the channel busy)."""
    sim = system.sim
    t0 = sim.now_ps
    signals = [
        system.socket.read_line(region_base + i * CACHE_LINE_BYTES)
        for i in range(lines)
    ]
    for sig in signals:
        sim.run_until_signal(sig, timeout_ps=10**13)
    return lines * CACHE_LINE_BYTES / ((sim.now_ps - t0) / S) / 1e9


class TestChannelBandwidth:
    def test_single_channel_read_throughput(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="centaur", capacity_per_dimm=1 * GIB,
                      centaur_config=LATENCY_OPTIMIZED)]
        )
        gbps = pipelined_read_throughput(system, 0)
        # upstream data path: 32B chunks in 42B frames at 9.6 Gb/s x 21 lanes
        # = 25.2 GB/s raw; payload efficiency and dones land it lower
        assert 8.0 <= gbps <= 22.0

    def test_two_channels_scale(self):
        one = ContuttoSystem.build(
            [CardSpec(slot=0, kind="centaur", capacity_per_dimm=1 * GIB)]
        )
        single = pipelined_read_throughput(one, 0, lines=128)

        two = ContuttoSystem.build(
            [
                CardSpec(slot=0, kind="centaur", capacity_per_dimm=1 * GIB),
                CardSpec(slot=1, kind="centaur", capacity_per_dimm=1 * GIB),
            ]
        )
        # interleave requests across both channels' regions
        sim = two.sim
        lines = 64
        t0 = sim.now_ps
        signals = []
        for i in range(lines):
            signals.append(two.socket.read_line(i * CACHE_LINE_BYTES))
            signals.append(two.socket.read_line(4 * GIB + i * CACHE_LINE_BYTES))
        for sig in signals:
            sim.run_until_signal(sig, timeout_ps=10**13)
        dual = 2 * lines * CACHE_LINE_BYTES / ((sim.now_ps - t0) / S) / 1e9

        assert dual > 1.6 * single  # near-linear channel scaling

    def test_contutto_channel_slower_but_comparable(self):
        # ConTutto runs links at 8 vs 9.6 Gb/s and adds fabric latency, but
        # the widened datapath keeps pipelined throughput in the same class
        centaur = ContuttoSystem.build(
            [CardSpec(slot=0, kind="centaur", capacity_per_dimm=1 * GIB)]
        )
        contutto = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=4 * GIB)]
        )
        c_gbps = pipelined_read_throughput(centaur, 0, lines=128)
        ct_gbps = pipelined_read_throughput(contutto, 0, lines=128)
        assert ct_gbps < c_gbps
        assert ct_gbps > 0.3 * c_gbps

    def test_throughput_collapses_without_pipelining(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="centaur", capacity_per_dimm=1 * GIB)]
        )
        sim = system.sim
        lines = 48
        t0 = sim.now_ps
        for i in range(lines):  # strictly dependent reads
            sim.run_until_signal(
                system.socket.read_line(i * CACHE_LINE_BYTES), timeout_ps=10**13
            )
        serial = lines * CACHE_LINE_BYTES / ((sim.now_ps - t0) / S) / 1e9
        pipelined = pipelined_read_throughput(system, 0, lines=lines)
        assert pipelined > 5 * serial
