"""ECC end to end: corrected cells are invisible to the full DMI path."""

import pytest

from repro import CardSpec, ContuttoSystem
from repro.memory import UncorrectableEccError
from repro.units import CACHE_LINE_BYTES, GIB


class TestEccThroughTheStack:
    def test_correctable_error_invisible_to_software(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB, ecc=True)]
        )
        payload = bytes(range(128))
        system.sim.run_until_signal(system.socket.write_line(0, payload))

        # a bit flips in the cell array behind the buffer
        dimm = system.buffer_in_slot(0).ports[0].device
        dimm.inject_bit_error(0, bit=42)

        data = system.sim.run_until_signal(system.socket.read_line(0))
        assert data == payload  # corrected on the fly
        assert dimm.ecc_corrections == 1

    def test_correction_counters_feed_health_reporting(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB, ecc=True)]
        )
        dimm = system.buffer_in_slot(0).ports[0].device
        for line in range(4):
            addr = line * 2 * CACHE_LINE_BYTES  # even lines -> port 0
            system.sim.run_until_signal(
                system.socket.write_line(addr, bytes(CACHE_LINE_BYTES))
            )
            dimm.inject_bit_error(system.buffer_in_slot(0)._route(addr) % dimm.capacity_bytes, bit=1)
            system.sim.run_until_signal(system.socket.read_line(addr))
        assert dimm.ecc_corrections == 4

    def test_ecc_off_by_default(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)]
        )
        dimm = system.buffer_in_slot(0).ports[0].device
        assert not dimm.ecc_enabled
