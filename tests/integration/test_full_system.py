"""End-to-end integration tests across the whole stack."""

import pytest

from repro import CardSpec, ContuttoSystem
from repro.accel import InlineAccelClient, pack_lanes, unpack_lanes
from repro.memory import NvdimmState
from repro.processor import SocketConfig
from repro.storage import PmemBlockDevice, PmemConfig
from repro.units import GIB, MIB, CACHE_LINE_BYTES


class TestPmemOverDmi:
    @pytest.fixture(scope="class")
    def system(self):
        return ContuttoSystem.build(
            [
                CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
                CardSpec(slot=0, kind="contutto", memory="mram",
                         capacity_per_dimm=128 * MIB),
            ]
        )

    def test_byte_level_roundtrip(self, system):
        pmem = system.pmem_region()
        payload = bytes(range(256)) * 8  # 2 KiB
        write = pmem.write(1_000, payload)
        system.sim.run_until_signal(write.done, timeout_ps=10**12)
        read = pmem.read(1_000, len(payload))
        data = system.sim.run_until_signal(read.done, timeout_ps=10**12)
        assert data == payload

    def test_unaligned_write_preserves_neighbours(self, system):
        pmem = system.pmem_region()
        base = 64 * 1024
        system.sim.run_until_signal(
            pmem.write(base, bytes([0xAA]) * 384).done, timeout_ps=10**12
        )
        # overwrite 10 bytes in the middle, not line-aligned
        system.sim.run_until_signal(
            pmem.write(base + 130, b"0123456789").done, timeout_ps=10**12
        )
        data = system.sim.run_until_signal(
            pmem.read(base, 384).done, timeout_ps=10**12
        )
        assert data[:130] == bytes([0xAA]) * 130
        assert data[130:140] == b"0123456789"
        assert data[140:] == bytes([0xAA]) * 244

    def test_persist_issues_flush(self, system):
        pmem = system.pmem_region()
        contutto = system.buffer_in_slot(0)
        before = contutto.mbs.flushes
        system.sim.run_until_signal(pmem.persist(), timeout_ps=10**12)
        assert contutto.mbs.flushes == before + 1

    def test_4k_read_latency_in_microseconds(self, system):
        pmem = system.pmem_region()
        t0 = system.sim.now_ps
        system.sim.run_until_signal(pmem.read(0, 4096).done, timeout_ps=10**12)
        latency_us = (system.sim.now_ps - t0) / 1e6
        assert 1.5 <= latency_us <= 5.0  # the DMI-attach advantage


class TestNvdimmPowerCycle:
    def test_contents_survive_power_loss(self):
        system = ContuttoSystem.build(
            [
                CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
                CardSpec(slot=0, kind="contutto", memory="nvdimm",
                         capacity_per_dimm=64 * MIB),
            ]
        )
        pmem = system.pmem_region()
        system.sim.run_until_signal(
            pmem.write(0, b"survive the outage").done, timeout_ps=10**12
        )
        system.sim.run_until_signal(pmem.persist(), timeout_ps=10**12)

        # power-cycle the NVDIMMs (the module saves itself on supercap)
        nvdimms = [port.device for port in system.buffer_in_slot(0).ports]
        now = system.sim.now_ps
        for dimm in nvdimms:
            t = dimm.power_loss(now)
            assert dimm.state is NvdimmState.SAVED
            dimm.power_restore(t)
        data = system.sim.run_until_signal(
            pmem.read(0, 18).done, timeout_ps=10**12
        )
        assert data == b"survive the outage"


class TestInlineAccelerationEndToEnd:
    @pytest.fixture(scope="class")
    def system(self):
        return ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB,
                      inline_accel=True)]
        )

    def test_min_store_through_dmi(self, system):
        host_mc = system.socket.slots[0].host_mc
        client = InlineAccelClient(system.sim, host_mc)
        system.sim.run_until_signal(
            host_mc.write_line(0, pack_lanes(list(range(32)))), timeout_ps=10**12
        )
        system.sim.run_until_signal(
            client.min_store(0, [10] * 32), timeout_ps=10**12
        )
        data = system.sim.run_until_signal(host_mc.read_line(0), timeout_ps=10**12)
        assert unpack_lanes(data) == [min(i, 10) for i in range(32)]

    def test_cswap_reports_success_without_polling(self, system):
        host_mc = system.socket.slots[0].host_mc
        client = InlineAccelClient(system.sim, host_mc)
        line = [77] + [0] * 31
        system.sim.run_until_signal(
            host_mc.write_line(128, pack_lanes(line)), timeout_ps=10**12
        )
        swapped, old = system.sim.run_until_signal(
            client.cswap(128, 77, [77] + [5] * 31), timeout_ps=10**12
        )
        assert swapped
        assert old == line

    def test_inline_op_faster_than_software_rmw(self, system):
        host_mc = system.socket.slots[0].host_mc
        client = InlineAccelClient(system.sim, host_mc)
        addr = 4096
        system.sim.run_until_signal(
            host_mc.write_line(addr, pack_lanes([100] * 32)), timeout_ps=10**12
        )
        t0 = system.sim.now_ps
        system.sim.run_until_signal(client.min_store(addr, [1] * 32), timeout_ps=10**12)
        inline_time = system.sim.now_ps - t0
        t0 = system.sim.now_ps
        system.sim.run_until_signal(
            client.software_min_store(addr, [2] * 32), timeout_ps=10**12
        )
        software_time = system.sim.now_ps - t0
        # one round trip beats load + dependent store
        assert inline_time < software_time


class TestSystemUnderLinkErrors:
    def test_traffic_survives_injected_bit_errors(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)],
            socket_config=SocketConfig(frame_error_rate=0.03),
            seed=5,
        )
        for i in range(20):
            payload = bytes([(i * 7 + j) % 256 for j in range(CACHE_LINE_BYTES)])
            system.sim.run_until_signal(
                system.socket.write_line(i * CACHE_LINE_BYTES, payload),
                timeout_ps=10**13,
            )
            data = system.sim.run_until_signal(
                system.socket.read_line(i * CACHE_LINE_BYTES), timeout_ps=10**13
            )
            assert data == payload
        channel = system.socket.slots[0].channel
        assert channel.operational
        drops = channel.host_endpoint.crc_drops + channel.buffer_endpoint.crc_drops
        assert drops > 0  # errors actually happened and were recovered
