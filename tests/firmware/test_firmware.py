"""Tests for FSI/I2C access paths, power sequencing, and plug rules."""

import pytest

from repro.errors import FirmwareError, PlugRuleError, PowerSequenceError
from repro.firmware import (
    CONTUTTO_RAILS,
    CentaurFsiSlave,
    ConTuttoFsiSlave,
    CsrBlock,
    FsiBus,
    I2C_TRANSACTION_PS,
    I2cMaster,
    PluggedCard,
    PowerSequencer,
    ServiceProcessor,
    blocked_slots,
    max_cdimms_with,
    paper_config_one_contutto,
    paper_config_two_contutto,
    validate_plug_plan,
)
from repro.memory import SpdData
from repro.sim import Simulator


class TestCsrBlock:
    def test_define_read_write(self):
        csr = CsrBlock()
        csr.define(0x10, reset_value=7)
        assert csr.read(0x10) == 7
        csr.write(0x10, 0xABCD)
        assert csr.read(0x10) == 0xABCD

    def test_undefined_register_raises(self):
        with pytest.raises(FirmwareError):
            CsrBlock().read(0x99)

    def test_write_hook_fires(self):
        csr = CsrBlock()
        seen = []
        csr.define(0x20, on_write=seen.append)
        csr.write(0x20, 5)
        assert seen == [5]

    def test_read_hook_provides_value(self):
        csr = CsrBlock()
        csr.define(0x30, on_read=lambda: 0x1234)
        assert csr.read(0x30) == 0x1234

    def test_values_truncate_to_32_bits(self):
        csr = CsrBlock()
        csr.define(0)
        csr.write(0, 1 << 40)
        assert csr.read(0) == 0

    def test_duplicate_define_rejected(self):
        csr = CsrBlock()
        csr.define(0)
        with pytest.raises(FirmwareError):
            csr.define(0)


class TestI2cPath:
    def test_i2c_read_pays_transaction_latency(self):
        sim = Simulator()
        csr = CsrBlock()
        csr.define(0x10, reset_value=42)
        master = I2cMaster(sim, csr)
        value = sim.run_until_signal(master.read_reg(0x10))
        assert value == 42
        assert sim.now_ps == I2C_TRANSACTION_PS

    def test_indirect_fpga_path_slower_than_native_fsi(self):
        sim = Simulator()
        fpga_csr = CsrBlock("fpga")
        fpga_csr.define(0x10, reset_value=1)
        contutto = ConTuttoFsiSlave(sim, fpga_csr)
        t0 = sim.now_ps
        sim.run_until_signal(contutto.fpga_read(0x10))
        indirect = sim.now_ps - t0

        centaur = CentaurFsiSlave(sim)
        t0 = sim.now_ps
        sim.run_until_signal(centaur.read_reg(0x00))
        native = sim.now_ps - t0
        assert indirect > 10 * native  # the I2C hop dominates

    def test_spd_read(self):
        sim = Simulator()
        image = SpdData("mram", 256 << 20).encode()
        slave = ConTuttoFsiSlave(sim, CsrBlock(), spd_images=[image])
        raw = sim.run_until_signal(slave.read_spd(0))
        assert SpdData.decode(raw).module_type == "mram"

    def test_spd_empty_slot_raises(self):
        sim = Simulator()
        slave = ConTuttoFsiSlave(sim, CsrBlock(), spd_images=[])
        with pytest.raises(FirmwareError):
            slave.read_spd(0)

    def test_fsi_bus_scan(self):
        sim = Simulator()
        bus = FsiBus(sim)
        bus.attach(0, ConTuttoFsiSlave(sim, CsrBlock()))
        bus.attach(2, CentaurFsiSlave(sim))
        assert bus.scan() == {0: "contutto", 2: "centaur"}

    def test_fsi_bus_double_attach_rejected(self):
        sim = Simulator()
        bus = FsiBus(sim)
        bus.attach(0, CentaurFsiSlave(sim))
        with pytest.raises(FirmwareError):
            bus.attach(0, CentaurFsiSlave(sim))


class TestPowerSequencer:
    def test_power_on_brings_all_rails_up(self):
        sim = Simulator()
        seq = PowerSequencer(sim)
        sim.run_until_signal(seq.power_on())
        assert seq.all_up

    def test_out_of_order_bring_up_faults(self):
        sim = Simulator()
        seq = PowerSequencer(sim)
        with pytest.raises(PowerSequenceError):
            seq.rail_up("VCCT_GXB")  # analog rail before core

    def test_out_of_order_teardown_faults(self):
        sim = Simulator()
        seq = PowerSequencer(sim)
        sim.run_until_signal(seq.power_on())
        with pytest.raises(PowerSequenceError):
            seq.rail_down("VCC_core")  # core drops while later rails up

    def test_power_cycle(self):
        sim = Simulator()
        seq = PowerSequencer(sim)
        sim.run_until_signal(seq.power_on())
        sim.run_until_signal(seq.power_off())
        assert seq.all_down

    def test_rail_catalog_order(self):
        orders = [rail.order for rail in CONTUTTO_RAILS]
        assert orders == sorted(orders)
        # analog transceiver rails come up last
        assert CONTUTTO_RAILS[-1].regulator == "ldo"

    def test_unknown_rail_rejected(self):
        with pytest.raises(PowerSequenceError):
            PowerSequencer(Simulator()).rail_up("V_IMAGINARY")


class TestPlugRules:
    def test_paper_configs_valid(self):
        validate_plug_plan(paper_config_one_contutto())
        validate_plug_plan(paper_config_two_contutto())

    def test_paper_config_counts(self):
        one = paper_config_one_contutto()
        assert sum(1 for c in one if c.kind == "contutto") == 1
        assert sum(1 for c in one if c.kind == "centaur") == 6
        two = paper_config_two_contutto()
        assert sum(1 for c in two if c.kind == "contutto") == 2
        assert sum(1 for c in two if c.kind == "centaur") == 4

    def test_contutto_blocks_adjacent_slot(self):
        plan = [PluggedCard(0, "contutto"), PluggedCard(1, "centaur")]
        with pytest.raises(PlugRuleError):
            validate_plug_plan(plan)

    def test_contutto_odd_slot_rejected(self):
        with pytest.raises(PlugRuleError):
            validate_plug_plan([PluggedCard(3, "contutto")])

    def test_double_plug_rejected(self):
        plan = [PluggedCard(0, "centaur"), PluggedCard(0, "centaur")]
        with pytest.raises(PlugRuleError):
            validate_plug_plan(plan)

    def test_blocked_slots(self):
        assert blocked_slots([PluggedCard(0, "contutto"), PluggedCard(4, "contutto")]) == {1, 5}

    def test_max_cdimms(self):
        assert max_cdimms_with(0) == 8
        assert max_cdimms_with(1) == 6
        assert max_cdimms_with(2) == 4

    def test_too_many_contutto_rejected(self):
        with pytest.raises(PlugRuleError):
            max_cdimms_with(5)


class TestServiceProcessor:
    def test_error_logging(self):
        fsp = ServiceProcessor(Simulator())
        fsp.log("slot0", "CRC storm")
        assert fsp.error_count == 1
        assert fsp.errors_for("slot0")[0].message == "CRC storm"

    def test_deconfigure_after_threshold(self):
        fsp = ServiceProcessor(Simulator())
        for i in range(ServiceProcessor.DECONFIGURE_THRESHOLD):
            fsp.log("slot3", f"fault {i}")
        assert fsp.is_deconfigured("slot3")

    def test_info_entries_dont_count(self):
        fsp = ServiceProcessor(Simulator())
        for _ in range(10):
            fsp.log("slot1", "note", severity="info")
        assert not fsp.is_deconfigured("slot1")
        assert fsp.error_count == 0
