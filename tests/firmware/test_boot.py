"""Tests for the IPL (boot) flow, including mixed configurations."""

import pytest

from repro.buffer import Centaur
from repro.dmi import TrainingConfig
from repro.firmware import (
    CardDescriptor,
    CentaurFsiSlave,
    ConTuttoFsiSlave,
    CsrBlock,
    IplFlow,
    PowerSequencer,
    ServiceProcessor,
)
from repro.fpga import ConTuttoBuffer
from repro.memory import DdrDram, SttMram, spd_for_device
from repro.processor import Power8Socket
from repro.sim import Rng, Simulator
from repro.units import GIB, MIB


def contutto_card(sim, slot, devices=None, name=None):
    devices = devices or [
        DdrDram(4 * GIB, name=f"s{slot}d{i}") for i in range(2)
    ]
    buffer = ConTuttoBuffer(sim, devices, name=name or f"ct{slot}")
    spd_images = [spd_for_device(d).encode() for d in devices]
    return CardDescriptor(
        slot=slot,
        buffer=buffer,
        fsi_slave=ConTuttoFsiSlave(sim, CsrBlock(f"fpga{slot}"), spd_images),
        sequencer=PowerSequencer(sim, name=f"pwr{slot}"),
    )


def centaur_card(sim, slot, capacity=1 * GIB):
    buffer = Centaur(
        sim,
        [DdrDram(capacity, name=f"s{slot}c{i}") for i in range(4)],
        name=f"cent{slot}",
    )
    return CardDescriptor(slot=slot, buffer=buffer, fsi_slave=CentaurFsiSlave(sim, f"fsi{slot}"))


class TestSingleCardBoot:
    def test_centaur_only_boot(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(2))
        flow = IplFlow(sim, socket)
        report = flow.boot([centaur_card(sim, 0)])
        assert report.booted
        assert report.trained_channels == [0]
        assert socket.memory_map.dram_bytes == 4 * GIB

    def test_contutto_boot_with_power_sequence(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(2))
        flow = IplFlow(sim, socket)
        card = contutto_card(sim, 0)
        report = flow.boot([card])
        assert report.booted
        assert card.sequencer.sequences_completed == 1
        assert report.duration_ps > 0

    def test_training_retries_via_fpga_reset(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(21))
        # low per-phase lock probability forces whole-training retries
        flow = IplFlow(
            sim, socket,
            training=TrainingConfig(phase_lock_probability=0.28, max_phase_attempts=2),
        )
        card = contutto_card(sim, 0)
        report = flow.boot([card])
        if report.booted:
            assert report.training_attempts[0] >= 1
            # retries reset only the FPGA, never the whole system
            assert card.fsi_slave.fpga_resets == report.training_attempts[0] - 1
        else:
            assert report.deconfigured_channels == [0]

    def test_hopeless_training_deconfigures_channel(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(2))
        fsp = ServiceProcessor(sim)
        flow = IplFlow(
            sim, socket, fsp=fsp,
            training=TrainingConfig(phase_lock_probability=0.0, max_phase_attempts=2),
        )
        report = flow.boot([contutto_card(sim, 0)])
        assert not report.booted
        assert report.deconfigured_channels == [0]
        assert fsp.is_deconfigured("slot0")


class TestMixedConfigurations:
    def test_one_contutto_six_cdimm(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(4))
        flow = IplFlow(sim, socket)
        cards = [contutto_card(sim, 0, devices=[
            DdrDram(4 * GIB, name=f"ctd{i}") for i in range(2)
        ])] + [centaur_card(sim, slot) for slot in range(2, 8)]
        report = flow.boot(cards)
        assert sorted(report.trained_channels) == [0, 2, 3, 4, 5, 6, 7]
        # DRAM from all cards forms one contiguous block
        assert socket.memory_map.dram_is_contiguous_from_zero
        assert socket.memory_map.dram_bytes == 8 * GIB + 6 * 4 * GIB

    def test_two_contutto_four_cdimm(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(4))
        flow = IplFlow(sim, socket)
        cards = [contutto_card(sim, 0), contutto_card(sim, 2)] + [
            centaur_card(sim, slot) for slot in range(4, 8)
        ]
        report = flow.boot(cards)
        assert len(report.trained_channels) == 6

    def test_mram_contutto_placed_at_top_of_map(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(4))
        flow = IplFlow(sim, socket)
        mram_devices = [SttMram(256 * MIB, name=f"m{i}") for i in range(2)]
        cards = [
            centaur_card(sim, 2),
            contutto_card(sim, 0, devices=mram_devices),
        ]
        report = flow.boot(cards)
        assert len(report.trained_channels) == 2
        nvm = socket.memory_map.nvm_regions()
        assert len(nvm) == 1
        assert nvm[0].memory_type == "mram"
        assert nvm[0].os_size == 512 * MIB
        assert nvm[0].hw_size == 4 * GIB  # the firmware "lie"
        assert nvm[0].contents_preserved

    def test_functional_access_after_boot(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(4))
        flow = IplFlow(sim, socket)
        flow.boot([centaur_card(sim, 2), contutto_card(sim, 0)])
        payload = bytes([0x5A] * 128)
        sim.run_until_signal(socket.write_line(0, payload))
        data = sim.run_until_signal(socket.read_line(0))
        assert data == payload
