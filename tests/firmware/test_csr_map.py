"""Tests for the FPGA CSR map and the software knob path."""

import pytest

from repro import CardSpec, ContuttoSystem
from repro.errors import ConfigurationError
from repro.firmware import (
    CONTUTTO_DESIGN_ID,
    ConTuttoFsiSlave,
    ENGINES_BUSY_CSR,
    FLUSHES_CSR,
    ID_CSR,
    KNOB_CSR,
    STATUS_CSR,
    build_contutto_csrs,
    read_latency_knob,
    set_latency_knob,
)
from repro.fpga import ConTuttoBuffer
from repro.memory import DdrDram
from repro.sim import Simulator
from repro.units import GIB, MIB


def make_buffer(sim):
    return ConTuttoBuffer(
        sim, [DdrDram(64 * MIB, refresh_enabled=False) for _ in range(2)]
    )


class TestCsrMap:
    def test_id_register(self):
        sim = Simulator()
        csr = build_contutto_csrs(make_buffer(sim))
        assert csr.read(ID_CSR) == CONTUTTO_DESIGN_ID

    def test_knob_write_changes_live_hardware(self):
        sim = Simulator()
        buffer = make_buffer(sim)
        csr = build_contutto_csrs(buffer)
        csr.write(KNOB_CSR, 5)
        assert buffer.knob.position == 5
        assert buffer.knob.delay_ps == 5 * 24_000

    def test_knob_read_reflects_hardware(self):
        sim = Simulator()
        buffer = make_buffer(sim)
        csr = build_contutto_csrs(buffer)
        buffer.knob.set_position(3)
        assert csr.read(KNOB_CSR) == 3

    def test_status_counts_commands(self):
        from repro.dmi import Command, Opcode
        from repro.sim import Signal

        sim = Simulator()
        buffer = make_buffer(sim)
        csr = build_contutto_csrs(buffer)
        done = Signal("r")
        buffer.handle_command(Command(Opcode.READ, 0, 0), done.trigger)
        sim.run_until_signal(done, timeout_ps=10**12)
        assert csr.read(STATUS_CSR) == 1
        assert csr.read(FLUSHES_CSR) == 0
        assert csr.read(ENGINES_BUSY_CSR) == 0

    def test_indirect_path_via_fsi_slave(self):
        sim = Simulator()
        buffer = make_buffer(sim)
        slave = ConTuttoFsiSlave(sim, build_contutto_csrs(buffer))
        sim.run_until_signal(set_latency_knob(slave, 6), timeout_ps=10**12)
        assert buffer.knob.position == 6
        value = sim.run_until_signal(read_latency_knob(slave), timeout_ps=10**12)
        assert value == 6


class TestSystemKnobPath:
    def test_software_knob_changes_measured_latency(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=1 * GIB)]
        )
        base = system.measure_latency_ns("contutto", samples=12)
        system.set_latency_knob(0, 4)
        slowed = system.measure_latency_ns("contutto", samples=12)
        assert slowed - base == pytest.approx(4 * 24, abs=8)

    def test_knob_on_centaur_slot_rejected(self):
        system = ContuttoSystem.build([CardSpec(slot=0, kind="centaur")])
        with pytest.raises(ConfigurationError):
            system.set_latency_knob(0, 1)
