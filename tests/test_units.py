"""Tests for unit conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    CACHE_LINE_BYTES,
    GHZ,
    GIB,
    KIB,
    MHZ,
    MIB,
    cycles_to_ps,
    gb_per_s,
    ms_to_ps,
    ns_to_ps,
    period_ps,
    ps_to_ms,
    ps_to_ns,
    ps_to_s,
    ps_to_us,
    s_to_ps,
    transfer_ps,
    us_to_ps,
)


class TestTimeConversions:
    def test_ns_roundtrip(self):
        assert ps_to_ns(ns_to_ps(123.456)) == pytest.approx(123.456)

    def test_scales_chain(self):
        assert us_to_ps(1) == 1_000 * ns_to_ps(1)
        assert ms_to_ps(1) == 1_000 * us_to_ps(1)
        assert s_to_ps(1) == 1_000 * ms_to_ps(1)

    def test_ps_converters(self):
        assert ps_to_us(1_000_000) == 1.0
        assert ps_to_ms(1_000_000_000) == 1.0
        assert ps_to_s(10**12) == 1.0

    @given(st.floats(min_value=0, max_value=1e9))
    def test_ns_to_ps_integer(self, ns):
        assert isinstance(ns_to_ps(ns), int)


class TestFrequency:
    def test_known_periods(self):
        assert period_ps(250 * MHZ) == 4_000
        assert period_ps(8 * GHZ) == 125
        assert period_ps(2 * GHZ) == 500

    def test_cycles(self):
        assert cycles_to_ps(6, 250 * MHZ) == 24_000

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            period_ps(0)


class TestBandwidth:
    def test_gb_per_s(self):
        # 1e9 bytes in 1 s = 1 GB/s
        assert gb_per_s(10**9, 10**12) == pytest.approx(1.0)

    def test_transfer_ps(self):
        # 3.2 GB/s moving 3.2e9 bytes takes 1 s
        assert transfer_ps(3_200_000_000, 3.2) == 10**12

    def test_transfer_gb_roundtrip(self):
        nbytes = 12_345_678
        duration = transfer_ps(nbytes, 5.0)
        assert gb_per_s(nbytes, duration) == pytest.approx(5.0, rel=1e-6)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            gb_per_s(1, 0)
        with pytest.raises(ValueError):
            transfer_ps(1, 0)


class TestSizes:
    def test_binary_scales(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_cache_line_is_128(self):
        assert CACHE_LINE_BYTES == 128  # POWER8 / DMI operation granularity
