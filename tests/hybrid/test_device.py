"""TieredMemory unit behaviour: placement, heat, migration, integrity.

The load-bearing property is that migration moves *real bytes*: the
tiered layer only translates logical pages to tier frames, so a
promotion that left data behind (or swapped the mapping without the
payload) shows up here as a read-back mismatch, not as a latency glitch.
"""

import pytest

from repro.errors import ConfigurationError
from repro.hybrid import TieredConfig, TieredMemory, TieringSpec, build_tiered
from repro.hybrid.device import FAST, SLOW
from repro.hybrid.policy import POLICIES, make_policy
from repro.memory import DdrDram, SttMram

PAGE = 256


def make_tiered(fast_pages=2, slow_pages=4, policy="clock", **knobs):
    config = TieredConfig(page_bytes=PAGE, **knobs)
    return TieredMemory(
        DdrDram(fast_pages * PAGE, name="t.fast"),
        SttMram(slow_pages * PAGE, name="t.slow"),
        make_policy(policy),
        config,
        name="t",
    )


class TestColdStartPlacement:
    def test_low_pages_start_slow_high_pages_fast(self):
        dev = make_tiered(fast_pages=2, slow_pages=4)
        assert dev.pages == 6 and dev.fast_frames == 2
        assert [dev.tier_of(p) for p in range(6)] == [SLOW] * 4 + [FAST] * 2

    def test_capacity_is_sum_of_tiers(self):
        dev = make_tiered(fast_pages=2, slow_pages=4)
        assert dev.capacity_bytes == 6 * PAGE


class TestDataIntegrity:
    def _fill(self, dev):
        patterns = {}
        for page in range(dev.pages):
            data = bytes([page + 1]) * PAGE
            dev.write(page * PAGE, data, now_ps=0)
            patterns[page] = data
        return patterns

    def test_promotion_swap_moves_real_bytes(self):
        dev = make_tiered(policy="clock", promote_threshold=2,
                          epoch_ps=10**15)
        patterns = self._fill(dev)
        assert dev.tier_of(0) == SLOW
        t = 0
        while dev.tier_of(0) == SLOW:
            _, t = dev.read(0, PAGE, t)
        assert dev.promotions >= 1 and dev.demotions >= 1
        assert dev.migrated_bytes == dev.promotions * 2 * PAGE
        # every page — promoted, demoted victim, bystanders — reads back
        for page, expected in patterns.items():
            data, t = dev.read(page * PAGE, PAGE, t)
            assert data == expected, f"page {page} corrupted by migration"

    def test_cross_page_access_is_chunked_and_consistent(self):
        dev = make_tiered(policy="static")
        payload = bytes(range(256)) * 2  # spans two 256 B pages
        t = dev.write(PAGE // 2, payload, now_ps=0)
        data, _ = dev.read(PAGE // 2, len(payload), t)
        assert data == payload


class TestHeatAndDecay:
    def test_threshold_accesses_promote_under_clock(self):
        dev = make_tiered(policy="clock", promote_threshold=3,
                          epoch_ps=10**15)
        t = 0
        for _ in range(3):
            _, t = dev.read(0, 64, t)
        assert dev.tier_of(0) == FAST
        assert dev.promotions == 1

    def test_decayed_heat_does_not_promote(self):
        # 3 quick touches, then a 4th far beyond the epoch horizon: the
        # decay halves the counter to zero first, so no promotion
        epoch = 1_000_000
        dev = make_tiered(policy="clock", promote_threshold=4,
                          epoch_ps=epoch)
        t = 0
        for _ in range(3):
            _, t = dev.read(0, 64, t)
        assert dev.heat(0) == 3
        dev.read(0, 64, 40 * epoch)
        assert dev.tier_of(0) == SLOW and dev.promotions == 0
        assert dev.heat(0) == 1  # the post-decay bump

    def test_hot_slow_gauge_tracks_threshold_and_decay(self):
        epoch = 1_000_000
        dev = make_tiered(policy="static", promote_threshold=2,
                          epoch_ps=epoch)
        t = 0
        for _ in range(2):
            _, t = dev.read(0, 64, t)
        assert dev.hot_slow_pages == 1
        # static never migrates; the page cools off instead
        dev.read(PAGE, 64, 50 * epoch)
        assert dev.hot_slow_pages == 0

    def test_promotion_moves_page_out_of_hot_slow_set(self):
        dev = make_tiered(policy="clock", promote_threshold=2,
                          epoch_ps=10**15)
        t = 0
        for _ in range(2):
            _, t = dev.read(0, 64, t)
        assert dev.tier_of(0) == FAST
        assert dev.hot_slow_pages == 0


class TestClockVictim:
    def test_second_chance_clears_ref_bits_before_evicting(self):
        dev = make_tiered(fast_pages=3, slow_pages=3)
        dev._ref[:] = bytes([1, 1, 0])
        assert dev._clock_victim() == 2
        # the sweep cleared the referenced frames it passed
        assert bytes(dev._ref[:2]) == bytes([0, 0])

    def test_all_referenced_falls_back_to_hand(self):
        dev = make_tiered(fast_pages=3, slow_pages=3)
        dev._ref[:] = bytes([1, 1, 1])
        victim = dev._clock_victim()
        assert 0 <= victim < 3


class TestBudgetPolicy:
    def test_exhausted_budget_stalls_instead_of_promoting(self):
        # allowance below one swap's cost: every wanted promotion stalls
        dev = make_tiered(policy="budget", promote_threshold=2,
                          epoch_ps=10**15, migrate_budget_bytes=PAGE)
        t = 0
        for _ in range(4):
            _, t = dev.read(0, 64, t)
        assert dev.promotions == 0
        assert dev.migration_stalls > 0
        assert dev.tier_of(0) == SLOW

    def test_budget_refills_each_epoch(self):
        epoch = 1_000_000
        dev = make_tiered(policy="budget", promote_threshold=1,
                          epoch_ps=epoch, migrate_budget_bytes=2 * PAGE)
        dev.read(0, 64, 0)            # first touch promotes (budget: 1 swap)
        assert dev.promotions == 1
        dev.read(PAGE, 64, 1)         # same epoch: budget spent, stalls
        assert dev.promotions == 1 and dev.migration_stalls == 1
        dev.read(PAGE, 64, 2 * epoch)  # next epoch: refilled
        assert dev.promotions == 2


class TestMigrationFreeze:
    def test_frozen_device_stalls_and_unfreeze_resumes(self):
        dev = make_tiered(policy="clock", promote_threshold=1,
                          epoch_ps=10**15)
        dev.freeze_migration()
        _, t = dev.read(0, 64, 0)
        assert dev.tier_of(0) == SLOW
        assert dev.migration_stalls == 1
        dev.unfreeze_migration()
        dev.read(0, 64, t)
        assert dev.tier_of(0) == FAST


class TestPower:
    def test_power_cycles_propagate_to_both_tiers(self):
        dev = make_tiered()
        dev.power_off()
        assert not dev.powered
        assert not dev.fast.powered and not dev.slow.powered
        dev.power_on()
        assert dev.powered and dev.fast.powered and dev.slow.powered

    def test_tiered_device_is_volatile(self):
        # the hot set lives in DRAM, so the composed device must never
        # advertise non-volatility (it would map into the NVM window)
        assert TieredMemory.non_volatile is False


class TestValidation:
    def test_page_bytes_must_be_multiple_of_128(self):
        with pytest.raises(ConfigurationError):
            TieredConfig(page_bytes=100)

    @pytest.mark.parametrize("field, value", [
        ("epoch_ps", 0),
        ("promote_threshold", 0),
        ("migrate_budget_bytes", -1),
    ])
    def test_bad_config_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            TieredConfig(**{field: value})

    def test_tier_capacity_must_be_page_aligned(self):
        with pytest.raises(ConfigurationError):
            TieredMemory(
                DdrDram(PAGE + 128), SttMram(4 * PAGE),
                make_policy("static"), TieredConfig(page_bytes=PAGE),
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("lru")

    def test_policy_registry_names_match_classes(self):
        assert set(POLICIES) == {"static", "clock", "budget"}
        for name, cls in POLICIES.items():
            assert cls.name == name


class TestBuildTiered:
    def test_split_respects_fast_fraction(self):
        dev = build_tiered(16 * 4096, "card", TieringSpec(fast_fraction=0.25))
        assert dev.fast_frames == 4
        assert dev.pages == 16

    def test_both_tiers_keep_at_least_one_page(self):
        lo = build_tiered(8 * 4096, "card", TieringSpec(fast_fraction=0.01))
        hi = build_tiered(8 * 4096, "card", TieringSpec(fast_fraction=0.99))
        assert lo.fast_frames == 1
        assert hi.fast_frames == 7

    def test_slow_memory_selects_technology(self):
        mram = build_tiered(8 * 4096, "c", TieringSpec(slow_memory="mram"))
        nvd = build_tiered(8 * 4096, "c", TieringSpec(slow_memory="nvdimm"))
        assert mram.slow.technology == "mram"
        assert nvd.slow.technology == "nvdimm"

    @pytest.mark.parametrize("kwargs", [
        {"fast_fraction": 0.0},
        {"fast_fraction": 1.0},
        {"slow_memory": "flash"},
        {"policy": "lru"},
    ])
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TieringSpec(**kwargs)

    def test_unaligned_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tiered(4096 + 1, "card", TieringSpec())

    def test_single_page_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tiered(4096, "card", TieringSpec())
