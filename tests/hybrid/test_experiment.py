"""The tiered_replay experiment end to end: results, attribution, faults.

Covers the acceptance gates of the hybrid subsystem: the policy matrix
produces sane rows deterministically, journeys through a tiered card
tile with zero residual (``tier.*`` spans nested under
``memory.service``), and the ``hybrid.migration_stall`` injector turns
would-be promotions into counted stalls.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.hybrid.experiments import run_tiered_replay
from repro.telemetry import LatencyBreakdown, TraceSession
from repro.telemetry.attribution import journey_record

COLS = {
    name: i for i, name in enumerate(
        ["Policy", "Workload", "Ops", "Fast hits", "Slow hits", "Hit rate",
         "Promotions", "Stalls", "Migrated KiB", "Mean (ns)", "P99 (ns)",
         "Errors"]
    )
}


def cell(table, name):
    return table.rows[0][COLS[name]]


class TestTieredReplayExperiment:
    def test_row_shape_and_zero_errors(self):
        table = run_tiered_replay(policy="clock", workload="kv", ops=64)
        assert list(COLS) == table.columns
        assert cell(table, "Ops") == 64
        assert cell(table, "Errors") == 0
        assert cell(table, "Fast hits") + cell(table, "Slow hits") >= 64

    def test_clock_migrates_static_does_not(self):
        static = run_tiered_replay(policy="static", workload="kv", ops=64)
        clock = run_tiered_replay(policy="clock", workload="kv", ops=64)
        assert cell(static, "Promotions") == 0
        assert cell(clock, "Promotions") > 0

    def test_budget_stalls_promotions_clock_would_run(self):
        budget = run_tiered_replay(policy="budget", workload="kv", ops=96)
        assert cell(budget, "Stalls") > 0

    def test_same_seed_reproduces_the_row(self):
        a = run_tiered_replay(policy="clock", workload="graph", ops=48, seed=5)
        b = run_tiered_replay(policy="clock", workload="graph", ops=48, seed=5)
        assert a.rows == b.rows

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tiered_replay(policy="lru")

    def test_too_few_ops_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tiered_replay(ops=1)


class TestTieredAttribution:
    def _breakdown(self, policy, workload="kv"):
        with TraceSession("t", max_events=0) as session:
            run_tiered_replay(policy=policy, workload=workload, ops=64)
            b = LatencyBreakdown()
            b.add_records(
                journey_record(j) for j in session.journeys.completed
            )
        return b

    def test_tier_stages_tile_with_zero_residual(self):
        b = self._breakdown("clock")
        assert b.check() == []
        stages = b.stages("tiered:clock:kv")
        for stage in ("tier.fast", "tier.slow", "tier.migrate"):
            assert stage in stages, stage

    def test_static_policy_records_no_migrate_stage(self):
        b = self._breakdown("static")
        assert b.check() == []
        assert "tier.migrate" not in b.stages("tiered:static:kv")


class TestMigrationStallInjector:
    def _plan(self, duration_ps):
        return json.dumps({
            "name": "stall",
            "faults": [{
                "injector": "hybrid.migration_stall", "schedule": "once",
                "at_ps": 0, "duration_ps": duration_ps,
            }],
        })

    def test_window_over_whole_replay_freezes_all_promotions(self):
        table = run_tiered_replay(
            policy="clock", workload="kv", ops=64,
            faults=self._plan(10**14),
        )
        assert cell(table, "Promotions") == 0
        assert cell(table, "Stalls") > 0
        assert cell(table, "Errors") == 0

    def test_stalls_exceed_unfaulted_baseline(self):
        clean = run_tiered_replay(policy="clock", workload="kv", ops=64)
        stalled = run_tiered_replay(
            policy="clock", workload="kv", ops=64, faults=self._plan(10**14)
        )
        assert cell(stalled, "Stalls") > cell(clean, "Stalls")
