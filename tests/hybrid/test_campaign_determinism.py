"""Tiered-replay campaign determinism at any worker count.

The hybrid acceptance gate: sweeping policy x workload as campaign axes
must produce byte-identical merged artifacts whether the cells run
serially or across a process pool — worker count, scheduling order, and
completion order cannot leak into attribution.jsonl or the result
tables.
"""

from repro.campaign import CampaignRunner, ScenarioMatrix
from repro.telemetry import read_jsonl


def tiered_matrix():
    matrix = ScenarioMatrix(base_seed=11)
    matrix.add(
        "tiered_replay",
        policy=["static", "clock"],
        workload=["kv", "graph"],
        ops=[48],
    )
    return matrix


class TestTieredCampaign:
    def test_axes_expand_to_the_policy_workload_grid(self):
        jobs = tiered_matrix().expand()
        cells = {(j.kwargs_dict["policy"], j.kwargs_dict["workload"])
                 for j in jobs}
        assert len(jobs) == 4 and len(cells) == 4

    def test_parallel_artifacts_match_serial_byte_for_byte(self, tmp_path):
        jobs = tiered_matrix().expand()
        serial = CampaignRunner(jobs, workers=1).run()
        parallel = CampaignRunner(jobs, workers=2).run()
        assert [r.rows for r in serial.tables()] == \
            [r.rows for r in parallel.tables()]
        a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        serial.write_attribution(str(a))
        parallel.write_attribution(str(b))
        assert a.read_bytes() == b.read_bytes()

        records = read_jsonl(str(a))
        scenarios = {r["scenario"] for r in records
                     if r["kind"] == "end_to_end"}
        assert scenarios == {
            "tiered:static:kv", "tiered:static:graph",
            "tiered:clock:kv", "tiered:clock:graph",
        }
        tier_stages = {r["stage"] for r in records
                       if r["kind"] == "stage_summary"
                       and r["stage"].startswith("tier.")}
        assert {"tier.fast", "tier.slow", "tier.migrate"} <= tier_stages

    def test_tier_counters_land_in_the_merged_snapshot(self, tmp_path):
        report = CampaignRunner(tiered_matrix().expand(), workers=2).run()
        path = tmp_path / "metrics.jsonl"
        report.write_telemetry(str(path), params={"jobs": 2})
        snapshots = [r for r in read_jsonl(str(path))
                     if r["kind"] == "snapshot"]
        merged = snapshots[-1]["metrics"]
        assert snapshots[-1]["label"] == "merged"
        assert merged["tier.promotions"] > 0
        assert merged["tier.migrated_bytes"] == \
            merged["tier.promotions"] * 2 * 4096
        assert any(k.startswith("occupancy.tier.") for k in merged)
