"""Tests for the Centaur eDRAM buffer cache."""

import pytest

from repro.buffer import BufferCache
from repro.errors import ConfigurationError
from repro.units import CACHE_LINE_BYTES, MIB


def small_cache(ways=2, sets=4, prefetch=False):
    capacity = ways * sets * CACHE_LINE_BYTES
    return BufferCache(capacity, ways=ways, prefetch_next_line=prefetch)


def line(fill):
    return bytes([fill] * CACHE_LINE_BYTES)


class TestLookupFill:
    def test_cold_miss(self):
        cache = small_cache()
        assert cache.lookup(0) is None
        assert cache.misses == 1

    def test_fill_then_hit(self):
        cache = small_cache()
        cache.fill(0, line(1))
        assert cache.lookup(0) == line(1)
        assert cache.hits == 1

    def test_different_offsets_same_line(self):
        cache = small_cache()
        cache.fill(0, line(2))
        assert cache.lookup(64) == line(2)  # within the same 128B line

    def test_wrong_size_fill_rejected(self):
        with pytest.raises(ConfigurationError):
            small_cache().fill(0, b"short")

    def test_capacity_shape_validated(self):
        with pytest.raises(ConfigurationError):
            BufferCache(capacity_bytes=1000, ways=3)


class TestEviction:
    def test_lru_victim_evicted(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0 * CACHE_LINE_BYTES, line(0))
        cache.fill(1 * CACHE_LINE_BYTES, line(1))
        cache.lookup(0)  # promote line 0
        cache.fill(2 * CACHE_LINE_BYTES, line(2))  # evicts line 1
        assert cache.lookup(0) is not None
        assert cache.lookup(1 * CACHE_LINE_BYTES) is None

    def test_clean_eviction_returns_none(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0, line(0), dirty=False)
        victim = cache.fill(CACHE_LINE_BYTES, line(1))
        assert victim is None

    def test_dirty_eviction_returns_victim(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0, line(7), dirty=True)
        victim = cache.fill(CACHE_LINE_BYTES, line(1))
        assert victim == (0, line(7))
        assert cache.writebacks == 1

    def test_victim_address_reconstruction(self):
        cache = small_cache(ways=1, sets=4)
        addr = 5 * CACHE_LINE_BYTES  # set 1, tag 1
        cache.fill(addr, line(9), dirty=True)
        conflicting = addr + 4 * CACHE_LINE_BYTES  # same set, next tag
        victim = cache.fill(conflicting, line(1))
        assert victim == (addr, line(9))


class TestWrites:
    def test_update_hit_marks_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0, line(0))
        assert cache.update(0, line(5))
        victim = cache.fill(CACHE_LINE_BYTES, line(1))
        assert victim == (0, line(5))

    def test_update_miss_returns_false(self):
        assert not small_cache().update(0, line(1))

    def test_drain_dirty(self):
        cache = small_cache(ways=2, sets=2)
        cache.fill(0, line(1), dirty=True)
        cache.fill(CACHE_LINE_BYTES, line(2), dirty=False)
        drained = cache.drain_dirty()
        assert drained == [(0, line(1))]
        assert cache.drain_dirty() == []  # idempotent


class TestPrefetch:
    def test_next_line_candidate(self):
        cache = small_cache(prefetch=True)
        assert cache.next_line_candidate(0) == CACHE_LINE_BYTES

    def test_no_candidate_when_disabled(self):
        cache = small_cache(prefetch=False)
        assert cache.next_line_candidate(0) is None

    def test_no_candidate_when_already_cached(self):
        cache = small_cache(prefetch=True)
        cache.fill(CACHE_LINE_BYTES, line(1))
        assert cache.next_line_candidate(0) is None

    def test_prefetch_hit_accounting(self):
        cache = small_cache(prefetch=True)
        cache.fill(CACHE_LINE_BYTES, line(1))
        cache.note_prefetch(CACHE_LINE_BYTES)
        cache.lookup(CACHE_LINE_BYTES)
        assert cache.prefetches_issued == 1
        assert cache.prefetch_hits == 1

    def test_hit_rate(self):
        cache = small_cache()
        cache.fill(0, line(0))
        cache.lookup(0)
        cache.lookup(CACHE_LINE_BYTES)  # miss
        assert cache.hit_rate == pytest.approx(0.5)

    def test_default_geometry_is_16mb(self):
        cache = BufferCache()
        assert cache.capacity_bytes == 16 * MIB
        assert cache.ways == 16


class TestLinesHeld:
    """``lines_held`` is maintained incrementally for the occupancy
    sampler; it must track the true resident count through every
    mutating operation."""

    def _true_count(self, cache):
        return sum(len(s) for s in cache._sets)

    def test_counts_fills_and_evictions(self):
        cache = small_cache(ways=2, sets=4)
        assert cache.lines_held == 0
        for i in range(20):  # overflow several sets to force evictions
            cache.fill(i * CACHE_LINE_BYTES, line(i), dirty=bool(i % 2))
            assert cache.lines_held == self._true_count(cache)
        assert cache.lines_held == 8  # full: 2 ways x 4 sets

    def test_update_and_drain_leave_count_unchanged(self):
        cache = small_cache(ways=2, sets=4)
        cache.fill(0, line(1))
        cache.fill(CACHE_LINE_BYTES, line(2), dirty=True)
        cache.update(0, line(3))
        assert cache.lines_held == self._true_count(cache) == 2
        cache.drain_dirty()  # flushes dirty data, lines stay resident
        assert cache.lines_held == self._true_count(cache) == 2

    def test_refill_of_resident_line_not_double_counted(self):
        cache = small_cache()
        cache.fill(0, line(1))
        cache.fill(0, line(2))
        assert cache.lines_held == self._true_count(cache) == 1
