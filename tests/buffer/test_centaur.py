"""Tests for the Centaur ASIC buffer model."""

import pytest

from repro.buffer import (
    Centaur,
    CentaurConfig,
    CONSERVATIVE,
    DEFAULT,
    LATENCY_OPTIMIZED,
    RELAXED,
    TABLE2_CONFIGS,
)
from repro.dmi import Command, Opcode
from repro.errors import ConfigurationError, ProtocolError
from repro.memory import DdrDram
from repro.sim import Signal, Simulator
from repro.units import GIB, MIB


def make_centaur(sim, config=DEFAULT, ports=4, capacity=256 * MIB):
    devices = [DdrDram(capacity, name=f"d{i}", refresh_enabled=False) for i in range(ports)]
    return Centaur(sim, devices, config)


def run_command(sim, centaur, command):
    done = Signal("resp")
    centaur.handle_command(command, done.trigger)
    return sim.run_until_signal(done, timeout_ps=10**10)


class TestBasicOps:
    def test_write_read_roundtrip(self):
        sim = Simulator()
        centaur = make_centaur(sim)
        payload = bytes(range(128))
        run_command(sim, centaur, Command(Opcode.WRITE, 0x1000, 0, payload))
        resp = run_command(sim, centaur, Command(Opcode.READ, 0x1000, 1))
        assert resp.data == payload

    def test_partial_write(self):
        sim = Simulator()
        centaur = make_centaur(sim)
        run_command(sim, centaur, Command(Opcode.WRITE, 0, 0, bytes([0xFF] * 128)))
        mask = bytes([1] * 64 + [0] * 64)
        run_command(
            sim, centaur,
            Command(Opcode.PARTIAL_WRITE, 0, 1, bytes([0x11] * 128), mask),
        )
        resp = run_command(sim, centaur, Command(Opcode.READ, 0, 2))
        assert resp.data == bytes([0x11] * 64 + [0xFF] * 64)

    def test_lines_interleave_across_ports(self):
        sim = Simulator()
        centaur = make_centaur(sim, config=CentaurConfig(cache_enabled=False))
        for i in range(8):
            run_command(sim, centaur, Command(Opcode.WRITE, 128 * i, i, bytes([i] * 128)))
        writes = [port.writes_submitted for port in centaur.ports]
        assert writes == [2, 2, 2, 2]

    def test_capacity_sums_ports(self):
        sim = Simulator()
        centaur = make_centaur(sim, capacity=256 * MIB)
        assert centaur.capacity_bytes == 4 * 256 * MIB

    def test_extension_opcodes_rejected(self):
        sim = Simulator()
        centaur = make_centaur(sim)
        assert not centaur.supports(Opcode.FLUSH)
        with pytest.raises(ProtocolError):
            centaur.handle_command(Command(Opcode.FLUSH, 0, 0), lambda r: None)

    def test_port_count_validated(self):
        sim = Simulator()
        devices = [DdrDram(1 * MIB) for _ in range(5)]
        with pytest.raises(ConfigurationError):
            Centaur(sim, devices)


class TestCacheBehaviour:
    def test_second_read_hits_cache(self):
        sim = Simulator()
        centaur = make_centaur(sim)
        run_command(sim, centaur, Command(Opcode.READ, 0x4000, 0))
        t0 = sim.now_ps
        run_command(sim, centaur, Command(Opcode.READ, 0x4000, 1))
        hit_latency = sim.now_ps - t0
        assert centaur.cache.hits >= 1
        # hit path: pipeline + cache_hit + response only
        expected = (
            centaur.config.pipeline_ps
            + centaur.config.extra_delay_ps
            + centaur.config.cache_hit_ps
            + centaur.config.response_ps
        )
        assert hit_latency == expected

    def test_cache_hit_faster_than_miss(self):
        sim = Simulator()
        centaur = make_centaur(sim)
        t0 = sim.now_ps
        run_command(sim, centaur, Command(Opcode.READ, 0x8000, 0))
        miss_latency = sim.now_ps - t0
        t0 = sim.now_ps
        run_command(sim, centaur, Command(Opcode.READ, 0x8000, 1))
        hit_latency = sim.now_ps - t0
        assert hit_latency < miss_latency

    def test_prefetch_fetches_next_line(self):
        sim = Simulator()
        centaur = make_centaur(sim)
        run_command(sim, centaur, Command(Opcode.READ, 0, 0))
        sim.run()  # let the prefetch land
        assert centaur.cache.prefetches_issued == 1
        t0 = sim.now_ps
        run_command(sim, centaur, Command(Opcode.READ, 128, 1))
        assert centaur.cache.prefetch_hits == 1

    def test_cache_disabled_config(self):
        sim = Simulator()
        centaur = make_centaur(sim, config=CentaurConfig(cache_enabled=False))
        assert centaur.cache is None
        run_command(sim, centaur, Command(Opcode.READ, 0, 0))

    def test_write_then_read_through_cache_consistent(self):
        sim = Simulator()
        centaur = make_centaur(sim)
        run_command(sim, centaur, Command(Opcode.READ, 0x2000, 0))      # fill
        run_command(sim, centaur, Command(Opcode.WRITE, 0x2000, 1, bytes([9] * 128)))
        resp = run_command(sim, centaur, Command(Opcode.READ, 0x2000, 2))
        assert resp.data == bytes([9] * 128)


class TestLatencyConfigs:
    def test_table2_configs_ordered_by_delay(self):
        delays = [cfg.extra_delay_ps for cfg in TABLE2_CONFIGS]
        assert delays == sorted(delays)
        assert TABLE2_CONFIGS[0] is LATENCY_OPTIMIZED
        assert TABLE2_CONFIGS[-1] is RELAXED

    def test_extra_delay_slows_reads(self):
        def read_latency(config):
            sim = Simulator()
            centaur = make_centaur(sim, config=config)
            t0 = sim.now_ps
            run_command(sim, centaur, Command(Opcode.READ, 0x8000, 0))
            return sim.now_ps - t0

        assert read_latency(RELAXED) > read_latency(CONSERVATIVE) > read_latency(DEFAULT)

    def test_delay_delta_matches_config(self):
        def read_latency(config):
            sim = Simulator()
            centaur = make_centaur(sim, config=config)
            t0 = sim.now_ps
            run_command(sim, centaur, Command(Opcode.READ, 0x8000, 0))
            return sim.now_ps - t0

        delta = read_latency(RELAXED) - read_latency(LATENCY_OPTIMIZED)
        assert delta == RELAXED.extra_delay_ps - LATENCY_OPTIMIZED.extra_delay_ps

    def test_service_latency_recorded(self):
        sim = Simulator()
        centaur = make_centaur(sim)
        run_command(sim, centaur, Command(Opcode.READ, 0, 0))
        assert centaur.stats.latency("service").count == 1
