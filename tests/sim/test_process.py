"""Tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Process, Signal, Simulator, all_of


class TestProcess:
    def test_sleep_and_return(self):
        sim = Simulator()

        def worker():
            yield 1_000
            yield 2_000
            return sim.now_ps

        proc = Process(sim, worker())
        sim.run()
        assert proc.result == 3_000

    def test_result_before_finish_raises(self):
        sim = Simulator()

        def worker():
            yield 1_000

        proc = Process(sim, worker())
        with pytest.raises(SimulationError):
            _ = proc.result

    def test_wait_on_signal_receives_value(self):
        sim = Simulator()
        sig = Signal("data")

        def worker():
            value = yield sig
            return value

        proc = Process(sim, worker())
        sim.trigger_after(500, sig, "payload")
        sim.run()
        assert proc.result == "payload"

    def test_join_child_process(self):
        sim = Simulator()

        def child():
            yield 700
            return "child-result"

        def parent():
            result = yield Process(sim, child())
            return result

        proc = Process(sim, parent())
        sim.run()
        assert proc.result == "child-result"
        assert sim.now_ps == 700

    def test_negative_delay_fails_process(self):
        sim = Simulator()

        def worker():
            yield -5

        Process(sim, worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_unsupported_yield_fails_process(self):
        sim = Simulator()

        def worker():
            yield "nonsense"

        Process(sim, worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_propagates_at_run(self):
        sim = Simulator()

        def worker():
            yield 10
            raise ValueError("model bug")

        Process(sim, worker())
        with pytest.raises(ValueError, match="model bug"):
            sim.run()

    def test_done_signal_triggers(self):
        sim = Simulator()

        def worker():
            yield 10
            return 99

        proc = Process(sim, worker())
        seen = []
        proc.done.add_waiter(seen.append)
        sim.run()
        assert seen == [99]

    def test_processes_interleave(self):
        sim = Simulator()
        order = []

        def worker(name, delay):
            yield delay
            order.append(name)
            yield delay
            order.append(name)

        Process(sim, worker("fast", 10))
        Process(sim, worker("slow", 25))
        sim.run()
        assert order == ["fast", "fast", "slow", "slow"]


class TestAllOf:
    def test_gathers_results_in_order(self):
        sim = Simulator()

        def worker(delay, value):
            yield delay
            return value

        procs = [Process(sim, worker(d, v)) for d, v in [(300, "a"), (100, "b"), (200, "c")]]
        gathered = all_of(sim, procs)
        sim.run()
        assert gathered.result == ["a", "b", "c"]
        assert sim.now_ps == 300

    def test_empty_list(self):
        sim = Simulator()
        gathered = all_of(sim, [])
        sim.run()
        assert gathered.result == []
