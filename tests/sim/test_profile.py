"""Kernel profiler: per-event-type attribution, nesting, determinism."""

import json

import pytest

from repro.errors import SimulationError
from repro.sim import KernelProfiler, Signal, Simulator, profiled, write_profile
from repro.sim import profile as profile_mod


def _ping_pong(sim, rounds):
    state = {"n": 0}

    def ping():
        state["n"] += 1
        if state["n"] < rounds:
            sim.call_after(10, pong)

    def pong():
        sim.call_after(10, ping)

    sim.call_after(0, ping)
    return state


class TestKernelProfiler:
    def test_counts_and_keys(self):
        sim = Simulator()
        _ping_pong(sim, 5)
        with profiled() as prof:
            executed = sim.run()
        assert prof.events == executed == 9
        counts = prof.counts_by_key()
        assert list(counts) == sorted(counts)
        assert counts["_ping_pong.<locals>.ping"] == 5
        assert counts["_ping_pong.<locals>.pong"] == 4

    def test_wall_time_accumulates(self):
        sim = Simulator()
        _ping_pong(sim, 3)
        with profiled() as prof:
            sim.run()
        assert prof.total_wall_s > 0
        for row in prof.hotspots():
            assert row["wall_s"] >= 0
            assert 0 <= row["wall_share"] <= 1
        # shares sum to 1 when any time was measured
        assert sum(r["wall_share"] for r in prof.hotspots()) == pytest.approx(1.0)

    def test_counts_deterministic_across_runs(self):
        def run_once():
            sim = Simulator()
            _ping_pong(sim, 7)
            with profiled() as prof:
                sim.run()
            return prof.counts_by_key()

        assert run_once() == run_once()

    def test_simulation_results_unchanged_under_profiler(self):
        def trace(with_prof):
            sim = Simulator()
            order = []
            def a():
                order.append(("a", sim.now_ps))
            def b():
                order.append(("b", sim.now_ps))
            sim.call_after(5, a)
            sim.call_after(5, b)
            sim.call_after(12, a)
            if with_prof:
                with profiled():
                    sim.run()
            else:
                sim.run()
            return order

        assert trace(True) == trace(False)

    def test_run_until_signal_profiled(self):
        sim = Simulator()
        sig = Signal("done")
        sim.trigger_after(100, sig, "value")
        with profiled() as prof:
            assert sim.run_until_signal(sig) == "value"
        assert prof.counts_by_key() == {"Signal.trigger": 1}
        assert prof.runs == 1

    def test_profilers_do_not_nest(self):
        with profiled():
            with pytest.raises(SimulationError):
                profile_mod.install(KernelProfiler())
        # context exit uninstalls even after the failed install
        assert profile_mod.active is None

    def test_uninstall_idempotent(self):
        profile_mod.uninstall()
        profile_mod.uninstall()
        assert profile_mod.active is None

    def test_disabled_by_default(self):
        sim = Simulator()
        _ping_pong(sim, 2)
        assert profile_mod.active is None
        sim.run()  # no profiler installed: nothing to assert but no crash

    def test_callable_instance_key(self):
        class Tick:
            def __init__(self):
                self.n = 0
            def __call__(self):
                self.n += 1

        sim = Simulator()
        tick = Tick()
        sim.call_after(1, tick)
        with profiled() as prof:
            sim.run()
        assert prof.counts_by_key() == {"Tick": 1}
        assert tick.n == 1

    def test_write_profile_artifact(self, tmp_path):
        sim = Simulator()
        _ping_pong(sim, 4)
        with profiled() as prof:
            sim.run()
        path = tmp_path / "kernel_profile.json"
        record = write_profile(str(path), prof, experiment="ping_pong")
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(record))
        assert on_disk["schema"] == "repro.profile/v1"
        assert on_disk["experiment"] == "ping_pong"
        assert on_disk["events"] == 7
        assert on_disk["hotspots"][0]["count"] >= 1

    def test_hotspot_order_breaks_ties_on_key(self):
        prof = KernelProfiler()
        prof.record("b", 0.0)
        prof.record("a", 0.0)
        assert [r["key"] for r in prof.hotspots()] == ["a", "b"]
