"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Signal, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now_ps == 0

    def test_call_after_advances_time(self):
        sim = Simulator()
        seen = []
        sim.call_after(1_000, lambda: seen.append(sim.now_ps))
        sim.run()
        assert seen == [1_000]

    def test_call_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.call_at(5_000, lambda: seen.append(sim.now_ps))
        sim.run()
        assert seen == [5_000]

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_after(300, lambda: order.append("c"))
        sim.call_after(100, lambda: order.append("a"))
        sim.call_after(200, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.call_after(100, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.call_after(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(50, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1, lambda: None)

    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        call = sim.call_after(100, lambda: seen.append("x"))
        call.cancel()
        sim.run()
        assert seen == []

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []
        sim.call_after(10, lambda: sim.call_after(10, lambda: seen.append(sim.now_ps)))
        sim.run()
        assert seen == [20]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.call_after(10, lambda: None)
        assert sim.run() == 5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.call_after(100, lambda: seen.append("early"))
        sim.call_after(10_000, lambda: seen.append("late"))
        sim.run(until_ps=1_000)
        assert seen == ["early"]
        assert sim.now_ps == 1_000

    def test_run_until_then_resume(self):
        sim = Simulator()
        seen = []
        sim.call_after(10_000, lambda: seen.append("late"))
        sim.run(until_ps=1_000)
        sim.run()
        assert seen == ["late"]

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.call_after(1, reschedule)

        sim.call_after(1, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.call_after(10, lambda: None)
        call = sim.call_after(20, lambda: None)
        call.cancel()
        assert sim.pending_events == 1


class TestSignals:
    def test_trigger_wakes_waiter(self):
        sig = Signal("s")
        seen = []
        sig.add_waiter(seen.append)
        sig.trigger(42)
        assert seen == [42]

    def test_waiter_after_trigger_fires_immediately(self):
        sig = Signal("s")
        sig.trigger("v")
        seen = []
        sig.add_waiter(seen.append)
        assert seen == ["v"]

    def test_double_trigger_raises(self):
        sig = Signal("s")
        sig.trigger()
        with pytest.raises(RuntimeError):
            sig.trigger()

    def test_run_until_signal_returns_value(self):
        sim = Simulator()
        sig = Signal("s")
        sim.trigger_after(500, sig, "done")
        assert sim.run_until_signal(sig) == "done"
        assert sim.now_ps == 500

    def test_run_until_signal_deadlock_detected(self):
        sim = Simulator()
        sig = Signal("never")
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_signal(sig)

    def test_run_until_signal_timeout(self):
        sim = Simulator()
        sig = Signal("slow")
        sim.trigger_after(10_000, sig)
        with pytest.raises(SimulationError, match="timeout"):
            sim.run_until_signal(sig, timeout_ps=1_000)
