"""Regression tests for the kernel's timeout/guard edge cases.

These pin three dispatch-loop bugs fixed alongside the tuple-heap
rewrite, plus the cancelled-event semantics every one of the four
dispatch loops (plain, kernel-events traced, profiled, signal-wait)
must share:

* ``run_until_signal``'s deadline check must look past *cancelled* heap
  heads — a stale cancelled entry timestamped before the deadline used
  to let the next live event execute past the timeout;
* ``run()`` / the profiled drain must execute **exactly** ``max_events``
  events before raising, never one more;
* ``run_until_signal`` must honour ``max_events`` at all (a
  self-rescheduling loop that never fires the signal and never passes a
  timeout would otherwise spin forever).
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Signal, Simulator
from repro.sim.profile import profiled
from repro.telemetry import TraceSession


class TestSignalDeadline:
    def test_deadline_ignores_cancelled_head(self):
        # a cancelled event *inside* the deadline must not mask a live
        # event *beyond* it
        sim = Simulator()
        sig = Signal("late")
        sim.call_after(500, lambda: None).cancel()
        sim.trigger_after(5_000, sig)
        with pytest.raises(SimulationError, match="timeout"):
            sim.run_until_signal(sig, timeout_ps=1_000)
        assert not sig.triggered  # the live event never executed

    def test_live_event_inside_deadline_still_runs(self):
        sim = Simulator()
        sig = Signal("ok")
        sim.call_after(500, lambda: None).cancel()
        sim.trigger_after(800, sig, "v")
        assert sim.run_until_signal(sig, timeout_ps=1_000) == "v"

    def test_signal_max_events_guard(self):
        sim = Simulator()
        sig = Signal("never")
        executed = []

        def reschedule():
            executed.append(sim.now_ps)
            sim.call_after(1, reschedule)

        sim.call_after(1, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until_signal(sig, max_events=50)
        assert len(executed) == 50

    def test_signal_max_events_guard_traced(self):
        sim = Simulator()
        sig = Signal("never")

        def reschedule():
            sim.call_after(1, reschedule)

        sim.call_after(1, reschedule)
        with TraceSession("unit", kernel_events=True):
            with pytest.raises(SimulationError, match="max_events"):
                sim.run_until_signal(sig, max_events=50)


class TestExactMaxEvents:
    def test_run_executes_exactly_max_events(self):
        sim = Simulator()
        executed = []

        def reschedule():
            executed.append(sim.now_ps)
            sim.call_after(1, reschedule)

        sim.call_after(1, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)
        assert len(executed) == 100

    def test_run_at_the_limit_does_not_raise(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.call_after(10 * (i + 1), lambda i=i: seen.append(i))
        assert sim.run(max_events=5) == 5
        assert seen == [0, 1, 2, 3, 4]

    def test_profiled_run_executes_exactly_max_events(self):
        sim = Simulator()
        executed = []

        def reschedule():
            executed.append(sim.now_ps)
            sim.call_after(1, reschedule)

        sim.call_after(1, reschedule)
        with profiled():
            with pytest.raises(SimulationError, match="max_events"):
                sim.run(max_events=100)
        assert len(executed) == 100


class TestCancelledAcrossDispatchLoops:
    """One cancelled + one live event through every dispatch loop."""

    def _schedule(self, sim):
        seen = []
        sim.call_after(100, lambda: seen.append("dead")).cancel()
        sim.call_after(200, lambda: seen.append("live"))
        return seen

    def test_plain_run(self):
        sim = Simulator()
        seen = self._schedule(sim)
        assert sim.run() == 1
        assert seen == ["live"]
        assert sim.pending_events == 0

    def test_traced_run(self):
        sim = Simulator()
        seen = self._schedule(sim)
        with TraceSession("unit", kernel_events=True) as session:
            assert sim.run() == 1
        assert seen == ["live"]
        names = [e.name for e in session.events if e.category == "kernel" and e.ph == "i"]
        assert len(names) == 1  # the cancelled event emits no instant

    def test_profiled_run(self):
        sim = Simulator()
        seen = self._schedule(sim)
        with profiled() as prof:
            assert sim.run() == 1
        assert seen == ["live"]
        assert prof.events == 1  # the cancelled event was never timed

    def test_run_until_signal(self):
        sim = Simulator()
        seen = self._schedule(sim)
        sig = Signal("done")
        sim.trigger_after(300, sig, "v")
        assert sim.run_until_signal(sig) == "v"
        assert seen == ["live"]
        assert sim.pending_events == 0

    def test_run_until_signal_profiled(self):
        sim = Simulator()
        seen = self._schedule(sim)
        sig = Signal("done")
        sim.trigger_after(300, sig)
        with profiled():
            sim.run_until_signal(sig)
        assert seen == ["live"]
