"""Tests for clock domains, stats primitives, and the RNG wrapper."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    BandwidthMeter,
    ClockDomain,
    Counter,
    LatencyRecorder,
    Rng,
    StatsRegistry,
    centaur_core_clock,
    dmi_link_clock,
    fabric_clock,
    nest_clock,
)
from repro.units import GHZ, MHZ


class TestClockDomain:
    def test_fabric_period_is_4ns(self):
        assert fabric_clock().period_ps == 4_000

    def test_dmi_link_period_at_8ghz(self):
        assert dmi_link_clock(8.0).period_ps == 125

    def test_nest_clock_2ghz(self):
        assert nest_clock().period_ps == 500

    def test_centaur_core_clock(self):
        assert centaur_core_clock().period_ps == 417  # 1/2.4GHz rounded

    def test_cycles_roundtrip(self):
        clk = ClockDomain("t", 250 * MHZ)
        assert clk.cycles_to_ps(6) == 24_000
        assert clk.ps_to_cycles(24_000) == 6

    def test_ps_to_cycles_ceil(self):
        clk = ClockDomain("t", 250 * MHZ)
        assert clk.ps_to_cycles_ceil(4_001) == 2
        assert clk.ps_to_cycles_ceil(4_000) == 1

    def test_next_edge(self):
        clk = ClockDomain("t", 1 * GHZ)  # 1000 ps period
        assert clk.next_edge(0) == 0
        assert clk.next_edge(1) == 1_000
        assert clk.next_edge(1_000) == 1_000
        assert clk.next_edge(1_500) == 2_000

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockDomain("bad", 0)


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.count == 5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        c = Counter("x")
        c.add(3)
        c.reset()
        assert c.count == 0


class TestLatencyRecorder:
    def test_mean(self):
        rec = LatencyRecorder("l")
        for sample in (1_000, 2_000, 3_000):
            rec.record(sample)
        assert rec.mean_ps() == 2_000
        assert rec.mean_ns() == 2.0

    def test_percentile(self):
        rec = LatencyRecorder("l")
        for sample in range(1, 101):
            rec.record(sample)
        assert rec.percentile_ps(50) == 50
        assert rec.percentile_ps(99) == 99
        assert rec.percentile_ps(100) == 100

    def test_min_max(self):
        rec = LatencyRecorder("l")
        rec.record(5)
        rec.record(50)
        assert rec.min_ps() == 5
        assert rec.max_ps() == 50

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder("l").mean_ps()

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder("l").record(-1)

    def test_stddev_single_sample_is_zero(self):
        rec = LatencyRecorder("l")
        rec.record(100)
        assert rec.stddev_ps() == 0.0


class TestBandwidthMeter:
    def test_gb_per_s(self):
        meter = BandwidthMeter("b")
        meter.start(0)
        meter.record(1_000, 1_000_000)  # 1000 bytes in 1 us -> 1 GB/s
        assert meter.gb_per_s() == pytest.approx(1.0)

    def test_empty_window_raises(self):
        meter = BandwidthMeter("b")
        meter.start(0)
        with pytest.raises(ValueError):
            meter.gb_per_s()


class TestStatsRegistry:
    def test_counter_reuse(self):
        reg = StatsRegistry()
        reg.counter("reads").add(2)
        reg.counter("reads").add(3)
        assert reg.counter("reads").count == 5

    def test_snapshot(self):
        reg = StatsRegistry()
        reg.counter("ops").add(7)
        reg.latency("cmd").record(2_000)
        snap = reg.snapshot()
        assert snap["count.ops"] == 7
        assert snap["latency_ns.cmd"] == 2.0


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = Rng(42), Rng(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_fork_is_deterministic(self):
        a = Rng(42).fork("lane0")
        b = Rng(42).fork("lane0")
        assert a.random() == b.random()

    def test_fork_different_labels_differ(self):
        root = Rng(42)
        a, b = root.fork("x"), root.fork("y")
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]

    def test_chance_extremes(self):
        rng = Rng(1)
        assert rng.chance(0) is False
        assert rng.chance(1) is True

    def test_chance_probability_rough(self):
        rng = Rng(7)
        hits = sum(rng.chance(0.3) for _ in range(10_000))
        assert 2_700 < hits < 3_300
