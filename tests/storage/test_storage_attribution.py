"""End-to-end journey attribution through the storage stack.

The load-bearing property: the stages a storage journey records tile its
end-to-end latency exactly — ``LatencyBreakdown.check()`` finds no
unattributed residual for FIO over a bare device, nor for GPFS over the
pmem-backed write cache, where the pmem driver decomposes 4 KiB
transfers into driver / line-command stages and the DMI line journeys
link back to their parent via the ``:lines`` lane.
"""

from repro.core.system import CardSpec, ContuttoSystem
from repro.sim import Simulator
from repro.storage import (
    HardDiskDrive,
    NvWriteCache,
    PmemBlockDevice,
    SolidStateDrive,
    WriteCacheConfig,
)
from repro.telemetry import LatencyBreakdown, TraceSession
from repro.telemetry.attribution import journey_record
from repro.units import GIB, MIB
from repro.workloads import FioJob, FioRunner, GpfsJob, GpfsWriter


def breakdown_of(session) -> LatencyBreakdown:
    b = LatencyBreakdown()
    b.add_records(journey_record(j) for j in session.journeys.completed)
    return b


class TestFioAttribution:
    def test_ssd_journeys_have_zero_residual(self):
        with TraceSession("t", max_events=0) as session:
            session.journeys.set_scenario("fio:ssd")
            sim = Simulator()
            ssd = SolidStateDrive(sim, 1 * GIB)
            FioRunner(sim).run(ssd, FioJob(rw="randread", total_ios=16))
            b = breakdown_of(session)
        assert b.check() == []
        assert b.journey_count("fio:ssd") == 16
        assert "storage.service" in b.stages("fio:ssd")

    def test_queue_depth_shows_up_as_storage_queue(self):
        with TraceSession("t", max_events=0) as session:
            session.journeys.set_scenario("fio:ssd")
            sim = Simulator()
            ssd = SolidStateDrive(sim, 1 * GIB)
            # iodepth > channels: IOs wait for an internal flash channel
            FioRunner(sim).run(
                ssd, FioJob(rw="randread", iodepth=16, total_ios=48)
            )
            b = breakdown_of(session)
        assert b.check() == []
        assert "storage.queue" in b.stages("fio:ssd")

    def test_bare_submit_opens_owned_journey(self):
        with TraceSession("t", max_events=0) as session:
            session.journeys.set_scenario("bare")
            sim = Simulator()
            ssd = SolidStateDrive(sim, 1 * GIB)
            sim.run_until_signal(ssd.submit_read(0, 4096))
            completed = list(session.journeys.completed)
        assert [j.op for j in completed] == ["storage.read"]
        assert completed[0].end_ps is not None


class TestGpfsWriteCacheAttribution:
    def _run(self):
        """GPFS over the pmem-logged write cache with a geometry tiny
        enough that the single-threaded writer stalls behind destages."""
        with TraceSession("t", max_events=0) as session:
            session.journeys.set_scenario("gpfs:wcache")
            system = ContuttoSystem.build(
                [CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
                 CardSpec(slot=0, kind="contutto", memory="mram",
                          capacity_per_dimm=128 * MIB)],
                seed=0,
            )
            log = PmemBlockDevice(system.pmem_region())
            hdd = HardDiskDrive(system.sim, 4 * GIB)
            cache = NvWriteCache(
                system.sim, log, hdd,
                WriteCacheConfig(segment_bytes=8 * 1024, segments=3,
                                 destage_threshold=2),
            )
            GpfsWriter(system.sim).run(
                cache, GpfsJob(total_writes=12, seed=99)
            )
            journeys = list(session.journeys.completed)
            b = breakdown_of(session)
        return cache, journeys, b

    def test_zero_residual_and_full_decomposition(self):
        cache, _, b = self._run()
        assert cache.stalls > 0  # the tiny geometry really backpressured
        assert b.check() == []
        stages = b.stages("gpfs:wcache")
        for stage in ("gpfs.software", "wcache.admit", "storage.driver",
                      "storage.lines", "storage.persist"):
            assert stage in stages, stage

    def test_line_journeys_link_to_parent_via_lines_lane(self):
        _, journeys, _ = self._run()
        parents = {j.jid for j in journeys if j.scenario == "gpfs:wcache"}
        children = [j for j in journeys
                    if j.scenario == "gpfs:wcache:lines"]
        assert children
        assert all(j.parent in parents for j in children)

    def test_destages_run_in_their_own_lane(self):
        _, journeys, _ = self._run()
        destages = [j for j in journeys
                    if j.scenario == "gpfs:wcache:destage"]
        assert destages
        assert all(j.op == "storage.destage" for j in destages)
