"""Write-cache read path: log-resident hits, disk misses, FIFO retire.

The residency index must mirror the log exactly: a read of staged data
is served from the NVM log (``wcache.read_hit``), anything destaged or
never written goes to the backing disk (``wcache.read_miss``), and the
destager retires residency oldest-first so a hit can never land on log
space already recycled for new writes.
"""

import pytest

from repro.errors import StorageError
from repro.sim import Signal, Simulator
from repro.storage import (
    DirectStore,
    HardDiskDrive,
    NvWriteCache,
    SolidStateDrive,
    WriteCacheConfig,
)
from repro.telemetry import LatencyBreakdown, TraceSession
from repro.telemetry.attribution import journey_record
from repro.units import GIB, MIB, us_to_ps


class RecordingDevice:
    """Block-device stub that records IOs (with their journey stage) and
    rejects out-of-bounds ones, StrictLog-style."""

    def __init__(self, sim, capacity_bytes, io_us=2.0):
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.io_us = io_us
        self.reads = []
        self.writes = []

    def _io(self, log, entry, nbytes_end):
        if nbytes_end > self.capacity_bytes or entry[0] < 0:
            raise StorageError(f"IO {entry} outside [0, {self.capacity_bytes})")
        log.append(entry)
        done = Signal("dev.io")
        self.sim.call_after(us_to_ps(self.io_us), done.trigger)
        return done

    def submit_read(self, offset, nbytes, stage=None):
        return self._io(self.reads, (offset, nbytes, stage), offset + nbytes)

    def submit_write(self, offset, nbytes, stage=None):
        return self._io(self.writes, (offset, nbytes, stage), offset + nbytes)


def small_cache(sim, segments=4, threshold=3):
    config = WriteCacheConfig(
        segment_bytes=8 * 1024, segments=segments,
        destage_threshold=threshold,
    )
    log = RecordingDevice(sim, config.segment_bytes * config.segments,
                          io_us=1.0)
    disk = RecordingDevice(sim, 1 * GIB, io_us=20.0)
    return NvWriteCache(sim, log, disk, config), log, disk


def run(sim, signal):
    sim.run_until_signal(signal, timeout_ps=10**14)


class TestHitAndMiss:
    def test_staged_extent_is_served_from_the_log(self):
        sim = Simulator()
        cache, log, disk = small_cache(sim)
        run(sim, cache.write(4096, 4096))
        run(sim, cache.read(4096, 4096))
        assert cache.read_hits == 1 and cache.read_misses == 0
        assert log.reads == [(0, 4096, "wcache.read_hit")]
        assert disk.reads == []

    def test_inner_subrange_of_an_extent_hits_at_the_right_log_offset(self):
        sim = Simulator()
        cache, log, _ = small_cache(sim)
        run(sim, cache.write(4096, 4096))
        run(sim, cache.read(4096 + 512, 1024))
        assert cache.read_hits == 1
        assert log.reads == [(512, 1024, "wcache.read_hit")]

    def test_unstaged_read_misses_to_the_backing_disk(self):
        sim = Simulator()
        cache, log, disk = small_cache(sim)
        run(sim, cache.write(0, 4096))
        run(sim, cache.read(1 * MIB, 4096))
        assert cache.read_misses == 1 and cache.read_hits == 0
        assert disk.reads == [(1 * MIB, 4096, "wcache.read_miss")]
        assert log.reads == []

    def test_read_spanning_two_staged_writes_is_a_miss(self):
        # full containment in ONE extent is required: the two writes are
        # adjacent in app space but need not be adjacent in the log
        sim = Simulator()
        cache, _, disk = small_cache(sim)
        run(sim, cache.write(0, 4096))
        run(sim, cache.write(4096, 4096))
        run(sim, cache.read(2048, 4096))
        assert cache.read_misses == 1
        assert disk.reads[0][:2] == (2048, 4096)

    def test_rewrite_hits_the_newest_staged_copy(self):
        sim = Simulator()
        cache, log, _ = small_cache(sim)
        run(sim, cache.write(4096, 4096))   # log offset 0
        run(sim, cache.write(4096, 4096))   # log offset 4096
        run(sim, cache.read(4096, 4096))
        assert log.reads == [(4096, 4096, "wcache.read_hit")]


class TestRetireAndWrap:
    def test_destaged_extents_stop_hitting(self):
        sim = Simulator()
        cache, _, disk = small_cache(sim, segments=3, threshold=1)
        for i in range(3):  # fills 1.5 segments -> one destage (8 KiB)
            run(sim, cache.write(i * 4096, 4096))
        sim.run()
        assert cache.destages >= 1
        run(sim, cache.read(0, 4096))       # oldest extent: retired
        assert cache.read_misses == 1
        assert disk.reads[-1][:2] == (0, 4096)
        run(sim, cache.read(2 * 4096, 4096))  # newest: still resident
        assert cache.read_hits == 1

    def test_partially_retired_head_extent_still_hits_its_tail(self):
        sim = Simulator()
        cache, log, _ = small_cache(sim, segments=3, threshold=1)
        # one 12 KiB write straddles the 8 KiB segment boundary; the
        # destage retires the first 8 KiB of it, leaving a 4 KiB tail
        run(sim, cache.write(0, 12 * 1024))
        sim.run()
        assert cache.destages == 1
        run(sim, cache.read(8 * 1024, 4096))
        assert cache.read_hits == 1
        assert log.reads == [(8 * 1024, 4096, "wcache.read_hit")]

    def test_wrapped_staged_copy_is_read_in_two_parts(self):
        sim = Simulator()
        cache, log, _ = small_cache(sim)  # 32 KiB log
        nbytes = 6144
        for i in range(6):  # the 6th write wraps the log end
            run(sim, cache.write(i * nbytes, nbytes))
        assert cache.wrap_splits == 1
        run(sim, cache.read(5 * nbytes, nbytes))
        assert cache.read_hits == 1
        assert log.reads == [(30720, 2048, "wcache.read_hit"),
                             (0, 4096, "wcache.read_hit")]


class TestDirectStore:
    def test_reads_and_writes_pass_straight_through(self):
        sim = Simulator()
        dev = RecordingDevice(sim, 1 * GIB)
        store = DirectStore(dev)
        run(sim, store.write(0, 4096))
        run(sim, store.read(4096, 512))
        assert dev.writes == [(0, 4096, None)]
        assert dev.reads == [(4096, 512, None)]


class TestReadAttribution:
    def test_hit_and_miss_stages_tile_with_zero_residual(self):
        with TraceSession("t", max_events=0) as session:
            session.journeys.set_scenario("gpfs:read")
            sim = Simulator()
            log = SolidStateDrive(sim, 256 * MIB)
            hdd = HardDiskDrive(sim, 4 * GIB)
            cache = NvWriteCache(
                sim, log, hdd,
                WriteCacheConfig(segment_bytes=64 * 1024, segments=4),
            )
            run(sim, cache.write(0, 4096))
            run(sim, cache.read(0, 4096))        # log hit
            run(sim, cache.read(1 * MIB, 4096))  # disk miss
            b = LatencyBreakdown()
            b.add_records(
                journey_record(j) for j in session.journeys.completed
            )
        assert cache.read_hits == 1 and cache.read_misses == 1
        assert b.check() == []
        stages = b.stages("gpfs:read")
        assert "wcache.read_hit" in stages
        assert "wcache.read_miss" in stages
        # the stage *replaces* storage.service inside these journeys, it
        # does not nest under it — reads split cleanly by where they hit
        reads = [j for j in session.journeys.completed
                 if j.op == "storage.read"]
        assert len(reads) == 2

    def test_hit_is_cheaper_than_miss(self):
        sim = Simulator()
        cache, _, _ = small_cache(sim)  # log 1 us vs disk 20 us
        run(sim, cache.write(0, 4096))
        t0 = sim.now_ps
        run(sim, cache.read(0, 4096))
        hit_ps = sim.now_ps - t0
        t0 = sim.now_ps
        run(sim, cache.read(1 * MIB, 4096))
        miss_ps = sim.now_ps - t0
        assert hit_ps < miss_ps
