"""Tests for HDD, SSD, PCIe store models, and the write cache."""

import pytest

from repro.errors import StorageError
from repro.sim import Simulator
from repro.storage import (
    FLASH_X4_PCIE,
    HardDiskDrive,
    HddGeometry,
    MRAM_PCIE,
    NVRAM_PCIE,
    NvWriteCache,
    PcieAttachedStore,
    SolidStateDrive,
    WriteCacheConfig,
)
from repro.units import GIB, MIB, S, us_to_ps


class TestHdd:
    def test_random_write_pays_seek(self):
        sim = Simulator()
        hdd = HardDiskDrive(sim, 1 * GIB)
        sim.run_until_signal(hdd.submit_write(0, 4096))
        first = sim.now_ps
        sim.run_until_signal(hdd.submit_write(500 * MIB, 4096))
        second = sim.now_ps - first
        geometry = hdd.geometry
        assert second >= (geometry.avg_seek_ms + geometry.half_rotation_ms) * 1e9

    def test_sequential_write_skips_seek(self):
        sim = Simulator()
        hdd = HardDiskDrive(sim, 1 * GIB)
        sim.run_until_signal(hdd.submit_write(0, 4096))
        t0 = sim.now_ps
        sim.run_until_signal(hdd.submit_write(4096, 4096))
        assert sim.now_ps - t0 < us_to_ps(1_000)
        assert hdd.sequential_hits == 1

    def test_random_iops_near_75(self):
        sim = Simulator()
        hdd = HardDiskDrive(sim, 1 * GIB)
        t0 = sim.now_ps
        n = 16
        for i in range(n):
            offset = (i * 37 + 11) % (1 * GIB // 4096) * 4096
            sim.run_until_signal(hdd.submit_write(offset, 4096))
        iops = n / ((sim.now_ps - t0) / S)
        assert 55 <= iops <= 100  # Table 4: 75 IOPS

    def test_out_of_range_rejected(self):
        sim = Simulator()
        hdd = HardDiskDrive(sim, 1 * MIB)
        with pytest.raises(StorageError):
            hdd.submit_read(2 * MIB, 4096)

    def test_unaligned_rejected(self):
        sim = Simulator()
        hdd = HardDiskDrive(sim, 1 * MIB)
        with pytest.raises(StorageError):
            hdd.submit_read(100, 4096)


class TestSsd:
    def test_sync_write_iops_near_15k(self):
        sim = Simulator()
        ssd = SolidStateDrive(sim, 1 * GIB)
        t0 = sim.now_ps
        n = 32
        for i in range(n):
            offset = (i * 1237) % (1 * GIB // 4096) * 4096
            sim.run_until_signal(ssd.submit_write(offset, 4096))
        iops = n / ((sim.now_ps - t0) / S)
        assert 10_000 <= iops <= 20_000  # Table 4: 15K IOPS

    def test_much_faster_than_hdd(self):
        sim = Simulator()
        ssd = SolidStateDrive(sim, 1 * GIB)
        hdd = HardDiskDrive(sim, 1 * GIB)
        t0 = sim.now_ps
        sim.run_until_signal(ssd.submit_write(500 * MIB, 4096))
        ssd_time = sim.now_ps - t0
        t0 = sim.now_ps
        sim.run_until_signal(hdd.submit_write(500 * MIB, 4096))
        hdd_time = sim.now_ps - t0
        assert hdd_time > 50 * ssd_time

    def test_channels_parallelize_under_depth(self):
        sim = Simulator()
        ssd = SolidStateDrive(sim, 1 * GIB)
        signals = [ssd.submit_read(i * 4096, 4096) for i in range(8)]
        for sig in signals:
            sim.run_until_signal(sig)
        serial_estimate = 8 * (25 + 60)  # us
        assert sim.now_ps < us_to_ps(serial_estimate)


class TestPcieStores:
    def test_latency_ordering_flash_nvram_mram(self):
        def read_latency(profile):
            sim = Simulator()
            store = PcieAttachedStore(sim, 1 * GIB, profile)
            t0 = sim.now_ps
            sim.run_until_signal(store.submit_read(0, 4096))
            return sim.now_ps - t0

        flash = read_latency(FLASH_X4_PCIE)
        nvram = read_latency(NVRAM_PCIE)
        mram = read_latency(MRAM_PCIE)
        assert flash > nvram > mram

    def test_nvram_read_latency_near_21us(self):
        sim = Simulator()
        store = PcieAttachedStore(sim, 1 * GIB, NVRAM_PCIE)
        t0 = sim.now_ps
        sim.run_until_signal(store.submit_read(0, 4096))
        latency_us = (sim.now_ps - t0) / 1e6
        assert 17 <= latency_us <= 25

    def test_every_io_pays_protocol_overhead(self):
        sim = Simulator()
        store = PcieAttachedStore(sim, 1 * GIB, MRAM_PCIE)
        t0 = sim.now_ps
        sim.run_until_signal(store.submit_read(0, 4096))
        assert sim.now_ps - t0 >= us_to_ps(MRAM_PCIE.protocol_overhead_us)


class FastLog:
    """A block-device stub with fixed 2 us writes (stands in for pmem)."""

    def __init__(self, sim, capacity_bytes):
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.writes = 0

    def submit_write(self, offset, nbytes):
        from repro.sim import Signal

        self.writes += 1
        done = Signal("log.w")
        self.sim.call_after(us_to_ps(2), done.trigger)
        return done


class TestWriteCache:
    def test_writes_ack_at_log_speed(self):
        sim = Simulator()
        log = FastLog(sim, 256 * MIB)
        hdd = HardDiskDrive(sim, 1 * GIB)
        cache = NvWriteCache(sim, log, hdd)
        t0 = sim.now_ps
        sim.run_until_signal(cache.write(500 * MIB % hdd.capacity_bytes, 4096))
        assert sim.now_ps - t0 < us_to_ps(10)

    def test_destage_aggregates_into_large_sequential_ios(self):
        sim = Simulator()
        log = FastLog(sim, 256 * MIB)
        hdd = HardDiskDrive(sim, 1 * GIB)
        config = WriteCacheConfig(segment_bytes=64 * 1024, segments=8, destage_threshold=1)
        cache = NvWriteCache(sim, log, hdd, config)
        for i in range(32):  # 128 KiB staged -> 2 segments
            sim.run_until_signal(cache.write((i * 977) % (1 * GIB // 4096) * 4096, 4096))
        sim.run()
        assert cache.destages >= 1
        # each destage is one 64K disk write, not 16 random 4K writes
        assert hdd.writes == cache.destages
        assert hdd.bytes_written == cache.destages * 64 * 1024

    def test_log_overflow_stalls_writers(self):
        sim = Simulator()
        log = FastLog(sim, 256 * MIB)
        hdd = HardDiskDrive(sim, 1 * GIB)
        config = WriteCacheConfig(segment_bytes=8 * 1024, segments=3, destage_threshold=2)
        cache = NvWriteCache(sim, log, hdd, config)
        signals = [cache.write(i * 4096, 4096) for i in range(24)]
        for sig in signals:
            sim.run_until_signal(sig, timeout_ps=10**14)
        assert cache.stalls > 0

    def test_log_must_fit_device(self):
        sim = Simulator()
        log = FastLog(sim, 1 * MIB)
        hdd = HardDiskDrive(sim, 1 * GIB)
        with pytest.raises(StorageError):
            NvWriteCache(sim, log, hdd, WriteCacheConfig(segment_bytes=1 * MIB, segments=16))
