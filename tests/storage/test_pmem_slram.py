"""Tests for the pmem and slram drivers over a booted system."""

import pytest

from repro import CardSpec, ContuttoSystem
from repro.errors import StorageError
from repro.storage import PmemBlockDevice, PmemConfig, PmemRegion, SlramDevice
from repro.units import CACHE_LINE_BYTES, GIB, MIB


@pytest.fixture(scope="module")
def mram_system():
    return ContuttoSystem.build(
        [
            CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
            CardSpec(slot=0, kind="contutto", memory="mram",
                     capacity_per_dimm=128 * MIB),
        ]
    )


class TestPmemRegion:
    def test_rejects_volatile_region(self, mram_system):
        dram = mram_system.socket.memory_map.dram_regions()[0]
        with pytest.raises(StorageError):
            PmemRegion(mram_system.sim, mram_system.socket, dram.base, 4096)

    def test_rejects_oversized_window(self, mram_system):
        nvm = mram_system.socket.memory_map.nvm_regions()[0]
        with pytest.raises(StorageError):
            PmemRegion(
                mram_system.sim, mram_system.socket, nvm.base, nvm.os_size + 4096
            )

    def test_out_of_window_access_rejected(self, mram_system):
        pmem = mram_system.pmem_region()
        with pytest.raises(StorageError):
            pmem.read(pmem.size, 16)

    def test_line_aligned_write_fast_path(self, mram_system):
        pmem = mram_system.pmem_region()
        payload = bytes([0x3C]) * (4 * CACHE_LINE_BYTES)
        proc = pmem.write(0, payload)
        mram_system.sim.run_until_signal(proc.done, timeout_ps=10**12)
        read = pmem.read(0, len(payload))
        data = mram_system.sim.run_until_signal(read.done, timeout_ps=10**12)
        assert data == payload

    def test_read_window_bounds_concurrency(self, mram_system):
        # deeper read window -> lower 4K latency (more MLP)
        def latency(window):
            pmem = mram_system.pmem_region(config=PmemConfig(read_window=window))
            t0 = mram_system.sim.now_ps
            proc = pmem.read(0, 4096)
            mram_system.sim.run_until_signal(proc.done, timeout_ps=10**12)
            return mram_system.sim.now_ps - t0

        assert latency(8) < latency(1)

    def test_block_device_adapter(self, mram_system):
        blk = PmemBlockDevice(mram_system.pmem_region())
        mram_system.sim.run_until_signal(blk.submit_write(0, 4096), timeout_ps=10**12)
        mram_system.sim.run_until_signal(blk.submit_read(0, 4096), timeout_ps=10**12)
        assert blk.writes == 1
        assert blk.reads == 1

    def test_block_device_persists_by_default(self, mram_system):
        pmem = mram_system.pmem_region()
        blk = PmemBlockDevice(pmem)
        before = pmem.persists
        mram_system.sim.run_until_signal(blk.submit_write(0, 4096), timeout_ps=10**12)
        assert pmem.persists == before + 1

    def test_block_device_no_persist_mode(self, mram_system):
        pmem = mram_system.pmem_region()
        blk = PmemBlockDevice(pmem, persist_writes=False)
        before = pmem.persists
        mram_system.sim.run_until_signal(blk.submit_write(0, 4096), timeout_ps=10**12)
        assert pmem.persists == before


class TestSlram:
    def test_over_dram_region(self):
        system = ContuttoSystem.build([CardSpec(slot=0, kind="centaur")])
        slram = SlramDevice(system.sim, system.socket, base=0, size=1 * MIB)
        system.sim.run_until_signal(slram.submit_write(0, 4096), timeout_ps=10**12)
        system.sim.run_until_signal(slram.submit_read(0, 4096), timeout_ps=10**12)
        assert slram.writes == 1 and slram.reads == 1

    def test_unaligned_io_rejected(self):
        system = ContuttoSystem.build([CardSpec(slot=0, kind="centaur")])
        slram = SlramDevice(system.sim, system.socket, base=0, size=1 * MIB)
        with pytest.raises(StorageError):
            slram.submit_read(100, 128)
        with pytest.raises(StorageError):
            slram.submit_read(0, 100)

    def test_out_of_device_rejected(self):
        system = ContuttoSystem.build([CardSpec(slot=0, kind="centaur")])
        slram = SlramDevice(system.sim, system.socket, base=0, size=1 * MIB)
        with pytest.raises(StorageError):
            slram.submit_read(1 * MIB, 128)
