"""Write-cache backpressure regressions: strict admission, FIFO wake-up,
wrap-around splitting, config validation, and Table 4 invariance.

The two historical bugs these tests pin down:

* a destage completion used to re-admit *every* stalled writer, and the
  woken writers staged directly without re-running the admission check —
  a stall storm could over-fill the log past ``segment_bytes * segments``;
* a write whose log cursor wrapped the circular log was submitted as one
  unsplit IO past the log end.
"""

import pytest

from repro.errors import StorageError
from repro.sim import Signal, Simulator
from repro.storage import HardDiskDrive, NvWriteCache, WriteCacheConfig
from repro.units import GIB, MIB, us_to_ps
from repro.workloads import GpfsJob, GpfsWriter


class StrictLog:
    """Block-device stub that *rejects* IOs outside its capacity — the
    strict bound the unsplit wrap-around write used to violate."""

    def __init__(self, sim, capacity_bytes, write_us=2.0):
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.write_us = write_us
        self.writes = []

    def submit_write(self, offset, nbytes):
        if offset < 0 or offset + nbytes > self.capacity_bytes:
            raise StorageError(
                f"log write [{offset}, {offset + nbytes}) outside "
                f"[0, {self.capacity_bytes})"
            )
        self.writes.append((offset, nbytes))
        done = Signal("log.w")
        self.sim.call_after(us_to_ps(self.write_us), done.trigger)
        return done


class TestStrictAdmission:
    def _storm(self, writes=24):
        """24 concurrent 4 KiB writes against a 3x8 KiB log over a slow
        HDD: most writers stall behind destages."""
        sim = Simulator()
        log = StrictLog(sim, 256 * MIB)
        hdd = HardDiskDrive(sim, 1 * GIB)
        config = WriteCacheConfig(
            segment_bytes=8 * 1024, segments=3, destage_threshold=2
        )
        cache = NvWriteCache(sim, log, hdd, config)
        acks = []
        signals = []
        for i in range(writes):
            sig = cache.write(i * 4096, 4096)
            sig.add_waiter(lambda _v, i=i: acks.append(i))
            signals.append(sig)
        for sig in signals:
            sim.run_until_signal(sig, timeout_ps=10**14)
        return cache, config, acks

    def test_stall_storm_never_overfills_log(self):
        cache, config, _ = self._storm()
        assert cache.stalls > 0  # the storm really did hit backpressure
        # the old bug: waking every stalled writer at once pushed staged
        # bytes past the log capacity
        assert cache.max_occupancy_bytes <= config.segment_bytes * config.segments
        assert cache.writes_staged == 24

    def test_stalled_writers_acknowledged_fifo(self):
        _, _, acks = self._storm()
        assert len(acks) == 24
        assert acks == sorted(acks)

    def test_freeze_blocks_destage_until_unfreeze(self):
        sim = Simulator()
        log = StrictLog(sim, 256 * MIB)
        disk = StrictLog(sim, 1 * GIB, write_us=5.0)
        config = WriteCacheConfig(
            segment_bytes=8 * 1024, segments=3, destage_threshold=1
        )
        cache = NvWriteCache(sim, log, disk, config)
        cache.freeze_destage()
        signals = [cache.write(i * 4096, 4096) for i in range(8)]
        for sig in signals[:4]:  # the log holds 2 full segments + cursor
            sim.run_until_signal(sig, timeout_ps=10**12)
        assert cache.destages == 0 and cache.stalls > 0
        sim.call_after(us_to_ps(50), cache.unfreeze_destage)
        for sig in signals:
            sim.run_until_signal(sig, timeout_ps=10**14)
        assert cache.destages > 0 and cache.writes_staged == 8
        assert cache.max_occupancy_bytes <= config.segment_bytes * config.segments


class TestWrapSplit:
    def test_wraparound_write_is_split_and_in_bounds(self):
        sim = Simulator()
        config = WriteCacheConfig(
            segment_bytes=8 * 1024, segments=4, destage_threshold=1
        )
        log_size = config.segment_bytes * config.segments
        # log device exactly log-sized: no slack past the end, so an
        # unsplit wrap-around IO raises instead of landing out of bounds
        log = StrictLog(sim, log_size)
        disk = StrictLog(sim, 1 * GIB, write_us=1.0)
        cache = NvWriteCache(sim, log, disk, config)
        nbytes = 6144  # does not divide the log size -> cursor wraps mid-write
        for i in range(6):
            sim.run_until_signal(cache.write(i * nbytes, nbytes),
                                 timeout_ps=10**12)
        sim.run()
        assert cache.wrap_splits == 1
        assert cache.writes_staged == 6
        # the split halves stay inside the log and preserve the byte count
        assert sum(n for _, n in log.writes) == 6 * nbytes
        assert log.writes[-2:] == [(30720, 2048), (0, 4096)]

    def test_wrap_ack_waits_for_both_halves(self):
        sim = Simulator()
        config = WriteCacheConfig(
            segment_bytes=8 * 1024, segments=4, destage_threshold=1
        )
        log = StrictLog(sim, config.segment_bytes * config.segments)
        disk = StrictLog(sim, 1 * GIB, write_us=1.0)
        cache = NvWriteCache(sim, log, disk, config)
        for i in range(5):
            sim.run_until_signal(cache.write(i * 6144, 6144),
                                 timeout_ps=10**12)
        t0 = sim.now_ps
        sim.run_until_signal(cache.write(6 * 6144, 6144), timeout_ps=10**12)
        # both log IOs run concurrently; the ack pays one full log write
        assert sim.now_ps - t0 >= us_to_ps(2)
        assert cache.wrap_splits == 1


class TestConfigValidation:
    def test_rejects_nonpositive_segment_bytes(self):
        with pytest.raises(StorageError):
            WriteCacheConfig(segment_bytes=0)

    def test_rejects_single_segment(self):
        # one segment cannot destage and admit at the same time
        with pytest.raises(StorageError):
            WriteCacheConfig(segments=1)

    def test_rejects_nonpositive_destage_threshold(self):
        with pytest.raises(StorageError):
            WriteCacheConfig(destage_threshold=0)


class TestTable4Invariance:
    """The fixes must not disturb Table 4: with the published geometry
    (many large segments) a drill's worth of 4 KiB writes never fills a
    segment, so the stall, wake, and wrap-split paths never run and the
    published IOPS are byte-identical to the pre-fix code."""

    def test_default_geometry_never_hits_fixed_paths(self):
        sim = Simulator()
        log = StrictLog(sim, 256 * MIB)
        hdd = HardDiskDrive(sim, 4 * GIB)
        cache = NvWriteCache(
            sim, log, hdd,
            WriteCacheConfig(segment_bytes=4 * MIB, segments=16),
        )
        result = GpfsWriter(sim).run(cache, GpfsJob(total_writes=24, seed=99))
        assert cache.stalls == 0
        assert cache.wrap_splits == 0
        assert cache.destages == 0
        assert result.errors == 0
        assert cache.writes_staged == 24
