"""Diff verdict semantics: tolerances, structure, budget matching."""

import copy
import json

from repro.report import DEFAULT_TOLERANCES, diff_reports, render_diff


def report(**overrides):
    """A small but fully populated report.json payload."""
    base = {
        "schema": "repro.report/v1",
        "suite": "t",
        "seed": 0,
        "campaigns": [{
            "name": "c",
            "journeys": 100,
            "end_to_end": [{
                "scenario": "table3", "journeys": 100,
                "mean_ps": 1000.0, "p50_ps": 900.0, "p95_ps": 1800.0,
                "p99_ps": 2000.0, "max_ps": 2500.0,
            }],
            "stages": [{
                "scenario": "table3", "stage": "dram", "count": 100,
                "mean_ps": 400.0, "p99_ps": 800.0, "share": 0.4,
            }],
        }],
        "services": [{
            "name": "s",
            "repetitions": [{
                "repetition": 0, "offered": 60, "completed": 58,
                "shed": 2, "failed": 0, "overloaded_windows": 0,
            }],
            "windows": [{
                "repetition": 0, "window": 0, "completed": 30, "shed": 1,
                "latency_p50_ms": 0.2, "latency_p99_ms": 0.9,
                "queue_delay_mean_ms": 0.05, "occupancy_mean": 0.5,
            }],
            "slo": {"reader": {"target_p99_ms": 1.0,
                               "windows_judged": 2, "windows_met": 2}},
        }],
        "tunes": [{
            "name": "u", "trials_run": 4, "front_size": 2,
            "winner": '{"delay":0}',
        }],
        "kernel": {
            "experiment": "table3", "events": 500, "runs": 1,
            "counts": {"mem.read": 300, "mem.write": 200},
        },
    }
    base.update(overrides)
    return base


def scale(rep, key_path, factor=None, value=None):
    """Deep-copy a report and tweak one nested value."""
    out = copy.deepcopy(rep)
    node = out
    for part in key_path[:-1]:
        node = node[part]
    if value is not None or factor is None:
        node[key_path[-1]] = value
    else:
        node[key_path[-1]] = node[key_path[-1]] * factor
    return out


class TestIdentical:
    def test_identical_reports_pass_with_no_findings(self):
        a = report()
        result = diff_reports(a, copy.deepcopy(a))
        assert result.verdict == "PASS"
        assert result.findings == []
        assert result.compared > 0

    def test_render_mentions_verdict_and_counts(self):
        result = diff_reports(report(), report())
        text = render_diff(result)
        assert text.startswith("verdict: PASS")
        assert "0 fail, 0 warn" in text


class TestTolerances:
    def test_boundary_exactly_met_is_pass(self):
        # warn tolerance for latency is 0.02: a delta of exactly 2%
        # must be a clean pass (tolerances are inclusive).
        warn_tol = DEFAULT_TOLERANCES["latency"][0]
        a = report()
        b = scale(a, ("campaigns", 0, "end_to_end", 0, "mean_ps"),
                  factor=1 + warn_tol)
        result = diff_reports(a, b)
        assert result.verdict == "PASS"
        assert result.findings == []

    def test_just_past_warn_is_warn(self):
        a = report()
        b = scale(a, ("campaigns", 0, "end_to_end", 0, "mean_ps"),
                  factor=1.05)
        result = diff_reports(a, b)
        assert result.verdict == "WARN"
        keys = [f.key for f in result.findings]
        assert keys == ["campaign/c/table3/mean_ps"]

    def test_past_fail_is_fail_and_exit_worthy(self):
        a = report()
        b = scale(a, ("campaigns", 0, "end_to_end", 0, "mean_ps"),
                  factor=1.5)
        result = diff_reports(a, b)
        assert result.verdict == "FAIL"

    def test_fail_boundary_exactly_met_is_warn(self):
        fail_tol = DEFAULT_TOLERANCES["latency"][1]
        a = report()
        b = scale(a, ("campaigns", 0, "end_to_end", 0, "mean_ps"),
                  factor=1 + fail_tol)
        assert diff_reports(a, b).verdict == "WARN"

    def test_count_drift_warns_even_when_tiny(self):
        a = report()
        b = scale(a, ("campaigns", 0, "journeys"), value=101)
        result = diff_reports(a, b)
        assert result.verdict == "WARN"
        assert any(f.key == "campaign/c/journeys" for f in result.findings)

    def test_tolerance_override_changes_verdict(self):
        a = report()
        b = scale(a, ("campaigns", 0, "end_to_end", 0, "mean_ps"),
                  factor=1.05)
        relaxed = diff_reports(a, b, tolerances={"latency": (0.10, 0.50)})
        assert relaxed.verdict == "PASS"


class TestStructural:
    def test_scenario_missing_from_new_run_fails(self):
        a = report()
        b = copy.deepcopy(a)
        b["campaigns"][0]["end_to_end"] = []
        b["campaigns"][0]["stages"] = []
        result = diff_reports(a, b)
        assert result.verdict == "FAIL"
        assert all(f.verdict == "FAIL" for f in result.findings)
        assert all("missing from the new run" in f.note
                   for f in result.findings)

    def test_scenario_only_in_new_run_warns(self):
        a = report()
        b = copy.deepcopy(a)
        b["campaigns"][0]["end_to_end"] = []
        b["campaigns"][0]["stages"] = []
        # the asymmetry: shrinking coverage FAILs, growing it WARNs
        result = diff_reports(b, a)
        assert result.verdict == "WARN"
        assert all("only in the new run" in f.note for f in result.findings)

    def test_nan_percentile_one_side_warns(self):
        a = report()
        b = scale(a, ("campaigns", 0, "end_to_end", 0, "p99_ps"),
                  value=float("nan"))
        result = diff_reports(a, b)
        assert result.verdict == "WARN"
        finding = next(f for f in result.findings
                       if f.key == "campaign/c/table3/p99_ps")
        assert "absent or NaN in the new run" in finding.note
        assert finding.new is None  # NaN never leaks into records

    def test_absent_percentile_both_sides_is_not_a_finding(self):
        a = scale(report(), ("campaigns", 0, "end_to_end", 0, "p99_ps"),
                  value=None)
        result = diff_reports(a, copy.deepcopy(a))
        assert result.verdict == "PASS"
        assert result.findings == []

    def test_zero_sample_window_with_null_latency_passes(self):
        # a window that completed nothing carries null percentiles on
        # both sides — that's equality, not a WARN
        a = report()
        for rep in (a,):
            rep["services"][0]["windows"].append({
                "repetition": 0, "window": 1, "completed": 0, "shed": 0,
                "latency_p50_ms": None, "latency_p99_ms": None,
                "queue_delay_mean_ms": None, "occupancy_mean": 0.0,
            })
        result = diff_reports(a, copy.deepcopy(a))
        assert result.verdict == "PASS"
        assert result.findings == []


class TestBudgetMatching:
    def test_percentile_fail_capped_to_warn_when_budgets_differ(self):
        a = report()
        b = copy.deepcopy(a)
        row = b["campaigns"][0]["end_to_end"][0]
        row["journeys"] = 50        # half the sample budget
        row["p99_ps"] = 4000.0      # > fail tolerance
        b["campaigns"][0]["journeys"] = 50
        result = diff_reports(a, b)
        finding = next(f for f in result.findings
                       if f.key == "campaign/c/table3/p99_ps")
        assert finding.verdict == "WARN"
        assert "budget mismatch" in finding.note
        # the count drift itself still grades normally and is the teeth
        journeys = next(f for f in result.findings
                        if f.key == "campaign/c/table3/journeys")
        assert journeys.verdict == "FAIL"
        assert result.verdict == "FAIL"

    def test_mean_is_not_budget_capped(self):
        a = report()
        b = copy.deepcopy(a)
        row = b["campaigns"][0]["end_to_end"][0]
        row["journeys"] = 50
        row["mean_ps"] = 2000.0     # means regress regardless of budget
        finding = next(f for f in diff_reports(a, b).findings
                       if f.key == "campaign/c/table3/mean_ps")
        assert finding.verdict == "FAIL"


class TestTuneWinners:
    def test_winner_change_warns(self):
        a = report()
        b = scale(a, ("tunes", 0, "winner"), value='{"delay":8}')
        result = diff_reports(a, b)
        assert result.verdict == "WARN"
        finding = next(f for f in result.findings
                       if f.key == "tune/u/winner")
        assert "winner changed" in finding.note


class TestDeterminism:
    def test_findings_sorted_worst_first_then_key(self):
        a = report()
        b = copy.deepcopy(a)
        b["campaigns"][0]["end_to_end"][0]["mean_ps"] = 2000.0   # FAIL
        b["campaigns"][0]["journeys"] = 101                      # WARN
        b["services"][0]["windows"][0]["occupancy_mean"] = 0.52  # WARN
        result = diff_reports(a, b)
        verdicts = [f.verdict for f in result.findings]
        assert verdicts == sorted(verdicts, key=["FAIL", "WARN", "PASS"].index)
        warn_keys = [f.key for f in result.findings if f.verdict == "WARN"]
        assert warn_keys == sorted(warn_keys)

    def test_record_round_trips_through_json(self):
        a = report()
        b = scale(a, ("campaigns", 0, "end_to_end", 0, "mean_ps"),
                  factor=1.5)
        record = diff_reports(a, b).to_record()
        again = json.loads(json.dumps(record, sort_keys=True))
        assert again == record
        assert again["verdict"] == "FAIL"
        assert again["counts"]["FAIL"] >= 1
