"""HTML rendering: self-containment, sections, verdict cells, escaping."""

from repro.report import render_html
from repro.report.svg import hbar_svg, scatter_svg, sparkline_svg


def report():
    return {
        "schema": "repro.report/v1",
        "suite": "t<&>",  # must be escaped in the title and heading
        "seed": 0,
        "campaigns": [{
            "name": "c",
            "journeys": 10,
            "scenarios": ["table3"],
            "folded": False,
            "end_to_end": [{
                "scenario": "table3", "journeys": 10, "mean_ps": 1000.0,
                "p50_ps": 900.0, "p95_ps": 1800.0, "p99_ps": 2000.0,
                "max_ps": 2500.0, "min_ps": 500.0,
            }],
            "stages": [{
                "scenario": "table3", "stage": "dram", "stage_kind": "sim",
                "count": 10, "mean_ps": 400.0, "p50_ps": 350.0,
                "p95_ps": 700.0, "p99_ps": 800.0, "max_ps": 900.0,
                "share": 0.4,
            }],
            "fault_buckets": [],
        }],
        "services": [{
            "name": "s",
            "schedule": {"name": "sched", "servers": 1, "queue_limit": 8},
            "columns": ["window", "slo_reader"],
            "repetitions": [{
                "repetition": 0, "offered": 12, "completed": 11, "shed": 1,
                "failed": 0, "overloaded_windows": 0,
                "slo_missed_windows": 1,
            }],
            "windows": [
                {"repetition": 0, "window": 0, "offered": 6, "offered_rps": 600.0,
                 "completed": 6, "achieved_rps": 600.0, "shed": 0,
                 "latency_p50_ms": 0.2, "latency_p99_ms": 0.8,
                 "queue_delay_mean_ms": 0.05, "occupancy_mean": 0.5,
                 "slo_reader": "met"},
                {"repetition": 0, "window": 1, "offered": 6, "offered_rps": 600.0,
                 "completed": 5, "achieved_rps": 500.0, "shed": 1,
                 "latency_p50_ms": 0.4, "latency_p99_ms": 2.4,
                 "queue_delay_mean_ms": 0.30, "occupancy_mean": 0.9,
                 "slo_reader": "missed"},
            ],
            "slo": {"reader": {"target_p99_ms": 1.0,
                               "windows_judged": 2, "windows_met": 1}},
        }],
        "tunes": [{
            "name": "u", "workload": "mem_read",
            "objectives": [{"metric": "p99_ns", "goal": "min"},
                           {"metric": "mean_ns", "goal": "min"}],
            "trials_run": 2, "front_size": 1,
            "winner": '{"delay":0}',
            "trials": [
                {"key": '{"delay":0}', "config": {"delay": 0},
                 "status": "completed", "rung": 0, "samples": 4,
                 "objectives": {"p99_ns": 100.0, "mean_ns": 60.0},
                 "dominated": False},
                {"key": '{"delay":8}', "config": {"delay": 8},
                 "status": "completed", "rung": 0, "samples": 4,
                 "objectives": {"p99_ns": 140.0, "mean_ns": 90.0},
                 "dominated": True},
            ],
        }],
        "kernel": {
            "experiment": "table3", "events": 50, "runs": 1,
            "counts": {"mem.read": 30, "mem.write": 20},
        },
    }


class TestDocument:
    def test_self_contained(self):
        html = render_html(report())
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert html.count("<style>") == 1

    def test_every_section_rendered(self):
        html = render_html(report())
        assert "Campaign: c" in html
        assert "Service: s" in html
        assert "Tune: u" in html
        assert "Kernel hotspots" in html

    def test_suite_name_escaped(self):
        html = render_html(report())
        assert "t&lt;&amp;&gt;" in html
        assert "t<&>" not in html

    def test_slo_cells_carry_verdict_classes(self):
        html = render_html(report())
        assert '<td class="met">met</td>' in html
        assert '<td class="missed">missed</td>' in html
        assert "SLO <b>reader</b>: 1/2 windows met" in html

    def test_slo_missed_column_only_when_present(self):
        rep = report()
        html = render_html(rep)
        assert "SLO-missed windows" in html
        del rep["services"][0]["repetitions"][0]["slo_missed_windows"]
        assert "SLO-missed windows" not in render_html(rep)

    def test_kernel_wall_times_need_live_profile(self):
        rep = report()
        plain = render_html(rep)
        assert "mem.read" in plain       # counts always render
        profile = {
            "experiment": "table3", "events": 50, "runs": 1,
            "hotspots": [
                {"key": "mem.read", "count": 30, "wall_s": 0.006,
                 "mean_us": 0.2, "wall_share": 0.6},
            ],
        }
        with_times = render_html(rep, profile=profile)
        assert "Wall (ms)" in with_times
        assert "Wall (ms)" not in plain
        assert "vary machine to machine" in with_times

    def test_empty_report_still_renders(self):
        html = render_html({"schema": "repro.report/v1", "suite": "e",
                            "seed": 0})
        assert "Suite report: e" in html
        assert "</html>" in html


class TestSvg:
    def test_hbar_renders_one_rect_per_row(self):
        svg = hbar_svg([("dram", 0.6), ("link", 0.4)])
        assert svg.count("<rect") >= 2
        assert "dram" in svg and "60.0%" in svg

    def test_sparkline_handles_flat_series(self):
        svg = sparkline_svg([5.0, 5.0, 5.0])
        assert svg.startswith("<svg") and "<polyline" in svg

    def test_sparkline_empty_series_renders_nothing(self):
        assert sparkline_svg([]) == ""

    def test_scatter_highlights_front(self):
        svg = scatter_svg(
            [(1.0, 2.0), (3.0, 1.0), (2.0, 3.0)],
            highlight=[True, True, False],
            x_label="a", y_label="b",
        )
        assert svg.count("<circle") == 3
        assert svg.count('r="4"') == 2      # highlighted, larger
        assert svg.count('r="2.5"') == 1    # muted background point

    def test_svg_coordinates_are_fixed_precision(self):
        # repr() floats like 0.30000000000000004 must never leak in
        svg = sparkline_svg([0.1, 0.2, 0.3])
        assert "000000" not in svg
