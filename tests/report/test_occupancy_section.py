"""Occupancy-histogram and tiering sections of the suite report.

The campaign section lifts both from the merged metrics snapshot:
``occupancy.<source>.<stat>`` keys pivot into one row per source, and
``tier.*`` counters/gauges surface verbatim.  Neither section may leak
wall-clock-dependent values into report.json — the snapshot is the
merged (deterministic) one, and a missing metrics artifact degrades to
empty sections, not an error.
"""

import json

from repro.report import render_html
from repro.report.summary import _merged_snapshot, _occupancy_rows


class TestOccupancyRows:
    def test_pivots_stats_into_one_row_per_source(self):
        metrics = {
            "occupancy.tier.s0.d0.hot_slow_pages.count": 12,
            "occupancy.tier.s0.d0.hot_slow_pages.mean": 1.5,
            "occupancy.tier.s0.d0.hot_slow_pages.p99": 3,
            "occupancy.dmi.tags.count": 40,
            "occupancy.dmi.tags.mean": 6.25,
            "tier.promotions": 7,          # not an occupancy key
            "occupancy.dmi.tags.stddev": 1,  # not a published stat
        }
        rows = _occupancy_rows(metrics)
        assert [r["source"] for r in rows] == [
            "dmi.tags", "tier.s0.d0.hot_slow_pages",
        ]
        assert rows[0]["count"] == 40 and rows[0]["mean"] == 6.25
        assert "stddev" not in rows[0]
        assert rows[1]["p99"] == 3

    def test_empty_metrics_give_no_rows(self):
        assert _occupancy_rows({}) == []


class TestMergedSnapshot:
    def test_missing_artifact_degrades_to_empty(self, tmp_path):
        assert _merged_snapshot(tmp_path, "nope") == {}

    def test_last_merged_snapshot_wins(self, tmp_path):
        out = tmp_path / "campaign-c"
        out.mkdir()
        records = [
            {"kind": "meta", "schema": "repro.metrics/v1"},
            {"kind": "snapshot", "label": "worker0",
             "metrics": {"tier.promotions": 1}},
            {"kind": "snapshot", "label": "merged",
             "metrics": {"tier.promotions": 3}},
            {"kind": "snapshot", "label": "merged",
             "metrics": {"tier.promotions": 5, "other": 1}},
        ]
        (out / "metrics.jsonl").write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        assert _merged_snapshot(tmp_path, "c") == {
            "tier.promotions": 5, "other": 1,
        }


class TestHtmlSections:
    def _campaign(self, **extra):
        campaign = {
            "name": "c", "journeys": 4, "scenarios": ["s"], "folded": False,
            "end_to_end": [], "stages": [], "fault_buckets": [],
        }
        campaign.update(extra)
        return {"schema": "repro.report/v1", "suite": "t", "seed": 0,
                "campaigns": [campaign], "services": [], "tunes": []}

    def test_sections_render_when_data_present(self):
        html = render_html(self._campaign(
            occupancy=[{"source": "tier.s0.d0.hot_slow_pages", "count": 12,
                        "mean": 1.5, "min": 0, "p50": 1, "p95": 3,
                        "p99": 3, "max": 3}],
            tier_metrics={"tier.promotions": 7, "tier.fast_hit_rate": 0.42},
        ))
        assert "Occupancy histograms" in html
        assert "tier.s0.d0.hot_slow_pages" in html
        assert "Hybrid-memory tiering" in html
        assert "tier.fast_hit_rate" in html and "0.42" in html

    def test_sections_omitted_when_absent(self):
        html = render_html(self._campaign())
        assert "Occupancy histograms" not in html
        assert "Hybrid-memory tiering" not in html
