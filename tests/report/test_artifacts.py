"""Shared artifact loading: policies, resolution, merging."""

import json

import pytest

from repro.errors import ArtifactError, ConfigurationError
from repro.report import (
    load_fault_plan,
    load_journeys,
    load_report,
    read_artifact,
    resolve_artifact,
)
from repro.report.artifacts import first_meta, records_of_kind


def write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestReadArtifact:
    def test_reads_records_in_order(self, tmp_path):
        path = write_lines(tmp_path / "a.jsonl", [
            json.dumps({"kind": "meta", "n": 1}),
            json.dumps({"kind": "journey", "n": 2}),
        ])
        records, skipped = read_artifact(path)
        assert [r["n"] for r in records] == [1, 2]
        assert skipped == []

    def test_blank_lines_tolerated(self, tmp_path):
        path = write_lines(tmp_path / "a.jsonl", [
            json.dumps({"n": 1}), "", "  ", json.dumps({"n": 2}),
        ])
        records, skipped = read_artifact(path)
        assert len(records) == 2 and skipped == []

    def test_strict_names_file_and_line(self, tmp_path):
        path = write_lines(tmp_path / "bad.jsonl", [
            json.dumps({"n": 1}), "{not json", json.dumps({"n": 3}),
        ])
        with pytest.raises(ArtifactError) as err:
            read_artifact(path)
        assert "bad.jsonl:2" in str(err.value)

    def test_lenient_counts_skips(self, tmp_path):
        path = write_lines(tmp_path / "bad.jsonl", [
            json.dumps({"n": 1}), "{not json", '"a bare string"',
            json.dumps({"n": 4}),
        ])
        records, skipped = read_artifact(path, malformed="skip")
        assert [r["n"] for r in records] == [1, 4]
        assert skipped == [2, 3]

    def test_non_object_is_malformed(self, tmp_path):
        path = write_lines(tmp_path / "a.jsonl", ["[1, 2, 3]"])
        with pytest.raises(ArtifactError):
            read_artifact(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ArtifactError):
            read_artifact(tmp_path / "nope.jsonl")

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            read_artifact(tmp_path / "x.jsonl", malformed="ignore")


class TestResolveArtifact:
    def test_file_passes_through(self, tmp_path):
        path = write_lines(tmp_path / "a.jsonl", ["{}"])
        assert resolve_artifact(path) == path

    def test_directory_resolves_default_name(self, tmp_path):
        inner = write_lines(tmp_path / "attribution.jsonl", ["{}"])
        assert resolve_artifact(tmp_path) == inner

    def test_directory_without_artifact_raises(self, tmp_path):
        with pytest.raises(ArtifactError):
            resolve_artifact(tmp_path)


class TestLoadJourneys:
    def journey(self, jid, scenario="s"):
        return {
            "kind": "journey", "jid": jid, "op": "read", "addr": 0,
            "channel": 0, "scenario": scenario, "start_ps": 0,
            "end_ps": 100, "stages": [],
        }

    def test_single_source_returns_journeys(self, tmp_path):
        path = write_lines(tmp_path / "a.jsonl", [
            json.dumps({"kind": "meta"}),
            json.dumps(self.journey(1)),
        ])
        journeys, warnings = load_journeys([path])
        assert len(journeys) == 1 and warnings == []

    def test_merge_is_argument_order_independent(self, tmp_path):
        a = write_lines(tmp_path / "a.jsonl", [json.dumps(self.journey(1))])
        b = write_lines(tmp_path / "b.jsonl", [json.dumps(self.journey(2))])
        ab, _ = load_journeys([a, b])
        ba, _ = load_journeys([b, a])
        assert ab == ba
        assert all(j["source"] for j in ab)

    def test_lenient_surfaces_warning(self, tmp_path):
        path = write_lines(tmp_path / "a.jsonl", [
            json.dumps(self.journey(1)), "garbage",
        ])
        journeys, warnings = load_journeys([path], malformed="skip")
        assert len(journeys) == 1
        assert len(warnings) == 1 and "line 2" in warnings[0]


class TestLoadFaultPlan:
    def test_canonical_round_trip(self, tmp_path):
        plan = {
            "name": "p",
            "faults": [{"injector": "dmi.frame_drop", "target": "0",
                        "schedule": "periodic", "start_ps": 0,
                        "period_ps": 1000, "count": 2, "label": "drop"}],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan), encoding="utf-8")
        canonical = load_fault_plan(path)
        assert json.loads(canonical)["name"] == "p"
        # loading the canonical form again is a fixed point
        path.write_text(canonical, encoding="utf-8")
        assert load_fault_plan(path) == canonical

    def test_unreadable_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_fault_plan(tmp_path / "nope.json")


class TestLoadReport:
    def test_loads_from_directory(self, tmp_path):
        (tmp_path / "report.json").write_text(
            json.dumps({"schema": "repro.report/v1", "suite": "s"}),
            encoding="utf-8",
        )
        assert load_report(tmp_path)["suite"] == "s"

    def test_rejects_schemaless_json(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"suite": "s"}), encoding="utf-8")
        with pytest.raises(ArtifactError):
            load_report(path)


class TestStreamHelpers:
    def test_records_of_kind_and_first_meta(self):
        records = [
            {"kind": "journey", "n": 1},
            {"kind": "meta", "n": 2},
            {"kind": "journey", "n": 3},
        ]
        assert [r["n"] for r in records_of_kind(records, "journey")] == [1, 3]
        assert first_meta(records)["n"] == 2
        assert first_meta([]) is None
