"""Suite spec validation and the end-to-end report pipeline.

The expensive piece — running a tiny suite at ``--jobs 1`` and
``--jobs 2`` — happens once per module; every invariant (byte-identical
report.json, self-diff PASS, artifact layout, kernel profile) asserts
against those two shared runs.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.report import (
    SuiteRunner,
    SuiteSpec,
    diff_reports,
    load_report,
)


def spec_dict(**overrides):
    base = {
        "schema": "repro.suite/v1",
        "name": "tiny",
        "seed": 3,
        "campaigns": [
            {"name": "micro",
             "scenarios": [{"experiment": "table3", "axes": {"samples": [6]}}]},
        ],
        "services": [
            {"name": "svc",
             "schedule": {
                 "name": "tiny_svc",
                 "duration_ms": 4.0,
                 "window_ms": 2.0,
                 "servers": 1,
                 "queue_limit": 8,
                 "tenants": [
                     {"name": "reader", "klass": "storage_read",
                      "weight": 1.0, "slo_p99_ms": 2.0},
                 ],
                 "phases": [
                     {"kind": "constant", "start_ms": 0.0, "end_ms": 4.0,
                      "rate_rps": 3000.0},
                 ],
             },
             "calib_samples": 4},
        ],
        "tunes": [
            {"name": "grid",
             "spec": {
                 "schema": "repro.tune/v1",
                 "name": "tiny-grid",
                 "workload": "mem_read",
                 "space": {"centaur.extra_delay_ns": [0, 4]},
                 "objectives": ["min:p99_ns"],
                 "searcher": "grid",
                 "budget": {"base_samples": 3, "rungs": 1, "eta": 2},
                 "depth": 3,
             }},
        ],
    }
    base.update(overrides)
    return base


class TestSpecValidation:
    def test_valid_spec_parses(self):
        spec = SuiteSpec.from_dict(spec_dict())
        assert spec.name == "tiny"
        assert [c.name for c in spec.campaigns] == ["micro"]
        assert spec.services[0].schedule.tenants[0].slo_p99_ms == 2.0
        assert spec.tunes[0].spec.workload == "mem_read"

    def test_schema_field_required(self):
        with pytest.raises(ConfigurationError, match="schema"):
            SuiteSpec.from_dict(spec_dict(schema="repro.suite/v0"))

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown suite fields"):
            SuiteSpec.from_dict(spec_dict(extra=1))

    def test_empty_suite_rejected(self):
        with pytest.raises(ConfigurationError, match="nothing to run"):
            SuiteSpec.from_dict(spec_dict(campaigns=[], services=[], tunes=[]))

    def test_entry_names_must_be_directory_safe(self):
        bad = spec_dict()
        bad["campaigns"][0]["name"] = "Bad Name"
        with pytest.raises(ConfigurationError, match="lowercase"):
            SuiteSpec.from_dict(bad)

    def test_duplicate_entry_names_rejected(self):
        bad = spec_dict()
        bad["campaigns"].append(dict(bad["campaigns"][0]))
        with pytest.raises(ConfigurationError, match="unique"):
            SuiteSpec.from_dict(bad)

    def test_campaign_needs_exactly_one_of_only_scenarios(self):
        bad = spec_dict()
        bad["campaigns"][0]["only"] = ["table3"]
        with pytest.raises(ConfigurationError, match="exactly one"):
            SuiteSpec.from_dict(bad)

    def test_unknown_experiment_rejected(self):
        bad = spec_dict()
        bad["campaigns"][0] = {"name": "micro", "only": ["table99"]}
        with pytest.raises(ConfigurationError, match="unknown experiments"):
            SuiteSpec.from_dict(bad)

    def test_kernel_profile_false_disables_pass(self):
        spec = SuiteSpec.from_dict(spec_dict(kernel_profile=False))
        assert spec.profile_job() is None

    def test_kernel_profile_defaults_to_first_campaign_job(self):
        spec = SuiteSpec.from_dict(spec_dict())
        experiment, kwargs, seed = spec.profile_job()
        assert experiment == "table3"
        assert kwargs["samples"] == 6

    def test_kernel_profile_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="kernel_profile"):
            SuiteSpec.from_dict(
                spec_dict(kernel_profile={"experiment": "nope"})
            )

    def test_schedule_path_resolves_relative_to_spec(self, tmp_path):
        schedule = spec_dict()["services"][0]["schedule"]
        (tmp_path / "sched.json").write_text(
            json.dumps(schedule), encoding="utf-8"
        )
        spec = spec_dict()
        spec["services"][0]["schedule"] = "sched.json"
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        loaded = SuiteSpec.load(path)
        assert loaded.services[0].schedule.name == "tiny_svc"

    def test_missing_schedule_path_reports_context(self, tmp_path):
        spec = spec_dict()
        spec["services"][0]["schedule"] = "nope.json"
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="cannot read schedule"):
            SuiteSpec.load(path)


@pytest.fixture(scope="module")
def suite_runs(tmp_path_factory):
    """The same tiny suite at jobs=2 (cold cache) and jobs=1 (warm).

    This is the CI shape: the second run replays campaign jobs from the
    content-addressed cache, so byte-identity across the two runs also
    proves cache entries carry the full artifact payload.
    """
    from repro.campaign import ResultCache

    spec = SuiteSpec.from_dict(spec_dict())
    cache_dir = tmp_path_factory.mktemp("suite-cache")
    outs = {}
    for jobs in (2, 1):
        out = tmp_path_factory.mktemp(f"suite-j{jobs}")
        result = SuiteRunner(
            spec, out, jobs=jobs, cache=ResultCache(cache_dir)
        ).run()
        assert result.ok, result.failures
        outs[jobs] = out
    return outs


class TestSuiteRun:
    def test_artifact_layout(self, suite_runs):
        out = suite_runs[1]
        for name in ("report.json", "report.html", "kernel_profile.json",
                     "campaign-micro", "service-svc", "tune-grid"):
            assert (out / name).exists(), name
        assert (out / "campaign-micro" / "attribution.jsonl").exists()
        assert (out / "service-svc" / "run_table.jsonl").exists()
        assert (out / "tune-grid" / "pareto.jsonl").exists()

    def test_report_json_byte_identical_across_jobs(self, suite_runs):
        a = (suite_runs[1] / "report.json").read_bytes()
        b = (suite_runs[2] / "report.json").read_bytes()
        assert a == b

    def test_self_diff_passes_with_no_findings(self, suite_runs):
        baseline = load_report(suite_runs[1])
        new = load_report(suite_runs[2])
        result = diff_reports(baseline, new)
        assert result.verdict == "PASS"
        assert result.findings == []
        assert result.compared > 0

    def test_report_covers_every_section(self, suite_runs):
        report = load_report(suite_runs[1])
        assert report["schema"] == "repro.report/v1"
        assert [c["name"] for c in report["campaigns"]] == ["micro"]
        assert [s["name"] for s in report["services"]] == ["svc"]
        assert [t["name"] for t in report["tunes"]] == ["grid"]
        assert report["kernel"]["experiment"] == "table3"

    def test_slo_verdicts_in_report(self, suite_runs):
        report = load_report(suite_runs[1])
        slo = report["services"][0]["slo"]
        assert set(slo) == {"reader"}
        assert slo["reader"]["target_p99_ms"] == 2.0
        assert slo["reader"]["windows_judged"] >= 1

    def test_report_json_carries_no_wall_clock(self, suite_runs):
        # kernel wall times live in kernel_profile.json only; report.json
        # must stay a pure function of the simulated work
        report = load_report(suite_runs[1])
        text = json.dumps(report)
        assert "wall" not in text
        assert "total_s" not in text
        profile = json.loads(
            (suite_runs[1] / "kernel_profile.json").read_text(encoding="utf-8")
        )
        assert any("total_s" in str(k) or "wall" in str(k)
                   for k in json.dumps(profile).split('"'))

    def test_html_is_self_contained(self, suite_runs):
        html = (suite_runs[1] / "report.html").read_text(encoding="utf-8")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert html.count("<svg") >= 3

    def test_no_profile_run_omits_kernel_section(self, tmp_path):
        spec = SuiteSpec.from_dict(spec_dict(
            services=[], tunes=[], kernel_profile=False,
        ))
        result = SuiteRunner(spec, tmp_path / "out", cache=None).run()
        assert result.ok
        report = load_report(tmp_path / "out")
        assert report.get("kernel") is None
        assert not (tmp_path / "out" / "kernel_profile.json").exists()
