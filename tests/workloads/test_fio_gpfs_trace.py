"""Tests for the FIO runner, GPFS writer, and trace generators."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.sim import Rng, Simulator
from repro.storage import MRAM_PCIE, NVRAM_PCIE, PcieAttachedStore, SolidStateDrive
from repro.units import CACHE_LINE_BYTES, GIB, MIB
from repro.workloads import (
    FioJob,
    FioRunner,
    GpfsJob,
    GpfsWriter,
    TraceSpec,
    pointer_chase,
    random_lines,
    sequential,
    strided,
)


class TestFio:
    def test_latency_matches_device(self):
        sim = Simulator()
        store = PcieAttachedStore(sim, 1 * GIB, NVRAM_PCIE)
        result = FioRunner(sim).run(store, FioJob(rw="randread", total_ios=8))
        assert 17 <= result.mean_latency_us <= 25  # NVRAM read ~21 us

    def test_iops_inverse_of_latency_at_qd1(self):
        sim = Simulator()
        store = PcieAttachedStore(sim, 1 * GIB, MRAM_PCIE)
        result = FioRunner(sim).run(store, FioJob(rw="randread", total_ios=16))
        assert result.iops == pytest.approx(1e6 / result.mean_latency_us, rel=0.05)

    def test_queue_depth_raises_iops(self):
        def iops(depth):
            sim = Simulator()
            store = PcieAttachedStore(sim, 1 * GIB, MRAM_PCIE)
            return FioRunner(sim).run(
                store, FioJob(rw="randread", iodepth=depth, total_ios=32)
            ).iops

        assert iops(4) > 1.5 * iops(1)

    def test_write_job_uses_write_path(self):
        sim = Simulator()
        store = PcieAttachedStore(sim, 1 * GIB, NVRAM_PCIE)
        result = FioRunner(sim).run(store, FioJob(rw="randwrite", total_ios=8))
        assert store.writes == 8
        assert store.reads == 0
        assert 20 <= result.mean_latency_us <= 30  # NVRAM write ~25 us

    def test_p99_at_least_mean(self):
        sim = Simulator()
        store = SolidStateDrive(sim, 1 * GIB)
        result = FioRunner(sim).run(store, FioJob(total_ios=32, iodepth=4))
        assert result.p99_latency_us >= result.mean_latency_us * 0.99

    def test_invalid_mode_rejected(self):
        with pytest.raises(StorageError):
            FioJob(rw="randrw")

    def test_deterministic_given_seed(self):
        def run():
            sim = Simulator()
            store = SolidStateDrive(sim, 1 * GIB)
            return FioRunner(sim).run(store, FioJob(total_ios=16, seed=5)).iops

        assert run() == run()


class TestGpfs:
    def test_iops_includes_software_overhead(self):
        class InstantStore:
            def write(self, offset, nbytes):
                from repro.sim import Signal
                sig = Signal("w")
                sig.trigger(None)
                return sig

        sim = Simulator()
        job = GpfsJob(total_writes=10, software_overhead_us=5.5)
        result = GpfsWriter(sim).run(InstantStore(), job)
        # even a zero-latency store is bounded by the software path
        assert result.iops <= 1e6 / 5.5 * 1.01

    def test_writes_counted(self):
        sim = Simulator()
        ssd = SolidStateDrive(sim, 1 * GIB)

        class Store:
            def write(self, offset, nbytes):
                return ssd.submit_write(offset, nbytes)

        result = GpfsWriter(sim).run(Store(), GpfsJob(total_writes=12))
        assert result.total_writes == 12
        assert ssd.writes == 12


class TestTraces:
    def spec(self, lines=64, accesses=32):
        return TraceSpec(base=0, size_bytes=lines * CACHE_LINE_BYTES, num_accesses=accesses)

    def test_sequential_wraps(self):
        addrs = list(sequential(TraceSpec(0, 4 * CACHE_LINE_BYTES, 6)))
        assert addrs == [0, 128, 256, 384, 0, 128]

    def test_strided(self):
        addrs = list(strided(self.spec(lines=8, accesses=4), stride_lines=2))
        assert addrs == [0, 256, 512, 768]

    def test_random_lines_in_range(self):
        spec = self.spec()
        addrs = list(random_lines(spec, Rng(3)))
        assert all(0 <= a < spec.size_bytes for a in addrs)
        assert all(a % CACHE_LINE_BYTES == 0 for a in addrs)

    def test_pointer_chase_is_permutation(self):
        spec = self.spec(lines=32, accesses=32)
        chain = pointer_chase(spec, Rng(4))
        assert sorted(chain) == [i * CACHE_LINE_BYTES for i in range(32)]

    def test_pointer_chase_deterministic(self):
        spec = self.spec()
        assert pointer_chase(spec, Rng(9)) == pointer_chase(spec, Rng(9))

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceSpec(0, 64, 10)  # smaller than one line
        with pytest.raises(ConfigurationError):
            TraceSpec(0, 1024, 0)

    def test_zero_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            list(strided(self.spec(), 0))
