"""Replay-workload determinism and generator shape.

Determinism is the acceptance gate for the hybrid campaign artifacts:
``generate`` must be a pure function of (workload, spec, seed) and
``trace_bytes`` its canonical encoding — same seed, same bytes, on any
host at any worker count.  Seeds are also prefix-stable in
``num_accesses`` so a tuner rung promotion *extends* a config's rung-0
stream instead of redrawing it.
"""

import pytest

from repro.errors import ConfigurationError
from repro.sim import derive_seed
from repro.units import CACHE_LINE_BYTES
from repro.workloads.replay import (
    GRAPH_BURST_LINES,
    KV_WRITE_FRACTION,
    REPLAY_WORKLOADS,
    generate,
    replay,
    replay_depth,
    trace_bytes,
)
from repro.workloads.trace import TraceSpec

SPEC = TraceSpec(base=1 << 20, size_bytes=256 * 1024, num_accesses=200)


class TestDeterminism:
    @pytest.mark.parametrize("workload", sorted(REPLAY_WORKLOADS))
    def test_same_seed_same_bytes(self, workload):
        a = trace_bytes(workload, SPEC, seed=7)
        b = trace_bytes(workload, SPEC, seed=7)
        assert a == b

    @pytest.mark.parametrize("workload", sorted(REPLAY_WORKLOADS))
    def test_different_seed_different_trace(self, workload):
        assert trace_bytes(workload, SPEC, 1) != trace_bytes(workload, SPEC, 2)

    def test_kv_stream_is_prefix_stable_in_num_accesses(self):
        short = TraceSpec(base=SPEC.base, size_bytes=SPEC.size_bytes,
                          num_accesses=50)
        seed = derive_seed(3, "trial")
        assert generate("kv", SPEC, seed)[:50] == generate("kv", short, seed)

    def test_trace_bytes_is_ascii_json_with_identity(self):
        blob = trace_bytes("graph", SPEC, seed=9)
        assert blob == blob.decode("ascii").encode("ascii")
        assert b'"seed":9' in blob and b'"workload":"graph"' in blob


class TestGeneratorShape:
    def test_graph_is_read_only_bursts_within_span(self):
        ops = generate("graph", SPEC, seed=0)
        assert len(ops) == SPEC.num_accesses
        assert all(op == "read" for op, _ in ops)
        lo, hi = SPEC.base, SPEC.base + SPEC.size_bytes
        assert all(lo <= addr < hi and addr % CACHE_LINE_BYTES == 0
                   for _, addr in ops)
        # bursts are sequential: many consecutive-line steps
        steps = [b - a for (_, a), (_, b) in zip(ops, ops[1:])]
        assert steps.count(CACHE_LINE_BYTES) > len(ops) // GRAPH_BURST_LINES

    def test_kv_mixes_reads_and_writes_around_the_set_fraction(self):
        ops = generate("kv", SPEC, seed=0)
        writes = sum(1 for op, _ in ops if op == "write")
        assert 0.5 * KV_WRITE_FRACTION < writes / len(ops) \
            < 1.5 * KV_WRITE_FRACTION

    def test_kv_popularity_is_skewed(self):
        ops = generate("kv", SPEC, seed=0)
        pages = [addr // 4096 for _, addr in ops]
        top = max(pages.count(p) for p in set(pages))
        assert top > len(ops) / len(set(pages))  # far from uniform

    def test_pointer_is_a_serial_cycle(self):
        ops = generate("pointer", SPEC, seed=0)
        assert all(op == "read" for op, _ in ops)
        assert replay_depth("pointer", 8) == 1
        assert replay_depth("kv", 8) == 8

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            generate("stream", SPEC, seed=0)


class TestReplayEngine:
    def test_depth_and_ops_validated(self):
        with pytest.raises(ConfigurationError):
            replay(None, [("read", 0)], depth=0)
        with pytest.raises(ConfigurationError):
            replay(None, [], depth=4)
