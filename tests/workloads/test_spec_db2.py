"""Tests for the SPEC CINT2006 and DB2 BLU workload models."""

import pytest

from repro.workloads import Db2BluWorkload, NUM_QUERIES, SpecSuite, cint2006_profiles, profile_by_name


class TestSpecSuite:
    def test_twelve_benchmarks(self):
        assert len(cint2006_profiles()) == 12

    def test_lookup_by_short_name(self):
        assert profile_by_name("mcf").name == "429.mcf"
        with pytest.raises(KeyError):
            profile_by_name("doom3")

    def test_ratios_decrease_with_latency(self):
        suite = SpecSuite()
        fast = suite.ratios(97)
        slow = suite.ratios(558)
        for name in fast:
            assert slow[name] <= fast[name]

    def test_figure7_population_shape(self):
        # the paper's claims at ~6x latency (97 -> 558 ns)
        suite = SpecSuite()
        pop = suite.population_summary(97, 558)
        assert pop["under_2pct"] >= 0.45          # "about half ... less than 2%"
        assert pop["under_10pct"] >= 0.6          # "two-thirds ... under 10%"
        assert pop["band_15_to_35pct"] > 0        # "15% to 35%" band exists
        assert pop["over_50pct"] == pytest.approx(1 / 12)  # exactly one (mcf)
        assert pop["max"] > 0.50

    def test_mcf_is_the_outlier(self):
        suite = SpecSuite()
        degs = suite.degradations(97, 558)
        worst = max(degs, key=degs.get)
        assert worst == "429.mcf"

    def test_libquantum_prefetch_friendly(self):
        # streaming + prefetchable: high MPKI but modest sensitivity
        suite = SpecSuite()
        degs = suite.degradations(97, 558)
        assert degs["462.libquantum"] < 0.10

    def test_sweep_shape(self):
        suite = SpecSuite()
        series = suite.sweep([97, 390, 438, 534, 558])
        assert len(series) == 12
        for values in series.values():
            assert values == sorted(values, reverse=True)

    def test_figure6_range_mild(self):
        # Figure 6's range (79 -> 249 ns) shows milder degradation than Fig 7
        suite = SpecSuite()
        fig6 = suite.degradations(79, 249)
        fig7 = suite.degradations(97, 558)
        for name in fig6:
            assert fig6[name] <= fig7[name]


class TestDb2Blu:
    def test_29_queries(self):
        assert len(Db2BluWorkload().queries) == NUM_QUERIES == 29

    def test_table2_anchor_at_79ns(self):
        workload = Db2BluWorkload()
        assert workload.total_runtime_s(79) == pytest.approx(5_387, rel=0.001)

    def test_table2_anchor_at_249ns(self):
        workload = Db2BluWorkload()
        assert workload.total_runtime_s(249) == pytest.approx(5_802, rel=0.001)

    def test_interpolated_points_match_table2_shape(self):
        # 83 ns -> ~5451 s, 116 ns -> ~5484 s in the paper
        workload = Db2BluWorkload()
        assert workload.total_runtime_s(83) == pytest.approx(5_451, rel=0.01)
        assert workload.total_runtime_s(116) == pytest.approx(5_484, rel=0.01)

    def test_headline_claim_under_8pct(self):
        workload = Db2BluWorkload()
        assert workload.degradation(79, 249) < 0.08

    def test_runtime_monotone_in_latency(self):
        workload = Db2BluWorkload()
        runtimes = [workload.total_runtime_s(lat) for lat in (79, 100, 150, 249, 400)]
        assert runtimes == sorted(runtimes)

    def test_per_query_sums_to_total(self):
        workload = Db2BluWorkload()
        per_query = workload.per_query_runtimes(100)
        assert sum(per_query.values()) == pytest.approx(workload.total_runtime_s(100))

    def test_most_sensitive_queries_identified(self):
        workload = Db2BluWorkload()
        top = workload.most_sensitive(3)
        floor = max(q.sensitivity_s_per_ns for q in workload.queries[3:])
        assert all(q.sensitivity_s_per_ns >= 0 for q in top)
        assert top[0].sensitivity_s_per_ns == max(
            q.sensitivity_s_per_ns for q in workload.queries
        )
