"""CampaignRunner semantics: parallel=serial, faults, retries, resume.

Failure-path tests use the hidden ``_selftest_*`` registry fixtures —
real experiments that misbehave on demand and are importable inside
worker processes.
"""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    ResultCache,
    ScenarioMatrix,
    completed_job_ids,
    read_manifest,
)
from repro.telemetry import MetricsRegistry, read_jsonl


def echo_matrix(values, base_seed=0):
    matrix = ScenarioMatrix(base_seed=base_seed)
    matrix.add("_selftest_echo", value=list(values))
    return matrix


class TestExecution:
    def test_parallel_tables_equal_serial_tables(self):
        jobs = ScenarioMatrix.paper(only=["table1", "fig8"]).expand()
        serial = CampaignRunner(jobs, workers=1).run()
        parallel = CampaignRunner(jobs, workers=2).run()
        assert serial.tables() == parallel.tables()
        assert [o.job for o in parallel.outcomes] == jobs  # matrix order kept

    def test_worker_runs_experiment_with_job_seed(self):
        jobs = echo_matrix([7], base_seed=3).expand()
        report = CampaignRunner(jobs, workers=2).run()
        (table,) = report.tables()
        assert table.rows[0] == [7, jobs[0].seed]

    def test_outcomes_carry_worker_metrics(self):
        jobs = ScenarioMatrix.paper(only=["table3"]).expand()
        report = CampaignRunner(jobs, workers=2).run()
        metrics = report.outcomes[0].metrics
        assert metrics["dmi.frames_sent"] > 0

    def test_failed_job_does_not_sink_the_campaign(self):
        matrix = echo_matrix([1, 2])
        matrix.add("_selftest_fail")
        report = CampaignRunner(matrix.expand(), workers=2, retries=0).run()
        assert len(report.succeeded) == 2
        (failed,) = report.failed
        assert failed.job.experiment == "_selftest_fail"
        assert "RuntimeError" in failed.error
        assert "selftest failure" in failed.traceback
        assert report.tables() == CampaignRunner(
            echo_matrix([1, 2]).expand(), workers=1
        ).run().tables()

    def test_bounded_retry_with_backoff(self):
        matrix = ScenarioMatrix()
        matrix.add("_selftest_fail")
        report = CampaignRunner(
            matrix.expand(), workers=2, retries=2, backoff_s=0.01
        ).run()
        assert report.failed[0].attempts == 3

    def test_timeout_marks_job_failed(self):
        matrix = echo_matrix([1])
        matrix.add("_selftest_sleep", seconds=2.0)
        report = CampaignRunner(
            matrix.expand(), workers=2, retries=0, timeout_s=0.3
        ).run()
        assert len(report.succeeded) == 1
        (failed,) = report.failed
        assert failed.job.experiment == "_selftest_sleep"
        assert "TimeoutError" in failed.error

    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            CampaignRunner([], workers=0)
        with pytest.raises(ValueError):
            CampaignRunner([], retries=-1)
        with pytest.raises(ValueError):
            CampaignRunner([], resume=True, cache=None)


class TestCacheIntegration:
    def test_second_run_served_entirely_from_cache(self, tmp_path):
        jobs = echo_matrix([1, 2, 3]).expand()
        cold = CampaignRunner(jobs, workers=2, cache=ResultCache(tmp_path)).run()
        warm = CampaignRunner(jobs, workers=2, cache=ResultCache(tmp_path)).run()
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(jobs)
        assert warm.tables() == cold.tables()

    def test_failed_jobs_are_not_cached(self, tmp_path):
        matrix = ScenarioMatrix()
        matrix.add("_selftest_fail")
        cache = ResultCache(tmp_path)
        CampaignRunner(matrix.expand(), workers=1, retries=0, cache=cache).run()
        assert cache.entry_count() == 0


class TestManifestAndResume:
    def test_manifest_journals_every_job(self, tmp_path):
        matrix = echo_matrix([1, 2])
        matrix.add("_selftest_fail")
        manifest = tmp_path / "manifest.jsonl"
        CampaignRunner(
            matrix.expand(), workers=2, retries=0,
            cache=ResultCache(tmp_path / "cache"),
            manifest_path=str(manifest),
        ).run()
        records = read_manifest(str(manifest))
        assert records[0]["kind"] == "campaign"
        jobs = [r for r in records if r["kind"] == "job"]
        assert len(jobs) == 3
        by_id = {r["job_id"]: r for r in jobs}
        statuses = sorted(r["status"] for r in jobs)
        assert statuses == ["failed", "ok", "ok"]
        failed = next(r for r in jobs if r["status"] == "failed")
        assert "selftest failure" in failed["traceback"]
        for r in jobs:
            assert r["key"] and r["attempts"] >= 1
        assert set(by_id) == {j.job_id for j in matrix.expand()}

    def test_resume_completes_artificially_failed_job(self, tmp_path):
        # satellite: --resume finishes a manifest holding one failed job
        jobs = echo_matrix([1, 2]).expand()
        manifest = tmp_path / "manifest.jsonl"
        cache_dir = tmp_path / "cache"
        CampaignRunner(
            jobs, workers=1, cache=ResultCache(cache_dir),
            manifest_path=str(manifest),
        ).run()

        # artificially fail the second job: journal a failed record and
        # evict its cached result, as if the worker died mid-campaign
        victim = jobs[1]
        key = ResultCache(cache_dir).key_for(victim)
        with open(manifest, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "schema": "repro.campaign/v1", "kind": "job",
                "job_id": victim.job_id, "status": "failed",
                "source": "run", "attempts": 1,
            }) + "\n")
        (cache_dir / key[:2] / f"{key}.pkl").unlink()

        report = CampaignRunner(
            jobs, workers=1, cache=ResultCache(cache_dir),
            manifest_path=str(manifest), resume=True,
        ).run()
        assert not report.failed
        sources = {o.job.job_id: o.source for o in report.outcomes}
        assert sources[jobs[0].job_id] == "resume"   # replayed, not re-run
        assert sources[victim.job_id] == "run"       # actually re-executed
        done = completed_job_ids(read_manifest(str(manifest)))
        assert set(done) == {j.job_id for j in jobs}

    def test_resume_ignores_stale_manifest_entries(self, tmp_path):
        # ok in the manifest but evicted from cache ⇒ must re-run
        jobs = echo_matrix([5]).expand()
        manifest = tmp_path / "manifest.jsonl"
        CampaignRunner(
            jobs, workers=1, cache=ResultCache(tmp_path / "cache"),
            manifest_path=str(manifest),
        ).run()
        key = ResultCache(tmp_path / "cache").key_for(jobs[0])
        (tmp_path / "cache" / key[:2] / f"{key}.pkl").unlink()
        report = CampaignRunner(
            jobs, workers=1, cache=ResultCache(tmp_path / "cache"),
            manifest_path=str(manifest), resume=True,
        ).run()
        assert report.outcomes[0].source == "run"
        assert report.outcomes[0].ok


class TestTelemetryMerge:
    def test_merged_artifact_aggregates_worker_snapshots(self, tmp_path):
        jobs = ScenarioMatrix.paper(only=["table3", "table2"]).expand()
        report = CampaignRunner(jobs, workers=2).run()
        path = tmp_path / "metrics.jsonl"
        report.write_telemetry(str(path), params={"jobs": 2})

        records = read_jsonl(str(path))
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "meta"
        assert kinds.count("result") == len(report.tables())
        snapshots = [r for r in records if r["kind"] == "snapshot"]
        assert snapshots[-1]["label"] == "merged"
        per_job = [s for s in snapshots if s["label"].startswith("job:")]
        assert len(per_job) == 2
        merged = snapshots[-1]["metrics"]
        total_frames = sum(s["metrics"]["dmi.frames_sent"] for s in per_job)
        assert merged["dmi.frames_sent"] == total_frames

    def test_attribution_merges_deterministically_across_workers(self, tmp_path):
        # two journey-producing jobs; worker count and completion order
        # must not leak into the merged attribution artifact
        matrix = ScenarioMatrix()
        matrix.add("table3", samples=[2, 3])
        jobs = matrix.expand()
        serial = CampaignRunner(jobs, workers=1).run()
        parallel = CampaignRunner(jobs, workers=2).run()
        a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        serial.write_attribution(str(a))
        parallel.write_attribution(str(b))
        assert a.read_bytes() == b.read_bytes()

        records = read_jsonl(str(a))
        meta = records[0]
        assert meta["kind"] == "meta"
        assert meta["sources"] == sorted(f"job:{j.job_id}" for j in jobs)
        journeys = [r for r in records if r["kind"] == "journey"]
        # 6 configurations x (2 + 3) samples, each tagged with its job
        assert len(journeys) == meta["journeys"] == 30
        assert {j["source"] for j in journeys} == set(meta["sources"])
        assert any(r["kind"] == "stage_summary" for r in records)

    def test_merge_snapshot_rules(self):
        merged = MetricsRegistry.merge_snapshots([
            {"a.count": 2, "a.min": 1.0, "a.max": 5.0, "a.mean": 3.0, "c": 7},
            {"a.count": 3, "a.min": 0.5, "a.max": 9.0, "a.mean": 4.0, "c": 1},
        ])
        assert merged["a.count"] == 5
        assert merged["a.min"] == 0.5
        assert merged["a.max"] == 9.0
        assert merged["a.mean"] == 4.0   # last wins: per-run statistic
        assert merged["c"] == 8          # counters sum
