"""ScenarioMatrix expansion: grids, seeds, identity, determinism."""

import pytest

from repro.campaign import (
    CampaignJob,
    ScenarioMatrix,
    experiment_names,
    get_experiment,
)
from repro.errors import ConfigurationError
from repro.sim import derive_seed


class TestExpansion:
    def test_paper_matrix_covers_every_experiment_in_order(self):
        jobs = ScenarioMatrix.paper().expand()
        # fault drills register paper=False and only run when named
        paper = [n for n in experiment_names() if get_experiment(n).paper]
        assert [j.experiment for j in jobs] == paper

    def test_fault_experiments_run_only_when_named(self):
        jobs = ScenarioMatrix.paper(only=["ber_sweep"]).expand()
        assert [j.experiment for j in jobs] == ["ber_sweep"]

    def test_paper_matrix_pins_harness_default_seed(self):
        assert all(j.seed == 0 for j in ScenarioMatrix.paper().expand())

    def test_paper_only_filter_preserves_order(self):
        jobs = ScenarioMatrix.paper(only=["table3", "table1"]).expand()
        assert [j.experiment for j in jobs] == ["table1", "table3"]

    def test_cross_product(self):
        matrix = ScenarioMatrix()
        matrix.add("fio", ios=[8, 32], iodepth=[1, 4], seed=0)
        jobs = matrix.expand()
        assert len(jobs) == 4
        combos = {(j.kwargs_dict["ios"], j.kwargs_dict["iodepth"]) for j in jobs}
        assert combos == {(8, 1), (8, 4), (32, 1), (32, 4)}

    def test_scalar_axis_is_singleton(self):
        jobs = ScenarioMatrix().add("table3", samples=8, seed=3).expand()
        assert len(jobs) == 1
        assert jobs[0].kwargs_dict == {"samples": 8}
        assert jobs[0].seed == 3

    def test_defaults_fill_unnamed_axes(self):
        jobs = ScenarioMatrix().add("table3", seed=0).expand()
        assert jobs[0].kwargs_dict == {"samples": 24}

    def test_duplicate_cells_collapse(self):
        matrix = ScenarioMatrix()
        matrix.add("table1", seed=0)
        matrix.add("table1", seed=0)
        assert len(matrix) == 1

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioMatrix().add("table99")

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioMatrix().add("table3", samples=[])

    def test_hidden_experiments_not_in_paper_matrix(self):
        names = {j.experiment for j in ScenarioMatrix.paper().expand()}
        assert not any(name.startswith("_selftest") for name in names)


class TestSeeding:
    def test_derived_seed_depends_only_on_job_identity(self):
        # the same cell gets the same seed no matter what else the
        # matrix holds or in which order scenarios were added
        lone = ScenarioMatrix(base_seed=42).add("table3", samples=[8])
        crowded = ScenarioMatrix(base_seed=42)
        crowded.add("fio", ios=[8, 32])
        crowded.add("table3", samples=[24, 8])
        lone_seed = lone.expand()[0].seed
        crowded_seeds = {
            j.kwargs_dict["samples"]: j.seed
            for j in crowded.expand()
            if j.experiment == "table3"
        }
        assert crowded_seeds[8] == lone_seed
        assert crowded_seeds[24] != crowded_seeds[8]

    def test_derivation_matches_rng_child_seed_mix(self):
        job = ScenarioMatrix(base_seed=7).add("table3", samples=[8]).expand()[0]
        assert job.seed == derive_seed(7, 'table3|{"samples":8}')

    def test_base_seed_changes_every_derived_seed(self):
        a = ScenarioMatrix(base_seed=1).add("table3", samples=[8]).expand()[0]
        b = ScenarioMatrix(base_seed=2).add("table3", samples=[8]).expand()[0]
        assert a.seed != b.seed

    def test_explicit_seed_axis_overrides_derivation(self):
        jobs = ScenarioMatrix(base_seed=9).add("table3", seed=[5, 6]).expand()
        assert sorted(j.seed for j in jobs) == [5, 6]


class TestJobIdentity:
    def test_job_id_stable_and_readable(self):
        job = CampaignJob.make("table3", {"samples": 8}, 5)
        assert job.job_id == "table3[samples=8]#s5"

    def test_jobs_are_hashable_value_objects(self):
        a = CampaignJob.make("fio", {"ios": 8, "iodepth": 4}, 0)
        b = CampaignJob.make("fio", {"iodepth": 4, "ios": 8}, 0)
        assert a == b and hash(a) == hash(b)
