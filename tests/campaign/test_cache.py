"""Result-cache correctness: hits, misses, fingerprint invalidation."""

from repro.campaign import CampaignJob, ResultCache, code_fingerprint, job_key
from repro.core.results import ResultTable


def echo_table(value):
    table = ResultTable("t", ["v"])
    table.add_row(value)
    return table


JOB = CampaignJob.make("_selftest_echo", {"value": 1}, 0)


class TestKeying:
    def test_key_is_content_addressed(self):
        assert job_key(JOB, "fp") == job_key(JOB, "fp")
        assert len(job_key(JOB, "fp")) == 64

    def test_key_changes_with_kwargs(self):
        other = CampaignJob.make("_selftest_echo", {"value": 2}, 0)
        assert job_key(JOB, "fp") != job_key(other, "fp")

    def test_key_changes_with_seed(self):
        other = CampaignJob.make("_selftest_echo", {"value": 1}, 1)
        assert job_key(JOB, "fp") != job_key(other, "fp")

    def test_key_changes_with_experiment(self):
        other = CampaignJob.make("_selftest_fail", {"value": 1}, 0)
        assert job_key(JOB, "fp") != job_key(other, "fp")

    def test_key_changes_with_code_fingerprint(self):
        assert job_key(JOB, "fp-a") != job_key(JOB, "fp-b")

    def test_key_changes_with_attribution_mode(self):
        # journeys-mode and summary-mode workers produce different
        # artifact payloads; they must not share a content address
        assert job_key(JOB, "fp", mode="journeys") != job_key(
            JOB, "fp", mode="summary"
        )

    def test_fingerprint_tracks_source_content(self, tmp_path):
        (tmp_path / "mod.py").write_text("A = 1\n")
        fp1 = code_fingerprint(str(tmp_path))
        (tmp_path / "mod.py").write_text("A = 2\n")
        # memoized per root path string — use a distinct path for the edit
        import repro.campaign.cache as cache_mod

        cache_mod._FINGERPRINT_CACHE.clear()
        fp2 = code_fingerprint(str(tmp_path))
        assert fp1 != fp2

    def test_fingerprint_of_package_is_memoized_and_stable(self):
        assert code_fingerprint() == code_fingerprint()


class TestStore:
    def test_hit_on_identical_job(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        assert cache.get(JOB) is None
        cache.put(JOB, echo_table(1))
        hit = cache.get(JOB)
        assert hit["result"] == echo_table(1)
        assert cache.hits == 1 and cache.misses == 1
        assert JOB in cache

    def test_entry_carries_full_job_payload(self, tmp_path):
        # warm replays must be artifact-identical to the original run:
        # metrics and attribution ride in the entry, not just the result
        cache = ResultCache(tmp_path, fingerprint="fp")
        cache.put(
            JOB, echo_table(1),
            metrics={"m": 1},
            attribution=[{"kind": "journey", "jid": 1}],
            attribution_summaries=[{"kind": "stage_summary"}],
        )
        hit = cache.get(JOB)
        assert hit["metrics"] == {"m": 1}
        assert hit["attribution"] == [{"kind": "journey", "jid": 1}]
        assert hit["attribution_summaries"] == [{"kind": "stage_summary"}]

    def test_modes_do_not_share_entries(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        cache.put(JOB, echo_table(1), mode="summary")
        assert cache.get(JOB, mode="journeys") is None
        assert cache.get(JOB, mode="summary")["result"] == echo_table(1)
        assert cache.contains(JOB, mode="summary")
        assert not cache.contains(JOB, mode="journeys")

    def test_miss_on_changed_kwargs_seed_or_code(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        cache.put(JOB, echo_table(1))
        assert cache.get(CampaignJob.make("_selftest_echo", {"value": 2}, 0)) is None
        assert cache.get(CampaignJob.make("_selftest_echo", {"value": 1}, 1)) is None
        stale_code = ResultCache(tmp_path, fingerprint="fp2")
        assert stale_code.get(JOB) is None

    def test_tuple_results_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        pair = (echo_table(1), echo_table(2))
        cache.put(JOB, pair)
        assert cache.get(JOB)["result"] == pair

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        key = cache.put(JOB, echo_table(1))
        payload = tmp_path / key[:2] / f"{key}.pkl"
        payload.write_bytes(b"not a pickle")
        assert cache.get(JOB) is None

    def test_sidecar_describes_entry(self, tmp_path):
        import json

        cache = ResultCache(tmp_path, fingerprint="fp")
        key = cache.put(JOB, echo_table(1))
        meta = json.loads((tmp_path / key[:2] / f"{key}.json").read_text())
        assert meta["experiment"] == "_selftest_echo"
        assert meta["kwargs"] == {"value": 1}
        assert meta["seed"] == 0
        assert meta["mode"] == "journeys"
        assert meta["fingerprint"] == "fp"

    def test_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="fp")
        assert cache.entry_count() == 0
        cache.put(JOB, echo_table(1))
        assert cache.entry_count() == 1
