"""Tests for the assembled ConTutto buffer (MBS + Avalon + knob + engines)."""

import struct

import pytest

from repro.dmi import Command, Opcode
from repro.errors import ConfigurationError, ProtocolError
from repro.fpga import ConTuttoBuffer, FpgaTimingConfig, LatencyKnob, MAX_POSITION
from repro.memory import DdrDram, SttMram
from repro.sim import Signal, Simulator
from repro.units import MIB


def make_contutto(sim, dimms=2, capacity=64 * MIB, **kwargs):
    devices = [
        DdrDram(capacity, name=f"dimm{i}", refresh_enabled=False)
        for i in range(dimms)
    ]
    return ConTuttoBuffer(sim, devices, **kwargs)


def run_command(sim, buffer, command):
    done = Signal("resp")
    buffer.handle_command(command, done.trigger)
    return sim.run_until_signal(done, timeout_ps=10**10)


class TestBasicOperation:
    def test_write_read_roundtrip(self):
        sim = Simulator()
        ct = make_contutto(sim)
        payload = bytes(range(128))
        run_command(sim, ct, Command(Opcode.WRITE, 0x2000, 0, payload))
        resp = run_command(sim, ct, Command(Opcode.READ, 0x2000, 1))
        assert resp.data == payload

    def test_lines_interleave_across_dimms(self):
        sim = Simulator()
        ct = make_contutto(sim, dimms=2)
        for i in range(6):
            run_command(sim, ct, Command(Opcode.WRITE, 128 * i, i, bytes([i] * 128)))
        assert ct.ports[0].writes_submitted == 3
        assert ct.ports[1].writes_submitted == 3

    def test_single_dimm_configuration(self):
        sim = Simulator()
        ct = make_contutto(sim, dimms=1)
        run_command(sim, ct, Command(Opcode.WRITE, 0, 0, bytes([1] * 128)))
        resp = run_command(sim, ct, Command(Opcode.READ, 0, 1))
        assert resp.data == bytes([1] * 128)

    def test_three_dimms_rejected(self):
        sim = Simulator()
        devices = [DdrDram(1 * MIB) for _ in range(3)]
        with pytest.raises(ConfigurationError):
            ConTuttoBuffer(sim, devices)

    def test_mismatched_dimm_capacities_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ConTuttoBuffer(sim, [DdrDram(1 * MIB), DdrDram(2 * MIB)])

    def test_works_over_mram(self):
        sim = Simulator()
        devices = [SttMram(64 * MIB, name=f"mram{i}") for i in range(2)]
        ct = ConTuttoBuffer(sim, devices)
        run_command(sim, ct, Command(Opcode.WRITE, 0, 0, b"\xaa" * 128))
        resp = run_command(sim, ct, Command(Opcode.READ, 0, 1))
        assert resp.data == b"\xaa" * 128


class TestExtensions:
    def test_flush_supported(self):
        sim = Simulator()
        ct = make_contutto(sim)
        assert ct.supports(Opcode.FLUSH)
        resp = run_command(sim, ct, Command(Opcode.FLUSH, 0, 0))
        assert resp.opcode is Opcode.FLUSH

    def test_flush_waits_for_outstanding_writes(self):
        sim = Simulator()
        ct = make_contutto(sim)
        write_done = Signal("w")
        flush_done = Signal("f")
        order = []
        ct.handle_command(
            Command(Opcode.WRITE, 0, 0, bytes(128)),
            lambda r: (order.append("write"), write_done.trigger(r)),
        )
        ct.handle_command(
            Command(Opcode.FLUSH, 0, 1),
            lambda r: (order.append("flush"), flush_done.trigger(r)),
        )
        sim.run_until_signal(flush_done, timeout_ps=10**10)
        assert order[0] == "write"

    def test_inline_ops_require_flag(self):
        sim = Simulator()
        plain = make_contutto(sim)
        assert not plain.supports(Opcode.MIN_STORE)
        with pytest.raises(ProtocolError):
            plain.handle_command(
                Command(Opcode.MIN_STORE, 0, 0, bytes(128)), lambda r: None
            )

    def test_min_store_executes(self):
        sim = Simulator()
        ct = make_contutto(sim, inline_accel=True)
        a = struct.pack("<32i", *range(32))
        b = struct.pack("<32i", *[31 - i for i in range(32)])
        run_command(sim, ct, Command(Opcode.WRITE, 0, 0, a))
        run_command(sim, ct, Command(Opcode.MIN_STORE, 0, 1, b))
        resp = run_command(sim, ct, Command(Opcode.READ, 0, 2))
        assert list(struct.unpack("<32i", resp.data)) == [
            min(i, 31 - i) for i in range(32)
        ]

    def test_cswap_returns_old_line(self):
        sim = Simulator()
        ct = make_contutto(sim, inline_accel=True)
        old = struct.pack("<32i", *([5] + [0] * 31))
        new = struct.pack("<32i", *([5] + [9] * 31))
        run_command(sim, ct, Command(Opcode.WRITE, 0, 0, old))
        resp = run_command(sim, ct, Command(Opcode.CSWAP, 0, 1, new))
        assert resp.data == old
        after = run_command(sim, ct, Command(Opcode.READ, 0, 2))
        assert after.data == new


class TestLatencyKnob:
    def read_latency(self, knob_position):
        sim = Simulator()
        ct = make_contutto(sim, knob_position=knob_position)
        t0 = sim.now_ps
        run_command(sim, ct, Command(Opcode.READ, 0x8000, 0))
        return sim.now_ps - t0

    def test_each_position_adds_24ns(self):
        base = self.read_latency(0)
        assert self.read_latency(2) == base + 2 * 24_000
        assert self.read_latency(6) == base + 6 * 24_000
        assert self.read_latency(7) == base + 7 * 24_000

    def test_out_of_range_position_rejected(self):
        knob = LatencyKnob()
        with pytest.raises(ConfigurationError):
            knob.set_position(MAX_POSITION + 1)
        with pytest.raises(ConfigurationError):
            knob.set_position(-1)

    def test_knob_settable_at_runtime(self):
        sim = Simulator()
        ct = make_contutto(sim)
        t0 = sim.now_ps
        run_command(sim, ct, Command(Opcode.READ, 0x8000, 0))
        base = sim.now_ps - t0
        ct.knob.set_position(3)
        # second read targets a different, equally cold DRAM bank so the only
        # latency difference is the knob setting
        t0 = sim.now_ps
        run_command(sim, ct, Command(Opcode.READ, 0x80000, 1))
        assert sim.now_ps - t0 == base + 3 * 24_000


class TestDesignConstraints:
    def test_timing_violating_config_rejected_at_build(self):
        sim = Simulator()
        bad = FpgaTimingConfig(crc_stages=2, preplace_rx_flops=False)
        with pytest.raises(ConfigurationError):
            make_contutto(sim, timing=bad)

    def test_endpoint_overheads_from_timing_model(self):
        sim = Simulator()
        ct = make_contutto(sim)
        tx, rx, prep, freeze = ct.endpoint_overheads()
        assert tx == ct.timing.tx_overhead_ps()
        assert rx == ct.timing.rx_overhead_ps()
        assert prep == ct.timing.replay_prep_ps()
        assert freeze is True

    def test_base_resources_match_table1(self):
        sim = Simulator()
        ct = make_contutto(sim)
        assert ct.resources().table()[0] == ("ALMs", 317_000, 136_856)

    def test_inline_accel_costs_resources(self):
        sim = Simulator()
        plain = make_contutto(sim)
        accel = make_contutto(sim, inline_accel=True)
        assert accel.resources().total().alms > plain.resources().total().alms

    def test_engines_track_occupancy(self):
        sim = Simulator()
        ct = make_contutto(sim)
        done = Signal("d")
        ct.handle_command(Command(Opcode.READ, 0, 0), done.trigger)
        # mid-flight (after decode), an engine should be claimed
        sim.run(until_ps=ct.clock.cycles_to_ps(3))
        assert ct.mbs.engines.busy_count == 1
        sim.run_until_signal(done, timeout_ps=10**10)
        assert ct.mbs.engines.busy_count == 0
