"""Tests for the TCAM and card-to-card PCIe expansion blocks."""

import pytest

from repro.errors import AccelError, ConfigurationError
from repro.fpga import CardToCardLink, ConTuttoBuffer, TernaryCam, base_design_resources
from repro.memory import DdrDram
from repro.sim import Simulator
from repro.units import MIB, S


class TestTernaryCam:
    def make(self, sim=None, **kwargs):
        return TernaryCam(sim or Simulator(), **kwargs)

    def test_exact_match(self):
        cam = self.make()
        cam.write(0, value=0xDEAD, mask=0xFFFF)
        index, _ = cam.lookup(0xDEAD)
        assert index == 0
        index, _ = cam.lookup(0xBEEF)
        assert index is None

    def test_ternary_dont_cares(self):
        cam = self.make()
        cam.write(0, value=0xAB00, mask=0xFF00)  # low byte is don't-care
        assert cam.lookup(0xAB42)[0] == 0
        assert cam.lookup(0xAB99)[0] == 0
        assert cam.lookup(0xAC42)[0] is None

    def test_priority_encoder_lowest_index_wins(self):
        cam = self.make()
        cam.write(5, value=0x10, mask=0xF0)
        cam.write(2, value=0x12, mask=0xFF)
        assert cam.lookup(0x12)[0] == 2  # more specific AND lower index

    def test_invalidate(self):
        cam = self.make()
        cam.write(0, 1, 0xFF)
        cam.invalidate(0)
        assert cam.lookup(1)[0] is None
        assert cam.occupancy == 0

    def test_single_cycle_lookup_regardless_of_occupancy(self):
        sim = Simulator()
        cam = self.make(sim, entries=256)
        for i in range(256):
            cam.write(i, i, 0xFF)
        _, t1 = cam.lookup(0)
        _, t2 = cam.lookup(255)
        assert t2 - t1 == cam.clock.period_ps

    def test_longest_prefix_match_routing(self):
        cam = self.make(key_bits=32)
        # /24 route at a lower index than the /16 covering route
        cam.add_prefix_route(0, 0x0A0B0C00, 24)
        cam.add_prefix_route(1, 0x0A0B0000, 16)
        assert cam.lookup(0x0A0B0C99)[0] == 0   # hits the /24
        assert cam.lookup(0x0A0B2222)[0] == 1   # falls back to the /16
        assert cam.lookup(0x0A0C0000)[0] is None

    def test_bounds_checked(self):
        cam = self.make(entries=4, key_bits=16)
        with pytest.raises(AccelError):
            cam.write(4, 0, 0)
        with pytest.raises(AccelError):
            cam.write(0, 1 << 16, 0)
        with pytest.raises(AccelError):
            cam.lookup(1 << 16)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(entries=0)

    def test_resource_cost_charged(self):
        design = base_design_resources()
        before = design.total().alms
        design.add("tcam")
        assert design.total().alms == before + 6_000

    def test_stats(self):
        cam = self.make()
        cam.write(0, 7, 0xFF)
        cam.lookup(7)
        cam.lookup(9)
        assert cam.lookups == 2
        assert cam.hits == 1


class TestCardToCardLink:
    def make_cards(self, sim):
        a = ConTuttoBuffer(
            sim, [DdrDram(64 * MIB, name=f"a{i}", refresh_enabled=False) for i in range(2)],
            name="ct_a",
        )
        b = ConTuttoBuffer(
            sim, [DdrDram(64 * MIB, name=f"b{i}", refresh_enabled=False) for i in range(2)],
            name="ct_b",
        )
        return a, b

    def test_transfer_moves_real_bytes(self):
        sim = Simulator()
        a, b = self.make_cards(sim)
        link = CardToCardLink(sim, a, b)
        payload = bytes(range(256)) * 64  # 16 KiB
        # seed card A's space through its own controllers (flat addresses)
        for off in range(0, len(payload), 8192):
            local = a._route(off)
            slave, slocal = a.avalon._route(local)
            slave.device.backing.write(slocal, payload[off : off + 8192])
        proc = link.transfer(a, 0, b, 0, len(payload))
        moved = sim.run_until_signal(proc.done, timeout_ps=10**13)
        assert moved == len(payload)
        # verify on card B
        got = bytearray()
        for off in range(0, len(payload), 8192):
            local = b._route(off)
            slave, slocal = b.avalon._route(local)
            got += slave.device.backing.read(slocal, 8192)
        assert bytes(got) == payload

    def test_link_bandwidth_bounds_throughput(self):
        sim = Simulator()
        a, b = self.make_cards(sim)
        link = CardToCardLink(sim, a, b, link_gb_s=3.2)
        nbytes = 1 * MIB
        t0 = sim.now_ps
        proc = link.transfer(a, 0, b, 0, nbytes)
        sim.run_until_signal(proc.done, timeout_ps=10**13)
        gbps = nbytes / ((sim.now_ps - t0) / S) / 1e9
        assert gbps <= 3.2
        assert gbps > 1.5  # pipelining keeps the link reasonably utilized

    def test_no_dmi_traffic_generated(self):
        # the point of the block: the POWER8 memory bus is not burdened
        sim = Simulator()
        a, b = self.make_cards(sim)
        link = CardToCardLink(sim, a, b)
        before = a.mbs.commands + b.mbs.commands
        proc = link.transfer(a, 0, b, 0, 64 * 1024)
        sim.run_until_signal(proc.done, timeout_ps=10**13)
        assert a.mbs.commands + b.mbs.commands == before

    def test_same_card_rejected(self):
        sim = Simulator()
        a, _ = self.make_cards(sim)
        with pytest.raises(ConfigurationError):
            CardToCardLink(sim, a, a)

    def test_foreign_card_rejected(self):
        sim = Simulator()
        a, b = self.make_cards(sim)
        c = ConTuttoBuffer(
            sim, [DdrDram(64 * MIB, refresh_enabled=False)], name="ct_c"
        )
        link = CardToCardLink(sim, a, b)
        with pytest.raises(AccelError):
            link.transfer(c, 0, b, 0, 128)

    def test_stats_accumulate(self):
        sim = Simulator()
        a, b = self.make_cards(sim)
        link = CardToCardLink(sim, a, b)
        sim.run_until_signal(link.transfer(a, 0, b, 0, 8192).done, timeout_ps=10**13)
        sim.run_until_signal(link.transfer(b, 0, a, 0, 8192).done, timeout_ps=10**13)
        assert link.transfers == 2
        assert link.bytes_transferred == 16384
