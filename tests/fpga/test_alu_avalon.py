"""Tests for the RMW ALU and the Avalon bus."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dmi import Opcode
from repro.errors import AccelError, AddressRangeError, ConfigurationError
from repro.fpga import AvalonBus, RmwAlu, conditional_swap, max_store, merge_partial, min_store
from repro.memory import DdrDram, MemoryController
from repro.sim import Simulator
from repro.units import MIB


def pack32(values):
    return struct.pack("<32i", *values)


def unpack32(line):
    return list(struct.unpack("<32i", line))


lane_values = st.lists(
    st.integers(-(2**31), 2**31 - 1), min_size=32, max_size=32
)


class TestAluOps:
    @given(lane_values, lane_values)
    def test_min_store_property(self, a, b):
        result = unpack32(min_store(pack32(a), pack32(b)))
        assert result == [min(x, y) for x, y in zip(a, b)]

    @given(lane_values, lane_values)
    def test_max_store_property(self, a, b):
        result = unpack32(max_store(pack32(a), pack32(b)))
        assert result == [max(x, y) for x, y in zip(a, b)]

    def test_cswap_match_swaps(self):
        old = pack32([42] + [0] * 31)
        new = pack32([42] + [7] * 31)
        stored, returned = conditional_swap(old, new)
        assert stored == new
        assert returned == old

    def test_cswap_mismatch_keeps_old(self):
        old = pack32([1] + [0] * 31)
        new = pack32([42] + [7] * 31)
        stored, returned = conditional_swap(old, new)
        assert stored == old
        assert returned == old

    @given(st.binary(min_size=128, max_size=128), st.binary(min_size=128, max_size=128))
    def test_merge_partial_all_enabled_is_new(self, old, new):
        assert merge_partial(old, new, bytes([1] * 128)) == new

    @given(st.binary(min_size=128, max_size=128), st.binary(min_size=128, max_size=128))
    def test_merge_partial_none_enabled_is_old(self, old, new):
        assert merge_partial(old, new, bytes(128)) == old

    def test_merge_partial_wrong_size_rejected(self):
        with pytest.raises(AccelError):
            merge_partial(b"a", b"b", b"c")


class TestRmwAluUnit:
    def test_write_is_nop_passthrough(self):
        sim = Simulator()
        alu = RmwAlu(sim, "alu")
        stored, returned, ready = alu.issue(Opcode.WRITE, b"", b"data")
        assert stored == b"data"
        assert returned is None
        assert ready == sim.now_ps + 4_000

    def test_back_to_back_ops_serialize(self):
        sim = Simulator()
        alu = RmwAlu(sim, "alu")
        _, _, first = alu.issue(Opcode.WRITE, b"", b"x")
        _, _, second = alu.issue(Opcode.WRITE, b"", b"y")
        assert second == first + 4_000
        assert alu.contended_ps == 4_000

    def test_read_opcode_rejected(self):
        sim = Simulator()
        with pytest.raises(AccelError):
            RmwAlu(sim, "alu").issue(Opcode.READ, b"", b"")

    def test_partial_requires_byte_enable(self):
        sim = Simulator()
        with pytest.raises(AccelError):
            RmwAlu(sim, "alu").issue(Opcode.PARTIAL_WRITE, bytes(128), bytes(128))


class TestAvalonBus:
    def make_bus(self, sim, capacities=(1 * MIB, 1 * MIB)):
        bus = AvalonBus(sim)
        controllers = []
        base = 0
        for i, cap in enumerate(capacities):
            mc = MemoryController(sim, DdrDram(cap, refresh_enabled=False))
            bus.add_slave(base, cap, mc, name=f"mc{i}")
            controllers.append(mc)
            base += cap
        return bus, controllers

    def test_routes_by_address(self):
        sim = Simulator()
        bus, (mc0, mc1) = self.make_bus(sim)
        sim.run_until_signal(bus.write(0, 0x100, bytes(128)))
        sim.run_until_signal(bus.write(1, 1 * MIB + 0x100, bytes(128)))
        assert mc0.writes_submitted == 1
        assert mc1.writes_submitted == 1

    def test_slave_local_address_translation(self):
        sim = Simulator()
        bus, (mc0, mc1) = self.make_bus(sim)
        sim.run_until_signal(bus.write(0, 1 * MIB + 0x300, bytes([5] * 128)))
        data = sim.run_until_signal(bus.read(0, 1 * MIB + 0x300, 128))
        assert data == bytes([5] * 128)
        # and the device saw the local address
        assert mc1.device.backing.read(0x300, 1) == b"\x05"

    def test_unmapped_address_raises(self):
        sim = Simulator()
        bus, _ = self.make_bus(sim)
        with pytest.raises(AddressRangeError):
            bus.read(0, 100 * MIB, 128)

    def test_overlapping_windows_rejected(self):
        sim = Simulator()
        bus = AvalonBus(sim)
        mc = MemoryController(sim, DdrDram(1 * MIB, refresh_enabled=False))
        bus.add_slave(0, 1 * MIB, mc)
        with pytest.raises(ConfigurationError):
            bus.add_slave(512 * 1024, 1 * MIB, mc)

    def test_cdc_latency_added_both_ways(self):
        sim = Simulator()
        bus, (mc0, _) = self.make_bus(sim)
        direct = mc0.unloaded_read_latency_ps()
        t0 = sim.now_ps
        sim.run_until_signal(bus.read(0, 0, 128))
        through_bus = sim.now_ps - t0
        assert through_bus >= direct + 2 * bus.cdc_latency_ps

    def test_port_issues_once_per_cycle(self):
        sim = Simulator()
        bus, _ = self.make_bus(sim)
        bus.read(0, 0, 128)
        bus.read(0, 128, 128)
        assert bus.read_ports[0].wait_ps == 4_000

    def test_ports_independent(self):
        sim = Simulator()
        bus, _ = self.make_bus(sim)
        bus.read(0, 0, 128)
        bus.read(1, 128, 128)
        assert bus.read_ports[1].wait_ps == 0

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            AvalonBus(Simulator(), num_read_ports=0)
