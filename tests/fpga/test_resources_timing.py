"""Tests for FPGA resource accounting (Table 1) and timing closure."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga import (
    BASE_BLOCK_COSTS,
    BlockCost,
    DesignResources,
    FpgaTimingConfig,
    INITIAL_TIMING,
    SHIPPING_TIMING,
    STRATIX_V_A9,
    TimingClosure,
    base_design_resources,
)


class TestTable1Resources:
    def test_base_design_matches_table1_exactly(self):
        table = base_design_resources().table()
        assert table == [
            ("ALMs", 317_000, 136_856),
            ("Registers", 634_000, 191_403),
            ("M20K", 2_640, 244),
        ]

    def test_utilization_percentages_match_paper(self):
        util = base_design_resources().utilization()
        assert util["alms"] == pytest.approx(0.43, abs=0.005)
        assert util["registers"] == pytest.approx(0.30, abs=0.005)
        assert util["m20k"] == pytest.approx(0.09, abs=0.005)

    def test_significant_headroom_for_acceleration(self):
        head = base_design_resources().headroom()
        assert head.alms > 150_000  # "a significant portion of resources"

    def test_accelerators_fit_in_headroom(self):
        design = base_design_resources()
        design.add("access_processor")
        design.add("fft_engine", count=4)
        design.add("minmax_engine")
        assert design.utilization()["alms"] < 1.0

    def test_overfull_design_rejected(self):
        design = DesignResources(STRATIX_V_A9)
        with pytest.raises(ConfigurationError):
            design.add("huge", cost=BlockCost(400_000, 0, 0))

    def test_unknown_block_requires_cost(self):
        with pytest.raises(ConfigurationError):
            DesignResources().add("mystery")

    def test_block_cost_arithmetic(self):
        a = BlockCost(1, 2, 3)
        assert a + a == BlockCost(2, 4, 6)
        assert a.scaled(3) == BlockCost(3, 6, 9)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignResources().add("mbi", count=0)


class TestTimingClosure:
    def test_shipping_config_meets_timing(self):
        assert TimingClosure(SHIPPING_TIMING).meets_timing()

    def test_initial_config_meets_timing_but_is_slow(self):
        # the 4-stage design closes timing trivially...
        initial = TimingClosure(INITIAL_TIMING)
        assert initial.meets_timing()
        # ...but pays more pipeline latency than the shipping design
        shipping = TimingClosure(SHIPPING_TIMING)
        assert initial.frtl_contribution_ps() > shipping.frtl_contribution_ps()

    def test_two_stage_crc_needs_both_optimizations(self):
        # Section 3.3: reduced CRC stages only close timing with pre-placed
        # RX flops AND the over-constrained CRC feed stage.
        without_preplace = FpgaTimingConfig(preplace_rx_flops=False)
        without_overconstrain = FpgaTimingConfig(overconstrain_crc_feed=False)
        assert not TimingClosure(without_preplace).meets_timing()
        assert not TimingClosure(without_overconstrain).meets_timing()
        assert TimingClosure(FpgaTimingConfig()).meets_timing()

    def test_one_stage_crc_hopeless(self):
        config = FpgaTimingConfig(crc_stages=1)
        assert not TimingClosure(config).meets_timing()
        with pytest.raises(ConfigurationError):
            TimingClosure(config).check()

    def test_fifo_bypass_saves_two_stages(self):
        with_fifo = TimingClosure(FpgaTimingConfig(use_rx_clock_crossing_fifo=True))
        without = TimingClosure(FpgaTimingConfig(use_rx_clock_crossing_fifo=False))
        assert with_fifo.rx_stages() - without.rx_stages() == 2
        assert with_fifo.rx_overhead_ps() - without.rx_overhead_ps() == 8_000

    def test_each_stage_costs_8_nest_cycles(self):
        closure = TimingClosure(SHIPPING_TIMING)
        assert closure.nest_cycles_per_stage() == 8

    def test_zero_crc_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            FpgaTimingConfig(crc_stages=0)

    def test_replay_prep_time(self):
        closure = TimingClosure(SHIPPING_TIMING)
        assert closure.replay_prep_ps() == 10 * 4_000  # 10 fabric cycles
