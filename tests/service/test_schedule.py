"""ArrivalSchedule: validation, rate math, JSON round-trip, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    ArrivalSchedule,
    Phase,
    Tenant,
    generate_arrivals,
)

SCHED = ArrivalSchedule(
    name="mix",
    duration_ms=50.0,
    window_ms=10.0,
    servers=2,
    queue_limit=16,
    tenants=(
        Tenant("oltp", "mem_read", weight=3.0),
        Tenant("scan", "storage_read", weight=1.0, ops_per_request=2),
    ),
    phases=(
        Phase("constant", 0.0, 50.0, rate_rps=10_000.0),
        Phase("flash", 20.0, 40.0, peak_rps=50_000.0),
    ),
)


class TestValidation:
    def test_rejects_empty_tenants_and_phases(self):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule("x", 10.0, (), SCHED.phases)
        with pytest.raises(ConfigurationError):
            ArrivalSchedule("x", 10.0, SCHED.tenants, ())

    def test_rejects_duplicate_tenant_names(self):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule(
                "x", 10.0,
                (Tenant("a", "mem_read"), Tenant("a", "mem_write")),
                SCHED.phases, window_ms=10.0,
            )

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule("x", 10.0, SCHED.tenants, SCHED.phases,
                            window_ms=20.0)

    def test_rejects_unknown_phase_kind(self):
        with pytest.raises(ConfigurationError):
            Phase("spike", 0.0, 10.0)

    def test_rejects_inverted_phase_bounds(self):
        with pytest.raises(ConfigurationError):
            Phase("constant", 10.0, 10.0, rate_rps=1.0)

    def test_rejects_nonpositive_tenant_weight(self):
        with pytest.raises(ConfigurationError):
            Tenant("t", "mem_read", weight=0.0)


class TestRates:
    def test_phases_are_additive(self):
        assert SCHED.rate_rps(10.0) == 10_000.0
        # flash apex at 30 ms sits on top of the constant baseline
        assert SCHED.rate_rps(30.0) == pytest.approx(60_000.0)

    def test_flash_is_triangular(self):
        phase = Phase("flash", 20.0, 40.0, peak_rps=50_000.0)
        assert phase.rate_at(20.0) == pytest.approx(0.0)
        assert phase.rate_at(25.0) == pytest.approx(25_000.0)
        assert phase.rate_at(30.0) == pytest.approx(50_000.0)
        assert phase.rate_at(39.999) == pytest.approx(0.0, abs=20.0)
        assert phase.rate_at(40.0) == 0.0

    def test_ramp_is_linear(self):
        phase = Phase("ramp", 0.0, 10.0, from_rps=100.0, to_rps=300.0)
        assert phase.rate_at(5.0) == pytest.approx(200.0)
        assert phase.peak() == 300.0

    def test_peak_bounds_every_instant(self):
        peak = SCHED.peak_rps()
        assert all(
            SCHED.rate_rps(t / 10) <= peak for t in range(0, 500)
        )

    def test_window_count_is_ceiling(self):
        assert SCHED.windows() == 5
        odd = ArrivalSchedule("x", 25.0, SCHED.tenants, SCHED.phases,
                              window_ms=10.0)
        assert odd.windows() == 3


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        again = ArrivalSchedule.from_json(SCHED.to_json())
        assert again == SCHED
        assert again.to_json() == SCHED.to_json()

    def test_load_accepts_all_forms(self):
        assert ArrivalSchedule.load(SCHED) is SCHED
        assert ArrivalSchedule.load(SCHED.to_dict()) == SCHED
        assert ArrivalSchedule.load(SCHED.to_json()) == SCHED
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.load(42)

    def test_unknown_fields_rejected(self):
        spec = SCHED.to_dict()
        spec["burst"] = True
        with pytest.raises(ConfigurationError):
            ArrivalSchedule.from_dict(spec)


class TestArrivals:
    def test_same_seed_same_stream(self):
        a = generate_arrivals(SCHED, seed=7)
        b = generate_arrivals(SCHED, seed=7)
        assert a == b

    def test_different_seed_different_stream(self):
        assert generate_arrivals(SCHED, 1) != generate_arrivals(SCHED, 2)

    def test_stream_is_ordered_and_contiguous(self):
        arrivals = generate_arrivals(SCHED, seed=3)
        assert [a.index for a in arrivals] == list(range(len(arrivals)))
        times = [a.t_ps for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 50 * 1_000_000_000 for t in times)

    def test_tenant_weights_shape_the_mix(self):
        arrivals = generate_arrivals(SCHED, seed=3)
        oltp = sum(1 for a in arrivals if a.tenant == "oltp")
        scan = len(arrivals) - oltp
        # 3:1 weights; allow generous sampling noise
        assert oltp > 2 * scan

    def test_flash_concentrates_arrivals(self):
        arrivals = generate_arrivals(SCHED, seed=3)
        in_flash = sum(
            1 for a in arrivals
            if 20 * 1_000_000_000 <= a.t_ps < 40 * 1_000_000_000
        )
        # flash doubles+ the density of its 40% span
        assert in_flash > len(arrivals) / 2

    def test_ops_per_request_carried(self):
        arrivals = generate_arrivals(SCHED, seed=3)
        assert all(
            a.ops == (2 if a.tenant == "scan" else 1) for a in arrivals
        )
