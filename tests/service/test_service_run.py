"""End-to-end service runs: shard invariance, overload, faults, merging.

The storage-backed schedule keeps these fast (no system boot); the
fault-composition test boots one small Centaur system.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.service import (
    ArrivalSchedule,
    Phase,
    Tenant,
    calibrate,
    demand_stream,
    generate_arrivals,
    merge_shard_demands,
    render_run_table_csv,
    rep_seed,
    run_service,
    run_service_shard,
    run_table_records,
    window_rows,
)
from repro.telemetry import TraceSession

# one server against a flash crowd of ~21 us storage reads: the crowd
# peak (150 krps) far exceeds the ~47 krps drain rate, so the middle
# windows must shed and queue
SCHED = ArrivalSchedule(
    name="crowd",
    duration_ms=20.0,
    window_ms=5.0,
    servers=1,
    queue_limit=8,
    tenants=(
        Tenant("reader", "storage_read", weight=3.0),
        Tenant("writer", "storage_write", weight=1.0),
    ),
    phases=(
        Phase("constant", 0.0, 20.0, rate_rps=10_000.0),
        Phase("flash", 5.0, 15.0, peak_rps=150_000.0),
    ),
)

SEED = 11


def run_rows(shards: int, repetition: int = 0):
    """The merged run-table rows produced with ``shards`` workers."""
    tables = [
        run_service_shard(
            schedule=SCHED.to_json(), shard=s, shards=shards,
            repetition=repetition, calib_samples=6, seed=SEED,
        )
        for s in range(shards)
    ]
    arrivals = generate_arrivals(SCHED, rep_seed(SEED, repetition))
    demands = merge_shard_demands(tables)
    outcomes = run_service(SCHED, demand_stream(arrivals, demands))
    return window_rows(SCHED, repetition, outcomes)


class TestShardInvariance:
    def test_one_vs_three_shards_byte_identical(self):
        rows1 = run_rows(shards=1)
        rows3 = run_rows(shards=3)
        assert render_run_table_csv(rows1) == render_run_table_csv(rows3)
        assert (
            run_table_records(SCHED, SEED, 1, rows1)
            == run_table_records(SCHED, SEED, 1, rows3)
        )

    def test_rerun_is_byte_identical(self):
        assert render_run_table_csv(run_rows(1)) == render_run_table_csv(
            run_rows(1)
        )

    def test_artifacts_never_mention_shards(self):
        records = run_table_records(SCHED, SEED, 1, run_rows(2))
        assert not any("shard" in key for r in records for key in r)


class TestOverloadBehavior:
    def test_flash_windows_shed_and_queue(self):
        rows = run_rows(shards=1)
        flash = [r for r in rows if r["shed"] > 0]
        assert flash, "the flash crowd must overflow the queue"
        for row in flash:
            assert row["achieved_rps"] < row["offered_rps"]
            assert row["shed_rate"] > 0
        assert any(r["queue_delay_mean_ms"] > 0 for r in rows)

    def test_calm_windows_keep_up(self):
        rows = run_rows(shards=1)
        assert rows[0]["shed"] == 0
        assert rows[0]["occupancy_mean"] < 1.0

    def test_counts_are_conserved(self):
        rows = run_rows(shards=1)
        offered = sum(r["offered"] for r in rows)
        assert offered == sum(
            r["admitted"] + r["shed"] for r in rows
        )
        # every admitted request completes in some window
        assert sum(r["completed"] for r in rows) == sum(
            r["admitted"] for r in rows
        )


class TestMergeValidation:
    def test_missing_shard_detected(self):
        tables = [
            run_service_shard(schedule=SCHED.to_json(), shard=0, shards=2,
                              calib_samples=4, seed=SEED)
        ]
        with pytest.raises(ConfigurationError):
            merge_shard_demands(tables)

    def test_duplicate_shard_detected(self):
        table = run_service_shard(schedule=SCHED.to_json(), shard=0, shards=1,
                                  calib_samples=4, seed=SEED)
        with pytest.raises(ConfigurationError):
            merge_shard_demands([table, table])

    def test_bad_shard_assignment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_service_shard(schedule=SCHED.to_json(), shard=2, shards=2)


class TestFaultComposition:
    def test_faulted_calibration_attributes_fully(self):
        plan = FaultPlan(name="svc", specs=(FaultSpec(
            "dmi.frame_drop", target="0", schedule="periodic",
            start_ps=0, period_ps=500_000, count=4, label="drop"),))
        with TraceSession("svc-faults", max_events=0) as session:
            profile = calibrate("mem_read", 8, seed=3, faults=plan)
        assert len(profile.samples_ps) == 8
        # overload + faults still tile every journey: zero residual
        assert session.breakdown().check() == []

    def test_fault_plan_changes_the_profile(self):
        plan = FaultPlan(name="svc", specs=(FaultSpec(
            "dmi.frame_drop", target="0", schedule="periodic",
            start_ps=0, period_ps=500_000, count=4, label="drop"),))
        clean = calibrate("mem_read", 8, seed=3)
        faulty = calibrate("mem_read", 8, seed=3, faults=plan)
        assert faulty.samples_ps != clean.samples_ps
