"""The shared calibration artifact: one measurement, every shard job.

Storage-backed classes keep these fast (no Centaur system boot).
"""

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    ArrivalSchedule,
    Phase,
    ServiceProfile,
    Tenant,
    calibrate_classes,
    calibration_seed,
    profiles_from_json,
    profiles_from_table,
    profiles_to_json,
    run_service_calibrate,
    run_service_shard,
)

SCHED = ArrivalSchedule(
    name="tiny",
    duration_ms=4.0,
    window_ms=2.0,
    tenants=(
        Tenant("reader", "storage_read", weight=2.0),
        Tenant("writer", "storage_write", weight=1.0),
    ),
    phases=(Phase("constant", 0.0, 4.0, rate_rps=20_000.0),),
)

SEED = 5


def shared_profiles_json(samples=6):
    table = run_service_calibrate(
        classes="storage_read,storage_write",
        calib_samples=samples, seed=SEED,
    )
    return profiles_to_json(profiles_from_table(table))


class TestCalibrationExperiment:
    def test_table_round_trips_to_calibrate_classes(self):
        table = run_service_calibrate(
            classes="storage_read,storage_write", calib_samples=6, seed=SEED,
        )
        rebuilt = profiles_from_table(table)
        direct = calibrate_classes(
            ["storage_read", "storage_write"], 6, calibration_seed(SEED), None,
        )
        assert rebuilt == direct

    def test_empty_class_list_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one class"):
            run_service_calibrate(classes="", calib_samples=6, seed=SEED)

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown request class"):
            run_service_calibrate(classes="mem_scan", calib_samples=6, seed=SEED)


class TestProfileSerialization:
    def test_json_round_trip(self):
        profiles = calibrate_classes(
            ["storage_read"], 4, calibration_seed(SEED), None,
        )
        assert profiles_from_json(profiles_to_json(profiles)) == profiles

    def test_canonical_bytes_are_stable(self):
        assert shared_profiles_json() == shared_profiles_json()

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError, match="bad profiles JSON"):
            profiles_from_json("{nope")
        with pytest.raises(ConfigurationError, match="must be an object"):
            profiles_from_json("[1, 2]")
        with pytest.raises(ConfigurationError, match="malformed profile"):
            profiles_from_json('{"storage_read": {"klass": "storage_read"}}')

    def test_profile_dict_round_trip(self):
        profile = ServiceProfile("storage_read", (10, 20), (True, False))
        assert ServiceProfile.from_dict(profile.to_dict()) == profile


class TestShardWithSharedProfiles:
    def test_demands_invariant_across_shard_counts(self):
        profiles = shared_profiles_json()

        def demands(shards):
            rows = []
            for shard in range(shards):
                table = run_service_shard(
                    schedule=SCHED.to_json(), shard=shard, shards=shards,
                    profiles=profiles, seed=SEED,
                )
                rows.extend(tuple(r) for r in table.rows)
            return sorted(rows)

        assert demands(1) == demands(3)

    def test_shared_profiles_shared_across_repetitions(self):
        # both repetitions draw from the same artifact: the set of
        # per-request demands stays within the calibrated sample set
        profiles = shared_profiles_json(samples=4)
        calibrated = {
            ps
            for profile in profiles_from_json(profiles).values()
            for ps in profile.samples_ps
        }
        for rep in (0, 1):
            table = run_service_shard(
                schedule=SCHED.to_json(), repetition=rep,
                profiles=profiles, seed=SEED,
            )
            service = [dict(zip(table.columns, row))["service_ps"]
                       for row in table.rows]
            assert service and all(ps in calibrated for ps in service)

    def test_missing_class_rejected(self):
        only_reads = profiles_to_json(calibrate_classes(
            ["storage_read"], 4, calibration_seed(SEED), None,
        ))
        with pytest.raises(ConfigurationError, match="missing classes"):
            run_service_shard(
                schedule=SCHED.to_json(), profiles=only_reads, seed=SEED,
            )

    def test_registry_exposes_calibration_experiment(self):
        from repro.campaign import get_experiment

        spec = get_experiment("service_calibrate")
        assert spec.hidden and spec.supports_faults
