"""ServiceLoop: admission, queueing, shedding, and determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.service import Arrival, RequestOutcome, ServiceLoop

MS = 1_000_000_000  # ps


def stream(gaps_service):
    """Build (arrival, service_ps, ok) triples from (gap, service) pairs."""
    t = 0
    out = []
    for i, (gap_ps, service_ps) in enumerate(gaps_service):
        t += gap_ps
        out.append((Arrival(i, t, "t", "mem_read", 1), service_ps, True))
    return out


class TestUnderload:
    def test_no_queueing_when_service_fits_the_gap(self):
        outcomes = ServiceLoop(1, 4).run(stream([(10, 5)] * 20))
        assert all(o.status == "ok" for o in outcomes)
        assert all(o.queue_delay_ps == 0 for o in outcomes)
        assert all(o.latency_ps == o.service_ps for o in outcomes)

    def test_parallel_servers_absorb_bursts(self):
        # two requests at the same instant, two servers: no waiting
        demands = [
            (Arrival(0, 0, "t", "mem_read", 1), 100, True),
            (Arrival(1, 0, "t", "mem_read", 1), 100, True),
        ]
        outcomes = ServiceLoop(2, 4).run(demands)
        assert [o.queue_delay_ps for o in outcomes] == [0, 0]


class TestOverload:
    def test_queue_delay_accumulates(self):
        # service 3x the inter-arrival gap on one server: waits grow
        outcomes = ServiceLoop(1, 1000).run(stream([(10, 30)] * 10))
        waits = [o.queue_delay_ps for o in outcomes]
        assert waits == sorted(waits)
        assert waits[-1] > 0

    def test_queue_limit_sheds(self):
        outcomes = ServiceLoop(1, 2).run(stream([(1, 1000)] * 50))
        shed = [o for o in outcomes if o.status == "shed"]
        assert shed
        assert all(o.service_ps == 0 and o.latency_ps == 0 for o in shed)
        # admitted requests still complete
        assert any(o.status == "ok" for o in outcomes)

    def test_max_queue_delay_sheds_even_with_room(self):
        loop = ServiceLoop(1, 1000, max_queue_delay_ps=50)
        outcomes = loop.run(stream([(1, 1000)] * 10))
        assert any(o.status == "shed" for o in outcomes)

    def test_failed_ops_still_occupy_the_server(self):
        demands = [
            (Arrival(0, 0, "t", "mem_read", 1), 100, False),
            (Arrival(1, 0, "t", "mem_read", 1), 100, True),
        ]
        outcomes = ServiceLoop(1, 4).run(demands)
        assert outcomes[0].status == "failed"
        assert outcomes[0].service_ps == 100
        # the failure blocked the second request like any other service
        assert outcomes[1].queue_delay_ps == 100


class TestContracts:
    def test_rejects_unordered_arrivals(self):
        demands = [
            (Arrival(0, 10, "t", "mem_read", 1), 1, True),
            (Arrival(1, 5, "t", "mem_read", 1), 1, True),
        ]
        with pytest.raises(ConfigurationError):
            ServiceLoop(1, 4).run(demands)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            ServiceLoop(0, 4)
        with pytest.raises(ConfigurationError):
            ServiceLoop(1, 0)

    def test_replay_is_deterministic(self):
        demands = stream([(7, 23)] * 100)
        assert ServiceLoop(3, 8).run(demands) == ServiceLoop(3, 8).run(demands)

    def test_outcome_accounting(self):
        out = RequestOutcome(0, 100, "t", "mem_read", "ok", 20, 30, 150)
        assert out.admitted
        assert out.latency_ps == 50
        shed = RequestOutcome(1, 100, "t", "mem_read", "shed", 0, 0, 100)
        assert not shed.admitted
        assert shed.latency_ps == 0
