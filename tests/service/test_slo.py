"""Tenant SLO verdicts: column shape, met/missed logic, summaries."""

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    ArrivalSchedule,
    PS_PER_MS,
    Phase,
    RUN_TABLE_COLUMNS,
    Tenant,
    render_run_table_csv,
    render_summary,
    run_table_columns,
    run_table_records,
    window_rows,
)
from repro.service.loop import RequestOutcome


def sched(slo_reader=None, slo_writer=None):
    return ArrivalSchedule(
        name="slo",
        duration_ms=20.0,
        window_ms=10.0,
        servers=1,
        queue_limit=8,
        tenants=(
            Tenant("reader", "storage_read", weight=1.0, slo_p99_ms=slo_reader),
            Tenant("writer", "storage_write", weight=1.0, slo_p99_ms=slo_writer),
        ),
        phases=(Phase("constant", 0.0, 20.0, rate_rps=1000.0),),
    )


def outcome(index, tenant, t_ms, latency_ms, klass="storage_read"):
    t_ps = int(t_ms * PS_PER_MS)
    latency_ps = int(latency_ms * PS_PER_MS)
    return RequestOutcome(
        index=index, t_ps=t_ps, tenant=tenant, klass=klass, status="ok",
        queue_delay_ps=0, service_ps=latency_ps, done_ps=t_ps + latency_ps,
    )


class TestTenantField:
    def test_slo_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Tenant("t", "storage_read", slo_p99_ms=0.0)

    def test_slo_round_trips_through_json(self):
        schedule = sched(slo_reader=0.25)
        again = ArrivalSchedule.from_json(schedule.to_json())
        assert again.tenants[0].slo_p99_ms == 0.25
        assert again.tenants[1].slo_p99_ms is None
        assert again.to_json() == schedule.to_json()

    def test_slo_absent_keeps_canonical_dict(self):
        # target-free tenants serialize exactly as before the field existed
        assert "slo_p99_ms" not in Tenant("t", "storage_read").to_dict()


class TestColumns:
    def test_no_targets_keeps_historical_columns(self):
        assert run_table_columns(sched()) == RUN_TABLE_COLUMNS

    def test_targets_append_columns_in_tenant_order(self):
        columns = run_table_columns(sched(slo_reader=1.0, slo_writer=2.0))
        assert columns[: len(RUN_TABLE_COLUMNS)] == RUN_TABLE_COLUMNS
        assert columns[len(RUN_TABLE_COLUMNS):] == ["slo_reader", "slo_writer"]


class TestVerdicts:
    def test_met_missed_and_empty(self):
        schedule = sched(slo_reader=1.0)
        outcomes = [
            # window 0: reader p99 well under 1 ms -> met
            outcome(0, "reader", t_ms=1.0, latency_ms=0.2),
            outcome(1, "reader", t_ms=2.0, latency_ms=0.3),
            # window 1: reader blows the target -> missed
            outcome(2, "reader", t_ms=11.0, latency_ms=5.0),
            # writer has no target: contributes nothing to verdicts
            outcome(3, "writer", t_ms=11.5, latency_ms=9.0,
                    klass="storage_write"),
        ]
        rows = window_rows(schedule, 0, outcomes)
        assert rows[0]["slo_reader"] == "met"
        assert rows[1]["slo_reader"] == "missed"
        assert "slo_writer" not in rows[0]

    def test_window_without_completions_is_blank(self):
        schedule = sched(slo_reader=1.0)
        rows = window_rows(schedule, 0, [outcome(0, "reader", 1.0, 0.1)])
        assert rows[1]["slo_reader"] == ""

    def test_boundary_exactly_met(self):
        # p99 exactly at the target counts as met, not missed
        schedule = sched(slo_reader=1.0)
        rows = window_rows(schedule, 0, [outcome(0, "reader", 1.0, 1.0)])
        assert rows[0]["slo_reader"] == "met"


class TestArtifacts:
    def rows(self):
        schedule = sched(slo_reader=1.0)
        outcomes = [
            outcome(0, "reader", 1.0, 0.2),
            outcome(1, "reader", 11.0, 5.0),
        ]
        return schedule, window_rows(schedule, 0, outcomes)

    def test_csv_has_verdict_column(self):
        schedule, rows = self.rows()
        csv = render_run_table_csv(rows, run_table_columns(schedule))
        header, first, second = csv.strip().split("\n")
        assert header.endswith(",slo_reader")
        assert first.endswith(",met")
        assert second.endswith(",missed")

    def test_records_meta_and_repetition_summary(self):
        schedule, rows = self.rows()
        records = run_table_records(schedule, 0, 1, rows)
        assert records[0]["columns"] == run_table_columns(schedule)
        rep = [r for r in records if r["kind"] == "repetition"][0]
        assert rep["slo_missed_windows"] == 1

    def test_no_targets_means_no_summary_field(self):
        schedule = sched()
        rows = window_rows(schedule, 0, [outcome(0, "reader", 1.0, 0.2)])
        records = run_table_records(schedule, 0, 1, rows)
        assert records[0]["columns"] == RUN_TABLE_COLUMNS
        rep = [r for r in records if r["kind"] == "repetition"][0]
        assert "slo_missed_windows" not in rep

    def test_summary_mentions_slo(self):
        schedule, rows = self.rows()
        text = render_summary(schedule, rows)
        assert "slo reader: 1/2 windows met" in text
