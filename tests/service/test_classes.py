"""Request-class calibration: determinism, profiles, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.service import REQUEST_CLASSES, SYSTEM_CLASSES, calibrate
from repro.sim import Rng


class TestCalibrate:
    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate("http_get", 4, seed=1)

    def test_needs_samples(self):
        with pytest.raises(ConfigurationError):
            calibrate("storage_read", 0, seed=1)

    def test_storage_profile_is_deterministic(self):
        a = calibrate("storage_read", 6, seed=5)
        b = calibrate("storage_read", 6, seed=5)
        assert a == b
        assert len(a.samples_ps) == 6
        assert all(t > 0 for t in a.samples_ps)
        assert all(a.ok)

    def test_seed_changes_addresses_not_shape(self):
        a = calibrate("storage_write", 6, seed=1)
        b = calibrate("storage_write", 6, seed=2)
        # same device model: magnitudes agree within an order
        assert 0.1 < a.mean_ps / b.mean_ps < 10

    def test_gpfs_includes_software_overhead(self):
        gpfs = calibrate("gpfs_write", 4, seed=1)
        raw = calibrate("storage_write", 4, seed=1)
        assert gpfs.mean_ps > raw.mean_ps

    def test_draws_come_from_the_sample_set(self):
        profile = calibrate("storage_read", 5, seed=9)
        rng = Rng(42, "draw")
        for _ in range(20):
            service_ps, ok = profile.draw(rng)
            assert service_ps in profile.samples_ps
            assert isinstance(ok, bool)

    def test_class_registry_shape(self):
        assert SYSTEM_CLASSES < set(REQUEST_CLASSES)
        assert tuple(sorted(REQUEST_CLASSES)) == REQUEST_CLASSES
