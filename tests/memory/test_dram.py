"""Tests for the DDR3 DRAM timing model."""

import pytest

from repro.errors import AlignmentError
from repro.memory import DDR3_1066, DDR3_1333, DDR3_1600, DdrDram
from repro.units import MIB


def fresh_dram(timing=DDR3_1333, refresh=False):
    return DdrDram(64 * MIB, timing, refresh_enabled=refresh)


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = fresh_dram()
        dram.read(0, 128, 0)
        assert dram.row_misses == 1
        assert dram.row_hits == 0

    def test_same_row_access_is_hit(self):
        dram = fresh_dram()
        _, t1 = dram.read(0, 128, 0)
        dram.read(128, 128, t1)
        assert dram.row_hits == 1

    def test_conflict_requires_precharge(self):
        dram = fresh_dram()
        row_span = DdrDram.ROW_BYTES * DdrDram.NUM_BANKS  # same bank, next row
        _, t1 = dram.read(0, 128, 0)
        dram.read(row_span, 128, t1)
        assert dram.row_conflicts == 1

    def test_hit_is_faster_than_miss_is_faster_than_conflict(self):
        t = DDR3_1333
        row_span = DdrDram.ROW_BYTES * DdrDram.NUM_BANKS

        dram = fresh_dram()
        _, warm = dram.read(0, 128, 0)

        start = warm + t.tras_ps  # past any tRAS constraint
        _, hit_end = dram.read(128, 128, start)
        hit = hit_end - start

        dram2 = fresh_dram()
        _, miss_end = dram2.read(0, 128, 0)
        miss = miss_end - 0

        dram3 = fresh_dram()
        _, w = dram3.read(0, 128, 0)
        conflict_start = w + t.tras_ps
        _, conf_end = dram3.read(row_span, 128, conflict_start)
        conflict = conf_end - conflict_start

        assert hit < miss < conflict

    def test_hit_latency_is_cas_plus_burst(self):
        t = DDR3_1333
        dram = fresh_dram()
        _, warm = dram.read(0, 128, 0)
        start = warm + t.tras_ps
        _, end = dram.read(128, 128, start)
        assert end - start == t.cas_ps + t.burst_ps(128)

    def test_bank_parallelism(self):
        # accesses to two different banks overlap except for data-bus sharing
        dram = fresh_dram()
        _, t_a = dram.read(0, 128, 0)
        _, t_b = dram.read(DdrDram.ROW_BYTES, 128, 0)  # next bank
        serial_estimate = 2 * t_a
        assert t_b < serial_estimate

    def test_row_buffer_hit_rate(self):
        dram = fresh_dram()
        t = 0
        for i in range(10):
            _, t = dram.read(128 * i, 128, t)
        assert dram.row_buffer_hit_rate == pytest.approx(9 / 10)


class TestTimingGrades:
    def test_faster_grade_lower_latency(self):
        def cold_read(timing):
            dram = DdrDram(64 * MIB, timing, refresh_enabled=False)
            _, end = dram.read(0, 128, 0)
            return end

        assert cold_read(DDR3_1600) < cold_read(DDR3_1333) < cold_read(DDR3_1066)

    def test_burst_time_128b(self):
        # 128 bytes = 16 beats = 8 clocks
        assert DDR3_1333.burst_ps(128) == 8 * DDR3_1333.tck_ps


class TestRefresh:
    def test_refresh_window_stalls_access(self):
        timing = DDR3_1333
        dram = DdrDram(64 * MIB, timing, refresh_enabled=True)
        inside_window = timing.trefi_ps - timing.trfc_ps + 1_000
        _, end = dram.read(0, 128, inside_window)
        assert end >= timing.trefi_ps
        assert dram.refresh_stalls == 1

    def test_no_stall_outside_window(self):
        dram = DdrDram(64 * MIB, DDR3_1333, refresh_enabled=True)
        dram.read(0, 128, 1_000)
        assert dram.refresh_stalls == 0

    def test_refresh_disabled(self):
        timing = DDR3_1333
        dram = DdrDram(64 * MIB, timing, refresh_enabled=False)
        inside_window = timing.trefi_ps - timing.trfc_ps + 1_000
        dram.read(0, 128, inside_window)
        assert dram.refresh_stalls == 0


class TestFunctional:
    def test_write_then_read(self):
        dram = fresh_dram()
        payload = bytes(range(128))
        t = dram.write(0x4000, payload, 0)
        data, _ = dram.read(0x4000, 128, t)
        assert data == payload

    def test_write_recovery_delays_next_access(self):
        t = DDR3_1333
        dram = fresh_dram()
        end_w = dram.write(0, bytes(128), 0)
        _, end_r = dram.read(128, 128, end_w)  # same bank, same row
        assert end_r - end_w >= t.twr_ps

    def test_oversized_access_rejected(self):
        dram = fresh_dram()
        with pytest.raises(AlignmentError):
            dram.read(0, DdrDram.ROW_BYTES + 1, 0)

    def test_data_bus_serializes_banks(self):
        dram = fresh_dram()
        _, t_a = dram.read(0, 128, 0)
        _, t_b = dram.read(DdrDram.ROW_BYTES, 128, 0)
        # second finishes at least one burst after the first
        assert t_b >= t_a + DDR3_1333.burst_ps(128)
