"""Tests for the memory controller front end."""

import pytest

from repro.errors import ConfigurationError
from repro.memory import (
    DdrDram,
    MemoryController,
    MemoryControllerConfig,
    SttMram,
)
from repro.sim import Simulator
from repro.units import MIB


def make(sim, device=None, **cfg):
    device = device or DdrDram(64 * MIB, refresh_enabled=False)
    return MemoryController(sim, device, MemoryControllerConfig(**cfg))


class TestController:
    def test_read_returns_written_data(self):
        sim = Simulator()
        mc = make(sim)
        sim.run_until_signal(mc.submit_write(0x1000, bytes([9] * 128)))
        data = sim.run_until_signal(mc.submit_read(0x1000, 128))
        assert data == bytes([9] * 128)

    def test_latency_includes_overheads(self):
        sim = Simulator()
        mc = make(sim, command_overhead_ps=10_000, response_overhead_ps=8_000)
        done = mc.submit_read(0, 128)
        sim.run_until_signal(done)
        # device cold read ~ tRCD + CAS + burst = 13.5+13.5+12 = 39 ns
        assert sim.now_ps >= 10_000 + 8_000 + 39_000

    def test_queue_depth_stalls_excess(self):
        sim = Simulator()
        mc = make(sim, queue_depth=2)
        sigs = [mc.submit_read(128 * i, 128) for i in range(5)]
        assert mc.queue_full_stalls == 3
        for sig in sigs:
            sim.run_until_signal(sig)
        assert mc.in_flight == 0

    def test_completion_order_preserved_per_device(self):
        sim = Simulator()
        mc = make(sim)
        order = []
        for i in range(4):
            sig = mc.submit_read(128 * i, 128)
            sig.add_waiter(lambda _v, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_works_over_mram(self):
        sim = Simulator()
        mc = make(sim, device=SttMram(256 * MIB))
        sim.run_until_signal(mc.submit_write(0, b"m" * 128))
        data = sim.run_until_signal(mc.submit_read(0, 128))
        assert data == b"m" * 128

    def test_unloaded_latency_estimate_positive(self):
        sim = Simulator()
        mc = make(sim)
        assert mc.unloaded_read_latency_ps() > 0

    def test_zero_queue_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            make(Simulator(), queue_depth=0)

    def test_stats_count_submissions(self):
        sim = Simulator()
        mc = make(sim)
        mc.submit_read(0, 128)
        mc.submit_write(128, bytes(128))
        sim.run()
        assert mc.reads_submitted == 1
        assert mc.writes_submitted == 1
