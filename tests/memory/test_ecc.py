"""Tests for the SEC-DED ECC codec and its DRAM integration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlignmentError
from repro.memory import DdrDram
from repro.memory.ecc import (
    UncorrectableEccError,
    decode_line,
    decode_word,
    encode_line,
    encode_word,
)
from repro.units import MIB

word64 = st.integers(0, 2**64 - 1)


class TestCodecWords:
    @given(word64)
    def test_clean_word_decodes_identically(self, data):
        _, check = encode_word(data)
        decoded, fixes = decode_word(data, check)
        assert decoded == data
        assert fixes == 0

    @given(word64, st.integers(0, 63))
    def test_any_single_data_bit_flip_corrected(self, data, bit):
        _, check = encode_word(data)
        corrupted = data ^ (1 << bit)
        decoded, fixes = decode_word(corrupted, check)
        assert decoded == data
        assert fixes == 1

    @given(word64, st.integers(0, 7))
    def test_check_byte_bit_flip_corrected(self, data, bit):
        _, check = encode_word(data)
        decoded, fixes = decode_word(data, check ^ (1 << bit))
        assert decoded == data
        assert fixes == 1

    @given(
        word64,
        st.integers(0, 63),
        st.integers(0, 63),
    )
    def test_double_data_bit_flip_detected(self, data, bit_a, bit_b):
        if bit_a == bit_b:
            return
        _, check = encode_word(data)
        corrupted = data ^ (1 << bit_a) ^ (1 << bit_b)
        with pytest.raises(UncorrectableEccError):
            decode_word(corrupted, check)

    def test_oversized_word_rejected(self):
        from repro.errors import MemoryError_

        with pytest.raises(MemoryError_):
            encode_word(1 << 64)


class TestCodecLines:
    @given(st.binary(min_size=128, max_size=128))
    def test_line_roundtrip(self, line):
        checks = encode_line(line)
        assert len(checks) == 16
        decoded, fixes = decode_line(line, checks)
        assert decoded == line
        assert fixes == 0

    @given(st.binary(min_size=128, max_size=128), st.integers(0, 1023))
    def test_single_flip_anywhere_in_line_corrected(self, line, bit):
        checks = encode_line(line)
        corrupted = bytearray(line)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        decoded, fixes = decode_line(bytes(corrupted), checks)
        assert decoded == line
        assert fixes == 1

    def test_one_flip_per_word_all_corrected(self):
        line = bytes(range(128))
        checks = encode_line(line)
        corrupted = bytearray(line)
        for word in range(16):
            corrupted[word * 8] ^= 0x01  # one flip in every word
        decoded, fixes = decode_line(bytes(corrupted), checks)
        assert decoded == line
        assert fixes == 16


class TestDramIntegration:
    def make(self):
        return DdrDram(1 * MIB, refresh_enabled=False, ecc_enabled=True)

    def test_clean_roundtrip(self):
        dram = self.make()
        payload = bytes(range(128))
        t = dram.write(0, payload, 0)
        data, _ = dram.read(0, 128, t)
        assert data == payload
        assert dram.ecc_corrections == 0

    def test_injected_bit_error_corrected_and_scrubbed(self):
        dram = self.make()
        payload = bytes([0xA5] * 128)
        t = dram.write(0x400, payload, 0)
        dram.inject_bit_error(0x400, bit=13)
        data, _ = dram.read(0x400, 128, t)
        assert data == payload
        assert dram.ecc_corrections == 1
        # the correction was written back: the raw cell is clean again
        assert dram.backing.read(0x400, 128) == payload

    def test_double_error_in_one_word_raises(self):
        dram = self.make()
        t = dram.write(0, bytes(128), 0)
        dram.inject_bit_error(0, bit=3)
        dram.inject_bit_error(0, bit=17)  # same 64-bit word
        with pytest.raises(UncorrectableEccError):
            dram.read(0, 128, t)
        assert dram.ecc_uncorrectable == 1

    def test_two_errors_in_different_words_both_corrected(self):
        dram = self.make()
        payload = bytes([0x3C] * 128)
        t = dram.write(0, payload, 0)
        dram.inject_bit_error(0, bit=5)
        dram.inject_bit_error(0, bit=64 + 9)  # next word
        data, _ = dram.read(0, 128, t)
        assert data == payload
        assert dram.ecc_corrections == 2

    def test_unaligned_ecc_access_rejected(self):
        dram = self.make()
        with pytest.raises(AlignmentError):
            dram.write(0, bytes(4), 0)

    def test_ecc_disabled_returns_corrupted_data(self):
        dram = DdrDram(1 * MIB, refresh_enabled=False, ecc_enabled=False)
        payload = bytes([0xFF] * 128)
        t = dram.write(0, payload, 0)
        dram.inject_bit_error(0, bit=0)
        data, _ = dram.read(0, 128, t)
        assert data != payload  # silent corruption without ECC
