"""Tests for STT-MRAM, NAND flash, NVDIMM-N, endurance, and SPD."""

import pytest

from repro.errors import EnduranceExceededError, FirmwareError, MemoryError_
from repro.memory import (
    ENDURANCE_MLC_NAND,
    ENDURANCE_STT_MRAM,
    FIGURE8_TECHNOLOGIES,
    IMTJ_TIMING,
    PMTJ_TIMING,
    DdrDram,
    EnduranceSpec,
    NandFlash,
    NvdimmN,
    NvdimmState,
    SpdData,
    SttMram,
    SupercapSpec,
    WearTracker,
    memory_bus_lifetime_s,
    spd_for_device,
)
from repro.units import MIB


class TestSttMram:
    def test_functional_roundtrip(self):
        mram = SttMram(256 * MIB)
        t = mram.write(0x100 * 128, bytes([7] * 128), 0)
        data, _ = mram.read(0x100 * 128, 128, t)
        assert data == bytes([7] * 128)

    def test_writes_slower_than_reads(self):
        mram = SttMram(256 * MIB)
        _, r_end = mram.read(0, 128, 0)
        w_start = r_end
        w_end = mram.write(0, bytes(128), w_start)
        assert (w_end - w_start) > r_end

    def test_pmtj_faster_than_imtj(self):
        pmtj = SttMram(256 * MIB, PMTJ_TIMING)
        imtj = SttMram(256 * MIB, IMTJ_TIMING)
        assert pmtj.write(0, bytes(128), 0) < imtj.write(0, bytes(128), 0)

    def test_nonvolatile_across_power_cycle(self):
        mram = SttMram(256 * MIB)
        mram.write(0, b"persist" + bytes(121), 0)
        mram.power_off()
        mram.power_on()
        data, _ = mram.read(0, 7, 10**9)
        assert data == b"persist"

    def test_wear_tracked(self):
        mram = SttMram(256 * MIB)
        mram.write(0, bytes(128), 0)
        mram.write(0, bytes(128), 10**9)
        assert mram.wear.wear_of(0) == 2


class TestNandFlash:
    def test_functional_roundtrip(self):
        flash = NandFlash(64 * MIB)
        t = flash.write(0, b"flash data", 0)
        data, _ = flash.read(0, 10, t)
        assert data == b"flash data"

    def test_program_much_slower_than_dram(self):
        flash = NandFlash(64 * MIB)
        dram = DdrDram(64 * MIB, refresh_enabled=False)
        f_end = flash.write(0, bytes(4096), 0)
        d_end = dram.write(0, bytes(4096), 0)
        assert f_end > 100 * d_end

    def test_multi_page_write_scales(self):
        flash = NandFlash(64 * MIB)
        one = flash.write(0, bytes(16 << 10), 0)
        flash2 = NandFlash(64 * MIB)
        four = flash2.write(0, bytes(64 << 10), 0)
        assert four > 3 * one

    def test_endurance_enforced(self):
        spec = EnduranceSpec("nand_test", 3)
        flash = NandFlash(
            64 * MIB, spec=spec, enforce_endurance=True
        )
        t = 0
        for _ in range(3):
            t = flash.write(0, b"x", t)
        with pytest.raises(EnduranceExceededError):
            flash.write(0, b"x", t)


class TestNvdimm:
    def test_operates_at_dram_speed(self):
        nvdimm = NvdimmN(64 * MIB)
        dram = DdrDram(64 * MIB)
        _, n_end = nvdimm.read(0, 128, 0)
        _, d_end = dram.read(0, 128, 0)
        assert n_end == d_end

    def test_save_restore_preserves_contents(self):
        nvdimm = NvdimmN(64 * MIB)
        t = nvdimm.write(0x1000, b"must survive", 0)
        t = nvdimm.power_loss(t)
        assert nvdimm.state is NvdimmState.SAVED
        t = nvdimm.power_restore(t)
        assert nvdimm.state is NvdimmState.NORMAL
        data, _ = nvdimm.read(0x1000, 12, t)
        assert data == b"must survive"
        assert nvdimm.contents_preserved

    def test_undersized_supercap_loses_contents(self):
        weak = SupercapSpec(hold_up_ms=1.0, save_bandwidth_mb_s=400.0)
        nvdimm = NvdimmN(64 * MIB, supercap=weak)
        t = nvdimm.write(0, b"doomed", 0)
        t = nvdimm.power_loss(t)
        assert nvdimm.state is NvdimmState.LOST
        assert not nvdimm.contents_preserved
        t = nvdimm.power_restore(t)
        data, _ = nvdimm.read(0, 6, t)
        assert data == bytes(6)

    def test_access_during_saved_state_raises(self):
        nvdimm = NvdimmN(64 * MIB)
        t = nvdimm.power_loss(0)
        with pytest.raises(MemoryError_):
            nvdimm.read(0, 128, t)

    def test_restore_from_normal_raises(self):
        nvdimm = NvdimmN(64 * MIB)
        with pytest.raises(MemoryError_):
            nvdimm.power_restore(0)

    def test_save_time_scales_with_capacity(self):
        cap = SupercapSpec()
        assert cap.save_time_ms(2 * 64 * MIB) == pytest.approx(
            2 * cap.save_time_ms(64 * MIB)
        )


class TestEndurance:
    def test_figure8_ordering(self):
        # the Figure 8 story: NAND grades << MRAM
        cycles = [spec.cycles for spec in FIGURE8_TECHNOLOGIES]
        assert cycles == sorted(cycles)
        assert ENDURANCE_STT_MRAM.cycles / ENDURANCE_MLC_NAND.cycles >= 1e10

    def test_bus_lifetime_flash_vs_mram(self):
        # at 10 GB/s sustained writes into 256 MB:
        flash_life = memory_bus_lifetime_s(ENDURANCE_MLC_NAND, 256 * MIB, 10e9)
        mram_life = memory_bus_lifetime_s(ENDURANCE_STT_MRAM, 256 * MIB, 10e9)
        assert flash_life < 3_600          # flash dies within an hour
        assert mram_life > 3.15e7          # MRAM outlives a year

    def test_wear_tracker_counts_per_unit(self):
        tracker = WearTracker(EnduranceSpec("t", 100), unit_bytes=128, enforce=False)
        tracker.record_write(0, 128)
        tracker.record_write(0, 1)
        tracker.record_write(128, 128)
        assert tracker.wear_of(0) == 2
        assert tracker.wear_of(128) == 1
        assert tracker.max_wear() == 2

    def test_wear_spanning_units(self):
        tracker = WearTracker(EnduranceSpec("t", 100), unit_bytes=128, enforce=False)
        tracker.record_write(100, 100)  # touches units 0 and 1
        assert tracker.wear_of(0) == 1
        assert tracker.wear_of(128) == 1

    def test_remaining_fraction(self):
        tracker = WearTracker(EnduranceSpec("t", 4), unit_bytes=64, enforce=False)
        tracker.record_write(0, 1)
        assert tracker.remaining_fraction(0) == pytest.approx(0.75)

    def test_hottest_units(self):
        tracker = WearTracker(EnduranceSpec("t", 1000), unit_bytes=64, enforce=False)
        for _ in range(5):
            tracker.record_write(64, 1)
        tracker.record_write(0, 1)
        assert tracker.hottest_units(1) == [(1, 5)]


class TestSpd:
    def test_roundtrip(self):
        spd = SpdData("mram", 256 * MIB, speed_mt_s=1066, vendor="EVR")
        assert SpdData.decode(spd.encode()) == spd

    def test_checksum_detects_corruption(self):
        raw = bytearray(SpdData("dram", 64 * MIB).encode())
        raw[3] ^= 0xFF
        with pytest.raises(FirmwareError):
            SpdData.decode(bytes(raw))

    def test_wrong_length_rejected(self):
        with pytest.raises(FirmwareError):
            SpdData.decode(b"short")

    def test_nonvolatile_flag(self):
        assert SpdData("mram", 1).is_non_volatile
        assert SpdData("nvdimm", 1).is_non_volatile
        assert not SpdData("dram", 1).is_non_volatile

    def test_spd_for_device(self):
        mram = SttMram(256 * MIB)
        spd = spd_for_device(mram)
        assert spd.module_type == "mram"
        assert spd.capacity_bytes == 256 * MIB
        assert spd.contents_preserved

    def test_spd_for_nvdimm_tracks_state(self):
        nvdimm = NvdimmN(64 * MIB)
        assert spd_for_device(nvdimm).contents_preserved  # NORMAL is preserved
        weak = NvdimmN(64 * MIB, supercap=SupercapSpec(hold_up_ms=0.001))
        weak.power_loss(0)
        assert not spd_for_device(weak).contents_preserved


class TestNvdimmFailurePaths:
    """Accounting around failed saves and restore-after-loss (the paths
    the nvdimm.power_loss fault injector drives)."""

    def undersized(self):
        return SupercapSpec(hold_up_ms=1.0, save_bandwidth_mb_s=400.0)

    def test_failed_save_is_counted(self):
        nvdimm = NvdimmN(64 * MIB, supercap=self.undersized())
        nvdimm.power_loss(0)
        assert nvdimm.failed_saves == 1
        assert nvdimm.saves == 0

    def test_successful_save_is_counted(self):
        nvdimm = NvdimmN(64 * MIB)
        nvdimm.power_loss(0)
        assert nvdimm.saves == 1
        assert nvdimm.failed_saves == 0

    def test_restore_after_loss_returns_to_normal_but_empty(self):
        nvdimm = NvdimmN(64 * MIB, supercap=self.undersized())
        t = nvdimm.write(0x200, b"gone", 0)
        t = nvdimm.power_loss(t)
        assert nvdimm.state is NvdimmState.LOST
        t = nvdimm.power_restore(t)
        assert nvdimm.state is NvdimmState.NORMAL
        data, _ = nvdimm.read(0x200, 4, t)
        assert data == bytes(4)
        # back in service: the next cycle with a healthy supercap saves
        nvdimm.supercap = SupercapSpec()
        t = nvdimm.write(0x200, b"kept", t)
        t = nvdimm.power_loss(t)
        t = nvdimm.power_restore(t)
        data, _ = nvdimm.read(0x200, 4, t)
        assert data == b"kept"
        assert nvdimm.saves == 1 and nvdimm.failed_saves == 1

    def test_repeated_failures_accumulate(self):
        nvdimm = NvdimmN(64 * MIB, supercap=self.undersized())
        t = 0
        for _ in range(3):
            t = nvdimm.power_loss(t)
            t = nvdimm.power_restore(t)
        assert nvdimm.failed_saves == 3
        assert nvdimm.saves == 0

    def test_contents_preserved_flag_tracks_loss(self):
        nvdimm = NvdimmN(64 * MIB, supercap=self.undersized())
        assert nvdimm.contents_preserved
        t = nvdimm.power_loss(0)
        assert not nvdimm.contents_preserved
        nvdimm.power_restore(t)
        assert nvdimm.contents_preserved  # flag covers the current cycle
