"""Tests for the sparse backing store and device basics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressRangeError, MemoryError_
from repro.memory import SparseBacking
from repro.memory.dram import DdrDram
from repro.units import GIB, MIB


class TestSparseBacking:
    def test_unwritten_reads_zero(self):
        backing = SparseBacking(1 * MIB)
        assert backing.read(0x1000, 64) == bytes(64)

    def test_write_read_roundtrip(self):
        backing = SparseBacking(1 * MIB)
        backing.write(0x2000, b"hello world")
        assert backing.read(0x2000, 11) == b"hello world"

    def test_write_spanning_blocks(self):
        backing = SparseBacking(1 * MIB)
        data = bytes(range(256)) * 40  # 10240 bytes, spans 4 KiB blocks
        backing.write(4096 - 100, data)
        assert backing.read(4096 - 100, len(data)) == data

    def test_sparse_memory_usage(self):
        backing = SparseBacking(64 * GIB)
        backing.write(32 * GIB, b"x")
        assert backing.resident_bytes == 4096

    def test_out_of_range_read_raises(self):
        backing = SparseBacking(1024)
        with pytest.raises(AddressRangeError):
            backing.read(1000, 100)

    def test_out_of_range_write_raises(self):
        backing = SparseBacking(1024)
        with pytest.raises(AddressRangeError):
            backing.write(1020, b"12345")

    def test_negative_address_raises(self):
        with pytest.raises(AddressRangeError):
            SparseBacking(1024).read(-1, 4)

    def test_fill(self):
        backing = SparseBacking(1 * MIB)
        backing.fill(100, 50, 0xAB)
        assert backing.read(100, 50) == bytes([0xAB] * 50)
        assert backing.read(99, 1) == b"\x00"

    def test_clear(self):
        backing = SparseBacking(1 * MIB)
        backing.write(0, b"data")
        backing.clear()
        assert backing.read(0, 4) == bytes(4)

    def test_copy_into(self):
        src, dst = SparseBacking(1 * MIB), SparseBacking(1 * MIB)
        src.write(0x5000, b"payload")
        src.copy_into(dst)
        assert dst.read(0x5000, 7) == b"payload"

    @given(
        st.lists(
            st.tuples(st.integers(0, 60_000), st.binary(min_size=1, max_size=300)),
            min_size=1,
            max_size=20,
        )
    )
    def test_matches_reference_bytearray(self, writes):
        backing = SparseBacking(64 * 1024)
        reference = bytearray(64 * 1024)
        for addr, data in writes:
            if addr + len(data) <= 64 * 1024:
                backing.write(addr, data)
                reference[addr : addr + len(data)] = data
        assert backing.read(0, 64 * 1024) == bytes(reference)

    def test_zero_capacity_rejected(self):
        with pytest.raises(AddressRangeError):
            SparseBacking(0)


class TestDevicePower:
    def test_volatile_device_loses_contents_on_power_off(self):
        dram = DdrDram(1 * MIB)
        dram.write(0, b"volatile", 0)
        dram.power_off()
        dram.power_on()
        data, _ = dram.read(0, 8, 0)
        assert data == bytes(8)

    def test_access_while_off_raises(self):
        dram = DdrDram(1 * MIB)
        dram.power_off()
        with pytest.raises(MemoryError_):
            dram.read(0, 8, 0)

    def test_stats_account_bytes(self):
        dram = DdrDram(1 * MIB)
        dram.write(0, bytes(128), 0)
        dram.read(0, 128, 10**9)
        assert dram.bytes_written == 128
        assert dram.bytes_read == 128
