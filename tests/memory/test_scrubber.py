"""Tests for the patrol scrubber and SUE poisoning."""

import pytest

from repro.errors import ConfigurationError
from repro.memory import (
    DdrDram,
    MemoryController,
    PatrolScrubber,
    ScrubConfig,
)
from repro.memory.scrubber import us_to_ps
from repro.sim import Simulator
from repro.units import CACHE_LINE_BYTES, MIB


def ecc_dram(capacity=64 * 1024):
    return DdrDram(capacity, refresh_enabled=False, ecc_enabled=True)


class TestPatrolScrubber:
    def test_requires_ecc(self):
        sim = Simulator()
        plain = DdrDram(64 * 1024, refresh_enabled=False)
        with pytest.raises(ConfigurationError):
            PatrolScrubber(sim, plain)

    def test_sweep_covers_every_line(self):
        sim = Simulator()
        dram = ecc_dram(capacity=64 * CACHE_LINE_BYTES)
        for line in range(64):
            dram.write(line * CACHE_LINE_BYTES, bytes(CACHE_LINE_BYTES), 0)
        scrubber = PatrolScrubber(sim, dram, ScrubConfig(interval_ps=1_000))
        scrubber.start()
        sim.run(until_ps=scrubber.sweep_time_ps() + 10_000)
        scrubber.stop_requested = True
        sim.run()
        assert scrubber.sweeps_completed >= 1
        assert scrubber.lines_scrubbed >= 64

    def test_heals_latent_single_bit_errors(self):
        sim = Simulator()
        dram = ecc_dram(capacity=32 * CACHE_LINE_BYTES)
        for line in range(32):
            dram.write(line * CACHE_LINE_BYTES, bytes([0x77] * CACHE_LINE_BYTES), 0)
        # seed latent errors in several lines
        for line in (1, 7, 19):
            dram.inject_bit_error(line * CACHE_LINE_BYTES, bit=9)
        scrubber = PatrolScrubber(sim, dram, ScrubConfig(interval_ps=1_000))
        scrubber.start()
        sim.run(until_ps=scrubber.sweep_time_ps() + 10_000)
        scrubber.stop_requested = True
        sim.run()
        assert scrubber.corrections == 3
        # cells are clean again in the raw array
        for line in (1, 7, 19):
            raw = dram.backing.read(line * CACHE_LINE_BYTES, CACHE_LINE_BYTES)
            assert raw == bytes([0x77] * CACHE_LINE_BYTES)

    def test_scrubbing_prevents_error_accumulation(self):
        # without scrubbing, two hits on one word over time are fatal;
        # with a patrol between them, both are corrected independently
        sim = Simulator()
        dram = ecc_dram(capacity=4 * CACHE_LINE_BYTES)
        dram.write(0, bytes(CACHE_LINE_BYTES), 0)

        dram.inject_bit_error(0, bit=3)
        # patrol visits the line, fixing the first hit
        dram.read(0, CACHE_LINE_BYTES, 1_000)
        dram.inject_bit_error(0, bit=11)  # second hit, same word
        data, _ = dram.read(0, CACHE_LINE_BYTES, 2_000)  # still correctable
        assert data == bytes(CACHE_LINE_BYTES)
        assert dram.ecc_corrections == 2
        assert dram.ecc_uncorrectable == 0

    def test_double_start_rejected(self):
        sim = Simulator()
        scrubber = PatrolScrubber(sim, ecc_dram())
        scrubber.start()
        with pytest.raises(ConfigurationError):
            scrubber.start()


class TestSuePoisoning:
    def test_uncorrectable_read_returns_poison(self):
        sim = Simulator()
        dram = ecc_dram(capacity=1 * MIB)
        mc = MemoryController(sim, dram)
        sim.run_until_signal(mc.submit_write(0, bytes(128)))
        dram.inject_bit_error(0, bit=2)
        dram.inject_bit_error(0, bit=33)  # double hit: uncorrectable
        data = sim.run_until_signal(mc.submit_read(0, 128))
        assert data == bytes([MemoryController.POISON_BYTE]) * 128
        assert mc.uncorrectable_errors == 1
        assert dram.ecc_uncorrectable == 1

    def test_machine_keeps_running_after_sue(self):
        sim = Simulator()
        dram = ecc_dram(capacity=1 * MIB)
        mc = MemoryController(sim, dram)
        sim.run_until_signal(mc.submit_write(0, bytes(128)))
        dram.inject_bit_error(0, bit=2)
        dram.inject_bit_error(0, bit=33)
        sim.run_until_signal(mc.submit_read(0, 128))  # poisoned
        # a clean line elsewhere still reads fine afterwards
        sim.run_until_signal(mc.submit_write(4096, bytes([1] * 128)))
        data = sim.run_until_signal(mc.submit_read(4096, 128))
        assert data == bytes([1] * 128)
