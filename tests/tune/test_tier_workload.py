"""The tier_replay trial workload and its knob-pairing rules.

``tier.*`` knobs drive the tiered hybrid-memory card only, so the spec
layer must reject them on every other workload (and reject foreign
knobs on ``tier_replay``) — a mismatched knob would silently tune
nothing.  The shipped ``tunespecs/tiering.json`` is loaded and walked so
the example cannot rot.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.tune import TuneSpec
from repro.tune.space import check_workload_knobs
from repro.tune.trial import run_tune_trial

TIERING_SPEC = Path(__file__).resolve().parents[2] / "tunespecs" / "tiering.json"


class TestKnobPairing:
    def test_tier_knobs_pair_with_tier_replay(self):
        check_workload_knobs("tier_replay", ["tier.policy",
                                             "tier.fast_fraction"])

    @pytest.mark.parametrize("workload", ["mem_read", "mem_write"])
    def test_tier_knobs_rejected_on_memory_workloads(self, workload):
        with pytest.raises(ConfigurationError, match="tier.policy"):
            check_workload_knobs(workload, ["tier.policy"])

    def test_tier_knobs_rejected_on_gpfs_write(self):
        with pytest.raises(ConfigurationError, match="no effect"):
            check_workload_knobs("gpfs_write", ["tier.promote_threshold"])

    def test_foreign_knobs_rejected_on_tier_replay(self):
        with pytest.raises(ConfigurationError, match="no effect"):
            check_workload_knobs("tier_replay", ["wcache.segments"])
        with pytest.raises(ConfigurationError, match="no effect"):
            check_workload_knobs("tier_replay", ["dmi.num_tags"])

    def test_spec_load_applies_the_pairing(self):
        with pytest.raises(ConfigurationError):
            TuneSpec.from_dict({
                "name": "bad",
                "workload": "mem_read",
                "space": {"tier.policy": ["static", "clock"]},
                "objectives": ["min:p99_ns"],
                "budget": {"base_samples": 4, "rungs": 1, "eta": 2},
            })


class TestTierTrial:
    def _metrics(self, config, samples=16, seed=0):
        table = run_tune_trial(
            config=json.dumps(config, sort_keys=True,
                              separators=(",", ":")),
            workload="tier_replay", samples=samples, depth=4, seed=seed,
        )
        return dict(zip(
            (row[0] for row in table.rows),
            (row[1] for row in table.rows),
        ))

    def test_trial_reports_the_objective_metrics(self):
        metrics = self._metrics({"tier.policy": "clock"})
        for name in ("p99_ns", "p50_ns", "mean_ns", "throughput_ops_s",
                     "occupancy"):
            assert name in metrics, name
            assert metrics[name] > 0
        assert metrics["errors"] == 0
        assert metrics["samples"] == 16

    def test_common_random_numbers_make_trials_comparable(self):
        a = self._metrics({"tier.policy": "static"})
        b = self._metrics({"tier.policy": "static"})
        assert a == b

    def test_policy_knob_changes_the_measurement(self):
        static = self._metrics({"tier.policy": "static"}, samples=48)
        clock = self._metrics({"tier.policy": "clock"}, samples=48)
        assert static != clock

    def test_bad_policy_value_rejected(self):
        with pytest.raises(ConfigurationError):
            self._metrics({"tier.policy": "lru"})


class TestShippedTieringSpec:
    def test_example_spec_loads_and_spans_the_tier_knobs(self):
        spec = TuneSpec.from_dict(json.loads(TIERING_SPEC.read_text()))
        assert spec.workload == "tier_replay"
        names = {name for name, _ in spec.space}
        assert all(name.startswith("tier.") for name in names)
        assert {"tier.policy", "tier.fast_fraction"} <= names
        # every grid point is a valid trial config
        assert len(spec.grid()) > 1
