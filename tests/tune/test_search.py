"""Searcher bookkeeping: grid enumeration and halving promotion."""

import pytest

from repro.errors import ConfigurationError
from repro.tune import TuneSpec, make_searcher


def make_spec(**overrides):
    raw = {
        "name": "s",
        "workload": "mem_read",
        "space": {
            "centaur.extra_delay_ns": [0, 4],
            "dmi.num_tags": [8, 32],
        },
        "objectives": ["min:p99_ns"],
        "searcher": "halving",
        "budget": {"base_samples": 4, "rungs": 3, "eta": 2},
    }
    raw.update(overrides)
    return TuneSpec.from_dict(raw)


def observe(searcher, batch, p99_by_key):
    searcher.observe({
        e.key: (
            None if p99_by_key[e.key] is None
            else {"p99_ns": p99_by_key[e.key]}
        )
        for e in batch
    })


class TestGrid:
    def test_everything_once_at_base_budget(self):
        searcher = make_searcher(make_spec(searcher="grid"))
        batch = searcher.next_batch()
        # 4 grid configs + the implicit {} baseline
        assert len(batch) == 5
        assert all(e.rung == 0 and e.samples == 4 for e in batch)
        observe(searcher, batch, {e.key: 100.0 for e in batch})
        assert searcher.next_batch() is None


class TestHalving:
    def test_rung_geometry(self):
        searcher = make_searcher(make_spec())
        r0 = searcher.next_batch()
        assert len(r0) == 5 and r0[0].samples == 4
        observe(searcher, r0, {e.key: 100.0 + i for i, e in enumerate(r0)})
        r1 = searcher.next_batch()
        assert len(r1) == 2 and all(e.samples == 8 for e in r1)
        observe(searcher, r1, {e.key: 50.0 for e in r1})
        r2 = searcher.next_batch()
        assert len(r2) == 1 and r2[0].samples == 16
        observe(searcher, r2, {r2[0].key: 40.0})
        assert searcher.next_batch() is None

    def test_promotion_keeps_the_best_by_primary(self):
        searcher = make_searcher(make_spec())
        r0 = searcher.next_batch()
        scores = {e.key: float(200 - 10 * i) for i, e in enumerate(r0)}
        observe(searcher, r0, scores)
        promoted = {e.key for e in searcher.next_batch()}
        best_two = sorted(scores, key=lambda k: (scores[k], k))[:2]
        assert promoted == set(best_two)

    def test_promotion_ties_break_on_key(self):
        searcher = make_searcher(make_spec())
        r0 = searcher.next_batch()
        observe(searcher, r0, {e.key: 100.0 for e in r0})
        promoted = [e.key for e in searcher.next_batch()]
        assert promoted == sorted(e.key for e in r0)[:2]

    def test_failed_trials_never_promote(self):
        searcher = make_searcher(make_spec())
        r0 = searcher.next_batch()
        scores = {e.key: 100.0 for e in r0}
        scores[sorted(scores)[0]] = None  # best-sorting key fails
        observe(searcher, r0, scores)
        promoted = {e.key for e in searcher.next_batch()}
        assert sorted(scores)[0] not in promoted

    def test_all_failed_stops_the_search(self):
        searcher = make_searcher(make_spec())
        r0 = searcher.next_batch()
        observe(searcher, r0, {e.key: None for e in r0})
        assert searcher.next_batch() is None

    def test_history_accumulates_per_rung(self):
        searcher = make_searcher(make_spec())
        r0 = searcher.next_batch()
        observe(searcher, r0, {e.key: 100.0 for e in r0})
        r1 = searcher.next_batch()
        observe(searcher, r1, {e.key: 90.0 for e in r1})
        survivor = searcher.trials[r1[0].key]
        assert [h["rung"] for h in survivor.history] == [0, 1]
        assert [h["samples"] for h in survivor.history] == [4, 8]

    def test_observe_unknown_trial_rejected(self):
        searcher = make_searcher(make_spec())
        searcher.next_batch()
        with pytest.raises(ConfigurationError, match="unknown trial"):
            searcher.observe({"{}bogus": {"p99_ns": 1.0}})
