"""TuneSpec validation: knobs, objectives, budget, serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.tune import (
    Budget,
    Objective,
    TuneSpec,
    canonical_config,
    validate_config,
)


def make_spec(**overrides):
    raw = {
        "name": "t",
        "workload": "mem_read",
        "space": {"centaur.extra_delay_ns": [0, 8]},
        "objectives": ["min:p99_ns"],
        "budget": {"base_samples": 4, "rungs": 1, "eta": 2},
    }
    raw.update(overrides)
    return TuneSpec.from_dict(raw)


class TestConfigValidation:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown knob"):
            validate_config({"centaur.bogus": 1})

    @pytest.mark.parametrize("name,value", [
        ("centaur.extra_delay_ns", -1),
        ("centaur.extra_delay_ns", 1_001),
        ("fpga.knob_position", 8),
        ("fpga.knob_position", -1),
        ("dmi.num_tags", 0),
        ("dmi.num_tags", 65),
        ("dmi.replay_depth", 0),
        ("ddr.cl_cycles", 3),
        ("ddr.cl_cycles", 21),
        ("wcache.segment_bytes", 1024),
        ("wcache.segments", 1),
        ("wcache.destage_threshold", 0),
    ])
    def test_out_of_range_rejected(self, name, value):
        with pytest.raises(ConfigurationError, match="outside"):
            validate_config({name: value})

    def test_type_mismatches_rejected(self):
        with pytest.raises(ConfigurationError, match="true/false"):
            validate_config({"centaur.cache_enabled": 1})
        with pytest.raises(ConfigurationError, match="integer"):
            validate_config({"dmi.num_tags": 8.5})
        with pytest.raises(ConfigurationError, match="number"):
            validate_config({"fpga.knob_position": "3"})
        with pytest.raises(ConfigurationError, match="not one of"):
            validate_config({"ddr.grade": "ddr5_4800"})

    def test_buffer_kinds_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            validate_config({
                "centaur.extra_delay_ns": 4, "fpga.knob_position": 2,
            })

    def test_canonical_config_is_sorted_and_stable(self):
        a = canonical_config({"dmi.num_tags": 8, "ddr.grade": "ddr3_1600"})
        b = canonical_config({"ddr.grade": "ddr3_1600", "dmi.num_tags": 8})
        assert a == b
        assert a.index("ddr.grade") < a.index("dmi.num_tags")


class TestSpecParsing:
    def test_objective_shorthand(self):
        spec = make_spec(objectives=["p50_ns", "max:throughput_ops_s"])
        assert spec.objectives == (
            Objective("p50_ns", "min"),
            Objective("throughput_ops_s", "max"),
        )

    def test_unknown_objective_metric_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            make_spec(objectives=["min:latency"])

    def test_bad_goal_rejected(self):
        with pytest.raises(ConfigurationError, match="goal"):
            make_spec(objectives=["best:p99_ns"])

    def test_workload_knob_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="no effect"):
            make_spec(space={"wcache.segments": [4, 8]})
        with pytest.raises(ConfigurationError, match="no effect"):
            make_spec(
                workload="gpfs_write", space={"dmi.num_tags": [8, 16]},
            )

    def test_out_of_range_space_value_rejected_at_load(self):
        with pytest.raises(ConfigurationError, match="outside"):
            make_spec(space={"dmi.num_tags": [8, 128]})

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError, match="base_samples"):
            Budget(base_samples=1)
        with pytest.raises(ConfigurationError, match="rungs"):
            Budget(rungs=0)
        with pytest.raises(ConfigurationError, match="eta"):
            Budget(eta=1)
        assert Budget(base_samples=4, eta=3).samples_at(2) == 36

    def test_grid_is_cross_product_in_canonical_order(self):
        spec = make_spec(space={
            "centaur.extra_delay_ns": [0, 8], "dmi.num_tags": [4, 16],
        })
        assert [sorted(c.items()) for c in spec.grid()] == [
            [("centaur.extra_delay_ns", 0), ("dmi.num_tags", 4)],
            [("centaur.extra_delay_ns", 0), ("dmi.num_tags", 16)],
            [("centaur.extra_delay_ns", 8), ("dmi.num_tags", 4)],
            [("centaur.extra_delay_ns", 8), ("dmi.num_tags", 16)],
        ]

    def test_json_round_trip(self):
        spec = make_spec(baseline={"centaur.extra_delay_ns": 0})
        assert TuneSpec.from_json(spec.to_json()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown tune spec"):
            make_spec(objective="p99_ns")
