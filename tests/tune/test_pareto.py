"""Pareto dominance edge cases and the budget-matched comparison rule."""

from repro.tune import (
    Objective,
    TrialState,
    common_rung_objectives,
    dominates,
    front_keys,
    mark_dominated,
    select_winner,
)

MIN_P99 = (Objective("p99_ns", "min"),)
BOTH = (Objective("p99_ns", "min"), Objective("throughput_ops_s", "max"))


def trial(key, history, status="ok"):
    """A TrialState whose rung history is ``{rung: objectives}``."""
    last = max(history) if history else -1
    return TrialState(
        config={}, key=key, rung=last,
        samples=4 * 2 ** last if history else 0,
        objectives=dict(history[last]) if history else None,
        status=status,
        history=[
            {"rung": r, "samples": 4 * 2 ** r, "objectives": dict(history[r])}
            for r in sorted(history)
        ],
    )


class TestDominates:
    def test_strictly_better_on_one_equal_on_other(self):
        a = {"p99_ns": 100.0, "throughput_ops_s": 10.0}
        b = {"p99_ns": 120.0, "throughput_ops_s": 10.0}
        assert dominates(a, b, BOTH)
        assert not dominates(b, a, BOTH)

    def test_equal_vectors_do_not_dominate(self):
        a = {"p99_ns": 100.0, "throughput_ops_s": 10.0}
        assert not dominates(a, dict(a), BOTH)

    def test_tradeoff_means_no_domination(self):
        fast = {"p99_ns": 100.0, "throughput_ops_s": 5.0}
        wide = {"p99_ns": 200.0, "throughput_ops_s": 50.0}
        assert not dominates(fast, wide, BOTH)
        assert not dominates(wide, fast, BOTH)

    def test_max_goal_inverts_direction(self):
        more = {"throughput_ops_s": 50.0}
        less = {"throughput_ops_s": 5.0}
        goal = (Objective("throughput_ops_s", "max"),)
        assert dominates(more, less, goal)
        assert not dominates(less, more, goal)


class TestFront:
    def test_tied_configs_all_on_front(self):
        trials = [
            trial("a", {0: {"p99_ns": 100.0}}),
            trial("b", {0: {"p99_ns": 100.0}}),
            trial("c", {0: {"p99_ns": 150.0}}),
        ]
        assert front_keys(trials, MIN_P99) == ["a", "b"]

    def test_single_objective_degenerates_to_best(self):
        trials = [
            trial("a", {0: {"p99_ns": 90.0}}),
            trial("b", {0: {"p99_ns": 100.0}}),
            trial("c", {0: {"p99_ns": 110.0}}),
        ]
        assert front_keys(trials, MIN_P99) == ["a"]

    def test_tradeoff_keeps_both(self):
        trials = [
            trial("fast", {0: {"p99_ns": 100.0, "throughput_ops_s": 5.0}}),
            trial("wide", {0: {"p99_ns": 200.0, "throughput_ops_s": 50.0}}),
            trial("bad", {0: {"p99_ns": 300.0, "throughput_ops_s": 1.0}}),
        ]
        assert front_keys(trials, BOTH) == ["fast", "wide"]

    def test_failed_trials_excluded(self):
        trials = [
            trial("a", {0: {"p99_ns": 100.0}}),
            trial("x", {}, status="failed"),
        ]
        assert front_keys(trials, MIN_P99) == ["a"]
        assert "x" not in mark_dominated(trials, MIN_P99)


class TestBudgetMatching:
    def test_comparison_uses_deepest_common_rung(self):
        # deep went to rung 1 where its 8-sample p99 probes a longer
        # tail (worse absolute number); shallow only ran rung 0
        deep = trial("deep", {0: {"p99_ns": 90.0}, 1: {"p99_ns": 140.0}})
        shallow = trial("shallow", {0: {"p99_ns": 100.0}})
        pair = common_rung_objectives(deep, shallow)
        assert pair == ({"p99_ns": 90.0}, {"p99_ns": 100.0})
        # judged at rung 0, deep wins despite its larger final value
        assert front_keys([deep, shallow], MIN_P99) == ["deep"]

    def test_disjoint_histories_never_dominate(self):
        a = trial("a", {0: {"p99_ns": 100.0}})
        b = trial("b", {1: {"p99_ns": 999.0}})
        assert common_rung_objectives(a, b) is None
        assert front_keys([a, b], MIN_P99) == ["a", "b"]


class TestWinner:
    def test_winner_among_deepest_rung_only(self):
        promoted = trial("p", {0: {"p99_ns": 95.0}, 1: {"p99_ns": 140.0}})
        dropped = trial("d", {0: {"p99_ns": 100.0}})
        assert select_winner([promoted, dropped], MIN_P99).key == "p"

    def test_ties_break_on_canonical_key(self):
        a = trial("a", {0: {"p99_ns": 100.0}})
        b = trial("b", {0: {"p99_ns": 100.0}})
        assert select_winner([b, a], MIN_P99).key == "a"

    def test_all_failed_yields_none(self):
        assert select_winner([trial("x", {}, status="failed")], MIN_P99) is None
