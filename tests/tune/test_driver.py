"""The tune driver end to end: determinism, caching, mid-run resume.

These boot real (small) simulated systems per trial, so the spec is kept
tiny: five configs at rung 0, two survivors at rung 1.
"""

import json

import pytest

from repro.campaign import ResultCache
from repro.tune import TuneDriver, TuneSpec

SPEC_RAW = {
    "name": "unit",
    "workload": "mem_read",
    "space": {
        "centaur.extra_delay_ns": [0, 8],
        "dmi.num_tags": [4, 16],
    },
    "objectives": ["min:p99_ns", "max:throughput_ops_s"],
    "searcher": "halving",
    "budget": {"base_samples": 4, "rungs": 2, "eta": 2},
    "depth": 2,
}

SEED = 7


def run(tmp_path, sub, workers, cache=None, raw=SPEC_RAW, resume=False):
    out = tmp_path / sub
    report = TuneDriver(
        TuneSpec.from_dict(raw), seed=SEED, workers=workers,
        cache=cache, out_dir=str(out), resume=resume,
    ).run()
    return report, out


class TestDriver:
    def test_front_and_artifacts_identical_across_worker_counts(self, tmp_path):
        r1, out1 = run(tmp_path, "w1", workers=1)
        r3, out3 = run(tmp_path, "w3", workers=3)
        assert (out1 / "pareto.jsonl").read_bytes() == \
            (out3 / "pareto.jsonl").read_bytes()
        assert (out1 / "tune_report.csv").read_bytes() == \
            (out3 / "tune_report.csv").read_bytes()
        assert r1.front == r3.front
        assert r1.winner.key == r3.winner.key

    def test_rerun_is_a_total_cache_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cold, _ = run(tmp_path, "cold", workers=2, cache=cache)
        warm, out = run(tmp_path, "warm", workers=1, cache=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.jobs == cold.jobs
        assert warm.front == cold.front

    def test_half_finished_halving_resumes_from_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        # "interrupted" run: same spec cut down to rung 0 only
        half_raw = dict(SPEC_RAW, budget=dict(SPEC_RAW["budget"], rungs=1))
        half, _ = run(tmp_path, "half", workers=2, cache=cache, raw=half_raw)
        # the full run replays rung 0 from the cache, executes only rung 1
        full, out = run(tmp_path, "full", workers=2, cache=cache)
        assert full.cache_hits == half.jobs == 5
        assert full.jobs == 7
        # and matches a from-scratch run of the full spec byte for byte
        _, fresh_out = run(tmp_path, "fresh", workers=1)
        assert (out / "pareto.jsonl").read_bytes() == \
            (fresh_out / "pareto.jsonl").read_bytes()

    def test_manifest_resume_skips_reexecution(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        _, out = run(tmp_path, "first", workers=2, cache=cache)
        again, _ = TuneDriver(
            TuneSpec.from_dict(SPEC_RAW), seed=SEED, workers=2,
            cache=cache, out_dir=str(out), resume=True,
        ).run(), out
        assert again.cache_hits == again.jobs

    def test_report_fields(self, tmp_path):
        report, out = run(tmp_path, "fields", workers=2)
        assert report.winner is not None
        assert report.baseline is not None  # implicit {} joined rung 0
        assert report.baseline.key == "{}"
        assert report.matched_comparison() is not None
        assert "winner" in report.render()
        records = [
            json.loads(line)
            for line in (out / "pareto.jsonl").read_text().splitlines()
        ]
        assert records[0]["kind"] == "meta"
        assert records[0]["trials"] == 5
        assert all(r["kind"] == "trial" for r in records[1:])
        keys = [r["key"] for r in records[1:]]
        assert keys == sorted(keys)
