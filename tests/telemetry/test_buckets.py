"""Shared time-bucketing and sparkline helpers."""

import pytest

from repro.telemetry import bucket_of, slice_width, sparkline
from repro.telemetry.buckets import SPARK_GLYPHS


class TestSlicing:
    def test_width_is_ceiling_division(self):
        assert slice_width(0, 100, 10) == 10
        assert slice_width(0, 101, 10) == 11
        assert slice_width(50, 60, 100) == 1  # never zero

    def test_rejects_nonpositive_bucket_count(self):
        with pytest.raises(ValueError):
            slice_width(0, 100, 0)

    def test_bucket_of_bins_and_clamps(self):
        width = slice_width(0, 100, 10)
        assert bucket_of(0, 0, width, 10) == 0
        assert bucket_of(99, 0, width, 10) == 9
        # out-of-range times clamp instead of overflowing
        assert bucket_of(1_000, 0, width, 10) == 9
        assert bucket_of(-5, 0, width, 10) == 0

    def test_every_instant_lands_in_exactly_one_bucket(self):
        t0, t1, buckets = 7, 113, 9
        width = slice_width(t0, t1, buckets)
        seen = [bucket_of(t, t0, width, buckets) for t in range(t0, t1)]
        assert min(seen) == 0 and max(seen) == buckets - 1
        assert seen == sorted(seen)


class TestSparkline:
    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_flat_at_lo_renders_lowest_glyph(self):
        assert sparkline([0, 0, 0]) == SPARK_GLYPHS[0] * 3

    def test_flat_above_lo_renders_top_glyph(self):
        # the scale runs lo -> max, so a flat nonzero series is "at max"
        assert sparkline([5, 5, 5]) == SPARK_GLYPHS[-1] * 3

    def test_scale_is_linear_from_lo(self):
        line = sparkline([0, 50, 100])
        assert line[0] == SPARK_GLYPHS[0]
        assert line[-1] == SPARK_GLYPHS[-1]
        assert len(line) == 3

    def test_peak_always_gets_the_top_glyph(self):
        for values in ([1, 2, 3], [100, 7, 3], [0.1, 0.9]):
            assert SPARK_GLYPHS[-1] in sparkline(values)
