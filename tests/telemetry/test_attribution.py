"""Attribution layer: journeys, breakdown, artifact, sampler, chrome flows."""

import pytest

from repro.telemetry import (
    ATTRIBUTION_SCHEMA,
    JourneyTracker,
    LatencyBreakdown,
    OccupancySampler,
    TraceSession,
    journey_record,
    merge_attribution,
    read_attribution,
)
from repro.telemetry.attribution import (
    journey_chrome_extras,
    journey_records,
    write_attribution,
)


def make_journey(tracker, scenario="run", start=0):
    """One canonical journey: tag wait, down, nested memory, buffer, up."""
    tracker.set_scenario(scenario)
    jid = tracker.begin("read", 0x80, "dmi0", start)
    tracker.stage_to(jid, "host.tag_wait", start + 100, kind="queue")
    tracker.stage_to(jid, "dmi.down", start + 400)
    tracker.stage_span(jid, "memory.queue", start + 450, start + 500, kind="queue")
    tracker.stage_span(jid, "memory.service", start + 500, start + 700)
    tracker.stage_to(jid, "buffer", start + 800)
    tracker.stage_to(jid, "dmi.up", start + 1000)
    tracker.finish(jid, start + 1000)
    return jid


class TestJourneyTracker:
    def test_stages_partition_the_journey(self):
        tracker = JourneyTracker()
        make_journey(tracker)
        journey = tracker.completed[0]
        assert journey.total_ps == 1000
        assert journey.attributed_ps() == 1000      # top-level stages tile
        assert journey.unattributed_ps() == 0
        top = [v for v in journey.stages if not v.nested]
        assert [v.stage for v in top] == [
            "host.tag_wait", "dmi.down", "buffer", "dmi.up"
        ]
        # each stage starts where the previous ended
        for prev, nxt in zip(top, top[1:]):
            assert nxt.start_ps == prev.end_ps

    def test_zero_length_stage_skipped_but_cursor_advances(self):
        tracker = JourneyTracker()
        jid = tracker.begin("read", 0, "dmi0", 0)
        tracker.stage_to(jid, "host.tag_wait", 0, kind="queue")  # no wait
        tracker.stage_to(jid, "dmi.down", 300)
        tracker.finish(jid, 300)
        journey = tracker.completed[0]
        assert [v.stage for v in journey.stages] == ["dmi.down"]
        assert journey.stages[0].start_ps == 0   # cursor stayed put
        assert journey.unattributed_ps() == 0

    def test_queue_vs_service_classification(self):
        tracker = JourneyTracker()
        make_journey(tracker)
        kinds = {v.stage: v.kind for v in tracker.completed[0].stages}
        assert kinds["host.tag_wait"] == "queue"
        assert kinds["memory.queue"] == "queue"
        assert kinds["dmi.down"] == "service"
        assert kinds["memory.service"] == "service"

    def test_nested_spans_do_not_move_cursor(self):
        tracker = JourneyTracker()
        jid = tracker.begin("read", 0, "dmi0", 0)
        tracker.stage_to(jid, "dmi.down", 100)
        tracker.stage_span(jid, "memory.service", 120, 180)
        tracker.stage_to(jid, "buffer", 200)
        tracker.finish(jid, 200)
        buffer = next(
            v for v in tracker.completed[0].stages if v.stage == "buffer"
        )
        assert (buffer.start_ps, buffer.end_ps) == (100, 200)

    def test_binding_round_trip(self):
        tracker = JourneyTracker()
        jid = tracker.begin("read", 0, "dmi0", 0)
        tracker.bind("dmi0", 7, jid)
        assert tracker.bound("dmi0", 7) == jid
        assert tracker.bound("dmi1", 7) is None
        tracker.unbind("dmi0", 7)
        assert tracker.bound("dmi0", 7) is None

    def test_max_journeys_drops_and_counts(self):
        tracker = JourneyTracker(max_journeys=2)
        for start in (0, 100):
            jid = tracker.begin("read", 0, "dmi0", start)
            tracker.finish(jid, start + 10)
        assert tracker.begin("read", 0, "dmi0", 200) is None
        assert tracker.begin("write", 0, "dmi0", 300) is None
        assert len(tracker.completed) == 2
        assert tracker.dropped == 2

    def test_stage_calls_with_none_or_unknown_jid_are_noops(self):
        tracker = JourneyTracker()
        tracker.stage_to(999, "dmi.down", 100)     # never begun
        tracker.stage_span(999, "memory.service", 0, 100)
        assert tracker.finish(999, 100) is None
        assert tracker.completed == []

    def test_abandoned_journeys_counted_as_active(self):
        tracker = JourneyTracker()
        tracker.begin("read", 0, "dmi0", 0)        # never finished
        make_journey(tracker)
        assert tracker.active_count == 1
        assert len(tracker.completed) == 1


class TestLatencyBreakdown:
    def _folded(self, scenario="run"):
        tracker = JourneyTracker()
        make_journey(tracker, scenario=scenario)
        breakdown = LatencyBreakdown()
        breakdown.add_record(journey_record(tracker.completed[0]))
        return breakdown

    def test_buffer_stage_reported_exclusive_of_memory(self):
        breakdown = self._folded()
        rows = {r["stage"]: r for r in breakdown.stage_table("run")}
        # raw buffer window is 400ps (400..800); nested memory takes 250
        assert rows["buffer"]["mean_ps"] == 150
        assert rows["memory.queue"]["mean_ps"] == 50
        assert rows["memory.service"]["mean_ps"] == 200

    def test_stage_means_tile_the_end_to_end_latency(self):
        breakdown = self._folded()
        total = sum(r["mean_ps"] for r in breakdown.stage_table("run"))
        assert total == breakdown.end_to_end("run")["mean"] == 1000
        assert breakdown.residual("run")["mean"] == 0
        assert breakdown.check() == []

    def test_shares_sum_to_one(self):
        breakdown = self._folded()
        assert sum(r["share"] for r in breakdown.stage_table("run")) == pytest.approx(1.0)

    def test_critical_path_ordering(self):
        breakdown = self._folded()
        path = [r["stage"] for r in breakdown.critical_path("run")]
        assert path[0] == "dmi.down"               # 300ps, the largest
        assert set(path) == {
            "host.tag_wait", "dmi.down", "buffer",
            "memory.queue", "memory.service", "dmi.up",
        }

    def test_delta_between_scenarios(self):
        tracker = JourneyTracker()
        make_journey(tracker, scenario="base")
        tracker.set_scenario("slow")
        jid = tracker.begin("read", 0, "dmi0", 0)
        tracker.stage_to(jid, "dmi.down", 500)     # +200 vs base's 300
        tracker.finish(jid, 500)
        breakdown = LatencyBreakdown()
        breakdown.add_records(journey_record(j) for j in tracker.completed)
        delta = {r["stage"]: r["delta_ps"] for r in breakdown.delta("slow", "base")}
        # base dmi.down covers 100..400 = 300ps; slow covers 0..500 = 500ps
        assert delta["dmi.down"] == 200
        assert delta["buffer"] == -150             # slow has no buffer stage

    def test_missing_hook_trips_the_residual_check(self):
        tracker = JourneyTracker()
        jid = tracker.begin("read", 0, "dmi0", 0)
        tracker.stage_to(jid, "dmi.down", 100)
        tracker.finish(jid, 1000)                  # 900ps unattributed
        breakdown = LatencyBreakdown()
        breakdown.add_record(journey_record(tracker.completed[0]))
        warnings = breakdown.check()
        assert len(warnings) == 1
        assert "unattributed" in warnings[0]

    def test_empty_breakdown_warns(self):
        warnings = LatencyBreakdown().check()
        assert warnings and "no journeys" in warnings[0]

    def test_incomplete_journeys_ignored(self):
        tracker = JourneyTracker()
        tracker.begin("read", 0, "dmi0", 0)        # never finished
        breakdown = LatencyBreakdown()
        for journey in list(tracker._active.values()):
            breakdown.add_record(journey_record(journey))
        assert breakdown.scenarios() == []


class TestArtifact:
    def test_round_trip(self, tmp_path):
        with TraceSession("unit") as session:
            make_journey(session.journeys, scenario="t3")
        path = tmp_path / "attribution.jsonl"
        session.write_attribution(path)
        records = read_attribution(path)
        assert all(r["schema"] == ATTRIBUTION_SCHEMA for r in records)
        assert records[0]["kind"] == "meta"
        assert records[0]["journeys"] == 1
        assert records[0]["scenarios"] == ["t3"]
        kinds = {r["kind"] for r in records}
        assert {"meta", "journey", "end_to_end", "stage_summary"} <= kinds
        journeys = journey_records(records)
        assert len(journeys) == 1
        # the loaded records refold into the identical breakdown
        breakdown = LatencyBreakdown()
        breakdown.add_records(journeys)
        assert breakdown.end_to_end("t3")["mean"] == 1000
        assert breakdown.check() == []

    def test_disabled_journeys_still_write_meta(self, tmp_path):
        with TraceSession("off", journeys=False) as session:
            pass
        path = tmp_path / "attribution.jsonl"
        assert session.write_attribution(path) == 1
        records = read_attribution(path)
        assert records[0]["kind"] == "meta"
        assert records[0]["enabled"] is False

    def test_merge_is_order_insensitive(self):
        def source(label, scenario, start):
            tracker = JourneyTracker()
            make_journey(tracker, scenario=scenario, start=start)
            return (label, [journey_record(j) for j in tracker.completed])

        a = source("job:a", "s1", 0)
        b = source("job:b", "s2", 5000)
        c = source("job:c", "s1", 9000)
        merged_fwd = merge_attribution([a, b, c])
        merged_rev = merge_attribution([c, b, a])
        assert merged_fwd == merged_rev
        meta = merged_fwd[0]
        assert meta["sources"] == ["job:a", "job:b", "job:c"]
        assert meta["journeys"] == 3
        tagged = journey_records(merged_fwd)
        assert [r["source"] for r in tagged] == ["job:a", "job:b", "job:c"]

    def test_merged_artifact_writes_and_reloads(self, tmp_path):
        tracker = JourneyTracker()
        make_journey(tracker)
        records = merge_attribution(
            [("w0", [journey_record(j) for j in tracker.completed])]
        )
        path = tmp_path / "merged.jsonl"
        write_attribution(path, records)
        assert read_attribution(path) == records


class TestChromeFlows:
    def test_flow_chain_links_stage_spans(self):
        tracker = JourneyTracker()
        make_journey(tracker)
        extras = journey_chrome_extras(tracker.completed)
        spans = [e for e in extras if e["ph"] == "X"]
        flows = [e for e in extras if e["ph"] in ("s", "t", "f")]
        assert len(spans) == 6                     # 4 top-level + 2 nested
        assert len(flows) == 6
        assert all(e["cat"] == "journey" for e in extras)
        jid = tracker.completed[0].jid
        assert all(f["id"] == jid for f in flows)
        phases = [f["ph"] for f in flows]
        assert phases[0] == "s" and phases[-1] == "f"
        assert set(phases[1:-1]) == {"t"}
        assert flows[-1]["bp"] == "e"

    def test_session_export_carries_journeys(self):
        with TraceSession("t") as session:
            session.complete("dmi", "frame", 0, 500)
            make_journey(session.journeys)
        events = session.chrome_events()
        cats = {e["cat"] for e in events}
        assert "journey" in cats
        flow_ids = {e["id"] for e in events if e["ph"] in ("s", "t", "f")}
        assert len(flow_ids) == 1
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)                    # flows don't break order

    def test_journeys_without_stages_emit_nothing(self):
        tracker = JourneyTracker()
        jid = tracker.begin("read", 0, "dmi0", 0)
        tracker.finish(jid, 0)
        assert journey_chrome_extras(tracker.completed) == []


class TestOccupancySampler:
    def test_period_gating(self):
        with TraceSession("t") as session:
            sampler = OccupancySampler(period_ps=100)
            sampler.set_sources({"q": lambda: 3})
            assert sampler.maybe_sample(session, 0)
            assert not sampler.maybe_sample(session, 50)    # inside period
            assert sampler.maybe_sample(session, 100)
            assert sampler.samples_taken == 2
        snap = session.snapshots[-1]["metrics"]
        assert snap["occupancy.samples"] == 2
        assert snap["occupancy.q.count"] == 2
        assert snap["occupancy.q.mean"] == 3

    def test_no_sources_means_no_samples(self):
        with TraceSession("t") as session:
            sampler = OccupancySampler(period_ps=100)
            assert not sampler.maybe_sample(session, 0)
        assert sampler.samples_taken == 0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            OccupancySampler(period_ps=0)

    def test_session_wires_sampler_and_tracker(self):
        with TraceSession("t") as session:
            assert session.journeys is not None
            assert session.occupancy is not None
        with TraceSession("t", journeys=False, occupancy_period_ps=None) as off:
            assert off.journeys is None
            assert off.occupancy is None
