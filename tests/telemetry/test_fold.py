"""fold_stage_summaries: bounded-memory merging of per-worker summaries."""

from repro.telemetry import (
    JourneyTracker,
    LatencyBreakdown,
    fold_stage_summaries,
    journey_record,
)
from repro.telemetry.attribution import stage_summary_records


def make_summaries(scenario: str, latencies_ps):
    """stage_summary records of one synthetic worker's journeys."""
    tracker = JourneyTracker()
    tracker.set_scenario(scenario)
    for i, latency in enumerate(latencies_ps):
        jid = tracker.begin("read", i * 128, "ch0", 0)
        tracker.stage_to(jid, "memory.service", latency)
        tracker.finish(jid, latency)
    breakdown = LatencyBreakdown()
    for journey in tracker.completed:
        breakdown.add_record(journey_record(journey))
    return stage_summary_records(breakdown)


class TestFold:
    def test_journey_counts_sum(self):
        folded = fold_stage_summaries([
            ("job:a", make_summaries("svc", [100, 200])),
            ("job:b", make_summaries("svc", [300, 400, 500])),
        ])
        meta = next(r for r in folded if r["kind"] == "meta")
        assert meta["journeys"] == 5
        assert meta["folded"] is True
        assert meta["sources"] == ["job:a", "job:b"]

    def test_means_are_journey_weighted(self):
        folded = fold_stage_summaries([
            ("job:a", make_summaries("svc", [100, 100])),
            ("job:b", make_summaries("svc", [400])),
        ])
        e2e = next(r for r in folded if r["kind"] == "end_to_end")
        assert e2e["mean_ps"] == (100 + 100 + 400) / 3
        assert e2e["min_ps"] == 100
        assert e2e["max_ps"] == 400

    def test_scenarios_stay_separate(self):
        folded = fold_stage_summaries([
            ("job:a", make_summaries("alpha", [100])),
            ("job:b", make_summaries("beta", [900])),
        ])
        scenarios = {
            r["scenario"] for r in folded if r["kind"] == "end_to_end"
        }
        assert scenarios == {"alpha", "beta"}

    def test_every_record_is_marked_folded(self):
        folded = fold_stage_summaries([
            ("job:a", make_summaries("svc", [100])),
        ])
        assert all(r.get("folded") for r in folded)

    def test_stage_rows_survive_the_fold(self):
        folded = fold_stage_summaries([
            ("job:a", make_summaries("svc", [100, 300])),
            ("job:b", make_summaries("svc", [200])),
        ])
        stage = next(r for r in folded if r["kind"] == "stage_summary")
        assert stage["stage"] == "memory.service"
        assert stage["count"] == 3
        assert stage["mean_ps"] == (100 + 300 + 200) / 3
