"""TraceSession: span/instant capture, nesting rules, Chrome export."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    SCHEMA,
    TraceSession,
    final_snapshot,
    load_chrome_trace,
    read_jsonl,
)
from repro.telemetry import probe

ALLOWED_PH = {"B", "E", "X", "i"}


class TestActivation:
    def test_probe_set_while_active(self):
        assert probe.session is None
        with TraceSession("t") as s:
            assert probe.session is s
        assert probe.session is None

    def test_nested_sessions_rejected(self):
        with TraceSession("outer"):
            with pytest.raises(TelemetryError):
                TraceSession("inner").__enter__()

    def test_exit_takes_final_snapshot(self):
        with TraceSession("t") as s:
            s.count("x")
        assert s.snapshots[-1]["label"] == "final"
        assert s.snapshots[-1]["metrics"]["x"] == 1


class TestEventCapture:
    def test_span_and_instant_counts(self):
        with TraceSession("t") as s:
            s.complete("dmi", "frame", 0, 2_000)
            s.complete("buffer", "svc", 500, 900)
            s.instant("dmi", "replay", 700)
        assert s.span_count == 2
        assert s.instant_count == 1
        assert s.categories() == ["buffer", "dmi"]

    def test_nested_spans_preserved(self):
        # outer [0, 10ns] encloses inner [2ns, 5ns]; both survive export
        with TraceSession("t") as s:
            s.complete("kernel", "outer", 0, 10_000_000)
            s.complete("dmi", "inner", 2_000_000, 5_000_000)
        events = s.chrome_events()
        by_name = {e["name"]: e for e in events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_overflow_drops_and_counts(self):
        with TraceSession("t", max_events=2) as s:
            for i in range(5):
                s.instant("dmi", f"e{i}", i)
        assert len(s.events) == 2
        assert s.dropped_events == 3


class TestTruncation:
    """Hitting the event cap must stay visible: in metrics and in the trace."""

    def test_dropped_events_surface_in_metrics(self):
        # the events are gone, but the loss must survive into snapshots
        # (and through campaign merges, which only see metrics)
        with TraceSession("t", max_events=1) as s:
            s.complete("dmi", "kept", 0, 10)
            s.complete("dmi", "dropped1", 10, 20)
            s.instant("dmi", "dropped2", 30)
        snap = s.snapshots[-1]["metrics"]
        assert snap["telemetry.dropped_events"] == 2
        assert s.dropped_events == 2

    def test_dropped_events_counter_preseeded_at_zero(self):
        with TraceSession("t") as s:
            s.complete("dmi", "a", 0, 1)
        assert s.snapshots[-1]["metrics"]["telemetry.dropped_events"] == 0

    def test_truncation_marker_in_chrome_export(self):
        with TraceSession("t", max_events=2) as s:
            s.complete("dmi", "a", 0, 1_000)
            s.complete("dmi", "b", 500, 2_000)
            s.instant("dmi", "clipped", 5_000)
        events = s.chrome_events()
        marker = events[-1]
        assert marker["name"] == "telemetry.truncated"
        assert marker["ph"] == "i"
        assert marker["cat"] == "telemetry"
        assert marker["args"] == {"dropped_events": 1, "max_events": 2}
        # chronologically last, so no reader can miss that spans are gone
        assert marker["ts"] == max(e["ts"] for e in events)

    def test_no_marker_without_drops(self):
        with TraceSession("t") as s:
            s.complete("dmi", "a", 0, 1_000)
        names = [e["name"] for e in s.chrome_events()]
        assert "telemetry.truncated" not in names


class TestChromeExport:
    def test_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        with TraceSession("t") as s:
            s.complete("dmi", "frame", 1_000, 3_000, {"tag": 4})
            s.instant("buffer", "stall", 2_000)
        s.write_chrome(path)
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events
        for e in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
            assert e["ph"] in ALLOWED_PH
        # ps -> us conversion
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == pytest.approx(0.001)
        assert span["dur"] == pytest.approx(0.002)
        assert span["args"] == {"tag": 4}

    def test_timestamps_sorted(self):
        with TraceSession("t") as s:
            s.complete("dmi", "late", 9_000, 10_000)
            s.instant("dmi", "early", 1_000)
        ts = [e["ts"] for e in s.chrome_events()]
        assert ts == sorted(ts)

    def test_tid_stable_per_category(self):
        with TraceSession("t") as s:
            s.complete("dmi", "a", 0, 1)
            s.complete("buffer", "b", 0, 1)
            s.complete("dmi", "c", 2, 3)
        tids = {}
        for e in s.chrome_events():
            tids.setdefault(e["cat"], set()).add(e["tid"])
        assert all(len(v) == 1 for v in tids.values())
        assert tids["dmi"] != tids["buffer"]

    def test_load_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        with TraceSession("t") as s:
            s.complete("dmi", "frame", 0, 10)
        s.write_chrome(path)
        assert len(load_chrome_trace(path)) == len(s.chrome_events())


class TestMetricsArtifact:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with TraceSession("t") as s:
            s.count("dmi.frames_sent", 7)
            s.snapshot("mid", ts_ps=123)
        s.write_metrics(path)
        records = read_jsonl(path)
        assert all(r["schema"] == SCHEMA for r in records)
        labels = [r["label"] for r in records if r["kind"] == "snapshot"]
        assert labels == ["mid", "final"]
        final = final_snapshot(records)
        assert final["metrics"]["dmi.frames_sent"] == 7

    def test_core_counters_preseeded(self):
        with TraceSession("t") as s:
            pass
        snap = s.snapshots[-1]["metrics"]
        assert snap["dmi.frames_sent"] == 0
        assert snap["buffer.cache.hits"] == 0
        assert snap["buffer.cache.misses"] == 0
