"""MetricsRegistry: registration, snapshots, diff, reset."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestRegistration:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("dmi.frames")
        assert reg.counter("dmi.frames") is c
        assert "dmi.frames" in reg
        assert len(reg) == 1

    def test_register_rejects_duplicate_name(self):
        reg = MetricsRegistry()
        reg.register(Counter("x"))
        with pytest.raises(TelemetryError):
            reg.register(Counter("x"))

    def test_register_rejects_unnamed(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.register(Counter(""))

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]


class TestCounterSemantics:
    def test_add_zero_is_well_defined(self):
        c = Counter("c")
        c.add(0)
        assert c.count == 0

    def test_add_negative_rejected(self):
        c = Counter("c")
        with pytest.raises(TelemetryError):
            c.add(-1)


class TestSnapshotDiffReset:
    def test_snapshot_flat_keys(self):
        reg = MetricsRegistry()
        reg.counter("dmi.frames").add(3)
        reg.gauge("mbs.busy").set(7)
        reg.histogram("svc").record(100)
        snap = reg.snapshot()
        assert snap["dmi.frames"] == 3
        assert snap["mbs.busy"] == 7
        assert snap["svc.count"] == 1
        assert snap["svc.p50"] == 100

    def test_empty_histogram_snapshot_is_finite(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        snap = reg.snapshot()
        assert snap["empty.count"] == 0
        assert snap["empty.mean"] == 0.0  # no nan, no raise

    def test_diff(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.add(2)
        before = reg.snapshot()
        c.add(5)
        delta = MetricsRegistry.diff(before, reg.snapshot())
        assert delta["c"] == 5

    def test_diff_handles_new_and_vanished_keys(self):
        delta = MetricsRegistry.diff({"gone": 4}, {"new": 3})
        assert delta["new"] == 3
        assert delta["gone"] == -4

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").add(9)
        reg.histogram("h").record(5)
        reg.reset()
        snap = reg.snapshot()
        assert snap["c"] == 0
        assert snap["h.count"] == 0


class TestViews:
    def test_tree(self):
        reg = MetricsRegistry()
        reg.counter("dmi.frames_sent").add(1)
        reg.counter("dmi.replays")
        tree = reg.tree()
        assert tree["dmi"]["frames_sent"] == 1

    def test_merge_flat(self):
        reg = MetricsRegistry()
        reg.merge_flat({"count.read": 12}, prefix="legacy")
        assert reg.snapshot()["legacy.count.read"] == 12


class TestHistogramPercentiles:
    def test_percentiles_helper(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.record(v)
        p = h.percentiles()
        assert p["p50"] == 50
        assert p["p95"] == 95
        assert p["p99"] == 99

    def test_percentiles_empty_is_zero(self):
        assert Histogram("h").percentiles() == {"p50": 0, "p95": 0, "p99": 0}

    def test_gauge_high_water(self):
        g = Gauge("g")
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.high_water == 5
