"""Histogram percentile/summary edge cases.

PR 1 documented the metric primitives as *lenient*: every summary is
well-defined on an empty metric (zeros, never ``ValueError`` or ``nan``),
and percentiles use the nearest-rank method on exact samples.  These
tests pin that contract on the degenerate shapes — empty, one sample,
all-equal samples — that idle components and single-shot experiments
actually produce.
"""

import math

import pytest

from repro.telemetry import Histogram


class TestEmptyHistogram:
    def test_summary_is_zeros_not_errors(self):
        hist = Histogram("idle")
        summary = hist.summary()
        assert summary == {
            "count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
        assert not any(math.isnan(v) for v in summary.values())

    def test_percentiles_are_zero(self):
        hist = Histogram("idle")
        assert hist.percentiles() == {"p50": 0, "p95": 0, "p99": 0}
        assert hist.percentile(0) == 0
        assert hist.percentile(100) == 0

    def test_aggregates_are_zero(self):
        hist = Histogram("idle")
        assert hist.count == 0
        assert hist.mean() == 0.0
        assert hist.min() == 0
        assert hist.max() == 0
        assert hist.total() == 0


class TestSingleSample:
    def test_every_percentile_is_the_sample(self):
        hist = Histogram("one")
        hist.record(42)
        # nearest rank: any pct in (0, 100] lands on the only sample
        for pct in (0, 1, 50, 95, 99, 100):
            assert hist.percentile(pct) == 42
        assert hist.percentiles() == {"p50": 42, "p95": 42, "p99": 42}

    def test_summary_collapses_to_the_sample(self):
        hist = Histogram("one")
        hist.record(42)
        summary = hist.summary()
        assert summary["count"] == 1.0
        assert summary["mean"] == summary["min"] == summary["max"] == 42.0


class TestAllEqualSamples:
    def test_percentiles_and_spread(self):
        hist = Histogram("flat")
        for _ in range(10):
            hist.record(7)
        assert hist.percentiles() == {"p50": 7, "p95": 7, "p99": 7}
        summary = hist.summary()
        assert summary["mean"] == 7.0
        assert summary["min"] == summary["max"] == 7.0
        assert summary["count"] == 10.0


class TestPercentileValidation:
    def test_out_of_range_pct_rejected(self):
        hist = Histogram("h")
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentiles([50, 200])

    def test_out_of_range_rejected_even_when_empty(self):
        # validation must not be short-circuited by the empty-histogram path
        with pytest.raises(ValueError):
            Histogram("h").percentiles([-5])

    def test_fractional_percentile_key(self):
        hist = Histogram("h")
        hist.record(3)
        assert hist.percentiles([99.9]) == {"p99.9": 3}


class TestNearestRank:
    def test_known_ranks(self):
        hist = Histogram("h")
        for v in (10, 20, 30, 40):
            hist.record(v)
        # nearest rank over 4 samples: ceil(p/100*4) - 1
        assert hist.percentile(0) == 10
        assert hist.percentile(25) == 10
        assert hist.percentile(50) == 20
        assert hist.percentile(75) == 30
        assert hist.percentile(100) == 40
