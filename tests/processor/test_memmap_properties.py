"""Property-based tests: memory-map invariants hold for arbitrary configs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.processor import MIN_DMI_REGION_BYTES, TOP_OF_MAP, MemoryMap
from repro.units import GIB, MIB

# arbitrary channel populations: (memory_type, capacity, channel)
entry_strategy = st.tuples(
    st.sampled_from(["dram", "mram", "nvdimm"]),
    st.sampled_from([128 * MIB, 256 * MIB, 1 * GIB, 4 * GIB, 8 * GIB]),
    st.integers(0, 7),
)


def build_map(raw_entries):
    # one card per channel: deduplicate by channel number
    seen = {}
    for mtype, capacity, channel in raw_entries:
        seen.setdefault(channel, (mtype, capacity))
    entries = [
        {"memory_type": mtype, "capacity_bytes": cap, "channel": ch}
        for ch, (mtype, cap) in seen.items()
    ]
    mm = MemoryMap()
    mm.build(entries)
    return mm, entries


class TestMemoryMapProperties:
    @given(st.lists(entry_strategy, min_size=1, max_size=8))
    def test_regions_never_overlap(self, raw):
        mm, _ = build_map(raw)
        spans = sorted((r.base, r.end) for r in mm.regions)
        for (b1, e1), (b2, _) in zip(spans, spans[1:]):
            assert b2 >= e1

    @given(st.lists(entry_strategy, min_size=1, max_size=8))
    def test_dram_contiguous_from_zero_when_present(self, raw):
        mm, entries = build_map(raw)
        if any(e["memory_type"] == "dram" for e in entries):
            assert mm.dram_is_contiguous_from_zero

    @given(st.lists(entry_strategy, min_size=1, max_size=8))
    def test_nvm_hardware_windows_at_least_4gb(self, raw):
        mm, _ = build_map(raw)
        for region in mm.nvm_regions():
            assert region.hw_size >= MIN_DMI_REGION_BYTES
            assert region.os_size <= region.hw_size

    @given(st.lists(entry_strategy, min_size=1, max_size=8))
    def test_nvm_anchored_at_top(self, raw):
        mm, _ = build_map(raw)
        nvm = mm.nvm_regions()
        if nvm:
            assert max(r.end for r in nvm) == TOP_OF_MAP

    @given(st.lists(entry_strategy, min_size=1, max_size=8))
    def test_every_os_byte_resolves_to_its_region(self, raw):
        mm, _ = build_map(raw)
        for region in mm.regions:
            for probe in (region.base, region.base + region.os_size - 1):
                assert mm.region_at(probe) is region

    @given(st.lists(entry_strategy, min_size=1, max_size=8))
    def test_total_os_bytes_match_entries(self, raw):
        mm, entries = build_map(raw)
        assert sum(r.os_size for r in mm.regions) == sum(
            e["capacity_bytes"] for e in entries
        )
