"""Tests for the analytical CPU model and cache hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.processor import (
    POWER8_HIERARCHY,
    CacheHierarchy,
    CpuModel,
    WorkloadProfile,
)


def profile(**overrides):
    base = dict(
        name="synthetic", base_cpi=0.8, mem_mpki=1.0, exposed=0.6, mlp=3.0
    )
    base.update(overrides)
    return WorkloadProfile(**base)


class TestWorkloadProfile:
    def test_sensitivity_formula(self):
        p = profile(mem_mpki=2.0, exposed=0.5, mlp=4.0)
        assert p.sensitivity == pytest.approx(2.0 / 1000 * 0.5 / 4.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            profile(base_cpi=0)
        with pytest.raises(ConfigurationError):
            profile(mem_mpki=-1)
        with pytest.raises(ConfigurationError):
            profile(exposed=1.5)
        with pytest.raises(ConfigurationError):
            profile(mlp=0.5)


class TestCpuModel:
    def test_cpi_grows_linearly_with_latency(self):
        model = CpuModel()
        p = profile()
        cpi_100 = model.cpi(p, 100)
        cpi_200 = model.cpi(p, 200)
        cpi_300 = model.cpi(p, 300)
        assert cpi_300 - cpi_200 == pytest.approx(cpi_200 - cpi_100)

    def test_zero_mpki_is_latency_insensitive(self):
        model = CpuModel()
        p = profile(mem_mpki=0.0)
        assert model.runtime_s(p, 100) == model.runtime_s(p, 1000)

    def test_degradation_positive_for_slower_memory(self):
        model = CpuModel()
        assert model.degradation(profile(), 97, 558) > 0

    def test_degradation_zero_for_same_latency(self):
        model = CpuModel()
        assert model.degradation(profile(), 97, 97) == pytest.approx(0)

    def test_spec_ratio_inverse_of_runtime(self):
        model = CpuModel()
        p = profile()
        r1, r2 = model.spec_ratio(p, 97), model.spec_ratio(p, 558)
        assert r1 > r2

    @given(st.floats(min_value=10, max_value=1000),
           st.floats(min_value=10, max_value=1000))
    def test_monotone_in_latency(self, a, b):
        model = CpuModel()
        p = profile()
        lo, hi = sorted((a, b))
        assert model.runtime_s(p, lo) <= model.runtime_s(p, hi)

    def test_higher_mlp_reduces_sensitivity(self):
        model = CpuModel()
        low_mlp = profile(mlp=1.5)
        high_mlp = profile(mlp=6.0)
        assert model.degradation(low_mlp, 97, 558) > model.degradation(high_mlp, 97, 558)

    def test_stall_fraction_bounded(self):
        model = CpuModel()
        frac = model.memory_stall_fraction(profile(), 558)
        assert 0 < frac < 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuModel().cpi(profile(), -1)


class TestCacheHierarchy:
    def test_amat_all_l1_hits(self):
        amat = POWER8_HIERARCHY.amat_cycles([1.0, 0.0, 0.0], memory_latency_ns=100)
        assert amat == pytest.approx(3)

    def test_amat_all_misses_pays_memory(self):
        amat = POWER8_HIERARCHY.amat_cycles([0.0, 0.0, 0.0], memory_latency_ns=100)
        assert amat == pytest.approx(100 * 4.0)  # 400 cycles at 4 GHz

    def test_amat_mixed(self):
        amat = POWER8_HIERARCHY.amat_cycles([0.9, 0.5, 0.5], memory_latency_ns=100)
        hand = 0.9 * 3 + 0.1 * 0.5 * 13 + 0.05 * 0.5 * 27 + 0.025 * 400
        assert amat == pytest.approx(hand)

    def test_memory_access_fraction(self):
        frac = POWER8_HIERARCHY.memory_access_fraction([0.9, 0.5, 0.5])
        assert frac == pytest.approx(0.025)

    def test_wrong_rate_count_rejected(self):
        with pytest.raises(ConfigurationError):
            POWER8_HIERARCHY.amat_cycles([0.9], 100)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            POWER8_HIERARCHY.amat_cycles([1.1, 0, 0], 100)
