"""Tests for memory-map construction rules."""

import pytest

from repro.errors import FirmwareError
from repro.processor import MIN_DMI_REGION_BYTES, TOP_OF_MAP, MemoryMap
from repro.units import GIB, MIB


def entry(mtype, capacity, channel, preserved=False):
    return {
        "memory_type": mtype,
        "capacity_bytes": capacity,
        "channel": channel,
        "contents_preserved": preserved,
    }


class TestDramPlacement:
    def test_dram_starts_at_zero(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0)])
        assert mm.regions[0].base == 0

    def test_dram_regions_contiguous(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 2), entry("dram", 8 * GIB, 0)])
        assert mm.dram_is_contiguous_from_zero
        mm.validate()

    def test_dram_sorted_by_channel(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 5), entry("dram", 4 * GIB, 1)])
        assert mm.regions[0].channel == 1
        assert mm.regions[1].channel == 5

    def test_dram_bytes_total(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0), entry("dram", 4 * GIB, 1)])
        assert mm.dram_bytes == 8 * GIB


class TestNvmPlacement:
    def test_nvm_at_top_of_map(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0), entry("mram", 256 * MIB, 4)])
        nvm = mm.nvm_regions()[0]
        assert nvm.end == TOP_OF_MAP

    def test_mram_gets_4gb_hardware_window(self):
        # the firmware "lies" to the processor: 4 GB hardware window,
        # true megabyte capacity reported to Linux
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0), entry("mram", 256 * MIB, 4)])
        nvm = mm.nvm_regions()[0]
        assert nvm.hw_size == MIN_DMI_REGION_BYTES
        assert nvm.os_size == 256 * MIB

    def test_large_nvdimm_keeps_true_window(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0), entry("nvdimm", 8 * GIB, 4)])
        assert mm.nvm_regions()[0].hw_size == 8 * GIB

    def test_preserved_flag_carried(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0), entry("mram", 256 * MIB, 4, True)])
        assert mm.nvm_regions()[0].contents_preserved

    def test_type_flags(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0), entry("nvdimm", 4 * GIB, 4)])
        assert mm.region_at(0).memory_type == "dram"
        assert mm.nvm_regions()[0].memory_type == "nvdimm"


class TestQueriesAndValidation:
    def test_region_at_translates(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0), entry("dram", 4 * GIB, 3)])
        assert mm.region_at(4 * GIB).channel == 3

    def test_unmapped_address_raises(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0)])
        with pytest.raises(FirmwareError):
            mm.region_at(100 * GIB)

    def test_os_size_bounds_contains(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0), entry("mram", 256 * MIB, 4)])
        nvm = mm.nvm_regions()[0]
        assert nvm.contains(nvm.base)
        assert nvm.contains(nvm.base + 256 * MIB - 1)
        assert not nvm.contains(nvm.base + 256 * MIB)  # inside hw window, past OS size

    def test_double_build_rejected(self):
        mm = MemoryMap()
        mm.build([entry("dram", 4 * GIB, 0)])
        with pytest.raises(FirmwareError):
            mm.build([entry("dram", 4 * GIB, 1)])

    def test_validate_requires_dram(self):
        mm = MemoryMap()
        mm.build([entry("mram", 256 * MIB, 0)])
        with pytest.raises(FirmwareError):
            mm.validate()
