"""Tests for the POWER8 socket and host memory controller."""

import pytest

from repro.buffer import Centaur, LATENCY_OPTIMIZED, RELAXED
from repro.errors import ConfigurationError, FirmwareError
from repro.fpga import ConTuttoBuffer
from repro.memory import DdrDram
from repro.processor import Power8Socket, SocketConfig
from repro.sim import Rng, Simulator
from repro.units import GIB, MIB


def build_system(sim, centaur_config=LATENCY_OPTIMIZED, capacity=1 * GIB):
    socket = Power8Socket(sim, rng=Rng(3))
    centaur = Centaur(
        sim,
        [DdrDram(capacity, name=f"c{i}") for i in range(4)],
        centaur_config,
    )
    socket.attach_buffer(0, centaur)
    socket.memory_map.build(
        [{"memory_type": "dram", "capacity_bytes": centaur.capacity_bytes, "channel": 0}]
    )
    socket.train_all()
    return socket, centaur


class TestSocketAssembly:
    def test_attach_and_train(self):
        sim = Simulator()
        socket, _ = build_system(sim)
        assert socket.slots[0].trained
        assert socket.slots[0].frtl_ps > 0

    def test_invalid_channel_rejected(self):
        sim = Simulator()
        socket = Power8Socket(sim)
        centaur = Centaur(sim, [DdrDram(1 * MIB)])
        with pytest.raises(ConfigurationError):
            socket.attach_buffer(9, centaur)

    def test_double_populate_rejected(self):
        sim = Simulator()
        socket = Power8Socket(sim)
        socket.attach_buffer(0, Centaur(sim, [DdrDram(1 * MIB)]))
        with pytest.raises(ConfigurationError):
            socket.attach_buffer(0, Centaur(sim, [DdrDram(1 * MIB)]))

    def test_contutto_gets_8ghz_cdr_link(self):
        sim = Simulator()
        socket = Power8Socket(sim)
        ct = ConTuttoBuffer(sim, [DdrDram(64 * MIB, refresh_enabled=False)])
        slot = socket.attach_buffer(0, ct)
        assert slot.channel.down_link.cdr_capture
        assert slot.channel.down_link.link_clock.period_ps == 125  # 8 GHz

    def test_centaur_gets_9p6ghz_forwarded_clock_link(self):
        sim = Simulator()
        socket = Power8Socket(sim)
        slot = socket.attach_buffer(0, Centaur(sim, [DdrDram(1 * MIB)]))
        assert not slot.channel.down_link.cdr_capture
        assert slot.channel.down_link.link_clock.period_ps == 104  # ~9.6 GHz

    def test_access_before_training_raises(self):
        sim = Simulator()
        socket = Power8Socket(sim)
        centaur = Centaur(sim, [DdrDram(1 * GIB)])
        socket.attach_buffer(0, centaur)
        socket.memory_map.build(
            [{"memory_type": "dram", "capacity_bytes": centaur.capacity_bytes, "channel": 0}]
        )
        with pytest.raises(FirmwareError):
            socket.read_line(0)


class TestMemoryAccess:
    def test_write_read_through_full_path(self):
        sim = Simulator()
        socket, _ = build_system(sim)
        payload = bytes(range(128))
        sim.run_until_signal(socket.write_line(0x10_000, payload))
        data = sim.run_until_signal(socket.read_line(0x10_000))
        assert data == payload

    def test_routing_across_channels(self):
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(5))
        buffers = []
        for ch in (0, 1):
            centaur = Centaur(
                sim, [DdrDram(256 * MIB, name=f"ch{ch}d{i}") for i in range(4)]
            )
            socket.attach_buffer(ch, centaur)
            buffers.append(centaur)
        socket.memory_map.build(
            [
                {"memory_type": "dram", "capacity_bytes": 1 * GIB, "channel": 0},
                {"memory_type": "dram", "capacity_bytes": 1 * GIB, "channel": 1},
            ]
        )
        socket.train_all()
        sim.run_until_signal(socket.write_line(0, bytes([1] * 128)))
        sim.run_until_signal(socket.write_line(1 * GIB, bytes([2] * 128)))
        assert buffers[0].stats.counters["cmd.write"].count == 1
        assert buffers[1].stats.counters["cmd.write"].count == 1

    def test_tag_window_tracked(self):
        sim = Simulator()
        socket, _ = build_system(sim)
        signals = [socket.read_line(128 * i) for i in range(40)]
        # more requests than tags: the window must have stalled at least once
        for sig in signals:
            sim.run_until_signal(sig, timeout_ps=10**12)
        host_mc = socket.slots[0].host_mc
        assert host_mc.tags.total_acquired == 40
        assert host_mc.in_flight == 0


class TestLatencyMeasurement:
    def test_relaxed_config_measures_slower(self):
        sim1 = Simulator()
        fast, _ = build_system(sim1, LATENCY_OPTIMIZED)
        lat_fast = fast.measure_memory_latency_ns(0, 1 * GIB, samples=16)

        sim2 = Simulator()
        slow, _ = build_system(sim2, RELAXED)
        lat_slow = slow.measure_memory_latency_ns(0, 1 * GIB, samples=16)
        delta_ns = (RELAXED.extra_delay_ps - LATENCY_OPTIMIZED.extra_delay_ps) / 1000
        assert lat_slow - lat_fast == pytest.approx(delta_ns, rel=0.1)

    def test_centaur_optimized_near_97ns(self):
        # Table 3: the most latency-optimized Centaur measures 97 ns
        sim = Simulator()
        socket, _ = build_system(sim)
        lat = socket.measure_memory_latency_ns(0, 1 * GIB, samples=32)
        assert 85 <= lat <= 110

    def test_contutto_base_near_390ns(self):
        # Table 3: base ConTutto measures 390 ns
        sim = Simulator()
        socket = Power8Socket(sim, rng=Rng(3))
        ct = ConTuttoBuffer(sim, [DdrDram(4 * GIB, name=f"d{i}") for i in range(2)])
        socket.attach_buffer(0, ct)
        socket.memory_map.build(
            [{"memory_type": "dram", "capacity_bytes": ct.capacity_bytes, "channel": 0}]
        )
        socket.train_all()
        lat = socket.measure_memory_latency_ns(0, ct.capacity_bytes, samples=32)
        assert 370 <= lat <= 410
