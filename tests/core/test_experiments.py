"""Tests that each experiment reproduces its paper table/figure shape.

These are the reproduction acceptance tests: each one runs the real
harness (small sample counts) and checks the claims the paper makes about
that experiment — who wins, by roughly what factor, where crossovers fall.
"""

import pytest

from repro import (
    run_fig6,
    run_fig7,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
    run_table5,
)
from repro.core import calibration as cal
from repro.core.experiment import measure_contutto_latencies


class TestTable1:
    def test_matches_paper_exactly(self):
        table = run_table1()
        for resource, (available, utilized) in cal.TABLE1_RESOURCES.items():
            row = table.row_by("Resource", resource)
            assert row[1] == available
            assert row[2] == utilized


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table2(samples=12)

    def test_latencies_ordered(self, table):
        latencies = table.column("Latency (ns)")
        assert latencies == sorted(latencies)

    def test_latency_deltas_match_paper(self, table):
        # knob deltas (+4 / +37 / +170 ns) are what the experiment controls
        measured = table.column("Latency (ns)")
        paper = [lat for _, lat, _ in cal.TABLE2_ROWS]
        for i in range(1, len(paper)):
            measured_delta = measured[i] - measured[0]
            paper_delta = paper[i] - paper[0]
            assert measured_delta == pytest.approx(paper_delta, abs=8)

    def test_db2_degradation_under_8pct(self, table):
        runtimes = table.column("DB2 runtime (s)")
        assert runtimes[-1] / runtimes[0] - 1 < cal.TABLE2_MAX_DEGRADATION

    def test_db2_runtimes_near_paper(self, table):
        for (name, _, paper_runtime) in cal.TABLE2_ROWS:
            measured = table.cell("Configuration", name, "DB2 runtime (s)")
            assert measured == pytest.approx(paper_runtime, rel=0.03)


class TestTable3:
    @pytest.fixture(scope="class")
    def latencies(self):
        return measure_contutto_latencies(samples=12)

    def test_all_points_within_10pct_of_paper(self, latencies):
        for label, paper in cal.TABLE3_LATENCIES_NS.items():
            assert latencies[label] == pytest.approx(paper, rel=0.10), label

    def test_function_matched_centaur(self, latencies):
        assert latencies["function_matched"] == pytest.approx(
            cal.TABLE3_FUNCTION_MATCHED_NS, rel=0.10
        )

    def test_knob_steps_are_24ns(self, latencies):
        base = latencies["contutto_base"]
        assert latencies["contutto_knob2"] - base == pytest.approx(48, abs=10)
        assert latencies["contutto_knob6"] - base == pytest.approx(144, abs=12)
        assert latencies["contutto_knob7"] - base == pytest.approx(168, abs=12)

    def test_contutto_overhead_factors(self, latencies):
        vs_matched = latencies["contutto_base"] / latencies["function_matched"] - 1
        vs_optimized = latencies["contutto_base"] / latencies["centaur"] - 1
        assert 0.2 <= vs_matched <= 0.5       # paper: ~27-33%
        assert 2.5 <= vs_optimized <= 3.5     # paper: ~280-300%


class TestFigures6And7:
    def test_fig6_all_benchmarks_present(self):
        table = run_fig6(samples=8)
        assert len(table.rows) == 12

    def test_fig7_population_claims(self):
        table = run_fig7(samples=8)
        degradations = [
            float(row[-1].rstrip("%")) / 100 for row in table.rows
        ]
        n = len(degradations)
        assert sum(1 for d in degradations if d < 0.02) >= n * 0.4
        assert sum(1 for d in degradations if d < 0.10) >= n * 0.6
        assert sum(1 for d in degradations if d > 0.50) == 1

    def test_fig7_ratios_fall_with_knob(self):
        table = run_fig7(samples=8)
        for row in table.rows:
            ratios = row[1:-1]
            assert ratios == sorted(ratios, reverse=True)


class TestFigure8:
    def test_technologies_and_ordering(self):
        table = run_fig8()
        cycles = [float(c) for c in table.column("Write cycles")]
        assert cycles == sorted(cycles)
        assert table.rows[-1][0] == "stt_mram"

    def test_lifetime_story(self):
        table = run_fig8()
        lifetimes = dict(zip(table.column("Technology"),
                             table.column("Lifetime @10GB/s into 256MB")))
        assert "hours" in lifetimes["nand_mlc"] or "s" in lifetimes["nand_mlc"]
        assert "years" in lifetimes["stt_mram"]


class TestTable5:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table5(size_mib=8)

    def test_all_kernels_beat_software(self, table):
        for row in table.rows:
            speedup = float(row[3].rstrip("x"))
            assert speedup > 1.5

    def test_minmax_speedup_largest(self, table):
        speedups = [float(row[3].rstrip("x")) for row in table.rows]
        assert max(speedups) == speedups[1]  # min/max row
        assert speedups[1] > 15  # paper: 21x

    def test_speedups_in_paper_band(self, table):
        # "2x to 20x improvement over software"
        speedups = [float(row[3].rstrip("x")) for row in table.rows]
        assert all(1.5 <= s <= 25 for s in speedups)
