"""Experiment results cross process boundaries: pickling + seed pinning.

The campaign runner ships every ``run_*`` return value between worker
and parent processes and stores it in the on-disk result cache, so each
entry point's result must survive ``pickle`` round trips *exactly* —
equal tables, identical rendering.  The ``seed=`` kwarg must pin a run
to bit-identical output, and its default must preserve the historical
(implicitly seeded) values.
"""

import pickle

import pytest

from repro import (
    ResultTable,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fio_matrix,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

#: every entry point at its smallest honest knob setting
ENTRY_POINTS = [
    ("table1", run_table1, {}),
    ("table2", run_table2, {"samples": 2}),
    ("fig6", run_fig6, {"samples": 2}),
    ("table3", run_table3, {"samples": 2}),
    ("fig7", run_fig7, {"samples": 2}),
    ("fig8", run_fig8, {}),
    ("table4", run_table4, {"writes": 4}),
    ("fio", run_fio_matrix, {"ios": 2}),
    ("table5", run_table5, {"size_mib": 1}),
]


@pytest.fixture(scope="module")
def results():
    return {name: fn(**kwargs) for name, fn, kwargs in ENTRY_POINTS}


class TestPickleRoundTrip:
    @pytest.mark.parametrize("name", [name for name, _, _ in ENTRY_POINTS])
    def test_round_trip_is_lossless(self, results, name):
        original = results[name]
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
        tables = original if isinstance(original, tuple) else (original,)
        clones = clone if isinstance(clone, tuple) else (clone,)
        for table, twin in zip(tables, clones):
            assert twin.format() == table.format()
            assert twin.to_markdown() == table.to_markdown()

    @pytest.mark.parametrize("name", [name for name, _, _ in ENTRY_POINTS])
    def test_cells_are_plain_python(self, results, name):
        # numpy scalars are coerced at add_row time, so pickles are small,
        # portable, and compare with == across processes
        result = results[name]
        tables = result if isinstance(result, tuple) else (result,)
        for table in tables:
            for row in table.rows:
                for cell in row:
                    assert type(cell) in (bool, int, float, str, type(None)), (
                        f"{table.title}: non-plain cell {cell!r}"
                    )

    def test_result_table_record_round_trip(self):
        from repro.telemetry import result_record

        table = ResultTable("t", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_note("n")
        assert ResultTable.from_record(result_record(table)) == table


class TestSeedKwarg:
    @pytest.mark.parametrize("name,fn,kwargs", ENTRY_POINTS)
    def test_same_seed_twice_is_identical(self, name, fn, kwargs):
        assert fn(**kwargs, seed=11) == fn(**kwargs, seed=11)

    def test_default_seed_preserves_historical_values(self, results):
        # seed=0 must be the implicit default, not a new stream
        assert run_table3(samples=2, seed=0) == results["table3"]

    def test_seed_reaches_the_simulated_system(self):
        # the socket's address-sampling rng is seeded from it, so the
        # sampled latencies move (table3 measures real accesses)
        base = run_table3(samples=2, seed=0)
        other = run_table3(samples=2, seed=1234)
        assert base.columns == other.columns
        assert [r[0] for r in base.rows] == [r[0] for r in other.rows]
