"""Tests for the ContuttoSystem builder and results tables."""

import pytest

from repro import CardSpec, ContuttoSystem, ResultTable
from repro.buffer import LATENCY_OPTIMIZED
from repro.errors import ConfigurationError
from repro.units import GIB, MIB


class TestCardSpec:
    def test_defaults(self):
        spec = CardSpec(slot=0)
        assert spec.kind == "centaur"
        assert spec.memory == "dram"

    def test_centaur_cannot_drive_mram(self):
        with pytest.raises(ConfigurationError):
            CardSpec(slot=0, kind="centaur", memory="mram")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            CardSpec(slot=0, kind="zynq")

    def test_unknown_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            CardSpec(slot=0, kind="contutto", memory="optane")


class TestSystemBuild:
    def test_single_centaur_system(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, centaur_config=LATENCY_OPTIMIZED)]
        )
        assert system.boot_report.booted
        assert system.total_memory_bytes == 4 * GIB

    def test_single_contutto_system(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=2 * GIB)]
        )
        assert system.boot_report.booted
        assert system.slots_of_kind("contutto") == [0]

    def test_mixed_system_with_mram(self):
        system = ContuttoSystem.build(
            [
                CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
                CardSpec(slot=0, kind="contutto", memory="mram",
                         capacity_per_dimm=128 * MIB),
            ]
        )
        nvm = system.socket.memory_map.nvm_regions()
        assert len(nvm) == 1
        assert nvm[0].memory_type == "mram"
        assert nvm[0].os_size == 256 * MIB

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            ContuttoSystem.build([])

    def test_measure_latency_by_kind(self):
        system = ContuttoSystem.build([CardSpec(slot=0)])
        latency = system.measure_latency_ns("centaur", samples=8)
        assert 70 <= latency <= 130

    def test_measure_unknown_kind_raises(self):
        system = ContuttoSystem.build([CardSpec(slot=0)])
        with pytest.raises(ConfigurationError):
            system.measure_latency_ns("contutto")

    def test_pmem_region_requires_nvm(self):
        system = ContuttoSystem.build([CardSpec(slot=0)])
        with pytest.raises(ConfigurationError):
            system.pmem_region()

    def test_deterministic_given_seed(self):
        def build_and_measure():
            system = ContuttoSystem.build([CardSpec(slot=0)], seed=7)
            return system.measure_latency_ns("centaur", samples=8)

        assert build_and_measure() == build_and_measure()

    def test_functional_memory_after_boot(self):
        system = ContuttoSystem.build([CardSpec(slot=0)])
        payload = bytes(range(128))
        system.sim.run_until_signal(system.socket.write_line(0x4000, payload))
        data = system.sim.run_until_signal(system.socket.read_line(0x4000))
        assert data == payload


class TestResultTable:
    def test_add_and_fetch(self):
        table = ResultTable("T", ["a", "b"])
        table.add_row("x", 1.0)
        assert table.cell("a", "x", "b") == 1.0

    def test_wrong_arity_rejected(self):
        table = ResultTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_missing_row_raises(self):
        table = ResultTable("T", ["a"])
        with pytest.raises(KeyError):
            table.row_by("a", "nope")

    def test_format_contains_all_cells(self):
        table = ResultTable("My Table", ["name", "value"])
        table.add_row("alpha", 42.0)
        table.add_note("a note")
        text = table.format()
        assert "My Table" in text
        assert "alpha" in text
        assert "42" in text
        assert "note: a note" in text

    def test_markdown_shape(self):
        table = ResultTable("T", ["a", "b"])
        table.add_row(1, 2)
        md = table.to_markdown()
        assert md.startswith("### T")
        assert "| a | b |" in md

    def test_column_extraction(self):
        table = ResultTable("T", ["k", "v"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("v") == [1, 2]
