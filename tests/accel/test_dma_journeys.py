"""Accelerator DMA journeys: pace/transfer partition with zero residual."""

from repro.core.experiment import run_table5
from repro.telemetry import TraceSession
from repro.telemetry.attribution import QUEUE_STAGES, STAGE_ORDER


class TestDmaJourneys:
    def test_accel_stages_are_registered(self):
        assert "accel.pace" in STAGE_ORDER
        assert "accel.dma" in STAGE_ORDER
        assert "accel.pace" in QUEUE_STAGES
        assert "accel.dma" not in QUEUE_STAGES

    def test_table5_dma_journeys_attribute_fully(self):
        with TraceSession("t5-journeys", max_events=0) as session:
            run_table5(size_mib=1)
        breakdown = session.breakdown()
        scenarios = set(breakdown.scenarios())
        assert {"accel:memcopy", "accel:minmax", "accel:fft"} <= scenarios
        # the pace/dma partition tiles every DMA journey: zero residual
        assert breakdown.check() == []
        for scenario in ("accel:memcopy", "accel:minmax", "accel:fft"):
            stages = {row["stage"] for row in breakdown.stage_table(scenario)}
            assert stages <= {"accel.pace", "accel.dma"}
            assert "accel.dma" in stages
