"""Tests for the Access processor ISA, assembler, and interpreter."""

import pytest

from repro.accel import AccessProcessor, Op, assemble
from repro.errors import AccelError, AssemblerError
from repro.memory import DdrDram, MemoryController
from repro.sim import Simulator
from repro.units import MIB


def make_ap(sim, ports=2):
    dimms = [DdrDram(64 * MIB, refresh_enabled=False) for _ in range(ports)]
    controllers = [MemoryController(sim, d) for d in dimms]
    return AccessProcessor(sim, controllers), dimms


class TestAssembler:
    def test_simple_program(self):
        program = assemble(
            """
            ldi r1, 10
            ldi r2, 0x20
            add r3, r1, r2
            halt
            """
        )
        assert [i.op for i in program] == [Op.LDI, Op.LDI, Op.ADD, Op.HALT]
        assert program[1].imm == 0x20

    def test_labels_and_branches(self):
        program = assemble(
            """
            ldi r0, 0
            ldi r1, 5
            loop:
            addi r0, r0, 1
            bne r0, r1, loop
            halt
            """
        )
        branch = program[3]
        assert branch.op is Op.BNE
        assert branch.target == 2  # the loop: label

    def test_comments_ignored(self):
        program = assemble("ldi r0, 1 ; set up counter\nhalt")
        assert len(program) == 2

    def test_memory_operand_syntax(self):
        program = assemble("ld r2, [r5]\nst [r3], r4\nhalt")
        assert program[0].ra == 5
        assert program[1].ra == 3 and program[1].rb == 4

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("ldi r16, 0")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nldi r0, 1\na:\nhalt")

    def test_wrong_arity_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2")


class TestInterpreter:
    def run_program(self, source, threads=1, initial=None):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        ap.load_program(assemble(source))
        proc = ap.run(threads=threads, initial_regs=initial)
        sim.run()
        return ap, proc.result, dimms

    def test_arithmetic(self):
        _, contexts, _ = self.run_program(
            "ldi r1, 7\nldi r2, 5\nadd r3, r1, r2\nsub r4, r1, r2\nhalt"
        )
        assert contexts[0].regs[3] == 12
        assert contexts[0].regs[4] == 2

    def test_min_max_ops(self):
        _, contexts, _ = self.run_program(
            "ldi r1, 9\nldi r2, 3\nmin r3, r1, r2\nmax r4, r1, r2\nhalt"
        )
        assert contexts[0].regs[3] == 3
        assert contexts[0].regs[4] == 9

    def test_loop_counts(self):
        _, contexts, _ = self.run_program(
            """
            ldi r0, 0
            ldi r1, 10
            loop:
            addi r0, r0, 1
            bne r0, r1, loop
            halt
            """
        )
        assert contexts[0].regs[0] == 10

    def test_store_then_load_roundtrip(self):
        _, contexts, _ = self.run_program(
            """
            ldi r1, 4096
            ldi r2, 0xDEAD
            st [r1], r2
            ld r3, [r1]
            halt
            """
        )
        assert contexts[0].regs[3] == 0xDEAD

    def test_dma_roundtrip(self):
        ap, contexts, dimms = self.run_program(
            """
            ldi r1, 0
            ldi r2, 16384
            dmard r3, r1, r2
            ldi r4, 65536
            dmawr r5, r4, r2
            halt
            """
        )
        assert contexts[0].regs[3] == 16384
        assert ap.perf.dma_bytes_read == 16384
        assert ap.perf.dma_bytes_written == 16384

    def test_multithreading_interleaves(self):
        source = """
            ldi r1, 4096
            ld r2, [r1]
            addi r3, r3, 1
            halt
        """
        sim = Simulator()
        ap, _ = make_ap(sim)
        ap.load_program(assemble(source))
        proc = ap.run(threads=4)
        sim.run()
        contexts = proc.result
        assert all(ctx.regs[3] == 1 for ctx in contexts)
        assert ap.perf.loads == 4

    def test_perf_counters(self):
        ap, _, _ = self.run_program("ldi r1, 1\nldi r2, 2\nadd r3, r1, r2\nhalt")
        assert ap.perf.instructions == 4

    def test_program_required(self):
        sim = Simulator()
        ap, _ = make_ap(sim)
        with pytest.raises(AccelError):
            ap.run()

    def test_address_map_applied(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        ap.address_map = lambda addr: addr + 8192  # shift into chunk 1
        ap.load_program(assemble("ldi r1, 0\nldi r2, 77\nst [r1], r2\nhalt"))
        ap.run()
        sim.run()
        # chunk 1 maps to port 1, local chunk 0
        assert int.from_bytes(dimms[1].backing.read(0, 8), "little") == 77

    def test_initial_registers(self):
        sim = Simulator()
        ap, _ = make_ap(sim)
        ap.load_program(assemble("addi r1, r1, 5\nhalt"))
        proc = ap.run(initial_regs={0: {1: 100}})
        sim.run()
        assert proc.result[0].regs[1] == 105
