"""Error paths of the block-accelerator control-block protocol."""

import pytest

from repro.accel import (
    AccessProcessor,
    BlockAccelerator,
    ControlBlock,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_RUNNING,
)
from repro.errors import AccelError
from repro.memory import DdrDram, MemoryController
from repro.sim import Simulator
from repro.units import MIB


class MisbehavingEngine(BlockAccelerator):
    """Kernel that returns the wrong shape (models an accelerator fault)."""

    def _kernel(self, cb):
        yield 1_000
        return "not-a-result-tuple"


class WellBehavedEngine(BlockAccelerator):
    def _kernel(self, cb):
        yield 1_000
        return (cb.param * 2, 0)


def make_access(sim):
    dimms = [DdrDram(16 * MIB, refresh_enabled=False) for _ in range(2)]
    return AccessProcessor(sim, [MemoryController(sim, d) for d in dimms])


class TestControlBlockErrorPaths:
    def test_bad_kernel_result_sets_error_status(self):
        sim = Simulator()
        engine = MisbehavingEngine(sim, make_access(sim))
        engine.submit_write(0, ControlBlock(opcode=1).pack())
        sim.run()
        assert engine._cb.status == STATUS_ERROR
        assert engine.tasks_failed == 1
        assert engine.tasks_completed == 0

    def test_double_submit_while_running_rejected(self):
        sim = Simulator()
        engine = WellBehavedEngine(sim, make_access(sim))
        engine.submit_write(0, ControlBlock(opcode=1, param=5).pack())
        assert engine._cb.status == STATUS_RUNNING
        with pytest.raises(AccelError):
            engine.submit_write(0, ControlBlock(opcode=1).pack())

    def test_resubmit_after_completion_allowed(self):
        sim = Simulator()
        engine = WellBehavedEngine(sim, make_access(sim))
        cb = engine.run_to_completion(ControlBlock(opcode=1, param=5))
        assert cb.status == STATUS_DONE
        assert cb.result0 == 10
        cb = engine.run_to_completion(ControlBlock(opcode=1, param=7))
        assert cb.result0 == 14
        assert engine.tasks_completed == 2

    def test_truncated_control_block_rejected(self):
        from repro.accel.block import ControlBlock as CB

        with pytest.raises(AccelError):
            CB.unpack(b"tiny")

    def test_control_block_roundtrip(self):
        cb = ControlBlock(opcode=7, status=2, src=0x1000, dst=0x2000,
                          length=4096, param=-5, result0=42, result1=-1, cycles=99)
        assert ControlBlock.unpack(cb.pack()) == cb

    def test_poll_reads_partial_fields(self):
        sim = Simulator()
        engine = WellBehavedEngine(sim, make_access(sim))
        engine.run_to_completion(ControlBlock(opcode=1, param=3))
        # poll just the status word (offset 4, 4 bytes)
        raw = sim.run_until_signal(engine.submit_read(4, 4))
        assert int.from_bytes(raw, "little") == STATUS_DONE
