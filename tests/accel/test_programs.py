"""Tests for the microprogram library and the binary executable format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.accel import (
    AccessProcessor,
    INSTRUCTION_BYTES,
    Instruction,
    Op,
    assemble,
    block_move,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    image_size_bytes,
    minmax_words,
    pointer_chase_program,
    strided_gather,
    sum_words,
)
from repro.errors import AssemblerError
from repro.memory import DdrDram, MemoryController
from repro.sim import Simulator
from repro.units import MIB

CHUNK = 8 << 10


def make_ap(sim):
    dimms = [DdrDram(64 * MIB, refresh_enabled=False) for _ in range(2)]
    return AccessProcessor(sim, [MemoryController(sim, d) for d in dimms]), dimms


def flat_write(dimms, addr, data):
    """Write through the Access processor's flat (chunk-interleaved) space."""
    pos = 0
    while pos < len(data):
        a = addr + pos
        chunk_no, offset = divmod(a, CHUNK)
        take = min(CHUNK - offset, len(data) - pos)
        dimms[chunk_no % 2].backing.write(
            (chunk_no // 2) * CHUNK + offset, data[pos : pos + take]
        )
        pos += take


def run(sim, ap, program, threads=1):
    ap.load_program(program)
    proc = ap.run(threads=threads)
    sim.run()
    return proc.result


class TestBinaryEncoding:
    def test_word_size(self):
        word = encode_instruction(Instruction(Op.LDI, rd=3, imm=12345))
        assert len(word) == INSTRUCTION_BYTES

    @given(
        st.sampled_from(list(Op)),
        st.integers(0, 15), st.integers(0, 15), st.integers(0, 15),
        st.integers(-(2**63), 2**63 - 1),
        st.integers(0, 2**16),
    )
    def test_instruction_roundtrip(self, op, rd, ra, rb, imm, target):
        instr = Instruction(op, rd=rd, ra=ra, rb=rb, imm=imm, target=target)
        assert decode_instruction(encode_instruction(instr)) == instr

    def test_program_roundtrip(self):
        program = sum_words(0, 8)
        assert decode_program(encode_program(program)) == program

    def test_checksum_detects_corruption(self):
        image = bytearray(encode_program(sum_words(0, 4)))
        image[10] ^= 0xFF
        with pytest.raises(AssemblerError):
            decode_program(bytes(image))

    def test_bad_magic_rejected(self):
        image = bytearray(encode_program(sum_words(0, 4)))
        image[0] = 0x00
        with pytest.raises(AssemblerError):
            decode_program(bytes(image))

    def test_image_size_helper(self):
        program = sum_words(0, 4)
        assert len(encode_program(program)) == image_size_bytes(len(program))


class TestProgramLibrary:
    def test_sum_words(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        values = [3, 14, 15, 92, 65, 35]
        flat_write(dimms, 0, b"".join(v.to_bytes(8, "little") for v in values))
        contexts = run(sim, ap, sum_words(0, len(values)))
        assert contexts[0].regs[4] == sum(values)

    def test_minmax_words(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        values = [50, 7, 993, 12, 400]
        flat_write(dimms, 4096, b"".join(v.to_bytes(8, "little") for v in values))
        contexts = run(sim, ap, minmax_words(4096, len(values)))
        assert contexts[0].regs[4] == 7
        assert contexts[0].regs[5] == 993

    def test_minmax_single_element(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        flat_write(dimms, 0, (77).to_bytes(8, "little"))
        contexts = run(sim, ap, minmax_words(0, 1))
        assert contexts[0].regs[4] == contexts[0].regs[5] == 77

    def test_block_move(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        payload = bytes(range(256)) * 64  # 16 KiB, spans both ports
        flat_write(dimms, 0, payload)
        run(sim, ap, block_move(0, 128 * 1024, len(payload)))
        assert ap.stream_buffer(0) == payload  # via the stream buffer

    def test_strided_gather(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        for i in range(8):
            flat_write(dimms, i * 64, (i + 1).to_bytes(8, "little"))
        contexts = run(sim, ap, strided_gather(0, 64, 8))
        assert contexts[0].regs[4] == sum(range(1, 9))

    def test_pointer_chase(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        # chain: 0 -> 512 -> 1024 -> 64
        for src, nxt in [(0, 512), (512, 1024), (1024, 64)]:
            flat_write(dimms, src, nxt.to_bytes(8, "little"))
        contexts = run(sim, ap, pointer_chase_program(0, 3))
        assert contexts[0].regs[4] == 64

    def test_pointer_chase_pays_serial_latency(self):
        # no MLP: k hops cost ~k times one load's latency
        def chase_time(hops):
            sim = Simulator()
            ap, dimms = make_ap(sim)
            addr = 0
            for i in range(hops):
                nxt = (i + 1) * 4096
                flat_write(dimms, addr, nxt.to_bytes(8, "little"))
                addr = nxt
            run(sim, ap, pointer_chase_program(0, hops))
            return sim.now_ps

        assert chase_time(16) > 3.5 * chase_time(4)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(AssemblerError):
            sum_words(0, 0)
        with pytest.raises(AssemblerError):
            strided_gather(0, 4, 10)  # stride below one word


class TestLoadFromMemory:
    def test_dynamic_reprogramming(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        # data the program will process
        values = [11, 22, 33]
        flat_write(dimms, 0, b"".join(v.to_bytes(8, "little") for v in values))
        # the executable image lives in the DIMMs too
        program = sum_words(0, len(values))
        image = encode_program(program)
        flat_write(dimms, 1 * MIB, image)

        loader = ap.load_program_from_memory(1 * MIB, len(program))
        sim.run()
        assert loader.result == len(program)
        proc = ap.run()
        sim.run()
        assert proc.result[0].regs[4] == 66

    def test_corrupted_image_fails_load(self):
        sim = Simulator()
        ap, dimms = make_ap(sim)
        image = bytearray(encode_program(sum_words(0, 2)))
        image[12] ^= 0x5A
        flat_write(dimms, 0, bytes(image))
        ap.load_program_from_memory(0, 2)
        with pytest.raises(AssemblerError):
            sim.run()
