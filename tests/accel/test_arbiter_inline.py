"""Tests for the bandwidth arbiter and in-line accel helpers."""

import pytest

from repro.accel import (
    BandwidthArbiter,
    EQUAL_SPLIT,
    HOST_PRIORITY,
    SharePolicy,
    pack_lanes,
    unpack_lanes,
)
from repro.errors import AccelError
from repro.sim import Simulator


class TestSharePolicy:
    def test_fractions_sum_to_one(self):
        policy = SharePolicy({"host": 3.0, "accel": 1.0})
        assert policy.fraction("host") + policy.fraction("accel") == pytest.approx(1.0)
        assert policy.fraction("host") == pytest.approx(0.75)

    def test_presets(self):
        assert HOST_PRIORITY.fraction("host") == pytest.approx(0.75)
        assert EQUAL_SPLIT.fraction("host") == pytest.approx(0.5)

    def test_unknown_class_rejected(self):
        with pytest.raises(AccelError):
            EQUAL_SPLIT.fraction("gpu")

    def test_invalid_shares_rejected(self):
        with pytest.raises(AccelError):
            SharePolicy({})
        with pytest.raises(AccelError):
            SharePolicy({"a": 0})


class TestBandwidthArbiter:
    def test_within_budget_is_immediate(self):
        sim = Simulator()
        arbiter = BandwidthArbiter(sim, aggregate_gb_s=10.0, window_us=10)
        sig = arbiter.request("host", 1024)
        sim.run_until_signal(sig)
        assert sim.now_ps == 0
        assert arbiter.delays == 0

    def test_over_budget_with_contention_delays(self):
        sim = Simulator()
        # 10 GB/s x 10 us window = 100 KB total; host share 75 KB
        arbiter = BandwidthArbiter(sim, aggregate_gb_s=10.0, window_us=10)
        sim.run_until_signal(arbiter.request("accel", 10_000))  # accel active
        sim.run_until_signal(arbiter.request("host", 70_000))
        sig = arbiter.request("host", 20_000)  # pushes host past 75 KB
        sim.run_until_signal(sig)
        assert arbiter.delays == 1
        assert sim.now_ps >= 10_000_000  # pushed to the next 10 us window

    def test_work_conserving_when_alone(self):
        sim = Simulator()
        arbiter = BandwidthArbiter(sim, aggregate_gb_s=10.0, window_us=10)
        # no other class active: host may exceed its share without delay
        sim.run_until_signal(arbiter.request("host", 90_000))
        sig = arbiter.request("host", 90_000)
        sim.run_until_signal(sig)
        assert arbiter.delays == 0

    def test_window_rolls(self):
        sim = Simulator()
        arbiter = BandwidthArbiter(sim, aggregate_gb_s=10.0, window_us=10)
        sim.run_until_signal(arbiter.request("host", 50_000))
        sim.call_after(20_000_000, lambda: None)  # 20 us later
        sim.run()
        sim.run_until_signal(arbiter.request("host", 50_000))
        assert arbiter.delays == 0  # fresh window, fresh budget

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(AccelError):
            BandwidthArbiter(Simulator(), aggregate_gb_s=0)


class TestLanePacking:
    def test_roundtrip(self):
        values = list(range(-16, 16))
        assert unpack_lanes(pack_lanes(values)) == values

    def test_wrong_count_rejected(self):
        with pytest.raises(AccelError):
            pack_lanes([1, 2, 3])

    def test_line_is_128_bytes(self):
        assert len(pack_lanes([0] * 32)) == 128
