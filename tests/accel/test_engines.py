"""Tests for the block accelerators and software baselines (Table 5)."""

import numpy as np
import pytest

from repro.accel import (
    AccessProcessor,
    ControlBlock,
    FftEngineFarm,
    KERNEL_FFT,
    KERNEL_MEMCOPY,
    KERNEL_MINMAX,
    MemcopyEngine,
    MinMaxEngine,
    STATUS_DONE,
    STATUS_RUNNING,
    SoftwareBaselines,
    radix2_fft,
)
from repro.errors import AccelError
from repro.memory import DdrDram, MemoryController
from repro.sim import Simulator
from repro.units import MIB, S

CHUNK = 8 << 10


def fresh(capacity=256 * MIB):
    sim = Simulator()
    dimms = [DdrDram(capacity, refresh_enabled=False) for _ in range(2)]
    ports = [MemoryController(sim, d) for d in dimms]
    return sim, dimms, AccessProcessor(sim, ports)


def seed(dimms, raw, base=0):
    for pos in range(0, len(raw), CHUNK):
        chunk_no = (base + pos) // CHUNK
        dimms[chunk_no % 2].backing.write((chunk_no // 2) * CHUNK, raw[pos : pos + CHUNK])


def read_flat(dimms, base, length):
    out = bytearray()
    pos = 0
    while pos < length:
        chunk_no = (base + pos) // CHUNK
        take = min(CHUNK, length - pos)
        out += dimms[chunk_no % 2].backing.read((chunk_no // 2) * CHUNK, take)
        pos += take
    return bytes(out)


class TestMinMax:
    def test_finds_extremes(self):
        sim, dimms, ap = fresh()
        values = np.arange(-500, 1548, dtype=np.int32)  # 2048 ints = 8 KiB
        seed(dimms, values.tobytes())
        engine = MinMaxEngine(sim, ap)
        cb = engine.run_to_completion(
            ControlBlock(opcode=KERNEL_MINMAX, src=0, length=len(values) * 4)
        )
        assert cb.status == STATUS_DONE
        assert cb.result0 == -500
        assert cb.result1 == 1547

    def test_large_scan_matches_numpy(self):
        sim, dimms, ap = fresh()
        rng = np.random.default_rng(7)
        values = rng.integers(-(2**31), 2**31 - 1, size=1 * MIB // 4, dtype=np.int32)
        seed(dimms, values.tobytes())
        engine = MinMaxEngine(sim, ap)
        cb = engine.run_to_completion(
            ControlBlock(opcode=KERNEL_MINMAX, src=0, length=len(values) * 4)
        )
        assert cb.result0 == int(values.min())
        assert cb.result1 == int(values.max())

    def test_throughput_near_paper(self):
        sim, dimms, ap = fresh()
        raw = bytes(8 * MIB)
        seed(dimms, raw)
        engine = MinMaxEngine(sim, ap)
        t0 = sim.now_ps
        engine.run_to_completion(ControlBlock(opcode=KERNEL_MINMAX, src=0, length=len(raw)))
        gbps = len(raw) / ((sim.now_ps - t0) / S) / 1e9
        assert 8.0 <= gbps <= 13.0  # paper: 10.5 GB/s

    def test_misaligned_length_rejected(self):
        sim, _, ap = fresh()
        engine = MinMaxEngine(sim, ap)
        with pytest.raises(AccelError):
            engine.run_to_completion(ControlBlock(opcode=KERNEL_MINMAX, src=0, length=6))


class TestMemcopy:
    def test_copy_is_functional(self):
        sim, dimms, ap = fresh()
        payload = bytes(range(256)) * 256  # 64 KiB
        seed(dimms, payload)
        engine = MemcopyEngine(sim, ap)
        cb = engine.run_to_completion(
            ControlBlock(opcode=KERNEL_MEMCOPY, src=0, dst=8 * MIB, length=len(payload))
        )
        assert cb.status == STATUS_DONE
        assert cb.result0 == len(payload)
        assert read_flat(dimms, 8 * MIB, len(payload)) == payload

    def test_throughput_near_paper(self):
        sim, dimms, ap = fresh()
        raw = bytes(8 * MIB)
        seed(dimms, raw)
        engine = MemcopyEngine(sim, ap)
        t0 = sim.now_ps
        engine.run_to_completion(
            ControlBlock(opcode=KERNEL_MEMCOPY, src=0, dst=64 * MIB, length=len(raw))
        )
        gbps = len(raw) / ((sim.now_ps - t0) / S) / 1e9
        assert 4.5 <= gbps <= 7.5  # paper: 6 GB/s

    def test_copy_slower_than_scan(self):
        # copy moves every byte twice through the same ports
        def run(engine_cls, opcode, dst):
            sim, dimms, ap = fresh()
            raw = bytes(4 * MIB)
            seed(dimms, raw)
            engine = engine_cls(sim, ap)
            t0 = sim.now_ps
            engine.run_to_completion(
                ControlBlock(opcode=opcode, src=0, dst=dst, length=len(raw))
            )
            return len(raw) / ((sim.now_ps - t0) / S)

        scan = run(MinMaxEngine, KERNEL_MINMAX, 0)
        copy = run(MemcopyEngine, KERNEL_MEMCOPY, 64 * MIB)
        assert copy < scan


class TestFft:
    def test_radix2_matches_numpy(self):
        rng = np.random.default_rng(3)
        for size in (8, 64, 1024):
            x = (rng.standard_normal(size) + 1j * rng.standard_normal(size)).astype(
                np.complex64
            )
            assert np.allclose(radix2_fft(x), np.fft.fft(x), rtol=1e-3, atol=1e-3)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(AccelError):
            radix2_fft(np.zeros(100, dtype=np.complex64))

    def test_farm_writes_real_spectra(self):
        sim, dimms, ap = fresh()
        rng = np.random.default_rng(5)
        samples = (rng.standard_normal(2048) + 1j * rng.standard_normal(2048)).astype(
            np.complex64
        )
        seed(dimms, samples.tobytes())
        farm = FftEngineFarm(sim, ap, num_engines=2)
        cb = farm.run_to_completion(
            ControlBlock(opcode=KERNEL_FFT, src=0, dst=8 * MIB, length=len(samples) * 8)
        )
        assert cb.status == STATUS_DONE
        assert cb.result0 == 2  # two 1024-point blocks
        out = np.frombuffer(read_flat(dimms, 8 * MIB, len(samples) * 8), dtype=np.complex64)
        for b in range(2):
            block = samples[b * 1024 : (b + 1) * 1024]
            assert np.allclose(
                out[b * 1024 : (b + 1) * 1024], np.fft.fft(block), rtol=1e-2, atol=1e-2
            )

    def test_sample_throughput_near_paper(self):
        sim, dimms, ap = fresh()
        n = 256 * 1024  # samples
        seed(dimms, bytes(n * 8))
        farm = FftEngineFarm(sim, ap, num_engines=8)
        t0 = sim.now_ps
        farm.run_to_completion(
            ControlBlock(opcode=KERNEL_FFT, src=0, dst=64 * MIB, length=n * 8)
        )
        moved_gs = 2 * n / ((sim.now_ps - t0) / S) / 1e9
        assert 0.9 <= moved_gs <= 1.7  # paper: 1.3 Gsamples/s

    def test_few_engines_become_compute_bound(self):
        def run(engines):
            sim, dimms, ap = fresh()
            n = 64 * 1024
            seed(dimms, bytes(n * 8))
            farm = FftEngineFarm(sim, ap, num_engines=engines)
            t0 = sim.now_ps
            farm.run_to_completion(
                ControlBlock(opcode=KERNEL_FFT, src=0, dst=64 * MIB, length=n * 8)
            )
            return sim.now_ps - t0

        assert run(1) > run(8)


class TestControlBlockProtocol:
    def test_status_transitions(self):
        sim, dimms, ap = fresh()
        seed(dimms, bytes(8192))
        engine = MinMaxEngine(sim, ap)
        engine.submit_write(
            0, ControlBlock(opcode=KERNEL_MINMAX, src=0, length=8192).pack()
        )
        assert engine._cb.status == STATUS_RUNNING
        sim.run()
        assert engine._cb.status == STATUS_DONE

    def test_poll_returns_packed_block(self):
        sim, dimms, ap = fresh()
        seed(dimms, bytes(8192))
        engine = MinMaxEngine(sim, ap)
        engine.run_to_completion(ControlBlock(opcode=KERNEL_MINMAX, src=0, length=8192))
        raw = sim.run_until_signal(engine.submit_read(0, 128))
        polled = ControlBlock.unpack(raw)
        assert polled.status == STATUS_DONE

    def test_partial_line_store_rejected(self):
        sim, _, ap = fresh()
        engine = MinMaxEngine(sim, ap)
        with pytest.raises(AccelError):
            engine.submit_write(0, b"short")

    def test_cycles_reported(self):
        sim, dimms, ap = fresh()
        seed(dimms, bytes(8192))
        engine = MinMaxEngine(sim, ap)
        cb = engine.run_to_completion(ControlBlock(opcode=KERNEL_MINMAX, src=0, length=8192))
        assert cb.cycles > 0


class TestSoftwareBaselines:
    def test_published_numbers(self):
        sw = SoftwareBaselines()
        assert sw.memcopy_gb_s() == pytest.approx(3.2, rel=0.05)
        assert sw.minmax_gb_s() == pytest.approx(0.5, rel=0.05)
        assert sw.fft_gsamples_s() == pytest.approx(0.68, rel=0.05)

    def test_time_scales_linearly(self):
        sw = SoftwareBaselines()
        assert sw.memcopy_time_s(2 * MIB) == pytest.approx(2 * sw.memcopy_time_s(1 * MIB))

    def test_table5_speedups(self):
        # accelerated / software = 2x-20x across the kernels (Table 5)
        sw = SoftwareBaselines()
        assert 6.0 / sw.memcopy_gb_s() == pytest.approx(1.9, abs=0.3)
        assert 10.5 / sw.minmax_gb_s() == pytest.approx(21, abs=3)
        assert 1.3 / sw.fft_gsamples_s() == pytest.approx(1.9, abs=0.3)
