"""The public API surface: everything in ``__all__`` exists and imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.dmi",
    "repro.buffer",
    "repro.fpga",
    "repro.memory",
    "repro.processor",
    "repro.firmware",
    "repro.storage",
    "repro.accel",
    "repro.workloads",
    "repro.core",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    exports = list(package.__all__)
    assert len(exports) == len(set(exports)), f"{package_name}: duplicate exports"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    for name in package.__all__:
        obj = getattr(package, name)
        if isinstance(obj, type):
            assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
