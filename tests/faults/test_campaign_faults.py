"""Fault campaigns are deterministic: same plan + seed -> identical
artifacts regardless of worker count (the ISSUE's byte-identity bar)."""

from repro.campaign import (
    CampaignRunner,
    ScenarioMatrix,
    apply_fault_plan,
    canonical_manifest,
    get_experiment,
    read_manifest,
)
from repro.faults import FaultPlan, FaultSpec

PLAN = FaultPlan(name="smoke", specs=(FaultSpec(
    "dmi.frame_drop", target="0", schedule="periodic",
    start_ps=0, period_ps=2_000_000, count=3, label="drop"),))


def fault_jobs(plan_json):
    """The tiny fixed-seed fault matrix the CI chaos smoke also runs."""
    matrix = ScenarioMatrix(base_seed=0)
    matrix.add("ber_sweep", samples=[2], rates=[(0.0, 0.05)])
    return apply_fault_plan(matrix.expand(), plan_json)


class TestFaultPlanThreading:
    def test_plan_lands_only_in_fault_capable_jobs(self):
        matrix = ScenarioMatrix(base_seed=0)
        matrix.add("ber_sweep", samples=[2])
        matrix.add("table1")
        jobs = apply_fault_plan(matrix.expand(), PLAN.to_json())
        by_exp = {j.experiment: j for j in jobs}
        assert by_exp["ber_sweep"].kwargs_dict["faults"] == PLAN.to_json()
        assert "faults" not in by_exp["table1"].kwargs_dict
        assert get_experiment("table1").supports_faults is False

    def test_plan_is_part_of_the_job_identity(self):
        plain = fault_jobs(PLAN.to_json())[0]
        other = FaultPlan(name="other", specs=PLAN.specs)
        assert plain.job_id != fault_jobs(other.to_json())[0].job_id


class TestWorkerCountInvariance:
    def run_campaign(self, tmp_path, tag, workers, plan_json):
        out = tmp_path / tag
        out.mkdir()
        report = CampaignRunner(
            fault_jobs(plan_json),
            workers=workers,
            manifest_path=str(out / "manifest.jsonl"),
        ).run()
        assert not report.failed
        report.write_attribution(str(out / "attribution.jsonl"))
        return out

    def test_artifacts_byte_identical_across_jobs(self, tmp_path):
        plan_json = PLAN.to_json()
        serial = self.run_campaign(tmp_path, "serial", 1, plan_json)
        parallel = self.run_campaign(tmp_path, "parallel", 2, plan_json)
        a = (serial / "attribution.jsonl").read_bytes()
        b = (parallel / "attribution.jsonl").read_bytes()
        assert a == b
        assert canonical_manifest(
            read_manifest(str(serial / "manifest.jsonl"))
        ) == canonical_manifest(
            read_manifest(str(parallel / "manifest.jsonl"))
        )
