"""FaultPlan: spec validation, labelling, compilation, (de)serialisation."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import SCHEDULES, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_schedule_values(self):
        assert SCHEDULES == ("once", "periodic", "bernoulli")

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("dmi.bit_errors", schedule="cron")

    def test_periodic_needs_period_and_count(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("dmi.frame_drop", schedule="periodic", period_ps=0)
        with pytest.raises(ConfigurationError):
            FaultSpec("dmi.frame_drop", schedule="periodic",
                      period_ps=1_000, count=0)

    def test_bernoulli_needs_window_and_valid_rate(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("dmi.frame_drop", schedule="bernoulli",
                      period_ps=1_000, until_ps=0)
        with pytest.raises(ConfigurationError):
            FaultSpec("dmi.frame_drop", schedule="bernoulli",
                      period_ps=1_000, until_ps=10_000, rate=1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("dmi.bit_errors", duration_ps=-1)

    def test_params_lookup(self):
        spec = FaultSpec("dmi.bit_errors", params=(("rate", 0.1),))
        assert spec.param("rate") == 0.1
        assert spec.param("missing", 42) == 42
        assert spec.params_dict == {"rate": 0.1}


class TestLabelling:
    def test_auto_labels_are_unique_and_stable(self):
        plan = FaultPlan(specs=(
            FaultSpec("dmi.bit_errors", target="0"),
            FaultSpec("dmi.bit_errors", target="0"),
            FaultSpec("nvdimm.power_loss"),
        ))
        labels = [s.label for s in plan.specs]
        assert len(set(labels)) == 3
        assert labels == [s.label for s in FaultPlan(specs=plan.specs).specs]

    def test_duplicate_explicit_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(specs=(
                FaultSpec("dmi.bit_errors", label="x"),
                FaultSpec("dmi.frame_drop", label="x"),
            ))


class TestCompile:
    def test_once_fires_at_at_ps(self):
        plan = FaultPlan(specs=(FaultSpec("dmi.bit_errors", at_ps=5_000),))
        (event,) = plan.compile(seed=0)
        assert event.at_ps == 5_000
        assert event.index == 0

    def test_periodic_expands_count_events(self):
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.frame_drop", schedule="periodic",
            start_ps=1_000, period_ps=2_000, count=3,
        ),))
        assert [e.at_ps for e in plan.compile(0)] == [1_000, 3_000, 5_000]

    def test_events_sorted_across_specs(self):
        plan = FaultPlan(specs=(
            FaultSpec("dmi.bit_errors", at_ps=9_000),
            FaultSpec("dmi.frame_drop", schedule="periodic",
                      start_ps=0, period_ps=4_000, count=3),
        ))
        times = [e.at_ps for e in plan.compile(0)]
        assert times == sorted(times)

    def test_bernoulli_deterministic_per_seed(self):
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.frame_drop", schedule="bernoulli",
            start_ps=0, period_ps=1_000, until_ps=200_000, rate=0.3,
        ),))
        a = [e.at_ps for e in plan.compile(7)]
        b = [e.at_ps for e in plan.compile(7)]
        c = [e.at_ps for e in plan.compile(8)]
        assert a == b
        assert 0 < len(a) < 200
        assert a != c  # a different seed reshuffles the trial stream

    def test_bernoulli_rate_extremes(self):
        def compiled(rate):
            return FaultPlan(specs=(FaultSpec(
                "dmi.frame_drop", schedule="bernoulli",
                start_ps=0, period_ps=1_000, until_ps=10_000, rate=rate,
            ),)).compile(0)
        assert compiled(0.0) == []
        assert len(compiled(1.0)) == 10


class TestSerialization:
    def test_json_roundtrip_is_canonical(self):
        plan = FaultPlan(name="p", specs=(
            FaultSpec("dmi.bit_errors", target="0", duration_ps=10,
                      params=(("rate", 0.2),)),
        ))
        text = plan.to_json()
        again = FaultPlan.from_json(text)
        assert again == plan
        assert again.to_json() == text

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"name": "p", "specs": [], "bogus": 1})
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"injector": "dmi.bit_errors", "bogus": 1})

    def test_load_coercions(self):
        plan = FaultPlan(specs=(FaultSpec("dmi.bit_errors"),))
        assert FaultPlan.load(None) is None
        assert FaultPlan.load(plan) is plan
        assert FaultPlan.load(plan.to_json()) == plan
        assert FaultPlan.load(plan.to_dict()) == plan
