"""Storage fault injection: the IoFaultModel, the three storage
injectors, fault-window publication, and the time-bucketed view."""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.faults import (
    FaultController,
    FaultPlan,
    FaultSpec,
    render_time_buckets,
    time_buckets,
)
from repro.faults.injectors import make_injector
from repro.sim import Rng, Simulator
from repro.storage import (
    HardDiskDrive,
    IoFaultModel,
    NvWriteCache,
    SolidStateDrive,
    WriteCacheConfig,
)
from repro.telemetry import TraceSession
from repro.units import GIB, MIB, us_to_ps


def bound(spec, sim, system):
    injector = make_injector(spec, sim, Rng(1, "t"))
    injector.bind(system)
    return injector


class TestIoFaultModel:
    def test_rejects_bad_rate_and_retries(self):
        with pytest.raises(StorageError):
            IoFaultModel(rate=1.5)
        with pytest.raises(StorageError):
            IoFaultModel(max_retries=-1)

    def test_forced_failures_consumed_first(self):
        model = IoFaultModel(force_failures=2)
        assert model.should_fail() and model.should_fail()
        assert not model.should_fail()


class TestDeviceFaultPaths:
    def test_retry_within_bound_succeeds(self):
        sim = Simulator()
        ssd = SolidStateDrive(sim, 1 * GIB)
        ssd.io_fault = IoFaultModel(force_failures=1, max_retries=2)
        value = sim.run_until_signal(ssd.submit_read(0, 4096))
        assert value is None
        assert ssd.io_retries == 1 and ssd.io_failures == 0
        assert ssd.reads == 1

    def test_exhausted_retries_surface_storage_error(self):
        sim = Simulator()
        ssd = SolidStateDrive(sim, 1 * GIB)
        ssd.io_fault = IoFaultModel(force_failures=3, max_retries=2)
        value = sim.run_until_signal(ssd.submit_read(0, 4096))
        assert isinstance(value, StorageError)
        assert ssd.io_failures == 1 and ssd.io_retries == 2
        assert ssd.reads == 0  # a failed IO is not a completed read

    def test_slow_disk_penalty_applies_once_per_io(self):
        sim = Simulator()
        ssd = SolidStateDrive(sim, 1 * GIB)
        t0 = sim.now_ps
        sim.run_until_signal(ssd.submit_read(0, 4096))
        healthy = sim.now_ps - t0
        ssd.slow_extra_ps = us_to_ps(500)
        t0 = sim.now_ps
        sim.run_until_signal(ssd.submit_read(0, 4096))
        slowed = sim.now_ps - t0
        assert slowed >= healthy + us_to_ps(500)
        assert ssd.slowed_ios == 1


class TestStorageInjectors:
    def _system(self):
        sim = Simulator()
        ssd = SolidStateDrive(sim, 1 * GIB)
        hdd = HardDiskDrive(sim, 1 * GIB)
        system = SimpleNamespace(sim=sim, storage_devices={"ssd": ssd, "hdd": hdd})
        return sim, ssd, hdd, system

    def test_io_errors_install_and_recover(self):
        sim, ssd, hdd, system = self._system()
        spec = FaultSpec("storage.io_errors", target="ssd",
                         params=(("force_failures", 1),), label="io")
        injector = bound(spec, sim, system)
        assert injector.inject(0) == "injected"
        assert ssd.io_fault is not None and hdd.io_fault is None
        assert injector.recover(0) == "recovered"
        assert ssd.io_fault is None

    def test_slow_disk_saves_and_restores(self):
        sim, ssd, hdd, system = self._system()
        spec = FaultSpec("storage.slow_disk", target="",
                         params=(("extra_us", 100.0),), label="slow")
        injector = bound(spec, sim, system)
        injector.inject(0)
        assert ssd.slow_extra_ps == us_to_ps(100)
        assert hdd.slow_extra_ps == us_to_ps(100)
        assert injector.recover(0) == "recovered"
        assert ssd.slow_extra_ps == 0 and hdd.slow_extra_ps == 0

    def test_destage_stall_freezes_cache_only(self):
        sim, ssd, hdd, system = self._system()

        class FastLog:
            capacity_bytes = 256 * MIB

            def __init__(self, sim):
                self.sim = sim

            def submit_write(self, offset, nbytes):
                from repro.sim import Signal
                done = Signal("log.w")
                self.sim.call_after(us_to_ps(2), done.trigger)
                return done

        cache = NvWriteCache(sim, FastLog(sim), hdd, WriteCacheConfig())
        system.storage_devices["wcache"] = cache
        spec = FaultSpec("storage.destage_stall", target="", label="stall")
        injector = bound(spec, sim, system)
        assert injector.inject(0) == "injected"
        assert cache._frozen and cache.freezes == 1
        assert injector.recover(0) == "recovered"
        assert not cache._frozen

    def test_skips_on_system_without_storage_devices(self):
        sim = Simulator()
        system = SimpleNamespace(sim=sim)
        spec = FaultSpec("storage.io_errors", target="", label="io")
        injector = bound(spec, sim, system)
        assert injector.inject(0) == "skipped"

    def test_unknown_target_rejected_at_bind(self):
        sim, _, _, system = self._system()
        spec = FaultSpec("storage.io_errors", target="nope", label="io")
        with pytest.raises(ConfigurationError):
            bound(spec, sim, system)


class TestFaultWindowPublication:
    def test_controller_stop_publishes_windows_to_session(self):
        with TraceSession("t", max_events=0) as session:
            sim = Simulator()
            ssd = SolidStateDrive(sim, 1 * GIB)
            system = SimpleNamespace(sim=sim, storage_devices={"ssd": ssd})
            plan = FaultPlan(name="p", specs=(FaultSpec(
                "storage.slow_disk", target="ssd", schedule="once", at_ps=0,
                duration_ps=us_to_ps(100), params=(("extra_us", 10.0),),
                label="slow",
            ),))
            controller = FaultController(sim, plan, seed=0)
            controller.install(system).start()
            sim.run()
            controller.stop()
            windows = list(session.fault_windows)
        assert len(windows) == 1
        window = windows[0]
        assert window["label"] == "slow"
        assert window["injector"] == "storage.slow_disk"
        assert window["end_ps"] - window["start_ps"] == us_to_ps(100)


class TestTimeBuckets:
    def test_buckets_partition_time_and_split_clean_vs_fault(self):
        windows = [{"label": "w", "injector": "storage.slow_disk",
                    "target": "", "start_ps": 100, "end_ps": 300}]
        journeys = [
            {"start_ps": 0, "end_ps": 50, "faults": ()},
            {"start_ps": 120, "end_ps": 220, "faults": ("w",)},
            {"start_ps": 800, "end_ps": 1000, "faults": ()},
        ]
        rows = time_buckets(windows, journeys, buckets=5)
        assert len(rows) == 5
        assert rows[0]["start_ps"] == 0 and rows[-1]["end_ps"] >= 1000
        assert sum(r["journeys"] for r in rows) == 3
        assert sum(r["fault_journeys"] for r in rows) == 1
        assert sum(r["injections"] for r in rows) == 1
        hit = next(r for r in rows if r["fault_journeys"])
        assert hit["fault_mean_ps"] == 100
        # the window overlaps exactly the first two buckets of 200 ps
        assert [r["open_windows"] for r in rows] == [1, 1, 0, 0, 0]
        text = render_time_buckets(rows)
        assert "injections vs latency" in text

    def test_empty_inputs_yield_no_rows(self):
        assert time_buckets([], [], buckets=4) == []
        assert render_time_buckets([]) == ""
