"""The registered fault experiments: BER sweep, NVDIMM drill, storage drill."""

from repro.campaign import experiment_names, get_experiment
from repro.faults import FaultPlan, FaultSpec
from repro.faults.experiments import (
    run_ber_sweep,
    run_nvdimm_drill,
    run_storage_drill,
)


class TestRegistration:
    def test_fault_experiments_registered_but_not_paper(self):
        for name in ("ber_sweep", "nvdimm_drill", "storage_drill"):
            spec = get_experiment(name)
            assert spec.supports_faults
            assert not spec.paper  # must not disturb the paper campaign
        assert "ber_sweep" in experiment_names()

    def test_paper_experiments_do_not_take_faults(self):
        assert not get_experiment("table3").supports_faults


class TestBerSweep:
    def test_replays_grow_with_error_rate(self):
        table = run_ber_sweep(samples=6, rates=(0.0, 0.05, 0.1), seed=0)
        freeze = [r for r in table.rows if r[1] == "yes"]
        assert [r[0] for r in freeze] == ["0", "0.05", "0.1"]
        replays = [r[3] for r in freeze]
        assert replays[0] == 0  # no errors, no replays
        assert replays == sorted(replays) and replays[-1] > 0
        crc_drops = [r[4] for r in freeze]
        assert crc_drops == sorted(crc_drops) and crc_drops[-1] > 0

    def test_no_freeze_cheat_costs_channel_failures(self):
        table = run_ber_sweep(samples=6, rates=(0.1,), seed=0)
        by_mode = {r[1]: r for r in table.rows}
        assert by_mode["yes"][5] == 0  # freeze workaround absorbs replays
        assert by_mode["no"][5] > 0  # without it, the channel fails
        assert by_mode["no"][6] == by_mode["no"][5]  # each failure recovered

    def test_deterministic_given_seed(self):
        a = run_ber_sweep(samples=4, rates=(0.05,), seed=3)
        b = run_ber_sweep(samples=4, rates=(0.05,), seed=3)
        assert a.rows == b.rows

    def test_extra_plan_entries_merge(self):
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.frame_drop", target="0", at_ps=0,
            params=(("count", 2),), label="extra"),))
        clean = run_ber_sweep(samples=4, rates=(0.0,), seed=0)
        extra = run_ber_sweep(samples=4, rates=(0.0,), seed=0,
                              faults=plan.to_json())
        row = [r for r in extra.rows if r[1] == "yes"][0]
        base = [r for r in clean.rows if r[1] == "yes"][0]
        assert row[4] > base[4]  # forced drops show up as CRC drops


class TestNvdimmDrill:
    def test_healthy_recovers_undersized_loses(self):
        table = run_nvdimm_drill(lines=4, seed=0)
        by_case = {r[0]: r for r in table.rows}
        healthy, undersized = by_case["healthy"], by_case["undersized"]
        assert healthy[5] == "recovered" and healthy[6] == "yes"
        assert healthy[3] > 0 and healthy[4] == 0  # clean saves
        assert undersized[5] == "LOST" and undersized[6] == "no"
        assert undersized[3] == 0 and undersized[4] > 0  # failed saves

    def test_deterministic_given_seed(self):
        a = run_nvdimm_drill(lines=4, seed=1)
        b = run_nvdimm_drill(lines=4, seed=1)
        assert a.rows == b.rows


class TestStorageDrill:
    def test_forced_failures_and_backpressure_show_in_rows(self):
        # 24 writes = 6 log segments: enough to stall admission, so the
        # frozen destager and slow disk actually reach the ack path
        table = run_storage_drill(writes=24, seed=0)
        by_case = {r[0]: r for r in table.rows}
        ssd = by_case["ssd io_errors"]
        # 6 forced failures = 2 IOs' retry bounds exhausted (2 retries each)
        assert ssd[4] == 2 and ssd[5] == 4
        assert ssd[8] == 1  # one io_errors injection
        clean, faulted = by_case["wcache clean"], by_case["wcache faulted"]
        assert clean[4] == 0 and clean[8] == 0
        assert faulted[8] == 2  # destage stall + slow disk both injected
        # a frozen destager and a slow disk must cost latency
        assert float(faulted[3]) > float(clean[3])

    def test_deterministic_given_seed(self):
        a = run_storage_drill(writes=12, seed=0)
        b = run_storage_drill(writes=12, seed=0)
        assert a.rows == b.rows
