"""Injector registry: each injector drives its primitive's real error path."""

import pytest

from repro.core.system import CardSpec, ContuttoSystem
from repro.errors import ConfigurationError
from repro.faults import (
    FaultSpec,
    configure_link_errors,
    injector_names,
    make_injector,
)
from repro.memory import NvdimmState, SupercapSpec
from repro.sim import Rng
from repro.units import MIB

ALL_INJECTORS = [
    "accel.engine_stall",
    "dmi.bit_errors",
    "dmi.degrade",
    "dmi.frame_drop",
    "fpga.clock_jitter",
    "hybrid.migration_stall",
    "memory.bank_fault",
    "memory.bit_flips",
    "memory.scrub_storm",
    "nvdimm.power_loss",
    "storage.destage_stall",
    "storage.io_errors",
    "storage.slow_disk",
]


def build(memory="dram", ecc=False):
    return ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=64 * MIB,
                  ecc=ecc)]
        + ([CardSpec(slot=2, kind="contutto", memory=memory,
                     capacity_per_dimm=64 * MIB)]
           if memory != "dram" else []),
        seed=0,
    )


def bound(system, spec):
    injector = make_injector(spec, system.sim, Rng(1, "t"))
    injector.bind(system)
    return injector


class TestRegistry:
    def test_all_injectors_registered(self):
        assert injector_names() == ALL_INJECTORS

    def test_unknown_injector_rejected(self):
        from repro.sim import Simulator
        with pytest.raises(ConfigurationError):
            make_injector(FaultSpec("dmi.bogus"), Simulator(), Rng(0, "t"))

    def test_bad_target_rejected_at_bind(self):
        system = build()
        with pytest.raises(ConfigurationError):
            bound(system, FaultSpec("dmi.bit_errors", target="9"))
        with pytest.raises(ConfigurationError):
            bound(system, FaultSpec("dmi.bit_errors", target="nope"))


class TestConfigureLinkErrors:
    def test_sets_and_returns_previous(self):
        system = build()
        channel = system.socket.slots[0].channel
        links = [channel.down_link, channel.up_link]
        saved = configure_link_errors(links, 0.25, max_flips=2)
        assert all(l.error_model.frame_error_rate == 0.25 for l in links)
        assert all(l.error_model.max_flips == 2 for l in links)
        configure_link_errors(links, saved[0][0], saved[0][1])
        assert all(l.error_model.frame_error_rate == 0.0 for l in links)

    def test_rate_outside_unit_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            configure_link_errors([], 1.5)


class TestDmiInjectors:
    def test_bit_errors_inject_and_restore(self):
        system = build()
        model = system.socket.slots[0].channel.down_link.error_model
        injector = bound(system, FaultSpec(
            "dmi.bit_errors", target="0", params=(("rate", 0.2),)))
        assert injector.inject(0) == "injected"
        assert model.frame_error_rate == 0.2
        assert injector.inject(0) == "injected"  # overlap keeps first save
        assert injector.recover(0) == "recovered"
        assert model.frame_error_rate == 0.0
        assert injector.recover(0) == "noop"

    def test_frame_drop_forces_crc_drops(self):
        system = build()
        model = system.socket.slots[0].channel.down_link.error_model
        injector = bound(system, FaultSpec(
            "dmi.frame_drop", target="0", params=(("count", 3),)))
        assert injector.inject(0) == "injected"
        assert model.force_drops == 3
        assert injector.recover(0) == "recovered"
        assert model.force_drops == 0

    def test_frame_drop_direction_validated(self):
        system = build()
        with pytest.raises(ConfigurationError):
            bound(system, FaultSpec(
                "dmi.frame_drop", params=(("direction", "sideways"),)))

    def test_degrade_fails_channel_and_heals_out_of_kernel(self):
        system = build()
        channel = system.socket.slots[0].channel
        injector = bound(system, FaultSpec("dmi.degrade", target="0"))
        assert injector.needs_heal
        assert injector.inject(system.sim.now_ps) == "injected"
        assert not channel.operational
        assert injector.inject(system.sim.now_ps) == "skipped"  # already down
        assert injector.heal(system.sim.now_ps) == "recovered"
        assert channel.operational


class TestMemoryInjectors:
    def test_bit_flips_need_ecc_dimms(self):
        plain = build(ecc=False)
        injector = bound(plain, FaultSpec("memory.bit_flips", target="0"))
        assert injector.inject(0) == "skipped"

    def test_bit_flips_corrected_on_read(self):
        from repro.memory import DdrDram

        system = build(ecc=True)
        injector = bound(system, FaultSpec(
            "memory.bit_flips", target="0", params=(("flips", 4),)))
        # retarget a small standalone DIMM so the verification scan is cheap
        small = DdrDram(1 * MIB, ecc_enabled=True, refresh_enabled=False)
        injector.devices = [small]
        assert injector.inject(0) == "injected"
        flipped = [
            addr for addr in range(0, small.capacity_bytes, 8)
            if small.backing.read(addr, 8) != bytes(8)
        ]
        assert 1 <= len(flipped) <= 4
        for addr in flipped:
            data, _ = small.read(addr, 8, 0)  # SEC-DED heals on read
            assert data == bytes(8)
        assert small.ecc_corrections == len(flipped)

    def test_bank_fault_slow_and_clear(self):
        system = build()
        device = system.cards[0].buffer.ports[0].device
        injector = bound(system, FaultSpec(
            "memory.bank_fault", target="0",
            params=(("bank", 0), ("mode", "slow"), ("extra_ps", 50_000)),
        ))
        _, t1 = device.read(0, 128, 0)
        _, t2 = device.read(0, 128, t1)
        hit = t2 - t1
        assert injector.inject(0) == "injected"
        _, t3 = device.read(0, 128, t2)
        assert t3 - t2 >= hit + 50_000
        assert injector.recover(0) == "recovered"
        _, t4 = device.read(0, 128, t3)
        assert t4 - t3 < hit + 50_000

    def test_scrub_storm_starts_and_stops_scrubbers(self):
        system = build(ecc=True)
        injector = bound(system, FaultSpec(
            "memory.scrub_storm", target="0",
            params=(("lines_per_step", 4),),
        ))
        assert injector.inject(system.sim.now_ps) == "injected"
        scrubbers = list(injector.scrubbers)
        assert scrubbers
        assert injector.recover(system.sim.now_ps) == "recovered"
        assert all(s.stop_requested for s in scrubbers)


class TestNvdimmInjector:
    def test_power_loss_saved_then_recovered(self):
        system = build(memory="nvdimm")
        devices = [p.device for p in system.cards[2].buffer.ports]
        injector = bound(system, FaultSpec("nvdimm.power_loss", target="2"))
        assert injector.inject(system.sim.now_ps) == "injected"
        assert all(d.state is NvdimmState.SAVED for d in devices)
        assert injector.inject(system.sim.now_ps) == "skipped"  # already down
        assert injector.recover(system.sim.now_ps) == "recovered"
        assert all(d.state is NvdimmState.NORMAL for d in devices)

    def test_power_loss_reports_lost_on_undersized_supercap(self):
        system = build(memory="nvdimm")
        devices = [p.device for p in system.cards[2].buffer.ports]
        for device in devices:
            device.supercap = SupercapSpec(hold_up_ms=0.001)
        injector = bound(system, FaultSpec("nvdimm.power_loss", target="2"))
        assert injector.inject(system.sim.now_ps) == "injected"
        assert all(d.state is NvdimmState.LOST for d in devices)
        assert injector.recover(system.sim.now_ps) == "lost"

    def test_dram_only_target_skips(self):
        system = build()
        injector = bound(system, FaultSpec("nvdimm.power_loss", target="0"))
        assert injector.inject(0) == "skipped"


class TestEngineStall:
    def test_stall_seizes_and_releases_engines(self):
        system = build()
        pool = system.cards[0].buffer.mbs.engines
        free_before = pool.free_count
        injector = bound(system, FaultSpec(
            "accel.engine_stall", target="0", params=(("engines", 2),)))
        assert injector.inject(system.sim.now_ps) == "injected"
        assert pool.free_count == free_before - 2
        assert injector.recover(system.sim.now_ps) == "recovered"
        assert pool.free_count == free_before


class TestClockJitter:
    def _read_mean_ps(self, system, reads=8):
        from repro.units import CACHE_LINE_BYTES
        region = system.region_for_slot(0)
        total = 0
        for i in range(reads):
            addr = region.base + i * CACHE_LINE_BYTES
            t0 = system.sim.now_ps
            signal = system.socket.read_line(addr)
            system.sim.run_until_signal(signal, timeout_ps=10**12)
            total += system.sim.now_ps - t0
        return total / reads

    def test_jitter_installed_and_restored(self):
        system = build()
        mbs = system.cards[0].buffer.mbs
        injector = bound(system, FaultSpec(
            "fpga.clock_jitter", target="0", params=(("jitter_ps", 5_000),)))
        assert injector.inject(system.sim.now_ps) == "injected"
        assert mbs.jitter_ps == 5_000 and mbs.jitter_rng is not None
        assert injector.recover(system.sim.now_ps) == "recovered"
        assert mbs.jitter_ps == 0 and mbs.jitter_rng is None
        assert injector.recover(system.sim.now_ps) == "noop"

    def test_jitter_slows_reads_deterministically(self):
        clean = self._read_mean_ps(build())

        def jittered():
            system = build()
            injector = bound(system, FaultSpec(
                "fpga.clock_jitter", params=(("jitter_ps", 50_000),)))
            injector.inject(system.sim.now_ps)
            return self._read_mean_ps(system)

        assert jittered() > clean        # late-only: jitter can't speed up
        assert jittered() == jittered()  # forked rng keeps runs repeatable

    def test_centaur_only_system_skips(self):
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="centaur")], seed=0
        )
        injector = bound(system, FaultSpec("fpga.clock_jitter"))
        assert injector.inject(0) == "skipped"

    def test_negative_jitter_rejected(self):
        system = build()
        injector = bound(system, FaultSpec(
            "fpga.clock_jitter", params=(("jitter_ps", -1),)))
        with pytest.raises(ConfigurationError):
            injector.inject(0)


class TestMigrationStall:
    def _tiered_system(self):
        from repro.hybrid import TieringSpec
        return ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", memory="tiered",
                      capacity_per_dimm=64 * MIB, tiering=TieringSpec())],
            seed=0,
        )

    def test_freezes_and_unfreezes_every_tiered_device(self):
        system = self._tiered_system()
        injector = bound(system, FaultSpec("hybrid.migration_stall"))
        assert injector.devices  # found the tiered DIMMs behind the buffer
        assert injector.inject(0) == "injected"
        assert all(d.migration_frozen for d in injector.devices)
        assert injector.recover(0) == "recovered"
        assert not any(d.migration_frozen for d in injector.devices)

    def test_system_without_tiered_devices_skips(self):
        system = build()  # homogeneous DRAM card
        injector = bound(system, FaultSpec("hybrid.migration_stall"))
        assert injector.inject(0) == "skipped"
