"""FaultController: scheduling, windows, journey tagging, heal, teardown."""

from repro.core.system import CardSpec, ContuttoSystem
from repro.faults import FaultController, FaultPlan, FaultSpec, FaultWindow
from repro.sim import Simulator
from repro.telemetry import TraceSession
from repro.units import MIB

TIMEOUT_PS = 10**10


def build(seed=0):
    return ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=64 * MIB)],
        seed=seed,
    )


def read(system, addr=0):
    return system.sim.run_until_signal(
        system.socket.read_line(system.region_for_slot(0).base + addr),
        timeout_ps=TIMEOUT_PS,
    )


class TestFaultTags:
    def plain_controller(self):
        return FaultController(Simulator(), FaultPlan(specs=()))

    def test_overlap_semantics(self):
        c = self.plain_controller()
        c.windows.append(FaultWindow("a", 0, start_ps=100, end_ps=200))
        c.windows.append(FaultWindow("b", 1, start_ps=150, end_ps=None))
        assert c.fault_tags(0, 50) == ()          # before both
        assert c.fault_tags(0, 100) == ("a",)     # touches a's start
        assert c.fault_tags(120, 180) == ("a", "b")
        assert c.fault_tags(250, 300) == ("b",)   # open window never ends
        assert c.fault_tags(201, 210) == ("b",)   # a is over

    def test_tags_sorted_and_deduped(self):
        c = self.plain_controller()
        c.windows.append(FaultWindow("z", 0, 0, 10))
        c.windows.append(FaultWindow("a", 1, 0, 10))
        c.windows.append(FaultWindow("a", 1, 5, 10))
        assert c.fault_tags(0, 10) == ("a", "z")


class TestExecution:
    def test_events_offset_from_start_time(self):
        system = build()
        boot_ps = system.sim.now_ps
        assert boot_ps > 0  # boot consumed simulated time
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.frame_drop", target="0", at_ps=1_000, label="drop"),))
        controller = FaultController(system.sim, plan).install(system).start()
        system.sim.run(until_ps=system.sim.now_ps + 2_000)
        (window,) = controller.windows
        assert window.start_ps == boot_ps + 1_000

    def test_window_closes_after_duration(self):
        system = build()
        model = system.socket.slots[0].channel.down_link.error_model
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.bit_errors", target="0", at_ps=0, duration_ps=5_000,
            params=(("rate", 0.5),), label="burst"),))
        controller = FaultController(system.sim, plan).install(system).start()
        system.sim.run(until_ps=system.sim.now_ps + 10_000)
        assert model.frame_error_rate == 0.0  # recovered at window end
        (window,) = controller.windows
        assert window.end_ps == window.start_ps + 5_000
        report = controller.stop()
        assert report.tallies["burst"].injected == 1
        assert report.tallies["burst"].recovered == 1

    def test_point_fault_window_is_instant(self):
        system = build()
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.frame_drop", target="0", at_ps=0, label="p"),))
        controller = FaultController(system.sim, plan).install(system).start()
        system.sim.run(until_ps=system.sim.now_ps + 1_000)
        (window,) = controller.windows
        assert window.end_ps == window.start_ps

    def test_needs_heal_defers_to_between_runs(self):
        system = build()
        channel = system.socket.slots[0].channel
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.degrade", target="0", at_ps=0, label="deg"),))
        controller = FaultController(system.sim, plan).install(system).start()
        system.sim.run(until_ps=system.sim.now_ps + 1_000)
        assert not channel.operational  # injected, not yet healed
        assert controller.heal() == [("deg", "recovered")]
        assert channel.operational
        report = controller.stop()
        assert report.tallies["deg"].recovered == 1

    def test_stop_recovers_open_windows_and_is_idempotent(self):
        system = build()
        model = system.socket.slots[0].channel.down_link.error_model
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.bit_errors", target="0", at_ps=0, duration_ps=10**12,
            params=(("rate", 0.5),), label="long"),))
        controller = FaultController(system.sim, plan).install(system).start()
        system.sim.run(until_ps=system.sim.now_ps + 1_000)
        assert model.frame_error_rate == 0.5
        report = controller.stop()
        assert model.frame_error_rate == 0.0
        assert report.tallies["long"].recovered == 1
        assert controller.stop() is report  # second stop is a no-op
        assert report.tallies["long"].recovered == 1

    def test_events_after_stop_are_noops(self):
        system = build()
        plan = FaultPlan(specs=(FaultSpec(
            "dmi.frame_drop", target="0", at_ps=5_000, label="late"),))
        controller = FaultController(system.sim, plan).install(system).start()
        controller.stop()
        system.sim.run(until_ps=system.sim.now_ps + 10_000)
        assert controller.windows == []
        assert controller.report.total("injected") == 0


class TestTelemetry:
    def test_journeys_tagged_inside_window_only(self):
        with TraceSession("faults") as session:
            system = build()
            read(system)  # clean journey, pre-fault
            plan = FaultPlan(specs=(FaultSpec(
                "dmi.bit_errors", target="0", at_ps=0, duration_ps=10**12,
                params=(("rate", 0.0),), label="w"),))
            controller = FaultController(system.sim, plan).install(system).start()
            read(system, 128)  # journey inside the open window
            controller.stop()
            read(system, 256)  # probe detached: clean again
        faults = [j.faults for j in session.journeys.completed]
        assert faults[0] == ()
        assert "w" in faults[1]
        assert faults[-1] == ()

    def test_counters_reach_registry(self):
        with TraceSession("faults") as session:
            system = build()
            plan = FaultPlan(specs=(
                FaultSpec("dmi.frame_drop", target="0", at_ps=0,
                          duration_ps=1_000, label="a"),
                FaultSpec("nvdimm.power_loss", target="0", at_ps=0,
                          label="b"),  # DRAM slot: skipped
            ))
            controller = FaultController(system.sim, plan).install(system).start()
            system.sim.run(until_ps=system.sim.now_ps + 5_000)
            controller.stop()
        snapshot = session.registry.snapshot()
        assert snapshot["faults.injected"] == 1
        assert snapshot["faults.skipped"] == 1
        assert snapshot["faults.dmi.frame_drop"] == 1
        assert snapshot["faults.recovered"] == 1

    def test_stop_detaches_fault_probe(self):
        with TraceSession("faults") as session:
            system = build()
            plan = FaultPlan(specs=(FaultSpec(
                "dmi.frame_drop", target="0", at_ps=0, label="x"),))
            controller = FaultController(system.sim, plan).install(system).start()
            assert session.journeys.fault_probe is not None
            controller.stop()
            assert session.journeys.fault_probe is None
