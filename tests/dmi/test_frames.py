"""Tests for DMI frame formats and serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dmi import Opcode
from repro.errors import ProtocolError
from repro.dmi.frames import (
    DOWN_DATA_CHUNK,
    DOWN_WIRE_BYTES,
    SEQ_MOD,
    UP_DATA_CHUNK,
    UP_WIRE_BYTES,
    CommandHeader,
    DataChunk,
    DoneNotice,
    DownstreamFrame,
    TrainingFrame,
    UpstreamFrame,
    frame_kind,
    next_seq,
    seq_distance,
)


class TestWireGeometry:
    def test_downstream_wire_size(self):
        # 14 lanes x 16 UI = 224 bits = 28 bytes (Section 2.2)
        assert DOWN_WIRE_BYTES == 28

    def test_upstream_wire_size(self):
        # 21 lanes x 16 UI = 336 bits = 42 bytes
        assert UP_WIRE_BYTES == 42

    def test_cache_line_fits_in_eight_down_chunks(self):
        assert 128 // DOWN_DATA_CHUNK == 8

    def test_cache_line_fits_in_four_up_chunks(self):
        assert 128 // UP_DATA_CHUNK == 4


class TestSequenceArithmetic:
    def test_next_seq_wraps(self):
        assert next_seq(SEQ_MOD - 1) == 0
        assert next_seq(0) == 1

    def test_seq_distance(self):
        assert seq_distance(0, 5) == 5
        assert seq_distance(60, 2) == 6
        assert seq_distance(5, 5) == 0

    @given(st.integers(0, SEQ_MOD - 1), st.integers(0, SEQ_MOD - 1))
    def test_distance_inverse_of_advance(self, start, hops):
        seq = start
        for _ in range(hops):
            seq = next_seq(seq)
        assert seq_distance(start, seq) == hops


class TestCommandHeader:
    def test_roundtrip(self):
        header = CommandHeader(Opcode.READ, 17, 0x1234_5680)
        assert CommandHeader.unpack(header.pack()) == header

    @given(
        st.sampled_from(list(Opcode)),
        st.integers(0, 31),
        st.integers(0, 2**48 - 1),
    )
    def test_roundtrip_property(self, op, tag, addr):
        header = CommandHeader(op, tag, addr)
        assert CommandHeader.unpack(header.pack()) == header

    def test_oversized_address_rejected(self):
        with pytest.raises(ProtocolError):
            CommandHeader(Opcode.READ, 0, 1 << 48).pack()

    def test_bad_opcode_code_rejected(self):
        raw = bytearray(CommandHeader(Opcode.READ, 0, 0).pack())
        raw[0] = 0xEE
        with pytest.raises(ProtocolError):
            CommandHeader.unpack(bytes(raw))


class TestDownstreamFrame:
    def test_idle_roundtrip(self):
        frame = DownstreamFrame(seq_id=3, ack_seq=7)
        out = DownstreamFrame.unpack(frame.pack())
        assert out.seq_id == 3
        assert out.ack_seq == 7
        assert out.is_idle

    def test_no_ack_roundtrip(self):
        out = DownstreamFrame.unpack(DownstreamFrame(seq_id=0).pack())
        assert out.ack_seq is None

    def test_command_and_chunk_roundtrip(self):
        frame = DownstreamFrame(
            seq_id=9,
            ack_seq=None,
            command=CommandHeader(Opcode.WRITE, 4, 0x8000),
            chunk=DataChunk(4, 0, bytes(range(16))),
        )
        out = DownstreamFrame.unpack(frame.pack())
        assert out.command == CommandHeader(Opcode.WRITE, 4, 0x8000)
        assert out.chunk.data == bytes(range(16))
        assert out.chunk.offset == 0

    def test_oversized_chunk_rejected(self):
        with pytest.raises(ProtocolError):
            DownstreamFrame(0, chunk=DataChunk(0, 0, bytes(DOWN_DATA_CHUNK + 1)))

    def test_corruption_detected(self):
        packed = bytearray(DownstreamFrame(1, 2).pack())
        packed[1] ^= 0x04
        with pytest.raises(ProtocolError):
            DownstreamFrame.unpack(bytes(packed))

    def test_bad_seq_rejected(self):
        with pytest.raises(ProtocolError):
            DownstreamFrame(seq_id=SEQ_MOD)

    @given(
        st.integers(0, SEQ_MOD - 1),
        st.one_of(st.none(), st.integers(0, SEQ_MOD - 1)),
        st.integers(0, 31),
        st.integers(0, 7),
        st.binary(min_size=16, max_size=16),
    )
    def test_chunk_roundtrip_property(self, seq, ack, tag, chunk_no, data):
        frame = DownstreamFrame(seq, ack, chunk=DataChunk(tag, chunk_no * 16, data))
        out = DownstreamFrame.unpack(frame.pack())
        assert (out.seq_id, out.ack_seq) == (seq, ack)
        assert (out.chunk.tag, out.chunk.offset, out.chunk.data) == (tag, chunk_no * 16, data)


class TestUpstreamFrame:
    def test_data_and_done_roundtrip(self):
        frame = UpstreamFrame(
            seq_id=11,
            ack_seq=5,
            dones=[DoneNotice(7)],
            chunk=DataChunk(7, 96, bytes(range(32))),
        )
        out = UpstreamFrame.unpack(frame.pack())
        assert [d.tag for d in out.dones] == [7]
        assert out.chunk.data == bytes(range(32))

    def test_two_dones(self):
        frame = UpstreamFrame(0, dones=[DoneNotice(1), DoneNotice(2)])
        out = UpstreamFrame.unpack(frame.pack())
        assert [d.tag for d in out.dones] == [1, 2]

    def test_three_dones_rejected(self):
        with pytest.raises(ProtocolError):
            UpstreamFrame(0, dones=[DoneNotice(i) for i in range(3)])

    def test_oversized_chunk_rejected(self):
        with pytest.raises(ProtocolError):
            UpstreamFrame(0, chunk=DataChunk(0, 0, bytes(UP_DATA_CHUNK + 1)))

    def test_downstream_frame_not_accepted(self):
        packed = DownstreamFrame(0).pack()
        with pytest.raises(ProtocolError):
            UpstreamFrame.unpack(packed)


class TestTrainingFrame:
    def test_roundtrip(self):
        out = TrainingFrame.unpack(TrainingFrame(0xA503).pack())
        assert out.signature == 0xA503
        assert not out.echoed

    def test_echo_flag(self):
        out = TrainingFrame.unpack(TrainingFrame(7, echoed=True).pack())
        assert out.echoed

    def test_frame_kind_dispatch(self):
        assert frame_kind(TrainingFrame(1).pack()) == TrainingFrame.KIND
        assert frame_kind(DownstreamFrame(0).pack()) == DownstreamFrame.KIND
        assert frame_kind(UpstreamFrame(0).pack()) == UpstreamFrame.KIND
        assert frame_kind(b"") is None
