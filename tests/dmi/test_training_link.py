"""Tests for link training, FRTL measurement, and the serial link model."""

import pytest

from repro.dmi import (
    EndpointConfig,
    LinkErrorModel,
    LinkTrainer,
    SerialLink,
    TrainingConfig,
)
from repro.errors import ConfigurationError, FrtlBudgetError, LinkTrainingError
from repro.sim import Rng, Simulator, dmi_link_clock
from repro.units import ns_to_ps

from .test_channel import make_channel


class TestSerialLink:
    def test_frame_wire_time_at_8ghz(self):
        sim = Simulator()
        link = SerialLink(sim, "l", 14, dmi_link_clock(8.0))
        # 16 UI at 125 ps = 2 ns per frame
        assert link.frame_wire_ps == 2_000

    def test_delivery_latency(self):
        sim = Simulator()
        link = SerialLink(sim, "l", 14, dmi_link_clock(8.0))
        seen = []
        link.connect(lambda raw: seen.append((sim.now_ps, raw)))
        link.send(b"\x01" * 28)
        sim.run()
        assert len(seen) == 1
        t, raw = seen[0]
        assert t == link.frame_wire_ps + link.latency_ps
        assert raw == b"\x01" * 28  # scrambled then descrambled

    def test_cdr_capture_adds_latency(self):
        sim = Simulator()
        fwd = SerialLink(sim, "fwd", 14, dmi_link_clock(8.0), cdr_capture=False)
        cdr = SerialLink(sim, "cdr", 14, dmi_link_clock(8.0), cdr_capture=True)
        assert cdr.latency_ps - fwd.latency_ps == SerialLink.CDR_EXTRA_PS

    def test_back_to_back_frames_serialize(self):
        sim = Simulator()
        link = SerialLink(sim, "l", 14, dmi_link_clock(8.0))
        seen = []
        link.connect(lambda raw: seen.append(sim.now_ps))
        link.send(b"a" * 28)
        link.send(b"b" * 28)
        sim.run()
        assert seen[1] - seen[0] == link.frame_wire_ps

    def test_error_model_flips_bits(self):
        sim = Simulator()
        link = SerialLink(
            sim, "l", 14, dmi_link_clock(8.0),
            error_model=LinkErrorModel(frame_error_rate=1.0),
            rng=Rng(3, "l"),
        )
        seen = []
        link.connect(seen.append)
        link.send(bytes(28))
        sim.run()
        assert seen[0] != bytes(28)
        assert link.frames_corrupted == 1

    def test_unconnected_send_raises(self):
        sim = Simulator()
        link = SerialLink(sim, "l", 14, dmi_link_clock(8.0))
        with pytest.raises(ConfigurationError):
            link.send(b"x")

    def test_double_connect_raises(self):
        sim = Simulator()
        link = SerialLink(sim, "l", 14, dmi_link_clock(8.0))
        link.connect(lambda raw: None)
        with pytest.raises(ConfigurationError):
            link.connect(lambda raw: None)

    def test_zero_lanes_rejected(self):
        with pytest.raises(ConfigurationError):
            SerialLink(Simulator(), "l", 0, dmi_link_clock(8.0))


class TestKeystreamCarry:
    """The link carries each in-flight frame's keystream (lockstep FIFO);
    these pin the behaviours that must survive that optimization."""

    def test_forced_corruption_detected(self):
        # force_drops exercises the scrambled branch: the corrupted wire
        # frame must still descramble to original-plus-bit-flip
        sim = Simulator()
        link = SerialLink(
            sim, "l", 14, dmi_link_clock(8.0),
            error_model=LinkErrorModel(force_drops=1),
        )
        seen = []
        link.connect(seen.append)
        link.send(bytes(28))
        link.send(b"\x07" * 28)
        sim.run()
        assert seen[0] == b"\x01" + bytes(27)  # the injected single-bit flip
        assert seen[1] == b"\x07" * 28         # next frame is clean again
        assert link.frames_corrupted == 1

    def test_resync_with_frames_in_flight_desyncs_receiver(self):
        sim = Simulator()
        link = SerialLink(sim, "l", 14, dmi_link_clock(8.0))
        seen = []
        link.connect(seen.append)
        link.send(b"\x55" * 28)
        link.resync()  # before the frame arrives: receiver loses lockstep
        link.send(b"\xaa" * 28)  # post-resync traffic stays garbled too
        sim.run()
        assert seen[0] != b"\x55" * 28
        assert seen[1] != b"\xaa" * 28
        assert link.frames_corrupted == 2

    def test_clean_resync_restores_lockstep(self):
        sim = Simulator()
        link = SerialLink(sim, "l", 14, dmi_link_clock(8.0))
        seen = []
        link.connect(seen.append)
        link.send(b"\x55" * 28)
        link.resync()  # mid-flight: desync
        sim.run()      # drain the garbled frame
        link.resync()  # nothing in flight: both sides restart together
        link.send(b"\x33" * 28)
        sim.run()
        assert seen[-1] == b"\x33" * 28
        assert link.frames_corrupted == 1


class TestTraining:
    def test_training_measures_positive_frtl(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        trainer = LinkTrainer(sim, TrainingConfig(), Rng(7, "t"))
        proc = trainer.train(channel)
        sim.run_until_signal(proc.done, timeout_ps=10**10)
        result = proc.result
        assert result.frtl_ps > 0
        assert channel.host_endpoint.frtl_ps == result.frtl_ps
        assert channel.buffer_endpoint.frtl_ps == result.frtl_ps

    def test_frtl_reflects_buffer_pipeline_depth(self):
        def measure(overhead_ps):
            sim = Simulator()
            config = EndpointConfig(
                tx_overhead_ps=overhead_ps, rx_overhead_ps=overhead_ps,
                replay_prep_ps=0, freeze_workaround=False,
            )
            channel, _ = make_channel(sim, buffer_config=config)
            trainer = LinkTrainer(sim, TrainingConfig(), Rng(7, "t"))
            proc = trainer.train(channel)
            sim.run_until_signal(proc.done, timeout_ps=10**10)
            return proc.result.frtl_ps

        slow, fast = measure(8_000), measure(1_000)
        # two pipeline crossings deeper -> 2 x 7 ns more FRTL
        assert slow - fast == 14_000

    def test_frtl_budget_violation_fails_training(self):
        sim = Simulator()
        config = EndpointConfig(tx_overhead_ps=500_000, rx_overhead_ps=500_000)
        channel, _ = make_channel(sim, buffer_config=config)
        trainer = LinkTrainer(sim, TrainingConfig(), Rng(7, "t"))
        trainer.train(channel)
        with pytest.raises(FrtlBudgetError):
            sim.run()

    def test_alignment_retries_recorded(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        config = TrainingConfig(phase_lock_probability=0.3)
        trainer = LinkTrainer(sim, config, Rng(21, "t"))
        proc = trainer.train(channel)
        sim.run_until_signal(proc.done, timeout_ps=10**12)
        result = proc.result
        assert len(result.phase_attempts) == 3
        assert result.total_attempts >= 3

    def test_hopeless_alignment_raises(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        config = TrainingConfig(phase_lock_probability=0.0, max_phase_attempts=3)
        trainer = LinkTrainer(sim, config, Rng(2, "t"))
        trainer.train(channel)
        with pytest.raises(LinkTrainingError):
            sim.run()

    def test_training_survives_bit_errors(self):
        sim = Simulator()
        channel, _ = make_channel(sim, error_rate=0.10, seed=17)
        trainer = LinkTrainer(sim, TrainingConfig(), Rng(7, "t"))
        proc = trainer.train(channel)
        sim.run_until_signal(proc.done, timeout_ps=10**12)
        assert proc.result.frtl_ps > 0

    def test_training_duration_positive(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        trainer = LinkTrainer(sim, TrainingConfig(), Rng(7, "t"))
        proc = trainer.train(channel)
        sim.run_until_signal(proc.done, timeout_ps=10**12)
        assert proc.result.duration_ps >= ns_to_ps(6_000)  # 3 phases x 2 us min
