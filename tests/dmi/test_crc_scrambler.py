"""Tests for CRC-16 and lane scrambling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dmi.crc import append_crc, check_crc, crc16, crc16_bitwise
from repro.dmi.scrambler import BundleScrambler, LaneScrambler, LfsrStream


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1
        assert crc16(b"123456789") == 0x29B1

    def test_empty_input(self):
        assert crc16(b"") == 0xFFFF

    @given(st.binary(min_size=0, max_size=200))
    def test_table_matches_bitwise(self, data):
        assert crc16(data) == crc16_bitwise(data)

    @given(st.binary(min_size=1, max_size=100))
    def test_append_check_roundtrip(self, data):
        assert check_crc(append_crc(data))

    @given(st.binary(min_size=1, max_size=100), st.integers(min_value=0))
    def test_single_bit_flip_always_detected(self, data, bit_seed):
        framed = bytearray(append_crc(data))
        bit = bit_seed % (len(framed) * 8)
        framed[bit // 8] ^= 1 << (bit % 8)
        assert not check_crc(bytes(framed))

    def test_too_short_rejected(self):
        assert not check_crc(b"")
        assert not check_crc(b"\x01")


class TestLfsr:
    def test_stream_is_deterministic(self):
        a, b = LfsrStream(3), LfsrStream(3)
        assert [a.next_byte() for _ in range(32)] == [b.next_byte() for _ in range(32)]

    def test_lanes_have_different_streams(self):
        a, b = LfsrStream(0), LfsrStream(1)
        assert [a.next_byte() for _ in range(16)] != [b.next_byte() for _ in range(16)]

    def test_stream_has_transitions(self):
        # the point of scrambling: the keystream is never stuck at 0 or 255
        stream = LfsrStream(0)
        produced = {stream.next_byte() for _ in range(256)}
        assert len(produced) > 32


class TestLaneScrambler:
    @given(st.binary(min_size=0, max_size=300))
    def test_scramble_descramble_roundtrip(self, data):
        tx, rx = LaneScrambler(2), LaneScrambler(2)
        assert rx.process(tx.process(data)) == data

    def test_multiple_frames_stay_synchronized(self):
        tx, rx = LaneScrambler(0), LaneScrambler(0)
        for i in range(20):
            frame = bytes([i] * (10 + i))
            assert rx.process(tx.process(frame)) == frame

    def test_resync_restores_alignment(self):
        tx, rx = LaneScrambler(0), LaneScrambler(0)
        tx.process(b"desync me")  # tx advances, rx does not
        tx.resync()
        rx.resync()
        assert rx.process(tx.process(b"hello")) == b"hello"

    def test_scrambled_differs_from_plaintext(self):
        tx = LaneScrambler(0)
        data = bytes(64)
        assert tx.process(data) != data


class TestBundleScrambler:
    @given(st.binary(min_size=0, max_size=200))
    def test_bundle_roundtrip(self, data):
        tx, rx = BundleScrambler(14), BundleScrambler(14)
        assert rx.process(tx.process(data)) == data

    def test_bit_error_stays_single_bit(self):
        # additive scrambling must not multiply errors
        tx, rx = BundleScrambler(14), BundleScrambler(14)
        data = bytes(range(56))
        wire = bytearray(tx.process(data))
        wire[10] ^= 0x01
        received = rx.process(bytes(wire))
        diff = [i for i in range(len(data)) if received[i] != data[i]]
        assert diff == [10]
        assert received[10] ^ data[10] == 0x01

    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError):
            BundleScrambler(0)
