"""White-box tests for FrameEndpoint internals: timers, idle ACKs, repack."""

import pytest

from repro.dmi import Command, DownstreamFrame, Opcode, UpstreamFrame
from repro.sim import Simulator
from repro.units import CACHE_LINE_BYTES

from .test_channel import make_channel, train


def quiet_channel(sim):
    channel, store = make_channel(sim)
    train(sim, channel)
    return channel


class TestAckTimeoutMath:
    def test_timeout_includes_frtl_margin_and_burst(self):
        sim = Simulator()
        channel = quiet_channel(sim)
        ep = channel.host_endpoint
        base = ep.frtl_ps + ep.config.ack_timeout_margin_ps
        assert ep._ack_timeout_ps == base  # nothing outstanding
        # enqueue a write: 8 frames outstanding extend the timeout
        channel.host.issue(Command(Opcode.WRITE, 0, 0, bytes(128)))
        sim.run(until_ps=sim.now_ps + 5_000)
        outstanding = ep._replay.outstanding
        assert outstanding > 0
        assert ep._ack_timeout_ps == base + outstanding * ep.tx_link.frame_wire_ps

    def test_no_replays_or_ack_checks_leak_after_quiesce(self):
        sim = Simulator()
        channel = quiet_channel(sim)
        sim.run_until_signal(channel.host.issue(Command(Opcode.READ, 0, 0)))
        sim.run()
        assert channel.host_endpoint._replay.outstanding == 0
        assert channel.buffer_endpoint._replay.outstanding == 0
        assert sim.pending_events == 0  # the system fully quiesces


class TestIdleAckBehaviour:
    def test_idle_ack_reuses_acknowledged_seq(self):
        sim = Simulator()
        channel = quiet_channel(sim)
        sim.run_until_signal(channel.host.issue(Command(Opcode.READ, 0, 1)))
        sim.run()
        buffer_ep = channel.buffer_endpoint
        accepted_before = buffer_ep.frames_accepted
        dups_before = buffer_ep.duplicates_seen
        # force the host to send a pure idle ACK now
        channel.host_endpoint._note_ack_owed()
        sim.run()
        # the idle frame must be classified as a duplicate, never as new
        assert buffer_ep.frames_accepted == accepted_before
        assert buffer_ep.duplicates_seen >= dups_before

    def test_idle_acks_rate_limited(self):
        sim = Simulator()
        channel = quiet_channel(sim)
        sim.run_until_signal(channel.host.issue(Command(Opcode.READ, 0, 1)))
        sim.run()
        ep = channel.host_endpoint
        sent_before = ep.tx_link.frames_sent
        for _ in range(10):
            ep._note_ack_owed()  # storm of ack-owed notes coalesces
        sim.run()
        assert ep.tx_link.frames_sent - sent_before <= 2


class TestRepack:
    def test_repack_refreshes_ack_field(self):
        sim = Simulator()
        channel = quiet_channel(sim)
        ep = channel.host_endpoint
        frame = DownstreamFrame(seq_id=5, ack_seq=None)
        ep._last_accepted = 9
        packed = ep._repack(frame)
        out = DownstreamFrame.unpack(packed)
        assert out.ack_seq == 9
        ep._last_accepted = 23
        out = DownstreamFrame.unpack(ep._repack(frame))
        assert out.ack_seq == 23

    def test_replayed_frames_carry_current_ack(self):
        sim = Simulator()
        channel = quiet_channel(sim)
        ep = channel.host_endpoint
        # hold a frame manually, advance last_accepted, then replay
        frame = DownstreamFrame(seq_id=0, ack_seq=None)
        ep._replay.hold(0, frame, sim.now_ps)
        ep._last_accepted = 42
        sent = []
        original_send = ep.tx_link.send
        ep.tx_link.send = lambda raw: (sent.append(raw), original_send(raw))[1]
        ep._do_replay()
        assert sent, "replay sent nothing"
        out = DownstreamFrame.unpack(sent[0])
        assert out.ack_seq == 42


class TestEndpointStatsExposure:
    def test_frames_accepted_counts_only_payload_frames(self):
        sim = Simulator()
        channel = quiet_channel(sim)
        before = channel.buffer_endpoint.frames_accepted
        sim.run_until_signal(
            channel.host.issue(Command(Opcode.WRITE, 0, 2, bytes(128)))
        )
        sim.run()
        # a 128B write is exactly 8 downstream frames
        assert channel.buffer_endpoint.frames_accepted - before == 8

    def test_read_response_is_four_data_frames_plus_done(self):
        sim = Simulator()
        channel = quiet_channel(sim)
        before = channel.host_endpoint.frames_accepted
        sim.run_until_signal(channel.host.issue(Command(Opcode.READ, 0, 3)))
        sim.run()
        # 4 chunks, done riding in the final one
        assert channel.host_endpoint.frames_accepted - before == 4
