"""Integration tests for the DMI channel: commands, errors, replay, freeze."""

import pytest

from repro.dmi import (
    Command,
    DmiChannel,
    EndpointConfig,
    LinkErrorModel,
    LinkTrainer,
    Opcode,
    Response,
    SerialLink,
    TrainingConfig,
)
from repro.errors import ProtocolError
from repro.sim import Rng, Simulator, dmi_link_clock


def make_channel(
    sim,
    error_rate=0.0,
    buffer_config=None,
    service_delay_ps=50_000,
    seed=0,
):
    """A channel against a simple in-memory backing store."""
    clock = dmi_link_clock(8.0)
    down = SerialLink(
        sim, "down", 14, clock, cdr_capture=True,
        error_model=LinkErrorModel(frame_error_rate=error_rate),
        rng=Rng(1000 + seed, "down"),
    )
    up = SerialLink(
        sim, "up", 21, clock,
        error_model=LinkErrorModel(frame_error_rate=error_rate),
        rng=Rng(2000 + seed, "up"),
    )
    store = {}

    def handler(cmd, respond):
        if cmd.opcode in (Opcode.WRITE, Opcode.PARTIAL_WRITE):
            if cmd.opcode is Opcode.PARTIAL_WRITE:
                old = bytearray(store.get(cmd.address, bytes(128)))
                for i, enabled in enumerate(cmd.byte_enable):
                    if enabled:
                        old[i] = cmd.data[i]
                store[cmd.address] = bytes(old)
            else:
                store[cmd.address] = cmd.data
            sim.call_after(service_delay_ps, respond, Response(cmd.tag, cmd.opcode))
        elif cmd.opcode is Opcode.READ:
            data = store.get(cmd.address, bytes(128))
            sim.call_after(service_delay_ps, respond, Response(cmd.tag, cmd.opcode, data))
        elif cmd.opcode is Opcode.FLUSH:
            sim.call_after(service_delay_ps, respond, Response(cmd.tag, cmd.opcode))
        else:
            raise AssertionError(f"unhandled {cmd.opcode}")

    buffer_config = buffer_config or EndpointConfig(
        tx_overhead_ps=2_000, rx_overhead_ps=2_000,
        replay_prep_ps=30_000, freeze_workaround=True,
        max_replay_start_ps=10_000,
    )
    channel = DmiChannel(sim, down, up, EndpointConfig(), buffer_config, handler)
    return channel, store


def train(sim, channel, seed=7):
    trainer = LinkTrainer(sim, TrainingConfig(), Rng(seed, "train"))
    proc = trainer.train(channel)
    sim.run_until_signal(proc.done, timeout_ps=10**10)
    return proc.result


class TestCleanChannel:
    def test_write_then_read_roundtrip(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        payload = bytes(range(128))
        sim.run_until_signal(channel.host.issue(Command(Opcode.WRITE, 0x1000, 0, payload)))
        resp = sim.run_until_signal(channel.host.issue(Command(Opcode.READ, 0x1000, 1)))
        assert resp.data == payload

    def test_read_of_unwritten_line_returns_zeros(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        resp = sim.run_until_signal(channel.host.issue(Command(Opcode.READ, 0x8000, 0)))
        assert resp.data == bytes(128)

    def test_partial_write_merges_bytes(self):
        sim = Simulator()
        channel, store = make_channel(sim)
        train(sim, channel)
        base = bytes([0xAA] * 128)
        sim.run_until_signal(channel.host.issue(Command(Opcode.WRITE, 0, 0, base)))
        mask = bytes([1 if i < 8 else 0 for i in range(128)])
        new = bytes([0x55] * 128)
        sim.run_until_signal(
            channel.host.issue(Command(Opcode.PARTIAL_WRITE, 0, 1, new, mask))
        )
        resp = sim.run_until_signal(channel.host.issue(Command(Opcode.READ, 0, 2)))
        assert resp.data[:8] == bytes([0x55] * 8)
        assert resp.data[8:] == bytes([0xAA] * 120)

    def test_flush_completes_without_data(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        resp = sim.run_until_signal(channel.host.issue(Command(Opcode.FLUSH, 0, 5)))
        assert resp.opcode is Opcode.FLUSH
        assert resp.data is None

    def test_many_tags_in_flight(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        signals = [
            channel.host.issue(Command(Opcode.WRITE, 128 * t, t, bytes([t] * 128)))
            for t in range(16)
        ]
        for sig in signals:
            sim.run_until_signal(sig)
        assert channel.host.commands_completed == 16

    def test_duplicate_tag_rejected(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        channel.host.issue(Command(Opcode.READ, 0, 3))
        with pytest.raises(ProtocolError):
            channel.host.issue(Command(Opcode.READ, 128, 3))

    def test_no_replays_on_clean_link(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        for t in range(8):
            sim.run_until_signal(
                channel.host.issue(Command(Opcode.WRITE, 128 * t, t, bytes(128)))
            )
        assert channel.host_endpoint.replays_triggered == 0
        assert channel.buffer_endpoint.replays_triggered == 0


class TestErrorRecovery:
    def test_recovers_under_bit_errors(self):
        sim = Simulator()
        channel, _ = make_channel(sim, error_rate=0.05, seed=3)
        train(sim, channel)
        for i in range(30):
            payload = bytes((i + j) % 256 for j in range(128))
            sim.run_until_signal(
                channel.host.issue(Command(Opcode.WRITE, 128 * i, i % 32, payload)),
                timeout_ps=10**10,
            )
            resp = sim.run_until_signal(
                channel.host.issue(Command(Opcode.READ, 128 * i, (i + 1) % 32)),
                timeout_ps=10**10,
            )
            assert resp.data == payload
        assert channel.operational
        total_drops = channel.host_endpoint.crc_drops + channel.buffer_endpoint.crc_drops
        assert total_drops > 0, "error injection should have corrupted frames"

    def test_replays_were_exercised(self):
        sim = Simulator()
        channel, _ = make_channel(sim, error_rate=0.08, seed=5)
        train(sim, channel)
        for i in range(40):
            sim.run_until_signal(
                channel.host.issue(Command(Opcode.WRITE, 128 * i, i % 32, bytes(128))),
                timeout_ps=10**10,
            )
        replays = (
            channel.host_endpoint.replays_triggered
            + channel.buffer_endpoint.replays_triggered
        )
        assert replays > 0

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            channel, _ = make_channel(sim, error_rate=0.05, seed=seed)
            train(sim, channel)
            for i in range(10):
                sim.run_until_signal(
                    channel.host.issue(Command(Opcode.WRITE, 128 * i, i, bytes(128))),
                    timeout_ps=10**10,
                )
            return (sim.now_ps, channel.host_endpoint.replays_triggered)

        assert run(9) == run(9)


class TestFreezeWorkaround:
    def test_slow_replay_without_freeze_fails_channel(self):
        sim = Simulator()
        config = EndpointConfig(
            tx_overhead_ps=2_000, rx_overhead_ps=2_000,
            replay_prep_ps=30_000, freeze_workaround=False,
            max_replay_start_ps=10_000,
        )
        channel, _ = make_channel(sim, error_rate=0.08, buffer_config=config, seed=11)
        train(sim, channel)
        # run traffic until the buffer needs a replay; the channel must fail
        for i in range(200):
            sig = channel.host.issue(Command(Opcode.READ, 128 * i, i % 32))
            try:
                sim.run_until_signal(sig, timeout_ps=10**10)
            except Exception:
                break
            if not channel.operational:
                break
        assert not channel.operational
        assert "freeze workaround is disabled" in str(channel.failure)

    def test_freeze_workaround_sends_duplicates(self):
        sim = Simulator()
        channel, _ = make_channel(sim, error_rate=0.08, seed=11)
        train(sim, channel)
        for i in range(60):
            sim.run_until_signal(
                channel.host.issue(Command(Opcode.READ, 128 * i, i % 32)),
                timeout_ps=10**10,
            )
        assert channel.operational
        if channel.buffer_endpoint.replays_triggered:
            assert channel.buffer_endpoint.freeze_frames_sent > 0

    def test_fast_replay_needs_no_freeze(self):
        sim = Simulator()
        config = EndpointConfig(
            tx_overhead_ps=500, rx_overhead_ps=500,
            replay_prep_ps=2_000, freeze_workaround=False,
            max_replay_start_ps=10_000,
        )
        channel, _ = make_channel(sim, error_rate=0.05, buffer_config=config, seed=13)
        train(sim, channel)
        for i in range(30):
            sim.run_until_signal(
                channel.host.issue(Command(Opcode.READ, 128 * i, i % 32)),
                timeout_ps=10**10,
            )
        assert channel.operational
