"""Golden-keystream tests pinning the table-driven scrambler rewrite.

The hex vectors below were captured from the historical bit-serial
implementation (``LfsrStream.next_byte`` looping ``next_bit``) before the
table-driven fast path existed.  They pin three independent layers:

* the per-lane LFSR keystream itself (seed mixing included);
* the bundle striping (round-robin across lanes, restarting at lane 0
  each frame) for the lane counts the DMI actually uses (14 down, 21 up)
  plus the degenerate 1- and 2-lane configurations;
* the lazy-skip path, which must leave lane state byte-identical to
  generating the keystream.

Any change to these bytes changes every wire byte in the simulator, so a
failure here means artifact reproducibility is broken.
"""

import random

from repro.dmi.scrambler import BundleScrambler, LaneScrambler, LfsrStream

#: first 32 keystream bytes per lane, from the bit-serial implementation
LANE_GOLDEN = {
    0: "46eb01d5a1aabc4b13afab18ba7b80df114cf53682ea97cc9d0d56a9430abdf7",
    1: "d1d3be229729568959276396ba14d16e674e87749adce2d359096ac839"
       "56adbb",
    2: "370ec7e3190a732d93add2596a1cba37fed3bd07bdbe51e9d6f4ee91f7056874",
    13: "d646ccd517331a5f50a2c06783f63b27d9ac319cf31c654fe369e8fabbb971a9",
    20: "561961e451ead77ec31b37ef88ddeb1934ffb836c803aeeb92f710062f5ef848",
}

#: BundleScrambler.process over three all-zero frames of lengths 56/33/7
#: (scrambling zeros exposes the striped keystream), per lane count
BUNDLE_GOLDEN = {
    1: [
        "46eb01d5a1aabc4b13afab18ba7b80df114cf53682ea97cc9d0d56a9430abdf7"
        "2fe4e5fc77a22a981e71d31b59a77ed0f009c26ec1098f49",
        "176251c5ba48c04d8816ef5aae1d2ec48c1d48e2d8a30024411cc8de9f69f626a9",
        "f907b3bf7269b3",
    ],
    2: [
        "46d1ebd301bed522a197aa29bc564b891359af27ab631896baba7b1480d1df6e"
        "11674c4ef5873674829aeadc97e2ccd39d590d09566aa9c8",
        "43390a56bdadf7bb2feae41ce5d3fc6677b1a2b02ac298eb1e2d7152d38c1b4659",
        "a7e07e36d007f0",
    ],
    14: [
        "46d137fec4ec1a4f87951306e8d6ebd30e7de0c7a05aee2cfdb7ce4601bec719"
        "7be70d6d3cc3f26d87ccd522e3eb8324cab17edc2dd1dad5",
        "a19719b9deecad561ee407682717aa290a889b2dbbfb3206e9362233bc56732261",
        "4b892dc17ffaf3",
    ],
    21: [
        "46d137fec4ec1a4f87951306e8d6f8179cab959656ebd30e7de0c7a05aee2cfd"
        "b7ce46ca741035f1fb1901bec7197be70d6d3cc3f26d87cc",
        "d522e3eb8324cab17edc2dd1dad52e4b8640f91e61a19719b9deecad561ee40768",
        "aa290a889b2dbb",
    ],
}


class TestLaneGolden:
    def test_bit_serial_reference_matches_golden(self):
        for lane, expect in LANE_GOLDEN.items():
            stream = LfsrStream(lane)
            got = bytes(stream.next_byte() for _ in range(32))
            assert got.hex() == expect, f"lane {lane}"

    def test_table_blocks_match_golden(self):
        for lane, expect in LANE_GOLDEN.items():
            assert LfsrStream(lane).next_block(32).hex() == expect, f"lane {lane}"

    def test_table_blocks_match_bit_serial_any_size(self):
        # odd/even/large block sizes all continue the same stream
        for size in (1, 2, 3, 7, 8, 31, 64, 257):
            a, b = LfsrStream(5), LfsrStream(5)
            got = a.next_block(size)
            ref = bytes(b.next_byte() for _ in range(size))
            assert got == ref, f"size {size}"

    def test_skip_bytes_matches_generation(self):
        for skip in (1, 2, 5, 100, 1023):
            a, b = LfsrStream(3), LfsrStream(3)
            a.skip_bytes(skip)
            b.next_block(skip)
            assert a.state == b.state, f"skip {skip}"


class TestBundleGolden:
    def test_striped_keystream_matches_golden(self):
        for lanes, frames in BUNDLE_GOLDEN.items():
            bundle = BundleScrambler(lanes)
            for expect in frames:
                got = bundle.process(bytes(len(expect) // 2))
                assert got.hex() == expect, f"lanes {lanes}"

    def test_keystream_frame_equals_scrambled_zeros(self):
        for lanes, frames in BUNDLE_GOLDEN.items():
            bundle = BundleScrambler(lanes)
            for expect in frames:
                got = bundle.keystream_frame(len(expect) // 2)
                assert got.hex() == expect, f"lanes {lanes}"

    def test_lane_scrambler_consumption_matches_bundle(self):
        # the bundle's inlined striping must consume per-lane keystream
        # exactly like the public LaneScrambler.keystream API
        for lanes in (2, 14, 21):
            bundle = BundleScrambler(lanes)
            reference = [LaneScrambler(i) for i in range(lanes)]
            for n in (7, 33, 56, 8, 25, 43):
                striped = bundle.keystream_frame(n)
                base, rem = divmod(n, lanes)
                for i, lane in enumerate(reference):
                    count = base + 1 if i < rem else base
                    assert striped[i::lanes] == lane.keystream(count)


class TestLazySkip:
    def test_skip_then_generate_matches_generate_only(self):
        rng = random.Random(11)
        for lanes in (1, 2, 3, 14, 21):
            generated = BundleScrambler(lanes)
            skipped = BundleScrambler(lanes)
            for _ in range(rng.randint(1, 30)):
                n = rng.randint(1, 60)
                generated.keystream_frame(n)
                skipped.skip_frame(n)
            for probe in (rng.randint(1, 60), 1, 43):
                assert skipped.keystream_frame(probe) == generated.keystream_frame(
                    probe
                ), f"lanes {lanes}"

    def test_resync_discards_pending_skips(self):
        bundle = BundleScrambler(14)
        bundle.skip_frame(33)
        bundle.resync()
        fresh = BundleScrambler(14)
        assert bundle.keystream_frame(40) == fresh.keystream_frame(40)
