"""Tests for the tag window and the replay buffer."""

import pytest

from repro.dmi import NUM_TAGS, ReplayBuffer, TagPool
from repro.errors import ProtocolError, ReplayError, TagExhaustedError
from repro.sim import Process, Simulator


class TestTagPool:
    def test_default_window_is_32(self):
        assert NUM_TAGS == 32
        assert TagPool(Simulator()).free_count == 32

    def test_acquire_release_cycle(self):
        pool = TagPool(Simulator())
        tag = pool.try_acquire()
        assert tag is not None
        assert pool.in_flight_count == 1
        pool.release(tag)
        assert pool.free_count == 32

    def test_exhaustion_returns_none(self):
        pool = TagPool(Simulator())
        for _ in range(32):
            assert pool.try_acquire() is not None
        assert pool.try_acquire() is None

    def test_acquire_or_raise(self):
        pool = TagPool(Simulator(), num_tags=1)
        pool.acquire_or_raise()
        with pytest.raises(TagExhaustedError):
            pool.acquire_or_raise()

    def test_release_unheld_tag_raises(self):
        with pytest.raises(ProtocolError):
            TagPool(Simulator()).release(5)

    def test_release_reports_hold_time(self):
        sim = Simulator()
        pool = TagPool(sim)
        tag = pool.try_acquire()
        sim.call_after(5_000, lambda: None)
        sim.run()
        assert pool.release(tag) == 5_000

    def test_process_blocks_until_tag_free(self):
        sim = Simulator()
        pool = TagPool(sim, num_tags=1)
        held = pool.try_acquire()
        got = []

        def waiter():
            tag = yield from pool.acquire()
            got.append((tag, sim.now_ps))

        Process(sim, waiter())
        sim.call_after(7_000, pool.release, held)
        sim.run()
        assert got == [(held, 7_000)]
        assert pool.stall_events == 1
        assert pool.stall_ps == 7_000

    def test_stall_accounting_zero_when_free(self):
        sim = Simulator()
        pool = TagPool(sim)
        done = []

        def worker():
            tag = yield from pool.acquire()
            done.append(tag)

        Process(sim, worker())
        sim.run()
        assert done and pool.stall_events == 0


class TestReplayBuffer:
    def test_hold_and_cumulative_ack(self):
        buf = ReplayBuffer(8)
        for seq in range(5):
            buf.hold(seq, bytes([seq]), 0)
        assert buf.ack(2) == 3
        assert buf.outstanding == 2

    def test_ack_of_retired_frame_is_noop(self):
        buf = ReplayBuffer(8)
        buf.hold(0, b"a", 0)
        buf.ack(0)
        assert buf.ack(0) == 0

    def test_ack_with_wrap(self):
        buf = ReplayBuffer(16)
        for seq in [62, 63, 0, 1]:
            buf.hold(seq, b"x", 0)
        assert buf.ack(0) == 3
        assert buf.outstanding == 1

    def test_overflow_raises(self):
        buf = ReplayBuffer(2)
        buf.hold(0, b"a", 0)
        buf.hold(1, b"b", 0)
        with pytest.raises(ReplayError):
            buf.hold(2, b"c", 0)

    def test_duplicate_seq_rejected(self):
        buf = ReplayBuffer(4)
        buf.hold(0, b"a", 0)
        with pytest.raises(ProtocolError):
            buf.hold(0, b"a", 0)

    def test_frames_for_replay_in_order(self):
        buf = ReplayBuffer(8)
        for seq in (3, 4, 5):
            buf.hold(seq, bytes([seq]), 100)
        assert buf.frames_for_replay() == [(3, b"\x03"), (4, b"\x04"), (5, b"\x05")]

    def test_mark_resent_updates_timestamps(self):
        buf = ReplayBuffer(8)
        buf.hold(0, b"a", 100)
        buf.mark_resent(900)
        assert buf.oldest_unacked() == (0, b"a", 900)

    def test_oldest_unacked_empty(self):
        assert ReplayBuffer(4).oldest_unacked() is None

    def test_invalid_depth_rejected(self):
        with pytest.raises(ProtocolError):
            ReplayBuffer(0)
        with pytest.raises(ProtocolError):
            ReplayBuffer(64)

    def test_span(self):
        buf = ReplayBuffer(8)
        buf.hold(62, b"x", 0)
        buf.hold(63, b"x", 0)
        buf.hold(0, b"x", 0)
        assert buf.span() == 3
