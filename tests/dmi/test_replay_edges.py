"""Replay edge cases: limit exhaustion kills the channel, a full replay
buffer backpressures transmit without losing frames, and the endpoint
error counters surface as ``dmi.*`` metrics."""

import pytest

from repro.dmi import (
    Command,
    DmiChannel,
    EndpointConfig,
    LinkErrorModel,
    LinkTrainer,
    Opcode,
    Response,
    SerialLink,
    TrainingConfig,
)
from repro.errors import ProtocolError, ReplayError
from repro.sim import Rng, Simulator, dmi_link_clock
from repro.telemetry import TraceSession


def make_channel(sim, host_config=None, buffer_config=None, seed=0):
    """A channel over clean links against an in-memory backing store."""
    clock = dmi_link_clock(8.0)
    down = SerialLink(
        sim, "down", 14, clock, cdr_capture=True,
        error_model=LinkErrorModel(), rng=Rng(1000 + seed, "down"),
    )
    up = SerialLink(
        sim, "up", 21, clock,
        error_model=LinkErrorModel(), rng=Rng(2000 + seed, "up"),
    )
    store = {}

    def handler(cmd, respond):
        if cmd.opcode is Opcode.WRITE:
            store[cmd.address] = cmd.data
            sim.call_after(50_000, respond, Response(cmd.tag, cmd.opcode))
        elif cmd.opcode is Opcode.READ:
            data = store.get(cmd.address, bytes(128))
            sim.call_after(50_000, respond, Response(cmd.tag, cmd.opcode, data))

    channel = DmiChannel(
        sim, down, up,
        host_config or EndpointConfig(),
        buffer_config or EndpointConfig(
            tx_overhead_ps=2_000, rx_overhead_ps=2_000,
            replay_prep_ps=30_000, freeze_workaround=True,
            max_replay_start_ps=10_000,
        ),
        handler,
    )
    return channel, store


def train(sim, channel, seed=7):
    trainer = LinkTrainer(sim, TrainingConfig(), Rng(seed, "train"))
    proc = trainer.train(channel)
    sim.run_until_signal(proc.done, timeout_ps=10**10)
    return proc.result


class TestReplayLimitExhaustion:
    def run_to_failure(self, sim, channel):
        channel.down_link.error_model.frame_error_rate = 1.0
        channel.host.issue(Command(Opcode.WRITE, 0, 0, bytes(128)))
        sim.run()

    def test_exhaustion_fails_the_channel(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        self.run_to_failure(sim, channel)
        assert not channel.operational
        host = channel.host_endpoint
        assert host.failed
        assert isinstance(host.failure, ReplayError)
        # the final trigger crosses the limit and fails the channel
        assert host.replays_triggered == host.config.replay_limit + 1

    def test_send_after_failure_raises_replay_error(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        self.run_to_failure(sim, channel)
        with pytest.raises(ReplayError):
            channel.host.issue(Command(Opcode.WRITE, 128, 1, bytes(128)))

    def test_replay_error_is_a_protocol_error(self):
        # callers that predate fault injection catch ProtocolError
        assert issubclass(ReplayError, ProtocolError)

    def test_reset_clears_the_failure(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        train(sim, channel)
        self.run_to_failure(sim, channel)
        channel.down_link.error_model.frame_error_rate = 0.0
        channel.reset()
        train(sim, channel)
        assert channel.operational
        assert channel.host_endpoint.failure is None
        sim.run_until_signal(
            channel.host.issue(Command(Opcode.WRITE, 0, 0, bytes([1] * 128))),
            timeout_ps=10**10,
        )


class TestReplayBufferBackpressure:
    def patient(self):
        # a tiny replay window and a replay limit far beyond what the
        # error window can burn through: the endpoint stalls, never fails
        return EndpointConfig(replay_depth=4, replay_limit=10_000)

    def test_full_buffer_stalls_tx_without_frame_loss(self):
        sim = Simulator()
        channel, store = make_channel(
            sim,
            host_config=self.patient(),
            buffer_config=EndpointConfig(
                tx_overhead_ps=2_000, rx_overhead_ps=2_000,
                replay_prep_ps=30_000, freeze_workaround=True,
                replay_limit=10_000,
            ),
        )
        train(sim, channel)
        # kill the up link: no ACK ever reaches the host
        channel.up_link.error_model.frame_error_rate = 1.0
        payloads = {128 * i: bytes([i + 1] * 128) for i in range(8)}
        signals = [
            channel.host.issue(Command(Opcode.WRITE, addr, tag, data))
            for tag, (addr, data) in enumerate(payloads.items())
        ]
        sim.run(until_ps=sim.now_ps + 2_000_000)
        host = channel.host_endpoint
        assert channel.operational          # stalled, not dead
        assert host._replay.is_full         # window full of unacked frames
        assert host._tx_queue               # the rest backpressured
        assert not any(s.triggered for s in signals)

        # heal the link: everything drains, no write was lost
        channel.up_link.error_model.frame_error_rate = 0.0
        for signal in signals:
            sim.run_until_signal(signal, timeout_ps=10**10)
        assert store == payloads
        assert host.replays_triggered > 0   # the stall went through replay


class TestDmiMetricCounters:
    def test_error_counters_surface_in_registry(self):
        with TraceSession("dmi") as session:
            sim = Simulator()
            channel, _ = make_channel(sim)
            train(sim, channel)
            channel.down_link.error_model.frame_error_rate = 1.0
            channel.host.issue(Command(Opcode.WRITE, 0, 0, bytes(128)))
            sim.run()
        snapshot = session.registry.snapshot()
        assert snapshot["dmi.crc_drops"] > 0
        assert snapshot["dmi.replays"] == channel.host_endpoint.replays_triggered
        assert snapshot["dmi.ack_timeouts"] > 0
        assert snapshot["dmi.channel_failed"] == 1

    def test_clean_run_reports_no_error_counters(self):
        with TraceSession("dmi") as session:
            sim = Simulator()
            channel, _ = make_channel(sim)
            train(sim, channel)
            sim.run_until_signal(
                channel.host.issue(Command(Opcode.WRITE, 0, 0, bytes(128))),
                timeout_ps=10**10,
            )
        snapshot = session.registry.snapshot()
        assert snapshot["dmi.commands_completed"] == 1
        for counter in ("dmi.crc_drops", "dmi.replays", "dmi.ack_timeouts",
                        "dmi.channel_failed", "dmi.seq_drops"):
            assert snapshot.get(counter, 0) == 0
