"""Property-based fuzzing of the DMI channel.

The protocol's job is simple to state: any sequence of commands completes
correctly — right data, every tag retired — no matter how the link
corrupts frames.  Hypothesis generates operation sequences and error rates
and checks exactly that against a reference dict.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dmi import Command, Opcode
from repro.sim import Simulator
from repro.units import CACHE_LINE_BYTES

from .test_channel import make_channel, train

# an op is (kind, line_number, fill_byte)
op_strategy = st.tuples(
    st.sampled_from(["read", "write", "partial"]),
    st.integers(0, 63),
    st.integers(0, 255),
)


class TestChannelFuzz:
    @given(
        ops=st.lists(op_strategy, min_size=1, max_size=24),
        error_rate=st.sampled_from([0.0, 0.02, 0.06]),
        seed=st.integers(0, 2**16),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_sequence_completes_correctly(self, ops, error_rate, seed):
        sim = Simulator()
        channel, _ = make_channel(sim, error_rate=error_rate, seed=seed)
        train(sim, channel)

        reference = {}
        next_tag = 0
        for kind, line, fill in ops:
            addr = line * CACHE_LINE_BYTES
            tag = next_tag % 32
            next_tag += 1
            if kind == "write":
                data = bytes([fill]) * CACHE_LINE_BYTES
                reference[addr] = data
                sig = channel.host.issue(Command(Opcode.WRITE, addr, tag, data))
                sim.run_until_signal(sig, timeout_ps=10**12)
            elif kind == "partial":
                data = bytes([fill]) * CACHE_LINE_BYTES
                mask = bytes([1 if i % 2 == 0 else 0 for i in range(CACHE_LINE_BYTES)])
                old = bytearray(reference.get(addr, bytes(CACHE_LINE_BYTES)))
                for i in range(0, CACHE_LINE_BYTES, 2):
                    old[i] = fill
                reference[addr] = bytes(old)
                sig = channel.host.issue(
                    Command(Opcode.PARTIAL_WRITE, addr, tag, data, mask)
                )
                sim.run_until_signal(sig, timeout_ps=10**12)
            else:
                sig = channel.host.issue(Command(Opcode.READ, addr, tag))
                resp = sim.run_until_signal(sig, timeout_ps=10**12)
                expected = reference.get(addr, bytes(CACHE_LINE_BYTES))
                assert resp.data == expected, (
                    f"read {addr:#x} returned wrong data under "
                    f"error_rate={error_rate}"
                )

        assert channel.operational
        assert channel.host.in_flight == 0
        assert channel.host.commands_issued == channel.host.commands_completed

    def test_stale_ack_wrap_regression(self):
        """Regression: replayed frames must refresh their piggybacked ACK.

        Seed 11230 once drove this exact scenario into a protocol
        violation: a replayed upstream frame carried the ACK value it was
        originally packed with; after the 6-bit sequence space wrapped,
        that stale value aliased into the host's live transmit window and
        retired eight write frames the buffer had never received — the
        write's chunks vanished without replay and assembly wedged.
        """
        sim = Simulator()
        channel, _ = make_channel(sim, error_rate=0.02, seed=11230)
        train(sim, channel)
        for wave in range(4):
            signals = [
                channel.host.issue(
                    Command(
                        Opcode.WRITE,
                        (wave * 32 + tag) * CACHE_LINE_BYTES,
                        tag,
                        bytes([tag]) * CACHE_LINE_BYTES,
                    )
                )
                for tag in range(32)
            ]
            for sig in signals:
                sim.run_until_signal(sig, timeout_ps=10**12)
        assert channel.operational
        assert channel.host.commands_completed == 128

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_pipelined_tag_storm(self, seed):
        """All 32 tags in flight simultaneously, repeatedly."""
        sim = Simulator()
        channel, _ = make_channel(sim, error_rate=0.02, seed=seed)
        train(sim, channel)
        for wave in range(3):
            signals = [
                channel.host.issue(
                    Command(
                        Opcode.WRITE,
                        (wave * 32 + tag) * CACHE_LINE_BYTES,
                        tag,
                        bytes([tag]) * CACHE_LINE_BYTES,
                    )
                )
                for tag in range(32)
            ]
            for sig in signals:
                sim.run_until_signal(sig, timeout_ps=10**12)
        assert channel.operational
        assert channel.host.commands_completed == 96
