#!/usr/bin/env python
"""Run a declarative experiment suite and emit its report.

A suite spec (JSON, schema ``repro.suite/v1``; see docs/reports.md and
the examples in ``suites/``) bundles campaigns, service schedules, and
tune specs into one named run:

    python scripts/run_suite.py suites/ci_smoke.json --jobs 4
    python scripts/run_suite.py suites/nightly.json --out /tmp/nightly

The output directory receives one subdirectory per section entry
(``campaign-<name>/``, ``service-<name>/``, ``tune-<name>/`` — each
holding exactly what the standalone CLI would have written), plus:

* ``report.json``         — the ``repro.report/v1`` summary, byte-
  identical at any ``--jobs`` (compare runs with
  ``scripts/diff_artifacts.py``);
* ``report.html``         — the same data as one self-contained page
  (inline CSS/SVG, opens offline);
* ``kernel_profile.json`` — sim-kernel hotspots from the in-process
  profile pass (wall times; intentionally outside report.json).

Every section runs through the campaign engine: results come from the
content-addressed cache when nothing changed, failures are retried then
recorded, and the exit code says whether every job passed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaign import ResultCache
from repro.errors import ReproError
from repro.report import SuiteRunner, SuiteSpec


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "spec", metavar="SPEC",
        help="suite spec JSON file (schema repro.suite/v1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = run inline, no pool); report.json "
             "does not depend on this",
    )
    parser.add_argument(
        "--out", default="suite-out", metavar="DIR",
        help="output directory for report.json / report.html",
    )
    parser.add_argument(
        "--cache-dir", default=".campaign-cache", metavar="DIR",
        help="content-addressed result cache location (shared with campaigns)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always run every job; don't read or write the cache",
    )
    parser.add_argument(
        "--no-profile", action="store_true",
        help="skip the sim-kernel profile pass (no kernel_profile.json; "
             "report.json then has no kernel section)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-job wall-clock limit in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-attempts per failing job (with exponential backoff)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        spec = SuiteSpec.load(args.spec)
    except ReproError as exc:
        print(f"bad suite spec: {exc}", file=sys.stderr)
        return 2

    runner = SuiteRunner(
        spec,
        args.out,
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        timeout_s=args.timeout,
        retries=args.retries,
        profile=not args.no_profile,
    )
    try:
        result = runner.run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(result.summary(), file=sys.stderr)
    for failure in result.failures:
        print(f"  FAILED {failure}", file=sys.stderr)
    if result.ok:
        print(f"wrote {Path(args.out) / 'report.json'}", file=sys.stderr)
        print(f"wrote {Path(args.out) / 'report.html'}", file=sys.stderr)
    else:
        print("report not written (suite had failures)", file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
