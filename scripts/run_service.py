#!/usr/bin/env python
"""Run the simulated stack as an open-loop service and emit a run table.

A schedule file describes offered load over time (see docs/service.md):

    python scripts/run_service.py --schedule schedules/flashcrowd.json
    python scripts/run_service.py --schedule s.json --shards 4 --repetitions 3
    python scripts/run_service.py --schedule s.json --faults plan.json

The run is two campaign phases.  First a single **calibration job**
measures every request class the schedule references — one shared
artifact per invocation, instead of every (repetition, shard) job
re-running the simulator for the same profiles.  Then each
(repetition, shard) runs as a campaign job — cached, retried,
manifest-journaled like any sweep — carrying the calibration artifact
in its kwargs, so the result cache keys on profile content.  The parent
merges the shard demand tables, replays the bounded-queue service loop
over the globally ordered stream, and writes to ``--out``:

* ``run_table.csv``    — one row per (run, repetition, window);
* ``run_table.jsonl``  — the same grid as ``repro.service/v1`` records;
* ``metrics.jsonl``    — merged telemetry of every executed job;
* ``attribution.jsonl``— merged latency attribution of the calibration;
* ``manifest.jsonl``   — the shard job journal;
* ``calib-manifest.jsonl`` — the calibration job journal.

The run table never depends on ``--shards``: the same schedule and seed
reproduce it byte for byte at any shard count.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaign import ResultCache
from repro.errors import ConfigurationError, ReproError
from repro.report import load_fault_plan
from repro.service import ArrivalSchedule, ServiceDriver


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--schedule", required=True, metavar="FILE",
        help="arrival-schedule JSON (docs/service.md)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="campaign workers the demand stream splits across",
    )
    parser.add_argument(
        "--repetitions", type=int, default=1, metavar="N",
        help="independent repetitions (distinct derived seeds)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; repetition seeds derive from it",
    )
    parser.add_argument(
        "--calib-samples", type=int, default=24, metavar="N",
        help="sim operations per request-class calibration",
    )
    parser.add_argument(
        "--faults", default=None, metavar="FILE",
        help="fault plan JSON installed during memory-class calibration "
             "(see docs/faults.md)",
    )
    parser.add_argument(
        "--out", default="service-out", metavar="DIR",
        help="output directory for run_table.csv and friends",
    )
    parser.add_argument(
        "--cache-dir", default=".campaign-cache", metavar="DIR",
        help="content-addressed result cache location",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always run every shard job; don't read or write the cache",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-job wall-clock limit in seconds",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    try:
        schedule = ArrivalSchedule.from_json(
            Path(args.schedule).read_text(encoding="utf-8")
        )
    except (OSError, ConfigurationError) as exc:
        print(f"schedule: {exc}", file=sys.stderr)
        return 2
    if args.shards < 1 or args.repetitions < 1:
        print("--shards and --repetitions must be >= 1", file=sys.stderr)
        return 2

    faults = None
    if args.faults:
        try:
            faults = load_fault_plan(args.faults)
        except ConfigurationError as exc:
            print(f"fault plan: {exc}", file=sys.stderr)
            return 2

    out_dir = Path(args.out)
    driver = ServiceDriver(
        schedule,
        out_dir=out_dir,
        seed=args.seed,
        shards=args.shards,
        repetitions=args.repetitions,
        calib_samples=args.calib_samples,
        faults=faults,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        timeout_s=args.timeout,
    )
    try:
        result = driver.run()
    except ReproError as exc:
        print(f"merge: {exc}", file=sys.stderr)
        return 1
    if result.failed:
        for outcome in result.failed:
            print(f"FAILED {outcome.job.job_id}: {outcome.error}",
                  file=sys.stderr)
        return 1

    print(result.render())
    print(f"calibration: {result.calib_report.summary()}", file=sys.stderr)
    print(f"campaign: {result.shard_report.summary()}", file=sys.stderr)
    print(f"wrote {out_dir / 'run_table.csv'}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
