#!/usr/bin/env python
"""Run one experiment under telemetry and write an artifact bundle.

    python scripts/trace_experiment.py table3 --out /tmp/t3

produces in the output directory:

* ``trace.json``   — Chrome ``trace_event`` array; open in ``chrome://tracing``
  or https://ui.perfetto.dev (spans per component: kernel, dmi, buffer,
  memory, processor, storage, accel, workload; journey stage spans are
  linked by flow arrows);
* ``metrics.jsonl`` — schema-versioned record stream (see docs/telemetry.md):
  one ``meta`` record, one ``result`` record per ResultTable produced, and
  metric snapshots; the last ``snapshot`` is the final counter state;
* ``attribution.jsonl`` — ``repro.attribution/v1`` request journeys plus
  per-stage summaries; render with ``scripts/analyze_latency.py``.

The experiment names match the paper's tables/figures (``table1`` ..
``table5``, ``fig6`` .. ``fig8``, ``fio`` for the Figure 9/10 matrix).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaign import ALIASES, experiment_names, get_experiment
from repro.errors import ConfigurationError
from repro.telemetry import TraceSession, meta_record, result_record


def parse_args(argv=None) -> argparse.Namespace:
    known = ", ".join(sorted(experiment_names()) + sorted(ALIASES))
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=f"known experiments: {known}",
    )
    parser.add_argument(
        "experiment",
        help=f"paper table/figure to run (one of: {known})",
    )
    parser.add_argument(
        "--out", default=None,
        help="artifact directory (default: traces/<experiment>)",
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="override the experiment's sample/IO count knob",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="offset the experiment's deterministic seed streams.  Each "
             "experiment keeps its own historical base seeds (e.g. the GPFS "
             "job stream); --seed shifts them all by the given amount, so "
             "the default 0 reproduces the documented results exactly and "
             "any other value yields a distinct but still deterministic run",
    )
    parser.add_argument(
        "--kernel-events", action="store_true",
        help="also emit one instant per simulator event (large traces)",
    )
    parser.add_argument(
        "--max-events", type=int, default=None,
        help="trace event buffer cap (further spans are dropped, counted)",
    )
    return parser.parse_args(argv)


def resolve(name: str):
    """Map a CLI name to (canonical name, runner, kwargs)."""
    spec = get_experiment(name)
    return spec.name, spec.runner, dict(spec.defaults)


def main(argv=None) -> int:
    args = parse_args(argv)
    try:
        name, runner, kwargs = resolve(args.experiment)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.samples is not None:
        # each runner exposes exactly one size knob; map --samples onto it
        knob = next(iter(kwargs), None)
        if knob is None:
            print(f"note: {name} takes no sample knob; --samples ignored",
                  file=sys.stderr)
        else:
            kwargs[knob] = args.samples
    kwargs["seed"] = args.seed

    out_dir = Path(args.out or Path("traces") / name)
    out_dir.mkdir(parents=True, exist_ok=True)

    session_kwargs = {"kernel_events": args.kernel_events}
    if args.max_events is not None:
        session_kwargs["max_events"] = args.max_events

    with TraceSession(name, **session_kwargs) as session:
        result = runner(**kwargs)
    tables = list(result) if isinstance(result, tuple) else [result]

    trace_path = out_dir / "trace.json"
    metrics_path = out_dir / "metrics.jsonl"
    attribution_path = out_dir / "attribution.jsonl"
    session.write_chrome(trace_path)
    session.write_metrics(
        metrics_path,
        extra_records=[meta_record(name, kwargs)]
        + [result_record(t) for t in tables],
    )
    session.write_attribution(attribution_path)

    for table in tables:
        print(table.to_markdown())
        print()
    print(f"trace:   {trace_path}  "
          f"({session.span_count} spans, {session.instant_count} instants, "
          f"{sorted(session.categories())})")
    print(f"metrics: {metrics_path}")
    journeys = session.journeys
    if journeys is not None:
        print(f"attribution: {attribution_path}  "
              f"({len(journeys.completed)} journeys, "
              f"{len(journeys.scenarios())} scenarios)")
    if session.dropped_events:
        print(f"warning: {session.dropped_events} events dropped "
              f"(buffer cap {session.max_events})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
