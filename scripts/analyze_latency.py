#!/usr/bin/env python
"""Render a per-stage latency breakdown from attribution artifacts.

    python scripts/analyze_latency.py /tmp/t3                 # one traced run
    python scripts/analyze_latency.py campaign-out            # merged campaign
    python scripts/analyze_latency.py a.jsonl b.jsonl --check # CI gate

Inputs are ``repro.attribution/v1`` files (``attribution.jsonl``) or
directories containing one.  Several inputs merge deterministically the
way the campaign runner merges per-worker artifacts: sources sorted by
label, journeys tagged with their source, summaries recomputed over the
union.

For every scenario the report shows the stage table (queueing vs service,
p50/p95/p99/mean/max, share of total), the critical path (stages by mean
contribution), and — when a baseline scenario exists — the per-stage
delta against it, which is the paper's Table 3 decomposition: where the
extra ConTutto nanoseconds actually go.

DMI journeys carry two extra annotations the report exploits when
present: the command address maps to its DRAM bank (row bits above bank
bits, 8 KiB pages over 8 banks), giving a per-bank contention table —
how evenly the address stream spread across the rank, and what each
bank's latency profile looked like; and the channel's in-flight count at
issue time gives a queue-depth-vs-latency correlation table, showing how
much of the tail is queueing amplified by memory-level parallelism.

``--check`` turns the breakdown's self-diagnostics into an exit code:
non-zero when the artifact has no journeys, unattributed residual above
tolerance, or negative stage durations.
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.core.results import ResultTable
from repro.errors import ArtifactError
from repro.memory import DdrDram
from repro.report import load_journeys, resolve_artifact
from repro.telemetry import LatencyBreakdown


def pick_baseline(scenarios, requested=None) -> str:
    """The delta baseline: requested, else ``centaur``, else the first."""
    if requested:
        if requested not in scenarios:
            raise KeyError(
                f"baseline {requested!r} not in artifact (have: {scenarios})"
            )
        return requested
    return "centaur" if "centaur" in scenarios else scenarios[0]


def stage_table(breakdown: LatencyBreakdown, scenario: str) -> ResultTable:
    e2e = breakdown.end_to_end(scenario)
    table = ResultTable(
        f"Latency breakdown: {scenario} "
        f"({breakdown.journey_count(scenario)} journeys, "
        f"mean {e2e['mean'] / 1000:.2f} ns end-to-end)",
        ["Stage", "Kind", "Count", "Mean (ns)", "p50 (ns)", "p95 (ns)",
         "p99 (ns)", "Max (ns)", "Share"],
    )
    for row in breakdown.stage_table(scenario):
        table.add_row(
            row["stage"], row["kind"], row["count"],
            row["mean_ps"] / 1000, row["p50_ps"] / 1000, row["p95_ps"] / 1000,
            row["p99_ps"] / 1000, row["max_ps"] / 1000,
            f"{row['share']:.1%}",
        )
    residual = breakdown.residual(scenario)
    if residual.get("count"):
        table.add_note(
            f"unattributed residual: mean {residual['mean']:.0f} ps, "
            f"max {residual['max']:.0f} ps"
        )
    path = [r["stage"] for r in breakdown.critical_path(scenario)]
    table.add_note("critical path (by mean contribution): " + " > ".join(path))
    return table


def fault_table(breakdown: LatencyBreakdown, scenario: str) -> ResultTable:
    """Clean vs fault-affected end-to-end percentiles for one scenario."""
    clean, fault = breakdown.fault_split(scenario)
    table = ResultTable(
        f"Fault split: {scenario} "
        f"({breakdown.fault_count(scenario)} of "
        f"{breakdown.journey_count(scenario)} journeys fault-affected)",
        ["Population", "Count", "Mean (ns)", "p50 (ns)", "p95 (ns)",
         "p99 (ns)", "Max (ns)"],
    )
    for label, stats in (("clean", clean), ("fault-affected", fault)):
        table.add_row(
            label, int(stats["count"]), stats["mean"] / 1000,
            stats["p50"] / 1000, stats["p95"] / 1000, stats["p99"] / 1000,
            stats["max"] / 1000,
        )
    table.add_note(
        f"fault-affected mean delta: "
        f"{(fault['mean'] - clean['mean']) / 1000:+.2f} ns"
    )
    return table


def _nearest_rank(ordered, pct: float):
    """Nearest-rank percentile over a pre-sorted list (repo convention)."""
    return ordered[max(0, math.ceil(pct / 100 * len(ordered)) - 1)]


def dmi_journeys(journeys, scenario: str) -> list:
    """Completed depth-annotated journeys of one scenario.

    Only the host memory controller stamps ``depth``, so its presence
    discriminates DMI line commands (whose addresses are physical and
    bank-mappable) from storage-layer journeys (whose ``addr`` is a file
    offset).
    """
    return [
        j for j in journeys
        if j.get("scenario", "") == scenario
        and j.get("depth") is not None
        and j.get("end_ps") is not None
    ]


def bank_table(journeys, scenario: str) -> ResultTable:
    """Per-DRAM-bank access counts and latency profile for one scenario."""
    by_bank = {}
    for j in journeys:
        bank = (j["addr"] // DdrDram.ROW_BYTES) % DdrDram.NUM_BANKS
        by_bank.setdefault(bank, []).append(j["end_ps"] - j["start_ps"])
    total = sum(len(v) for v in by_bank.values())
    table = ResultTable(
        f"DRAM bank contention: {scenario} ({total} commands, "
        f"{len(by_bank)} of {DdrDram.NUM_BANKS} banks touched)",
        ["Bank", "Count", "Share", "Mean (ns)", "p95 (ns)", "p99 (ns)",
         "Max (ns)"],
    )
    for bank in sorted(by_bank):
        lat = sorted(by_bank[bank])
        table.add_row(
            bank, len(lat), f"{len(lat) / total:.1%}",
            sum(lat) / len(lat) / 1000,
            _nearest_rank(lat, 95) / 1000,
            _nearest_rank(lat, 99) / 1000,
            lat[-1] / 1000,
        )
    counts = [len(v) for v in by_bank.values()]
    imbalance = max(counts) / (sum(counts) / len(counts)) if counts else 0.0
    table.add_note(
        f"hottest bank holds {imbalance:.2f}x the mean bank load "
        "(1.00 = perfectly even)"
    )
    return table


def depth_table(journeys, scenario: str) -> ResultTable:
    """Queue-depth-vs-latency correlation for one scenario.

    Rows bucket journeys by the in-flight count their issue observed; the
    note reports the Pearson correlation between depth and end-to-end
    latency — high r means the tail is queueing, not service time.
    """
    by_depth = {}
    pairs = []
    for j in journeys:
        latency = j["end_ps"] - j["start_ps"]
        by_depth.setdefault(j["depth"], []).append(latency)
        pairs.append((j["depth"], latency))
    table = ResultTable(
        f"Queue depth vs latency: {scenario} ({len(pairs)} commands)",
        ["Depth at issue", "Count", "Mean (ns)", "p50 (ns)", "p99 (ns)",
         "Max (ns)"],
    )
    for depth in sorted(by_depth):
        lat = sorted(by_depth[depth])
        table.add_row(
            depth, len(lat),
            sum(lat) / len(lat) / 1000,
            _nearest_rank(lat, 50) / 1000,
            _nearest_rank(lat, 99) / 1000,
            lat[-1] / 1000,
        )
    n = len(pairs)
    mean_d = sum(d for d, _ in pairs) / n
    mean_l = sum(l for _, l in pairs) / n
    cov = sum((d - mean_d) * (l - mean_l) for d, l in pairs)
    var_d = sum((d - mean_d) ** 2 for d, _ in pairs)
    var_l = sum((l - mean_l) ** 2 for _, l in pairs)
    if var_d > 0 and var_l > 0:
        r = cov / math.sqrt(var_d * var_l)
        table.add_note(f"Pearson depth-latency correlation: r = {r:+.3f}")
    else:
        table.add_note(
            "Pearson depth-latency correlation undefined "
            "(constant depth or constant latency)"
        )
    return table


def delta_table(breakdown: LatencyBreakdown, scenario: str, baseline: str) -> ResultTable:
    diff = breakdown.scenario_mean_ns(scenario) - breakdown.scenario_mean_ns(baseline)
    table = ResultTable(
        f"Stage deltas: {scenario} - {baseline} ({diff:+.2f} ns end-to-end)",
        ["Stage", f"{scenario} (ns)", f"{baseline} (ns)", "Delta (ns)"],
    )
    for row in breakdown.delta(scenario, baseline):
        table.add_row(
            row["stage"], row["mean_ps"] / 1000, row["baseline_ps"] / 1000,
            row["delta_ps"] / 1000,
        )
    return table


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "inputs", nargs="+",
        help="attribution.jsonl files, or directories containing one",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="SCENARIO",
        help="delta baseline (default: 'centaur' when present, else the "
             "first scenario)",
    )
    parser.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="restrict the report to this scenario (repeatable)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.01,
        help="residual tolerance as a fraction of mean latency (default 1%%)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the breakdown's self-check reports warnings",
    )
    parser.add_argument(
        "--lenient", action="store_true",
        help="skip (but report) malformed artifact lines instead of failing",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    try:
        paths = [resolve_artifact(arg) for arg in args.inputs]
        journeys, load_warnings = load_journeys(
            paths, malformed="skip" if args.lenient else "error"
        )
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    breakdown = LatencyBreakdown()
    breakdown.add_records(journeys)

    warnings = load_warnings + breakdown.check(tolerance=args.tolerance)
    scenarios = breakdown.scenarios()
    if args.scenario:
        missing = [s for s in args.scenario if s not in scenarios]
        if missing:
            print(f"error: scenarios {missing} not in artifact "
                  f"(have: {scenarios})", file=sys.stderr)
            return 2
        scenarios = [s for s in scenarios if s in args.scenario]

    if scenarios:
        try:
            baseline = pick_baseline(breakdown.scenarios(), args.baseline)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for scenario in scenarios:
            print(stage_table(breakdown, scenario).to_markdown())
            print()
            if breakdown.fault_split(scenario) is not None:
                print(fault_table(breakdown, scenario).to_markdown())
                print()
            annotated = dmi_journeys(journeys, scenario)
            if annotated:
                print(bank_table(annotated, scenario).to_markdown())
                print()
                print(depth_table(annotated, scenario).to_markdown())
                print()
        for scenario in scenarios:
            if scenario != baseline:
                print(delta_table(breakdown, scenario, baseline).to_markdown())
                print()

    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.check and warnings:
        print(f"check failed: {len(warnings)} warning(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
