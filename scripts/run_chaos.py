#!/usr/bin/env python
"""Run fault experiments and print a resilience report.

    python scripts/run_chaos.py                       # both fault drills
    python scripts/run_chaos.py ber_sweep --seed 3
    python scripts/run_chaos.py ber_sweep --plan plan.json --out /tmp/chaos

Each named experiment runs under telemetry; afterwards the CLI prints the
experiment's table, then a resilience report reconstructed from the
``faults.*`` counters — faults injected, recoveries, failures, LOST
outcomes — with clean-vs-fault-affected latency deltas from the journey
attribution.  ``--plan`` layers extra fault-plan entries (docs/faults.md)
on top of the experiment's own fault schedule.  With ``--out`` the
metrics and attribution artifacts are written for offline analysis.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaign import experiment_names, get_experiment
from repro.errors import ConfigurationError, ReproError
from repro.faults import render_time_buckets, report_from_snapshot, time_buckets
from repro.report import journeys_of_session, load_fault_plan
from repro.telemetry import TraceSession, meta_record, result_record
from repro.telemetry.attribution import LatencyBreakdown

FAULT_EXPERIMENTS = [
    name for name in experiment_names()
    if get_experiment(name).supports_faults
]


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help=f"fault experiments to run (default: all of "
             f"{', '.join(FAULT_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--plan", default=None, metavar="FILE",
        help="extra fault-plan JSON merged into each experiment's own plan",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--samples", type=int, default=None,
        help="override the experiment's size knob",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write metrics.jsonl / attribution.jsonl per experiment",
    )
    parser.add_argument(
        "--buckets", type=int, default=10, metavar="N",
        help="time slices in the injections-vs-latency view (default 10)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    names = args.experiments or FAULT_EXPERIMENTS
    unknown = [n for n in names if n not in FAULT_EXPERIMENTS]
    if unknown:
        print(f"error: not fault experiments: {', '.join(unknown)} "
              f"(known: {', '.join(FAULT_EXPERIMENTS)})", file=sys.stderr)
        return 2
    plan_json = load_fault_plan(args.plan) if args.plan else None

    failures = 0
    for name in names:
        spec = get_experiment(name)
        kwargs = dict(spec.defaults)
        if args.samples is not None and kwargs:
            kwargs[next(iter(kwargs))] = args.samples
        kwargs["seed"] = args.seed
        if plan_json is not None:
            kwargs["faults"] = plan_json

        print(f"=== {name} ===")
        try:
            with TraceSession(f"chaos:{name}", max_events=0) as session:
                result = spec.runner(**kwargs)
        except ReproError as exc:
            print(f"error: {name} failed: {exc}", file=sys.stderr)
            failures += 1
            continue
        tables = list(result) if isinstance(result, tuple) else [result]
        for table in tables:
            print(table.to_markdown())
            print()

        snapshot = session.registry.snapshot()
        breakdown = LatencyBreakdown()
        journey_recs = journeys_of_session(session)
        breakdown.add_records(journey_recs)
        report = report_from_snapshot(snapshot, plan_name=name)
        if report is None:
            print("no faults were injected (empty plan or all targets skipped)")
        else:
            print(report.render(breakdown))
            # time-bucketed resilience view: injections vs latency over
            # sim time, from the windows controllers published at stop()
            windows = getattr(session, "fault_windows", None)
            if windows and journey_recs:
                rows = time_buckets(windows, journey_recs, buckets=args.buckets)
                if rows:
                    print()
                    print(render_time_buckets(rows))
        print()

        if args.out:
            out_dir = Path(args.out) / name
            out_dir.mkdir(parents=True, exist_ok=True)
            session.write_metrics(
                out_dir / "metrics.jsonl",
                extra_records=[meta_record(name, kwargs)]
                + [result_record(t) for t in tables],
            )
            session.write_attribution(out_dir / "attribution.jsonl")
            print(f"artifacts: {out_dir}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(2)
