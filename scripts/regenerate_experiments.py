#!/usr/bin/env python
"""Regenerate the measured tables embedded in EXPERIMENTS.md.

Runs every experiment in the harness and prints the markdown blocks; use
this after changing any model to refresh the paper-vs-measured record:

    python scripts/regenerate_experiments.py > /tmp/experiments_raw.md
    python scripts/regenerate_experiments.py --only table3
    python scripts/regenerate_experiments.py --out /tmp/experiments_raw.md
    python scripts/regenerate_experiments.py --jobs 4     # parallel workers

The fidelity-note prose in EXPERIMENTS.md is curated by hand; splice the
regenerated tables into the existing structure rather than overwriting it.

This is a thin front-end over the campaign engine (``repro.campaign``):
the experiment list is its registry's paper matrix, executed uncached so
a regeneration always reflects the current source tree.  For cached,
resumable, failure-tolerant sweeps use ``scripts/run_campaign.py``.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign import ALIASES, CampaignRunner, ScenarioMatrix, experiment_names


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        choices=experiment_names() + sorted(ALIASES),
        help="regenerate only this experiment (repeatable)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the markdown to this file instead of stdout",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = inline, the historical serial path)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    only = [ALIASES.get(name, name) for name in args.only] if args.only else None
    jobs = ScenarioMatrix.paper(only=only).expand()
    report = CampaignRunner(jobs, workers=args.jobs).run()
    for outcome in report.failed:
        print(f"FAILED {outcome.job.job_id}: {outcome.error}", file=sys.stderr)
        if outcome.traceback:
            print(outcome.traceback, file=sys.stderr)
    if report.failed:
        return 1

    text = "\n\n".join(table.to_markdown() for table in report.tables()) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {len(jobs)} experiment(s) to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
