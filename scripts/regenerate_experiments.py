#!/usr/bin/env python
"""Regenerate the measured tables embedded in EXPERIMENTS.md.

Runs every experiment in the harness and prints the markdown blocks; use
this after changing any model to refresh the paper-vs-measured record:

    python scripts/regenerate_experiments.py > /tmp/experiments_raw.md

The fidelity-note prose in EXPERIMENTS.md is curated by hand; splice the
regenerated tables into the existing structure rather than overwriting it.
"""

from repro import (
    run_fig6,
    run_fig7,
    run_fig8,
    run_fio_matrix,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


def main() -> None:
    for fn, kwargs in [
        (run_table1, {}),
        (run_table2, {"samples": 24}),
        (run_fig6, {"samples": 24}),
        (run_table3, {"samples": 24}),
        (run_fig7, {"samples": 24}),
        (run_fig8, {}),
        (run_table4, {"writes": 24}),
    ]:
        print(fn(**kwargs).to_markdown())
        print()
    fig9, fig10 = run_fio_matrix(ios=32)
    print(fig9.to_markdown())
    print()
    print(fig10.to_markdown())
    print()
    print(run_table5(size_mib=16).to_markdown())


if __name__ == "__main__":
    main()
