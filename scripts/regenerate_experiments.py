#!/usr/bin/env python
"""Regenerate the measured tables embedded in EXPERIMENTS.md.

Runs every experiment in the harness and prints the markdown blocks; use
this after changing any model to refresh the paper-vs-measured record:

    python scripts/regenerate_experiments.py > /tmp/experiments_raw.md
    python scripts/regenerate_experiments.py --only table3
    python scripts/regenerate_experiments.py --out /tmp/experiments_raw.md

The fidelity-note prose in EXPERIMENTS.md is curated by hand; splice the
regenerated tables into the existing structure rather than overwriting it.
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    run_fig6,
    run_fig7,
    run_fig8,
    run_fio_matrix,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

#: regeneration order mirrors EXPERIMENTS.md section order
EXPERIMENTS = [
    ("table1", run_table1, {}),
    ("table2", run_table2, {"samples": 24}),
    ("fig6", run_fig6, {"samples": 24}),
    ("table3", run_table3, {"samples": 24}),
    ("fig7", run_fig7, {"samples": 24}),
    ("fig8", run_fig8, {}),
    ("table4", run_table4, {"writes": 24}),
    ("fio", run_fio_matrix, {"ios": 32}),
    ("table5", run_table5, {"size_mib": 16}),
]


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        choices=[name for name, _, _ in EXPERIMENTS],
        help="regenerate only this experiment (repeatable)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the markdown to this file instead of stdout",
    )
    return parser.parse_args(argv)


def main(argv=None) -> None:
    args = parse_args(argv)
    selected = [
        (name, fn, kwargs)
        for name, fn, kwargs in EXPERIMENTS
        if not args.only or name in args.only
    ]

    blocks = []
    for _, fn, kwargs in selected:
        result = fn(**kwargs)
        tables = result if isinstance(result, tuple) else (result,)
        blocks.extend(table.to_markdown() for table in tables)
    text = "\n\n".join(blocks) + "\n"

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {len(selected)} experiment(s) to {args.out}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)


if __name__ == "__main__":
    main()
