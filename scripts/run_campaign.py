#!/usr/bin/env python
"""Run an experiment campaign: parallel, cached, resumable.

The default campaign is the full paper regeneration (every table/figure
at its EXPERIMENTS.md defaults, seed 0 — byte-identical to the serial
``regenerate_experiments.py`` path):

    python scripts/run_campaign.py --jobs 4
    python scripts/run_campaign.py --jobs 2 --only table3 --only table1
    python scripts/run_campaign.py --jobs 4 --resume      # finish a crashed run

Custom sweeps come from a JSON matrix file (see docs/campaign.md):

    python scripts/run_campaign.py --jobs 8 --matrix sweeps/latency.json

The output directory receives:

* ``experiments.md``  — every table, matrix order (the regenerate format);
* ``manifest.jsonl``  — the ``repro.campaign/v1`` job journal (``--resume``
  replays it);
* ``metrics.jsonl``   — one merged ``repro.telemetry/v1`` artifact
  (per-job snapshots + campaign totals);
* ``attribution.jsonl`` — one merged ``repro.attribution/v1`` artifact
  (per-job request journeys + recomputed stage summaries; render with
  ``scripts/analyze_latency.py``).

Results are served from the content-addressed cache when the same
(experiment, kwargs, seed, code fingerprint) has already run; any source
change invalidates the whole cache.  A failing job is retried with
backoff, then recorded with its traceback — the campaign always runs to
completion, and the exit code reports whether every job succeeded.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.campaign import (
    ALIASES,
    CampaignRunner,
    ResultCache,
    ScenarioMatrix,
    apply_fault_plan,
    experiment_names,
)
from repro.report import load_fault_plan


def load_matrix(path: str) -> ScenarioMatrix:
    """Build a ScenarioMatrix from its JSON description."""
    with open(path, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    matrix = ScenarioMatrix(base_seed=spec.get("base_seed", 0))
    for scenario in spec["scenarios"]:
        matrix.add(scenario["experiment"], **scenario.get("axes", {}))
    return matrix


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = run inline, no pool)",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        choices=experiment_names() + sorted(ALIASES),
        help="restrict the paper campaign to this experiment (repeatable)",
    )
    parser.add_argument(
        "--matrix", default=None, metavar="FILE",
        help="JSON scenario matrix (overrides --only/--seed's paper default)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (paper matrix pins it; custom matrices derive "
             "per-job seeds from it)",
    )
    parser.add_argument(
        "--out", default="campaign-out", metavar="DIR",
        help="output directory for experiments.md / manifest.jsonl / metrics.jsonl",
    )
    parser.add_argument(
        "--cache-dir", default=".campaign-cache", metavar="DIR",
        help="content-addressed result cache location",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always run every job; don't read or write the cache",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay completed jobs from the existing manifest + cache",
    )
    parser.add_argument(
        "--faults", default=None, metavar="FILE",
        help="fault plan JSON injected into fault-capable experiments "
             "(see docs/faults.md)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-job wall-clock limit in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-attempts per failing job (with exponential backoff)",
    )
    parser.add_argument(
        "--fold-attribution", action="store_true",
        help="merge per-worker stage summaries instead of retaining every "
             "journey record (bounded memory for very large sweeps; folded "
             "percentiles are weighted approximations)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print every table to stdout",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.matrix:
        matrix = load_matrix(args.matrix)
    else:
        only = [ALIASES.get(name, name) for name in args.only] if args.only else None
        matrix = ScenarioMatrix.paper(only=only, seed=args.seed)
    jobs = matrix.expand()
    if args.faults:
        jobs = apply_fault_plan(jobs, load_fault_plan(args.faults))
    if not jobs:
        print("matrix expanded to zero jobs", file=sys.stderr)
        return 2

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.resume and cache is None:
        print("--resume needs the cache; drop --no-cache", file=sys.stderr)
        return 2

    runner = CampaignRunner(
        jobs,
        workers=args.jobs,
        cache=cache,
        manifest_path=str(out_dir / "manifest.jsonl"),
        resume=args.resume,
        timeout_s=args.timeout,
        retries=args.retries,
        base_seed=matrix.base_seed,
        attribution_mode="summary" if args.fold_attribution else "journeys",
    )
    report = runner.run()

    markdown = "\n\n".join(t.to_markdown() for t in report.tables()) + "\n"
    (out_dir / "experiments.md").write_text(markdown, encoding="utf-8")
    report.write_telemetry(
        str(out_dir / "metrics.jsonl"),
        params={"jobs": args.jobs, "seed": matrix.base_seed, "count": len(jobs)},
    )
    report.write_attribution(str(out_dir / "attribution.jsonl"))

    if args.verbose:
        sys.stdout.write(markdown)
    print(f"campaign: {report.summary()}", file=sys.stderr)
    for outcome in report.failed:
        print(f"  FAILED {outcome.job.job_id}: {outcome.error}", file=sys.stderr)
    print(f"wrote {out_dir / 'experiments.md'}", file=sys.stderr)
    return 1 if report.failed else 0


if __name__ == "__main__":
    sys.exit(main())
