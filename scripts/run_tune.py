#!/usr/bin/env python
"""Tune memory configurations against a workload: budgeted, cached search.

A tune spec (JSON, schema ``repro.tune/v1``; see docs/tuning.md and the
examples in ``tunespecs/``) declares a knob space, objectives, and a
budget; this CLI drives it through the campaign engine and renders the
result:

    python scripts/run_tune.py tunespecs/buffer_latency.json --jobs 4
    python scripts/run_tune.py tunespecs/writecache.json --seed 7
    python scripts/run_tune.py tunespecs/buffer_latency.json \\
        --faults faultplans/ber_storm.json     # stress the tuned configs

The output directory receives:

* ``pareto.jsonl``      — the ``repro.tune/v1`` record stream: one meta
  record, then one record per trial (config, objective vector, dominated
  flag, rung history).  Byte-identical at any ``--jobs``;
* ``tune_report.csv``   — the same grid flattened for spreadsheets;
* ``manifest-rung<r>.jsonl`` — one campaign manifest per rung;
* ``metrics.jsonl`` / ``attribution.jsonl`` — the usual campaign
  telemetry artifacts.

Trials are served from the content-addressed cache when the same
(config, workload, samples, depth, faults, seed, code fingerprint) has
already run — re-running a finished spec is a near-total cache hit, and
a killed run resumes mid-rung for free.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaign import ResultCache
from repro.errors import ReproError
from repro.report import load_fault_plan
from repro.tune import TuneDriver, TuneSpec


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "spec", metavar="SPEC",
        help="tune spec JSON file (schema repro.tune/v1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = run inline, no pool)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="search seed, shared by every trial (common random numbers: "
             "configs see the same operation stream)",
    )
    parser.add_argument(
        "--out", default="tune-out", metavar="DIR",
        help="output directory for pareto.jsonl / tune_report.csv",
    )
    parser.add_argument(
        "--cache-dir", default=".campaign-cache", metavar="DIR",
        help="content-addressed result cache location (shared with campaigns)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always run every trial; don't read or write the cache",
    )
    parser.add_argument(
        "--faults", default=None, metavar="FILE",
        help="fault plan JSON injected into every trial system "
             "(memory workloads only; see docs/faults.md)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-trial wall-clock limit in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-attempts per failing trial (with exponential backoff)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print the per-trial report table",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    try:
        spec = TuneSpec.from_json(
            Path(args.spec).read_text(encoding="utf-8")
        )
    except OSError as exc:
        print(f"cannot read spec: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"bad tune spec: {exc}", file=sys.stderr)
        return 2

    faults = load_fault_plan(args.faults) if args.faults else None

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    driver = TuneDriver(
        spec,
        seed=args.seed,
        workers=args.jobs,
        cache=cache,
        out_dir=args.out,
        resume=cache is not None,
        timeout_s=args.timeout,
        retries=args.retries,
        faults=faults,
    )
    report = driver.run()

    print(report.render())
    print(
        f"trials: {report.jobs} job(s), {report.cache_hits} from cache, "
        f"{len(report.failed)} failed",
        file=sys.stderr,
    )
    for outcome in report.failed:
        print(f"  FAILED {outcome.job.job_id}: {outcome.error}", file=sys.stderr)
    if args.verbose:
        out_dir = Path(args.out)
        sys.stdout.write(
            (out_dir / "tune_report.csv").read_text(encoding="utf-8")
        )
    print(f"wrote {Path(args.out) / 'pareto.jsonl'}", file=sys.stderr)
    return 1 if report.winner is None else 0


if __name__ == "__main__":
    sys.exit(main())
