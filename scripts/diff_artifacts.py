#!/usr/bin/env python
"""Compare two suite reports and emit a PASS/WARN/FAIL verdict.

    python scripts/diff_artifacts.py baseline-out/ new-out/
    python scripts/diff_artifacts.py a/report.json b/report.json --json d.json
    python scripts/diff_artifacts.py a/ b/ --tolerance latency=0.05:0.2

Inputs are ``report.json`` files (or suite output directories containing
one) produced by ``scripts/run_suite.py``.  Every comparable metric the
reports share is graded against per-class relative tolerances —
``latency`` (``*_ps``/``*_ms``), ``share`` (shares, rates, occupancy),
``count`` (everything integral) — and the worst finding is the verdict:

* **PASS** (exit 0): every delta within its warn tolerance;
* **WARN** (exit 0): drift worth a look, but inside the fail tolerance —
  also the cap for percentile deltas whose sample budgets differ;
* **FAIL** (exit 1): a delta past the fail tolerance, or a metric that
  existed in the baseline and is missing from the new run.

The verdict is deterministic: same two reports, same tolerances, same
output bytes — at any worker count — so the exit code is usable as a CI
regression gate.  Semantics reference: docs/reports.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ArtifactError
from repro.report import DEFAULT_TOLERANCES, diff_reports, load_report, render_diff


def parse_tolerance(text: str):
    """Parse one ``class=warn:fail`` override."""
    try:
        klass, bounds = text.split("=", 1)
        warn, fail = (float(b) for b in bounds.split(":", 1))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected class=warn:fail (e.g. latency=0.05:0.2), got {text!r}"
        )
    if klass not in DEFAULT_TOLERANCES:
        raise argparse.ArgumentTypeError(
            f"unknown metric class {klass!r} "
            f"(known: {', '.join(sorted(DEFAULT_TOLERANCES))})"
        )
    if not 0 <= warn <= fail:
        raise argparse.ArgumentTypeError(
            f"{text!r}: need 0 <= warn <= fail"
        )
    return klass, (warn, fail)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", help="baseline report.json (or suite out dir)",
    )
    parser.add_argument(
        "new", help="new report.json (or suite out dir) graded against it",
    )
    parser.add_argument(
        "--tolerance", action="append", type=parse_tolerance, metavar="C=W:F",
        help="override one metric class's warn:fail relative tolerances "
             "(repeatable; classes: latency, share, count)",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the full finding list as JSON",
    )
    parser.add_argument(
        "--limit", type=int, default=40, metavar="N",
        help="findings shown in the text rendering (default 40)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    try:
        baseline = load_report(args.baseline)
        new = load_report(args.new)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    tolerances = dict(args.tolerance) if args.tolerance else None
    result = diff_reports(baseline, new, tolerances=tolerances)
    print(render_diff(result, limit=args.limit))
    if args.json:
        Path(args.json).write_text(
            json.dumps(result.to_record(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json}", file=sys.stderr)
    return 1 if result.verdict == "FAIL" else 0


if __name__ == "__main__":
    sys.exit(main())
