"""The hierarchical metrics registry.

One :class:`MetricsRegistry` holds every named metric of a run.  Names are
dot-separated paths (``"dmi.frames_sent"``, ``"buffer.cache.hits"``); the
registry is flat internally but :meth:`tree` folds the namespace back into
nested dicts for humans.

Components never allocate metrics eagerly — they call ``counter(name)`` /
``gauge(name)`` / ``histogram(name)`` through an active
:class:`~repro.telemetry.session.TraceSession`, which creates on first use.
Registering the *same* name as two different kinds is a bug and is
rejected, as is explicitly re-registering an existing name.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from ..errors import TelemetryError
from .metrics import Counter, Gauge, Histogram, Metric


class MetricsRegistry:
    """Named registration of counters/gauges/histograms with snapshot/diff."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- registration -------------------------------------------------------

    def register(self, metric: Metric) -> Metric:
        """Explicitly register a pre-built metric; rejects duplicate names."""
        if not metric.name:
            raise TelemetryError("metrics must be named to be registered")
        if metric.name in self._metrics:
            raise TelemetryError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def _get_or_create(self, name: str, cls: Type[Metric]) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {name!r} is a {metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    # -- lookup -------------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / diff / reset --------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """A flat ``{name: value}`` view of every metric, sorted by name.

        Histograms expand into ``name.count`` / ``name.mean`` / ``name.min``
        / ``name.max`` / ``name.p50`` / ``name.p95`` / ``name.p99``; gauges
        into ``name`` and ``name.high_water``.
        """
        out: Dict[str, float] = {}
        for name in sorted(self._metrics):
            self._metrics[name].snapshot_into(out, name)
        return out

    @staticmethod
    def diff(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
        """``after - before`` per key; keys missing from ``before`` count as 0.

        Keys that vanished between snapshots are reported with the negated
        ``before`` value so a diff always accounts for every key seen.
        """
        out: Dict[str, float] = {}
        for key, value in after.items():
            delta = value - before.get(key, 0)
            if delta:
                out[key] = delta
        for key, value in before.items():
            if key not in after and value:
                out[key] = -value
        return out

    #: snapshot-key suffixes that aggregate non-additively when merging
    _MERGE_MIN = (".min",)
    _MERGE_MAX = (".max", ".high_water")
    _MERGE_LAST = (".mean", ".p50", ".p95", ".p99")

    @classmethod
    def merge_snapshots(cls, snapshots: Iterable[Dict[str, float]]) -> Dict[str, float]:
        """Fold per-run flat snapshots into one aggregate view.

        The campaign runner uses this to merge worker telemetry: additive
        keys (counters, histogram ``.count``, gauge values) sum; ``.min``
        takes the minimum, ``.max``/``.high_water`` the maximum; per-run
        distribution statistics (``.mean``/percentiles) keep the last
        value seen — they don't aggregate linearly, and each run's own
        values stay in its individual snapshot record.
        """
        merged: Dict[str, float] = {}
        for snap in snapshots:
            for key, value in snap.items():
                if key not in merged:
                    merged[key] = value
                elif key.endswith(cls._MERGE_MIN):
                    merged[key] = min(merged[key], value)
                elif key.endswith(cls._MERGE_MAX):
                    merged[key] = max(merged[key], value)
                elif key.endswith(cls._MERGE_LAST):
                    merged[key] = value
                else:
                    merged[key] += value
        return dict(sorted(merged.items()))

    def reset(self) -> None:
        """Zero every registered metric (registrations survive)."""
        for metric in self._metrics.values():
            metric.reset()

    # -- presentation -------------------------------------------------------

    def tree(self) -> Dict[str, object]:
        """Fold the dot-separated namespace into nested dicts."""
        root: Dict[str, object] = {}
        for key, value in self.snapshot().items():
            node = root
            parts = key.split(".")
            for part in parts[:-1]:
                nxt = node.get(part)
                if not isinstance(nxt, dict):
                    nxt = {} if nxt is None else {"": nxt}
                    node[part] = nxt
                node = nxt
            leaf = node.get(parts[-1])
            if isinstance(leaf, dict):
                leaf[""] = value
            else:
                node[parts[-1]] = value
        return root

    def top_counters(self, limit: int = 10) -> List[tuple]:
        """The ``limit`` largest counters, for quick CLI summaries."""
        counters = [
            (m.name, m.count)
            for m in self._metrics.values()
            if isinstance(m, Counter)
        ]
        counters.sort(key=lambda item: (-item[1], item[0]))
        return counters[:limit]

    def merge_flat(self, values: Dict[str, float], prefix: str = "") -> None:
        """Absorb a legacy flat snapshot (e.g. ``StatsRegistry.snapshot()``)
        as gauges, for components not yet emitting through a session."""
        for key, value in values.items():
            name = f"{prefix}.{key}" if prefix else key
            self.gauge(name).set(value)


def registry_from_counters(pairs: Iterable[tuple]) -> MetricsRegistry:
    """Convenience for tests: build a registry from ``(name, count)`` pairs."""
    registry = MetricsRegistry()
    for name, count in pairs:
        registry.counter(name).add(count)
    return registry
