"""JSONL run artifacts: the machine-readable record of what a run did.

One artifact is a newline-delimited JSON stream, schema-versioned so
downstream tooling can evolve without guessing.  Record kinds:

``meta``
    One per file, first: experiment name, parameters, schema version.
``result``
    A serialized :class:`~repro.core.results.ResultTable` (title, columns,
    rows, notes) — the same numbers the experiment printed.
``snapshot``
    One flat metrics snapshot (see ``docs/telemetry.md`` for the key
    naming scheme).  The **last** snapshot in the file is the run's final
    state.

Everything is stdlib-only and value types are coerced to plain
JSON-serializable Python before writing, so numpy scalars in result
tables round-trip as numbers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: bump when record shapes change incompatibly
SCHEMA_VERSION = 1

#: the schema identifier stamped on every record
SCHEMA = f"repro.telemetry/v{SCHEMA_VERSION}"


def _plain(value):
    """Coerce a cell to a JSON-serializable plain value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # numpy scalars (and anything else numeric) expose item() or __float__
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _plain(item())
        except (TypeError, ValueError):
            pass
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def meta_record(experiment: str, params: Optional[dict] = None, **extra) -> dict:
    record = {
        "schema": SCHEMA,
        "kind": "meta",
        "experiment": experiment,
        "params": {k: _plain(v) for k, v in (params or {}).items()},
    }
    for key, value in extra.items():
        record[key] = _plain(value)
    return record


def snapshot_record(
    label: str, ts_ps: Optional[int], metrics: Dict[str, float]
) -> dict:
    return {
        "schema": SCHEMA,
        "kind": "snapshot",
        "label": label,
        "ts_ps": ts_ps,
        "metrics": {k: _plain(v) for k, v in metrics.items()},
    }


def result_record(table) -> dict:
    """Serialize a ResultTable-shaped object (title/columns/rows/notes)."""
    return {
        "schema": SCHEMA,
        "kind": "result",
        "title": table.title,
        "columns": list(table.columns),
        "rows": [[_plain(cell) for cell in row] for row in table.rows],
        "notes": list(table.notes),
    }


def write_jsonl(path: str, records: List[dict]) -> int:
    """Write one JSON record per line; returns the record count."""
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")
    return len(records)


def read_jsonl(path: str) -> List[dict]:
    """Load every record of an artifact (blank lines tolerated)."""
    out = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def final_snapshot(records: List[dict]) -> Optional[dict]:
    """The last snapshot record of an artifact, or None."""
    for record in reversed(records):
        if record.get("kind") == "snapshot":
            return record
    return None
