"""Chrome ``trace_event`` exporter.

Produces the JSON array flavour of the Trace Event Format — loadable
directly in ``chrome://tracing`` and in Perfetto's legacy importer.  Every
emitted dict carries the required keys ``name``/``ph``/``ts``/``pid``/
``tid`` with ``ph`` restricted to ``X`` (complete span, with ``dur``) and
``i`` (instant); categories ride in ``cat``.

Timestamp convention: the simulator counts integer picoseconds, the trace
format wants microseconds — we divide by 1e6 and keep six decimals, so one
picosecond of simulated time is still distinguishable in the viewer.

Tracks: one ``tid`` per component category (kernel, dmi, buffer, memory,
processor, storage, accel, workload), assigned in sorted-category order so
the mapping is deterministic for a deterministic simulation.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import TraceEvent

#: single simulated machine: everything shares one pid
TRACE_PID = 1

PS_PER_US = 1_000_000


def _ts_us(ts_ps: int) -> float:
    return round(ts_ps / PS_PER_US, 6)


def to_chrome_events(events: Iterable["TraceEvent"]) -> List[dict]:
    """Convert recorded events into trace_event dicts, sorted by time.

    Sorting makes the stream's timestamps monotonic, which both the viewer
    and downstream diff tooling rely on; ties keep span-before-instant
    order so an instant emitted at a span boundary nests visually inside.
    """
    events = list(events)
    tids: Dict[str, int] = {
        cat: i + 1 for i, cat in enumerate(sorted({e.category for e in events}))
    }
    out: List[dict] = []
    for event in sorted(events, key=lambda e: (e.ts_ps, e.ph != "X", e.name)):
        record = {
            "name": event.name,
            "cat": event.category,
            "ph": event.ph,
            "ts": _ts_us(event.ts_ps),
            "pid": TRACE_PID,
            "tid": tids[event.category],
        }
        if event.ph == "X":
            record["dur"] = _ts_us(event.dur_ps or 0)
        if event.args:
            record["args"] = event.args
        out.append(record)
    return out


def write_chrome_trace(path: str, events: Iterable["TraceEvent"]) -> int:
    """Write the JSON-array trace file; returns the number of events."""
    records = to_chrome_events(events)
    with open(path, "w", encoding="utf-8") as fh:
        # hand-rolled array framing: one event per line keeps multi-hundred-
        # MB traces diffable and streamable without json.dump buffering
        fh.write("[\n")
        for i, record in enumerate(records):
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write(",\n" if i + 1 < len(records) else "\n")
        fh.write("]\n")
    return len(records)


def load_chrome_trace(path: str) -> List[dict]:
    """Read a trace written by :func:`write_chrome_trace` (or compatible)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict):  # object-form traces keep events under this key
        data = data.get("traceEvents", [])
    return data
