"""Chrome ``trace_event`` exporter.

Produces the JSON array flavour of the Trace Event Format — loadable
directly in ``chrome://tracing`` and in Perfetto's legacy importer.  Every
emitted dict carries the required keys ``name``/``ph``/``ts``/``pid``/
``tid`` with ``ph`` restricted to ``X`` (complete span, with ``dur``),
``i`` (instant), and the flow phases ``s``/``t``/``f`` that link a
journey's stage spans; categories ride in ``cat``.

Timestamp convention: the simulator counts integer picoseconds, the trace
format wants microseconds — we divide by 1e6 and keep six decimals, so one
picosecond of simulated time is still distinguishable in the viewer.

Tracks: one ``tid`` per component category (kernel, dmi, buffer, memory,
processor, storage, accel, workload, journey), assigned in sorted-category
order so the mapping is deterministic for a deterministic simulation.

Besides recorded :class:`TraceEvent` objects, exporters accept *extras*:
pre-built picosecond-keyed dicts (``name``/``cat``/``ph``/``ts_ps`` plus
optional ``dur_ps``/``args``/``id``/``bp``).  The attribution layer uses
them for journey stage spans, flow links, and the truncation marker.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import TraceEvent

#: single simulated machine: everything shares one pid
TRACE_PID = 1

#: phases carrying a flow id (journey links between stage spans)
FLOW_PHASES = ("s", "t", "f")

PS_PER_US = 1_000_000


def _ts_us(ts_ps: int) -> float:
    return round(ts_ps / PS_PER_US, 6)


def to_chrome_events(
    events: Iterable["TraceEvent"], extras: Optional[List[dict]] = None
) -> List[dict]:
    """Convert recorded events (plus any extras) into trace_event dicts.

    Sorting makes the stream's timestamps monotonic, which both the viewer
    and downstream diff tooling rely on; ties keep span-before-instant
    order so an instant emitted at a span boundary nests visually inside.
    """
    raw: List[dict] = [
        {
            "name": e.name,
            "cat": e.category,
            "ph": e.ph,
            "ts_ps": e.ts_ps,
            "dur_ps": e.dur_ps,
            "args": e.args,
        }
        for e in events
    ]
    raw.extend(extras or [])
    tids: Dict[str, int] = {
        cat: i + 1 for i, cat in enumerate(sorted({r["cat"] for r in raw}))
    }
    out: List[dict] = []
    for event in sorted(raw, key=lambda r: (r["ts_ps"], r["ph"] != "X", r["name"])):
        record = {
            "name": event["name"],
            "cat": event["cat"],
            "ph": event["ph"],
            "ts": _ts_us(event["ts_ps"]),
            "pid": TRACE_PID,
            "tid": tids[event["cat"]],
        }
        if event["ph"] == "X":
            record["dur"] = _ts_us(event.get("dur_ps") or 0)
        if event["ph"] in FLOW_PHASES:
            record["id"] = event["id"]
            if "bp" in event:
                record["bp"] = event["bp"]
        if event.get("args"):
            record["args"] = event["args"]
        out.append(record)
    return out


def truncation_marker(dropped: int, max_events: int, ts_ps: int) -> dict:
    """The instant that flags a clipped trace (events past the cap).

    Emitted as the chronologically last event so a reader scanning the
    file — or a human scrolling the viewer — cannot miss that spans are
    missing; ``args`` carries the drop count for tooling.
    """
    return {
        "name": "telemetry.truncated",
        "cat": "telemetry",
        "ph": "i",
        "ts_ps": ts_ps,
        "args": {"dropped_events": dropped, "max_events": max_events},
    }


def write_chrome_trace(
    path: str, events: Iterable["TraceEvent"], extras: Optional[List[dict]] = None
) -> int:
    """Write the JSON-array trace file; returns the number of events."""
    records = to_chrome_events(events, extras)
    with open(path, "w", encoding="utf-8") as fh:
        # hand-rolled array framing: one event per line keeps multi-hundred-
        # MB traces diffable and streamable without json.dump buffering
        fh.write("[\n")
        for i, record in enumerate(records):
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write(",\n" if i + 1 < len(records) else "\n")
        fh.write("]\n")
    return len(records)


def load_chrome_trace(path: str) -> List[dict]:
    """Read a trace written by :func:`write_chrome_trace` (or compatible)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict):  # object-form traces keep events under this key
        data = data.get("traceEvents", [])
    return data
