"""Unified tracing, metrics, and run-artifact subsystem.

The observability layer for the simulated memory stack: every component —
the event kernel, the DMI link and channel, the buffer pipelines, the
memory controllers, the storage stack, the accelerators — carries
lightweight probes that are inert (one ``is None`` test) until a
:class:`TraceSession` is entered:

    from repro.telemetry import TraceSession

    with TraceSession("table3") as session:
        table = run_table3(samples=8)
    session.write_chrome("/tmp/t3/trace.json")      # chrome://tracing
    session.write_metrics("/tmp/t3/metrics.jsonl")  # schema-versioned JSONL

See ``docs/telemetry.md`` for the artifact schema and
``scripts/trace_experiment.py`` for the CLI that wraps any named
experiment with a session.
"""

from .artifact import (
    SCHEMA,
    SCHEMA_VERSION,
    final_snapshot,
    meta_record,
    read_jsonl,
    result_record,
    snapshot_record,
    write_jsonl,
)
from .attribution import (
    ATTRIBUTION_SCHEMA,
    Journey,
    JourneyTracker,
    LatencyBreakdown,
    OccupancySampler,
    fold_stage_summaries,
    journey_record,
    merge_attribution,
    occupancy_sources,
    read_attribution,
)
from .buckets import bucket_of, slice_width, sparkline
from .chrome import load_chrome_trace, to_chrome_events, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, Metric
from .registry import MetricsRegistry
from .session import TraceEvent, TraceSession

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "Journey",
    "JourneyTracker",
    "LatencyBreakdown",
    "Metric",
    "MetricsRegistry",
    "OccupancySampler",
    "SCHEMA",
    "SCHEMA_VERSION",
    "TraceEvent",
    "TraceSession",
    "bucket_of",
    "final_snapshot",
    "fold_stage_summaries",
    "journey_record",
    "load_chrome_trace",
    "merge_attribution",
    "meta_record",
    "occupancy_sources",
    "read_attribution",
    "read_jsonl",
    "result_record",
    "slice_width",
    "snapshot_record",
    "sparkline",
    "to_chrome_events",
    "write_chrome_trace",
    "write_jsonl",
]
