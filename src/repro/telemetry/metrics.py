"""Metric primitives: counters, gauges, and sample histograms.

These are the building blocks the :class:`~repro.telemetry.registry.
MetricsRegistry` hands out.  They are deliberately simulator-agnostic —
no clocks, no events — so every layer of the library (and the legacy
``repro.sim.stats`` wrappers built on top of them) can share one set of
measurement semantics:

* every summary is **well-defined on an empty metric** (no ``ValueError``,
  no ``nan``): an unexercised code path reports zeros, not a crash;
* percentiles use the nearest-rank method on exact samples — experiment
  scales here are small enough that exactness beats streaming sketches.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Union

from ..errors import TelemetryError

Number = Union[int, float]

#: the percentile set reported by default summaries
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


class Metric:
    """Base class: a named measurement with a resettable value."""

    kind = "metric"

    def __init__(self, name: str = ""):
        self.name = name

    def reset(self) -> None:
        raise NotImplementedError

    def snapshot_into(self, out: Dict[str, float], prefix: str) -> None:
        """Write this metric's current values into a flat snapshot dict."""
        raise NotImplementedError


class Counter(Metric):
    """A named monotonic event counter."""

    kind = "counter"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.count = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise TelemetryError(
                f"counter {self.name!r}: cannot add negative {n}"
            )
        self.count += n

    def reset(self) -> None:
        self.count = 0

    def snapshot_into(self, out: Dict[str, float], prefix: str) -> None:
        out[prefix] = self.count

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.count}>"


class Gauge(Metric):
    """A named point-in-time value (queue depth, occupancy, knob position)."""

    kind = "gauge"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.value: float = 0.0
        self.high_water: float = 0.0
        self.updates = 0

    def set(self, value: Number) -> None:
        self.value = value
        self.updates += 1
        if value > self.high_water:
            self.high_water = value

    def reset(self) -> None:
        self.value = 0.0
        self.high_water = 0.0
        self.updates = 0

    def snapshot_into(self, out: Dict[str, float], prefix: str) -> None:
        out[prefix] = self.value
        out[f"{prefix}.high_water"] = self.high_water

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Gauge {self.name}={self.value}>"


class Histogram(Metric):
    """Collects numeric samples and summarizes them.

    Keeps every sample (exact percentiles).  All summaries are lenient:
    an empty histogram reports zeros rather than raising, so downstream
    artifact writers never have to special-case idle components.
    """

    kind = "histogram"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.samples: List[Number] = []

    def record(self, value: Number) -> None:
        self.samples.append(value)

    def reset(self) -> None:
        self.samples = []

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def min(self) -> Number:
        return min(self.samples) if self.samples else 0

    def max(self) -> Number:
        return max(self.samples) if self.samples else 0

    def total(self) -> Number:
        return sum(self.samples)

    def percentile(self, pct: float) -> Number:
        """Nearest-rank percentile, ``pct`` in [0, 100]; 0 when empty."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(pct / 100 * len(ordered)) - 1)
        return ordered[rank]

    def percentiles(
        self, pcts: Iterable[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, Number]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` — zeros when empty.

        One sort serves every requested percentile, so callers ask for the
        whole set instead of re-sorting per percentile.
        """
        ordered = sorted(self.samples)
        out: Dict[str, Number] = {}
        for pct in pcts:
            if not 0 <= pct <= 100:
                raise ValueError(f"percentile must be in [0, 100], got {pct}")
            if not ordered:
                out[_pct_key(pct)] = 0
                continue
            rank = max(0, math.ceil(pct / 100 * len(ordered)) - 1)
            out[_pct_key(pct)] = ordered[rank]
        return out

    def summary(self) -> Dict[str, float]:
        """Count/mean/min/max plus the default percentiles; never raises."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "mean": float(self.mean()),
            "min": float(self.min()),
            "max": float(self.max()),
        }
        for key, value in self.percentiles().items():
            out[key] = float(value)
        return out

    def snapshot_into(self, out: Dict[str, float], prefix: str) -> None:
        for key, value in self.summary().items():
            out[f"{prefix}.{key}"] = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Histogram {self.name} n={self.count}>"


def _pct_key(pct: float) -> str:
    """50.0 -> "p50", 99.9 -> "p99.9"."""
    if float(pct).is_integer():
        return f"p{int(pct)}"
    return f"p{pct:g}"
