"""Trace sessions: span/instant collection plus a metrics registry.

A :class:`TraceSession` is the opt-in switch for all telemetry.  While one
is active (it is a context manager), instrumented components emit:

* **spans** — `complete(category, name, start_ps, end_ps)` records one
  bounded piece of work (a frame on the wire, a DMI command round trip, a
  buffer service, a DRAM access) carrying simulated-time picosecond stamps;
* **instants** — point events (a replay trigger, a CRC drop, a write-cache
  stall);
* **metrics** — named counters/gauges/histograms in the session's
  :class:`~repro.telemetry.registry.MetricsRegistry`.

Nothing here touches the simulator: call sites pass ``sim.now_ps``
explicitly, which keeps this package import-safe from every layer
(``repro.sim`` imports telemetry, never the other way around).

Timestamps are picoseconds throughout; exporters convert to the Chrome
``trace_event`` microsecond convention at write time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from . import probe
from .artifact import snapshot_record, write_jsonl
from .attribution import (
    DEFAULT_MAX_JOURNEYS,
    DEFAULT_OCCUPANCY_PERIOD_PS,
    JourneyTracker,
    LatencyBreakdown,
    OccupancySampler,
    journey_chrome_extras,
    session_attribution_records,
)
from .chrome import to_chrome_events, truncation_marker, write_chrome_trace
from .metrics import Counter
from .registry import MetricsRegistry

#: default cap on stored trace events; beyond it events are counted but
#: dropped (metrics keep accumulating — they are O(1) in space)
DEFAULT_MAX_EVENTS = 2_000_000

#: counters pre-registered at zero in every session so artifact snapshots
#: have a stable core schema regardless of which paths a run exercises
CORE_COUNTERS = (
    "kernel.events",
    "dmi.frames_sent",
    "dmi.frames_accepted",
    "dmi.replays",
    "buffer.cache.hits",
    "buffer.cache.misses",
    "telemetry.dropped_events",
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.  ``dur_ps`` is None for instants."""

    ph: str                      # "X" (complete span) | "i" (instant)
    category: str                # component: kernel/dmi/buffer/memory/...
    name: str
    ts_ps: int
    dur_ps: Optional[int] = None
    args: Optional[dict] = None


class TraceSession:
    """Context-managed telemetry collection for one run."""

    def __init__(
        self,
        name: str = "trace",
        kernel_events: bool = False,
        max_events: int = DEFAULT_MAX_EVENTS,
        registry: Optional[MetricsRegistry] = None,
        journeys: bool = True,
        max_journeys: int = DEFAULT_MAX_JOURNEYS,
        occupancy_period_ps: Optional[int] = DEFAULT_OCCUPANCY_PERIOD_PS,
    ):
        self.name = name
        #: when True, the simulator kernel emits one instant per dispatched
        #: event — enormous traces, useful only for microscopic debugging
        self.kernel_events = kernel_events
        self.max_events = max_events
        self.registry = registry or MetricsRegistry()
        for core in CORE_COUNTERS:
            self.registry.counter(core)
        # bound once: span-capped sessions (campaign workers run
        # max_events=0) route EVERY span through _drop_event
        self._dropped_counter = self.registry.counter("telemetry.dropped_events")
        self.events: List[TraceEvent] = []
        self.dropped_events = 0
        self.snapshots: List[dict] = []
        #: request-journey tracker (None when attribution is disabled);
        #: journeys are metric-like — small, bounded — so they stay on even
        #: for span-capped sessions (the campaign workers run max_events=0)
        self.journeys: Optional[JourneyTracker] = (
            JourneyTracker(max_journeys) if journeys else None
        )
        #: arrival-driven queue-depth sampler (None disables sampling)
        self.occupancy: Optional[OccupancySampler] = (
            OccupancySampler(occupancy_period_ps) if occupancy_period_ps else None
        )
        #: closed fault-injection windows (plain dicts: label, injector,
        #: target, start_ps, end_ps), published by FaultController.stop()
        #: so the attribution artifact and the time-bucketed resilience
        #: view can line injections up against latency
        self.fault_windows: List[dict] = []
        self._closed = False

    # -- context management -------------------------------------------------

    def __enter__(self) -> "TraceSession":
        probe.activate(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        probe.deactivate(self)
        self._closed = True
        # always leave a final snapshot so artifacts are complete even when
        # the caller never snapshotted explicitly (or the run raised)
        self.snapshot("final")

    # -- event emission -----------------------------------------------------

    def complete(
        self,
        category: str,
        name: str,
        start_ps: int,
        end_ps: int,
        args: Optional[dict] = None,
    ) -> None:
        """Record a bounded span [start_ps, end_ps] in simulated time."""
        if len(self.events) >= self.max_events:
            self._drop_event()
            return
        self.events.append(
            TraceEvent("X", category, name, start_ps, max(0, end_ps - start_ps), args)
        )

    def instant(
        self,
        category: str,
        name: str,
        ts_ps: int,
        args: Optional[dict] = None,
    ) -> None:
        """Record a point event at ``ts_ps``."""
        if len(self.events) >= self.max_events:
            self._drop_event()
            return
        self.events.append(TraceEvent("i", category, name, ts_ps, None, args))

    def _drop_event(self) -> None:
        """Count an over-cap event: locally for the exporter's truncation
        marker, and in the registry so the loss survives into snapshots
        (and campaign merges) even when the events themselves are gone."""
        self.dropped_events += 1
        self._dropped_counter.add()

    # -- metric shortcuts ---------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        # Fast path: the hot DMI/buffer counters hit this tens of thousands
        # of times per run — skip the registry's get-or-create/type-check
        # machinery once the counter exists.
        metric = self.registry._metrics.get(name)
        if metric is not None and metric.__class__ is Counter and n >= 0:
            metric.count += n
        else:
            self.registry.counter(name).add(n)

    def gauge_set(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def record(self, name: str, value: float) -> None:
        self.registry.histogram(name).record(value)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self, label: str, ts_ps: Optional[int] = None) -> Dict[str, float]:
        """Snapshot the registry; stored (with the label) for the artifact."""
        values = self.registry.snapshot()
        self.snapshots.append({"label": label, "ts_ps": ts_ps, "metrics": values})
        return values

    # -- accounting ---------------------------------------------------------

    @property
    def span_count(self) -> int:
        return sum(1 for e in self.events if e.ph == "X")

    @property
    def instant_count(self) -> int:
        return sum(1 for e in self.events if e.ph == "i")

    def categories(self) -> List[str]:
        """Distinct component categories seen, sorted."""
        return sorted({e.category for e in self.events})

    # -- export -------------------------------------------------------------

    def _chrome_extras(self) -> List[dict]:
        """Journey spans/flow links, plus the truncation marker when the
        event cap clipped the trace."""
        extras: List[dict] = []
        if self.journeys is not None:
            extras.extend(journey_chrome_extras(self.journeys.completed))
        if self.dropped_events:
            last_ps = max(
                [e.ts_ps + (e.dur_ps or 0) for e in self.events]
                + [x["ts_ps"] + (x.get("dur_ps") or 0) for x in extras]
                + [0]
            )
            extras.append(
                truncation_marker(self.dropped_events, self.max_events, last_ps)
            )
        return extras

    def chrome_events(self) -> List[dict]:
        """Chrome ``trace_event`` dicts (sorted by timestamp)."""
        return to_chrome_events(self.events, self._chrome_extras())

    def write_chrome(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the number of events."""
        return write_chrome_trace(path, self.events, self._chrome_extras())

    def write_metrics(self, path: str, extra_records: Optional[List[dict]] = None) -> int:
        """Write the JSONL metrics artifact; returns the number of records.

        The record stream is: any ``extra_records`` the caller prepends
        (meta, results), then one snapshot record per :meth:`snapshot` call
        in emission order — the last snapshot is the run's final state.
        """
        records = list(extra_records or [])
        for snap in self.snapshots:
            records.append(
                snapshot_record(snap["label"], snap["ts_ps"], snap["metrics"])
            )
        return write_jsonl(path, records)

    # -- attribution --------------------------------------------------------

    def breakdown(self) -> LatencyBreakdown:
        """Fold this session's completed journeys into a breakdown."""
        from .attribution import journey_record

        folded = LatencyBreakdown()
        if self.journeys is not None:
            for journey in self.journeys.completed:
                folded.add_record(journey_record(journey))
        return folded

    def write_attribution(self, path: str) -> int:
        """Write the ``repro.attribution/v1`` journey artifact; returns the
        record count (a meta record is written even with journeys off)."""
        return write_jsonl(path, session_attribution_records(self))
