"""Time-bucket slicing and sparkline rendering, shared across views.

Two consumers cut simulated time into equal slices and need to agree on
the edge arithmetic so their rows line up:

* the injections-vs-latency resilience view
  (:func:`repro.faults.report.time_buckets` / ``scripts/run_chaos.py``),
* the service run-table windows (:mod:`repro.service.table` /
  ``scripts/run_service.py``).

Both clamp out-of-range points into the last slice rather than dropping
them — a completion that drains after the schedule ends still belongs to
the run — and both render compact trend lines with :func:`sparkline`.
All arithmetic is integer, so slice assignment is deterministic on every
platform.
"""

from __future__ import annotations

from typing import List, Sequence

#: eight-level bar glyphs, lowest to highest
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def slice_width(t0: int, t1: int, buckets: int) -> int:
    """Width of one slice cutting ``[t0, t1]`` into ``buckets`` pieces.

    Ceiling division so the last slice always covers ``t1``; never
    returns less than 1 (degenerate spans still bucket cleanly).
    """
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    return max(1, -(-(t1 - t0) // buckets))


def bucket_of(t: int, t0: int, width: int, buckets: int) -> int:
    """The slice index of time ``t``; out-of-range points clamp to the
    nearest edge slice instead of falling off the table."""
    return min(max((t - t0) // width, 0), buckets - 1)


def sparkline(values: Sequence[float], lo: float = 0.0) -> str:
    """Render values as a fixed-height bar string (one glyph per value).

    Bars scale linearly from ``lo`` (default 0 — bars share a baseline,
    so two sparklines over the same quantity are visually comparable) to
    the maximum value.  An all-``lo`` sequence renders as the lowest bar
    throughout; an empty sequence renders as "".
    """
    if not values:
        return ""
    top = max(max(values), lo)
    span = top - lo
    if span <= 0:
        return SPARK_GLYPHS[0] * len(values)
    out: List[str] = []
    levels = len(SPARK_GLYPHS) - 1
    for value in values:
        frac = (max(value, lo) - lo) / span
        out.append(SPARK_GLYPHS[round(frac * levels)])
    return "".join(out)
