"""The ambient trace hook instrumented components consult.

This module is the *entire* coupling between the simulation models and the
telemetry subsystem: instrumented code does

    from ..telemetry import probe
    ...
    trace = probe.session
    if trace is not None:
        trace.count("dmi.frames_sent")

``probe.session`` is ``None`` whenever no :class:`~repro.telemetry.session.
TraceSession` is active, so the disabled cost at every instrumentation
site is one module-attribute load and an ``is None`` test — no allocation,
no call.  Hot inner loops (the kernel's event dispatch) hoist the check
out of the loop entirely.

Only one session may be active at a time; sessions activate themselves on
``__enter__`` and must deactivate with the same object, which catches
accidental nesting and leaked sessions deterministically.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TelemetryError

#: the active TraceSession, or None (telemetry off).  Read directly.
session: Optional[object] = None


def activate(new_session: object) -> None:
    """Install ``new_session`` as the ambient session (fails if one is up)."""
    global session
    if session is not None:
        raise TelemetryError(
            "a TraceSession is already active; nested sessions are not "
            "supported (close the outer session first)"
        )
    session = new_session


def deactivate(old_session: object) -> None:
    """Remove the ambient session; must be the one that activated."""
    global session
    if session is not old_session:
        raise TelemetryError("deactivate() called with a non-active session")
    session = None


def active() -> bool:
    """Whether a trace session is currently collecting."""
    return session is not None
