"""The ``repro.attribution/v1`` artifact: journeys on disk, mergeable.

Record stream (JSON Lines, one object per line):

``meta``
    First record: schema, session/source name, journey counts (completed,
    dropped, abandoned in flight), the scenario labels seen.
``journey``
    One per completed journey: identity, scenario, bounds, and the stage
    visits with their queue/service classification.
``stage_summary``
    One per (scenario, stage): the aggregated statistics the breakdown
    computes — so a reader can grep headline numbers without re-folding
    every journey.
``fault_window``
    One per closed fault-injection window the session observed (label,
    injector, bounds) — the raw material of the time-bucketed
    injections-vs-latency view.

Merging follows the :meth:`MetricsRegistry.merge_snapshots` philosophy:
per-worker artifacts combine into one campaign artifact deterministically
— sources sorted by label, journeys kept in per-source order and tagged
with their source, summaries recomputed over the union — so the merged
file is byte-identical regardless of worker count or completion order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..artifact import read_jsonl, write_jsonl
from .breakdown import LatencyBreakdown
from .journey import Journey

#: bump when attribution record shapes change incompatibly
ATTRIBUTION_SCHEMA_VERSION = 1

#: the schema identifier stamped on every attribution record
ATTRIBUTION_SCHEMA = f"repro.attribution/v{ATTRIBUTION_SCHEMA_VERSION}"


def journey_record(journey: Journey) -> dict:
    """Serialize one journey to its plain-dict artifact form."""
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "kind": "journey",
        "jid": journey.jid,
        "op": journey.op,
        "addr": journey.addr,
        "channel": journey.channel,
        "scenario": journey.scenario,
        "start_ps": journey.start_ps,
        "end_ps": journey.end_ps,
        "stages": [
            {
                "stage": v.stage,
                "kind": v.kind,
                "nested": v.nested,
                "start_ps": v.start_ps,
                "end_ps": v.end_ps,
            }
            for v in journey.stages
        ],
        **({"faults": list(journey.faults)} if journey.faults else {}),
        **({"parent": journey.parent} if journey.parent is not None else {}),
        **({"depth": journey.depth} if journey.depth is not None else {}),
    }


def attribution_meta(
    name: str,
    journeys: int,
    dropped: int,
    abandoned: int,
    scenarios: List[str],
    **extra,
) -> dict:
    record = {
        "schema": ATTRIBUTION_SCHEMA,
        "schema_version": ATTRIBUTION_SCHEMA_VERSION,
        "kind": "meta",
        "name": name,
        "journeys": journeys,
        "dropped": dropped,
        "abandoned": abandoned,
        "scenarios": sorted(scenarios),
    }
    record.update(extra)
    return record


def stage_summary_records(breakdown: LatencyBreakdown) -> List[dict]:
    """One ``stage_summary`` record per (scenario, stage), plus one
    ``end_to_end`` summary per scenario."""
    out: List[dict] = []
    for scenario in breakdown.scenarios():
        e2e = breakdown.end_to_end(scenario)
        out.append({
            "schema": ATTRIBUTION_SCHEMA,
            "kind": "end_to_end",
            "scenario": scenario,
            "journeys": breakdown.journey_count(scenario),
            **{f"{k}_ps": v for k, v in e2e.items() if k != "count"},
        })
        for row in breakdown.stage_table(scenario):
            fields = dict(row)
            # the row's queue/service classification must not clobber the
            # record-kind discriminator
            fields["stage_kind"] = fields.pop("kind")
            out.append({
                "schema": ATTRIBUTION_SCHEMA,
                "kind": "stage_summary",
                "scenario": scenario,
                **fields,
            })
    return out


def session_attribution_records(session) -> List[dict]:
    """The full record stream for one :class:`TraceSession`'s journeys."""
    tracker = session.journeys
    if tracker is None:
        return [attribution_meta(session.name, 0, 0, 0, [], enabled=False)]
    breakdown = LatencyBreakdown()
    journeys = [journey_record(j) for j in tracker.completed]
    breakdown.add_records(journeys)
    records = [
        attribution_meta(
            session.name,
            len(tracker.completed),
            tracker.dropped,
            tracker.active_count,
            tracker.scenarios(),
        )
    ]
    records.extend(journeys)
    for window in getattr(session, "fault_windows", []) or []:
        records.append({
            "schema": ATTRIBUTION_SCHEMA,
            "kind": "fault_window",
            **window,
        })
    records.extend(stage_summary_records(breakdown))
    return records


def read_attribution(path: str) -> List[dict]:
    """Load an attribution artifact (same JSONL framing as telemetry)."""
    return read_jsonl(path)


def journey_records(records: Iterable[dict]) -> List[dict]:
    """The journey records of an artifact stream, in file order."""
    return [r for r in records if r.get("kind") == "journey"]


def fault_window_records(records: Iterable[dict]) -> List[dict]:
    """The fault-window records of an artifact stream, in file order."""
    return [r for r in records if r.get("kind") == "fault_window"]


def merge_attribution(
    sources: Iterable[Tuple[str, List[dict]]], name: str = "merged"
) -> List[dict]:
    """Merge per-source journey-record lists into one artifact stream.

    ``sources`` is ``(label, journey_records)`` pairs — e.g. one per
    campaign job.  Output is deterministic for a given set of sources:
    sources sort by label, each journey gains a ``source`` field, and
    summaries are recomputed over the union.
    """
    ordered: List[Tuple[str, List[dict]]] = sorted(sources, key=lambda s: s[0])
    merged: List[dict] = []
    scenarios: Dict[str, bool] = {}
    for label, records in ordered:
        for record in records:
            if record.get("kind") not in (None, "journey"):
                continue
            tagged = dict(record)
            tagged["kind"] = "journey"
            tagged["source"] = label
            merged.append(tagged)
            scenarios[tagged.get("scenario", "")] = True
    breakdown = LatencyBreakdown()
    breakdown.add_records(merged)
    out = [
        attribution_meta(
            name, len(merged), 0, 0, sorted(scenarios),
            sources=[label for label, _ in ordered],
        )
    ]
    out.extend(merged)
    out.extend(stage_summary_records(breakdown))
    return out


def fold_stage_summaries(
    sources: Iterable[Tuple[str, List[dict]]], name: str = "merged"
) -> List[dict]:
    """Merge per-source ``stage_summary``/``end_to_end`` records directly.

    The bounded-memory alternative to :func:`merge_attribution` for very
    large sweeps: each worker reduces its journeys to summary records
    in-process, and the campaign merge folds those — O(scenarios × stages)
    per source — instead of retaining every journey record until the end.

    Counts, means, minima/maxima, and shares merge exactly (weighted by
    journey counts).  Percentiles are **not** mergeable from summaries, so
    the folded ``p50/p95/p99`` are journey-count-weighted means of the
    per-source percentiles — a documented approximation, flagged with
    ``"folded": true`` on every output record.  The fold is deterministic:
    sources sort by label, scenarios and stages sort lexically.
    """
    ordered = sorted(sources, key=lambda s: s[0])
    e2e: Dict[str, dict] = {}
    stages: Dict[Tuple[str, str], dict] = {}
    for _, records in ordered:
        by_scenario = {
            r["scenario"]: r for r in records if r.get("kind") == "end_to_end"
        }
        for record in records:
            scenario = record.get("scenario", "")
            if record.get("kind") == "end_to_end":
                n = record["journeys"]
                acc = e2e.setdefault(scenario, {
                    "journeys": 0, "mean": 0.0, "min": None, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0,
                })
                acc["journeys"] += n
                acc["mean"] += record["mean_ps"] * n
                low = record["min_ps"]
                acc["min"] = low if acc["min"] is None else min(acc["min"], low)
                acc["max"] = max(acc["max"], record["max_ps"])
                for q in ("p50", "p95", "p99"):
                    acc[q] += record[f"{q}_ps"] * n
            elif record.get("kind") == "stage_summary":
                # mean_ps is per-scenario-journey (zero-filled), so the
                # stage's total time is mean × the source's journey count
                n = by_scenario[scenario]["journeys"]
                acc = stages.setdefault((scenario, record["stage"]), {
                    "stage_kind": record["stage_kind"], "count": 0,
                    "journeys": 0, "total": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0,
                })
                acc["count"] += record["count"]
                acc["journeys"] += n
                acc["total"] += record["mean_ps"] * n
                acc["max"] = max(acc["max"], record["max_ps"])
                for q in ("p50", "p95", "p99"):
                    acc[q] += record[f"{q}_ps"] * record["count"]

    out = [
        attribution_meta(
            name,
            sum(acc["journeys"] for acc in e2e.values()),
            0, 0, sorted(e2e),
            sources=[label for label, _ in ordered],
            folded=True,
        )
    ]
    for scenario in sorted(e2e):
        acc = e2e[scenario]
        n = acc["journeys"] or 1
        out.append({
            "schema": ATTRIBUTION_SCHEMA,
            "kind": "end_to_end",
            "scenario": scenario,
            "folded": True,
            "journeys": acc["journeys"],
            "mean_ps": acc["mean"] / n,
            "min_ps": acc["min"] or 0.0,
            "max_ps": acc["max"],
            **{f"{q}_ps": acc[q] / n for q in ("p50", "p95", "p99")},
        })
    for scenario, stage in sorted(stages):
        acc = stages[(scenario, stage)]
        scenario_total = e2e[scenario]["mean"]  # already Σ mean×journeys
        out.append({
            "schema": ATTRIBUTION_SCHEMA,
            "kind": "stage_summary",
            "scenario": scenario,
            "folded": True,
            "stage": stage,
            "stage_kind": acc["stage_kind"],
            "count": acc["count"],
            "mean_ps": acc["total"] / (acc["journeys"] or 1),
            **{f"{q}_ps": acc[q] / (acc["count"] or 1) for q in ("p50", "p95", "p99")},
            "max_ps": acc["max"],
            "share": acc["total"] / scenario_total if scenario_total else 0.0,
        })
    return out


def write_attribution(path: str, records: List[dict]) -> int:
    """Write an attribution record stream; returns the record count."""
    return write_jsonl(path, records)
