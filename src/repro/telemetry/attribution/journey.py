"""Request journeys: per-transaction latency attribution.

A *journey* follows one memory transaction from the moment the host
memory controller decides to issue it until the DMI *done* retires its
tag, stamping every stage boundary on the way:

    host.tag_wait -> dmi.down -> buffer -> dmi.up
                                   |
                                   +-- memory.queue / memory.service
                                       (nested controller visits)

Top-level stages partition the journey exactly — each one runs from the
journey's *cursor* (the end of the previous stage) to the timestamp the
recording site supplies — so their durations always sum to the end-to-end
latency.  Memory-controller visits are recorded as *nested* spans inside
the buffer window with explicit start/end stamps; the breakdown layer
subtracts them from the buffer stage to get the buffer's exclusive time.

Every visit is classified **queueing** (time spent waiting for a resource:
a free command tag, a controller queue slot) or **service** (time the
transaction is actually being worked on).  The classification is fixed at
the recording site, not inferred afterwards.

Journey ids cannot ride the DMI wire — frames pack to raw bytes — so the
host side *binds* ``(channel name, tag)`` to the journey id at issue and
the buffer side looks the binding up when it reassembles the command.

Storage IOs are journeys too.  A block-layer transfer (FIO IO, GPFS
write, write-cache destage) opens its own journey and the layers below
stage into it through the tracker's *context stack*: the issuing layer
``push()``-es its journey id around the downstream call, the lower layer
stages into ``current()``.  The 128-byte line commands a pmem transfer
fans out into still get their own DMI journeys — orders of magnitude
shorter than the 4K transfer that spawned them — so they are *linked*
(``parent``) rather than merged, and land in a ``:lines``-suffixed
scenario lane to keep the two latency populations separate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: visit classification: waiting for a resource vs being serviced
QUEUE = "queue"
SERVICE = "service"

#: default cap on completed journeys held in memory; beyond it new
#: journeys are counted but not recorded (a campaign job holds the full
#: set of a Table-3 run comfortably; this bounds pathological loops)
DEFAULT_MAX_JOURNEYS = 250_000

#: canonical top-level stage order (nested memory stages indented under
#: the buffer window in reports)
STAGE_ORDER = (
    "host.tag_wait",
    "dmi.down",
    "buffer",
    "memory.queue",
    "memory.service",
    # tiered-memory visits, nested inside the memory.service window:
    # migration traffic first (it runs before the demand access it was
    # triggered by), then the demand access on the tier that served it
    "tier.migrate",
    "tier.fast",
    "tier.slow",
    "dmi.up",
    # storage-stack stages, in the order a GPFS/FIO transfer visits them
    "gpfs.software",
    "wcache.admit",
    "storage.driver",
    "storage.lines",
    "storage.persist",
    "storage.queue",
    "storage.service",
    # write-cache read path: hits replay from the NVM log, misses pass
    # through to the backing store
    "wcache.read_hit",
    "wcache.read_miss",
    "storage.io",
    # accelerator DMA stages: pacing waits for a DIMM port's next burst
    # slot, then the streamed transfer itself
    "accel.pace",
    "accel.dma",
)

#: which canonical stages are queueing time
QUEUE_STAGES = frozenset({"host.tag_wait", "memory.queue",
                          "wcache.admit", "storage.queue", "accel.pace"})

#: which parent stage a *nested* span overlaps.  The breakdown layer
#: subtracts each nested stage's time from its parent so the report's
#: parent rows are exclusive and the stages still tile the journey.
#: Stages absent from the map nest under the default "buffer" window.
NESTED_UNDER = {
    "tier.fast": "memory.service",
    "tier.slow": "memory.service",
    "tier.migrate": "memory.service",
}


@dataclass
class StageVisit:
    """One stage's occupancy of a journey: a bounded, classified window."""

    stage: str
    start_ps: int
    end_ps: int
    kind: str = SERVICE            # QUEUE | SERVICE
    #: nested visits (memory controller) overlap the buffer stage rather
    #: than advancing the journey cursor
    nested: bool = False

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


@dataclass
class Journey:
    """One transaction's life: identity, scenario, and its stage visits."""

    jid: int
    op: str
    addr: int
    channel: str
    scenario: str
    start_ps: int
    end_ps: Optional[int] = None
    stages: List[StageVisit] = field(default_factory=list)
    #: where the next top-level stage starts (the end of the last one)
    cursor_ps: int = 0
    #: labels of fault windows this journey overlapped (empty = clean run)
    faults: Tuple[str, ...] = ()
    #: journey id of the enclosing journey (a pmem 4K transfer spawns DMI
    #: line journeys); None for top-level journeys
    parent: Optional[int] = None
    #: queue depth observed at issue (commands already in flight on the
    #: channel, this one excluded); None where the issuing layer has no
    #: depth notion — the raw material of depth-vs-latency correlation
    depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cursor_ps == 0:
            self.cursor_ps = self.start_ps

    @property
    def complete(self) -> bool:
        return self.end_ps is not None

    @property
    def total_ps(self) -> int:
        return (self.end_ps or self.cursor_ps) - self.start_ps

    def attributed_ps(self) -> int:
        """Sum of top-level stage durations (nested visits excluded)."""
        return sum(v.duration_ps for v in self.stages if not v.nested)

    def unattributed_ps(self) -> int:
        """End-to-end time not covered by any top-level stage."""
        return self.total_ps - self.attributed_ps()


class JourneyTracker:
    """Creates, stamps, and completes journeys for one trace session."""

    def __init__(self, max_journeys: int = DEFAULT_MAX_JOURNEYS):
        self.max_journeys = max_journeys
        self.scenario = ""
        self.completed: List[Journey] = []
        #: journeys refused because the completed store hit ``max_journeys``
        self.dropped = 0
        self._active: Dict[int, Journey] = {}
        self._bindings: Dict[Tuple[str, int], int] = {}
        #: ambient journey-context stack: the storage layers push their
        #: journey id around downstream calls so lower layers can stage
        #: into (or parent under) the enclosing journey
        self._context: List[Optional[int]] = []
        self._next_jid = 1
        #: when a FaultController is active it installs a callable
        #: ``(start_ps, end_ps) -> tuple[str, ...]`` here; journeys that
        #: overlap an active fault window get tagged at finish time.
        #: Nil-checked like the ambient probe: zero cost with no plan.
        self.fault_probe: Optional[Callable[[int, int], Tuple[str, ...]]] = None

    # -- scenario labelling -------------------------------------------------

    def set_scenario(self, label: str) -> None:
        """Stamp journeys begun from now on with ``label`` (e.g. a Table 3
        configuration name); grouping key for the breakdown reports."""
        self.scenario = label

    # -- lifecycle ----------------------------------------------------------

    def begin(
        self,
        op: str,
        addr: int,
        channel: str,
        now_ps: int,
        parent: Optional[int] = None,
        lane: Optional[str] = None,
        depth: Optional[int] = None,
    ) -> Optional[int]:
        """Open a journey; returns its id, or None when over the cap.

        ``parent`` links a spawned journey (a DMI line command inside a
        pmem transfer) to its enclosing one.  ``lane`` suffixes the
        scenario label so journeys of very different magnitudes aggregate
        separately; parented journeys default to the ``lines`` lane.
        ``depth`` stamps the issuing queue's in-flight count at begin
        time (this journey excluded).
        """
        if len(self.completed) >= self.max_journeys:
            self.dropped += 1
            return None
        if lane is None and parent is not None:
            lane = "lines"
        scenario = self.scenario
        if lane:
            scenario = f"{scenario}:{lane}" if scenario else lane
        jid = self._next_jid
        self._next_jid += 1
        self._active[jid] = Journey(
            jid, op, addr, channel, scenario, now_ps, parent=parent,
            depth=depth,
        )
        return jid

    def finish(self, jid: int, now_ps: int) -> Optional[Journey]:
        """Close a journey; implicitly closes the trailing stage gap."""
        journey = self._active.pop(jid, None)
        if journey is None:
            return None
        journey.end_ps = now_ps
        if self.fault_probe is not None:
            tags = self.fault_probe(journey.start_ps, now_ps)
            if tags:
                journey.faults = tuple(tags)
        self.completed.append(journey)
        return journey

    # -- stage recording ----------------------------------------------------

    def stage_to(self, jid: int, stage: str, end_ps: int, kind: str = SERVICE) -> None:
        """Record the top-level stage from the journey cursor to ``end_ps``.

        Zero-length stages (the transaction did not wait / the boundary
        coincides) are skipped rather than recorded, but the cursor always
        advances, so the partition property holds regardless.
        """
        journey = self._active.get(jid)
        if journey is None:
            return
        if end_ps > journey.cursor_ps:
            journey.stages.append(
                StageVisit(stage, journey.cursor_ps, end_ps, kind)
            )
            journey.cursor_ps = end_ps

    def stage_span(
        self, jid: int, stage: str, start_ps: int, end_ps: int, kind: str = SERVICE
    ) -> None:
        """Record a nested visit with explicit bounds (cursor untouched)."""
        journey = self._active.get(jid)
        if journey is None or end_ps <= start_ps:
            return
        journey.stages.append(StageVisit(stage, start_ps, end_ps, kind, nested=True))

    # -- journey context (storage-stack nesting) ----------------------------

    def push(self, jid: Optional[int]) -> None:
        """Enter a journey context: downstream layers stage into — and
        parent new journeys under — ``current()`` until the matching
        :meth:`pop`.  Pushing ``None`` (journey refused over the cap) is
        legal and keeps push/pop strictly paired."""
        self._context.append(jid)

    def pop(self) -> Optional[int]:
        """Leave the innermost journey context."""
        return self._context.pop() if self._context else None

    def current(self) -> Optional[int]:
        """The enclosing journey id, or None outside any context."""
        return self._context[-1] if self._context else None

    # -- wire-boundary correlation ------------------------------------------

    def bind(self, channel: str, tag: int, jid: int) -> None:
        """Associate a (channel, tag) pair with a journey for the buffer
        side to look up — journey ids never cross the serialized wire."""
        self._bindings[(channel, tag)] = jid

    def bound(self, channel: str, tag: int) -> Optional[int]:
        return self._bindings.get((channel, tag))

    def unbind(self, channel: str, tag: int) -> None:
        self._bindings.pop((channel, tag), None)

    # -- accounting ---------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Journeys begun but not finished (abandoned ones linger here —
        e.g. commands lost to a channel reset)."""
        return len(self._active)

    def scenarios(self) -> List[str]:
        return sorted({j.scenario for j in self.completed})


def journey_chrome_extras(journeys: List[Journey]) -> List[dict]:
    """Chrome trace extras for journeys: stage spans linked by flow events.

    Every stage visit becomes a complete span on the ``journey`` track; a
    flow chain (``ph`` s/t/f with ``id`` = journey id) threads the visits
    so the viewer draws arrows from stage to stage of one transaction.
    """
    out: List[dict] = []
    for journey in journeys:
        if not journey.stages:
            continue
        flow_name = f"journey:{journey.op}"
        ordered = sorted(journey.stages, key=lambda v: (v.start_ps, v.end_ps))
        last = len(ordered) - 1
        for i, visit in enumerate(ordered):
            args = {
                "jid": journey.jid,
                "kind": visit.kind,
                "op": journey.op,
            }
            if journey.scenario:
                args["scenario"] = journey.scenario
            out.append({
                "name": visit.stage,
                "cat": "journey",
                "ph": "X",
                "ts_ps": visit.start_ps,
                "dur_ps": visit.duration_ps,
                "args": args,
            })
            flow_ph = "s" if i == 0 else ("f" if i == last else "t")
            flow = {
                "name": flow_name,
                "cat": "journey",
                "ph": flow_ph,
                "ts_ps": visit.start_ps,
                "id": journey.jid,
            }
            if flow_ph == "f":
                flow["bp"] = "e"  # bind the flow end to the enclosing slice
            out.append(flow)
    return out
