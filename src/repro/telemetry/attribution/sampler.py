"""Arrival-driven occupancy sampling: queue depths without sim events.

The simulator's :meth:`run` drains its event queue, so a self-rescheduling
periodic sampler would either never let the run terminate or artificially
extend simulated time past the last real event — corrupting every
time-derived measurement.  Instead, sampling is *arrival driven*: the
host memory controller (the one point every transaction passes) calls
:meth:`OccupancySampler.maybe_sample` from inside its existing
ambient-probe nil-check, and the sampler takes at most one sample per
``period_ps`` of simulated time.  Idle systems take no samples (nothing
arrives), which is exactly right — there is no occupancy to observe.

Sources are plain callables returning the current depth of one queue:
DMI tag windows, replay buffers, the buffer write cache, memory
controller queues, DRAM banks, MBS command engines.  They are registered
per system build (:func:`occupancy_sources`) and recorded as
``occupancy.<name>`` histograms, so snapshots report p50/p95/max depth.
"""

from __future__ import annotations

from typing import Callable, Dict

#: default sampling period: 100 ns of simulated time
DEFAULT_OCCUPANCY_PERIOD_PS = 100_000


class OccupancySampler:
    """Periodic (in simulated time) sampling of registered depth sources."""

    def __init__(self, period_ps: int = DEFAULT_OCCUPANCY_PERIOD_PS):
        if period_ps <= 0:
            raise ValueError("occupancy sampling period must be positive")
        self.period_ps = period_ps
        self.sources: Dict[str, Callable[[], float]] = {}
        #: (metric name, reader) pairs — names are prefixed once at
        #: registration, not re-formatted on every sample
        self._items: list = []
        self.samples_taken = 0
        self._next_due_ps = 0

    def set_sources(self, sources: Dict[str, Callable[[], float]]) -> None:
        """Replace the source set (one system build owns the sampler at a
        time — experiments that build several systems re-register)."""
        self.sources = dict(sources)
        self._items = [
            (f"occupancy.{name}", read) for name, read in self.sources.items()
        ]

    def maybe_sample(self, trace, now_ps: int) -> bool:
        """Sample every source if the period has elapsed; returns whether
        a sample was taken.  Call sites are already under the ambient
        probe nil-check, so the disabled cost stays one attribute load."""
        if now_ps < self._next_due_ps or not self._items:
            return False
        self._next_due_ps = now_ps + self.period_ps
        self.samples_taken += 1
        trace.count("occupancy.samples")
        for name, read in self._items:
            trace.record(name, read())
        return True


def occupancy_sources(socket) -> Dict[str, Callable[[], float]]:
    """Depth sources for every queue behind a :class:`Power8Socket`.

    Covers, per populated channel: the host tag window, both replay
    buffers (unacknowledged frames in flight), the buffer cache line
    count, each memory controller's request queue, busy DRAM banks, and
    — on ConTutto — the MBS command-engine pool.
    """
    sources: Dict[str, Callable[[], float]] = {}
    sim = socket.sim
    for index in sorted(socket.slots):
        slot = socket.slots[index]
        ch = f"ch{index}"
        tags = slot.host_mc.tags
        sources[f"dmi.{ch}.tags_in_flight"] = lambda t=tags: t.in_flight_count
        host_ep = slot.channel.host_endpoint
        buf_ep = slot.channel.buffer_endpoint
        sources[f"dmi.{ch}.host_unacked"] = lambda e=host_ep: e._replay.outstanding
        sources[f"dmi.{ch}.buffer_unacked"] = lambda e=buf_ep: e._replay.outstanding

        buffer = slot.buffer
        cache = getattr(buffer, "cache", None)
        if cache is not None:
            sources[f"buffer.{buffer.name}.cache_lines"] = (
                lambda c=cache: c.lines_held
            )
        mbs = getattr(buffer, "mbs", None)
        if mbs is not None:
            sources[f"buffer.{buffer.name}.engines_busy"] = (
                lambda m=mbs: m.engines.busy_count
            )
        for mc in getattr(buffer, "ports", []):
            sources[f"memory.{mc.name}.in_flight"] = lambda m=mc: m.in_flight
            device = mc.device
            if hasattr(device, "hot_slow_pages"):
                # tiered hybrid memory: slow-tier pages currently over
                # the promotion threshold — the migration backlog
                sources[f"tier.{device.name}.hot_slow_pages"] = (
                    lambda d=device: float(d.hot_slow_pages)
                )
            if hasattr(device, "banks_busy"):
                sources[f"memory.{device.name}.banks_busy"] = (
                    lambda d=device, s=sim: d.banks_busy(s.now_ps)
                )
                # per-bank busy flags: the contention histogram shows how
                # evenly an address stream spreads across the rank
                for bank in range(device.NUM_BANKS):
                    sources[f"memory.{device.name}.bank{bank}_busy"] = (
                        lambda d=device, b=bank, s=sim: float(
                            d.bank_busy(b, s.now_ps)
                        )
                    )
    return sources
