"""Per-transaction latency attribution: journeys, sampling, breakdowns.

The layer that answers "where did this read's 320 ns go?" against the
simulated platform:

* :mod:`~repro.telemetry.attribution.journey` — request journeys with
  queue/service-classified stage visits, threaded host -> DMI -> buffer
  -> memory -> host;
* :mod:`~repro.telemetry.attribution.sampler` — arrival-driven occupancy
  sampling of every queue on the path;
* :mod:`~repro.telemetry.attribution.breakdown` — per-stage percentile
  tables and the critical-path summary (the Table 3 decomposition);
* :mod:`~repro.telemetry.attribution.artifact` — the
  ``repro.attribution/v1`` JSONL artifact and its deterministic
  multi-worker merge.

See the "Attribution" section of ``docs/telemetry.md``.
"""

from .artifact import (
    ATTRIBUTION_SCHEMA,
    ATTRIBUTION_SCHEMA_VERSION,
    attribution_meta,
    fault_window_records,
    fold_stage_summaries,
    journey_record,
    journey_records,
    merge_attribution,
    read_attribution,
    session_attribution_records,
    stage_summary_records,
    write_attribution,
)
from .breakdown import LatencyBreakdown
from .journey import (
    DEFAULT_MAX_JOURNEYS,
    QUEUE,
    QUEUE_STAGES,
    SERVICE,
    STAGE_ORDER,
    Journey,
    JourneyTracker,
    StageVisit,
    journey_chrome_extras,
)
from .sampler import DEFAULT_OCCUPANCY_PERIOD_PS, OccupancySampler, occupancy_sources

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "ATTRIBUTION_SCHEMA_VERSION",
    "DEFAULT_MAX_JOURNEYS",
    "DEFAULT_OCCUPANCY_PERIOD_PS",
    "Journey",
    "JourneyTracker",
    "LatencyBreakdown",
    "OccupancySampler",
    "QUEUE",
    "QUEUE_STAGES",
    "SERVICE",
    "STAGE_ORDER",
    "StageVisit",
    "attribution_meta",
    "fault_window_records",
    "fold_stage_summaries",
    "journey_chrome_extras",
    "journey_record",
    "journey_records",
    "merge_attribution",
    "occupancy_sources",
    "read_attribution",
    "session_attribution_records",
    "stage_summary_records",
    "write_attribution",
]
