"""Fold journeys into per-stage latency tables and a critical path.

:class:`LatencyBreakdown` consumes journey *records* (the plain-dict form
that crosses artifact and process boundaries — see
:func:`~repro.telemetry.attribution.artifact.journey_record`) and
aggregates, per scenario:

* an end-to-end histogram of journey totals;
* one histogram per stage of per-journey stage time, where the ``buffer``
  stage is reported **exclusive** of the nested memory-controller visits
  (so the top-level stages tile the journey and sum to the total);
* the residual (*unattributed*) time — zero by construction when every
  stage hook fired, and the self-check that catches a missing hook.

This reproduces the paper's Table 3 decomposition from first principles:
the ConTutto-minus-Centaur latency delta falls out as the per-stage mean
differences between the two scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import Histogram
from .journey import NESTED_UNDER, QUEUE_STAGES, STAGE_ORDER


class LatencyBreakdown:
    """Per-scenario, per-stage aggregation of journey records."""

    def __init__(self):
        self._stages: Dict[Tuple[str, str], Histogram] = {}
        self._totals: Dict[str, Histogram] = {}
        self._residuals: Dict[str, Histogram] = {}
        self._counts: Dict[str, int] = {}
        # clean vs fault-affected split of journey totals (fault-tagged
        # journeys carry a "faults" list in their record)
        self._clean_totals: Dict[str, Histogram] = {}
        self._fault_totals: Dict[str, Histogram] = {}
        self._fault_counts: Dict[str, int] = {}

    # -- ingestion ----------------------------------------------------------

    def add_record(self, record: dict) -> None:
        """Fold one journey record (a plain dict) into the aggregates."""
        if record.get("end_ps") is None:
            return
        scenario = record.get("scenario", "")
        total = record["end_ps"] - record["start_ps"]
        self._counts[scenario] = self._counts.get(scenario, 0) + 1
        self._hist(self._totals, scenario).record(total)
        if record.get("faults"):
            self._fault_counts[scenario] = self._fault_counts.get(scenario, 0) + 1
            self._hist(self._fault_totals, scenario).record(total)
        else:
            self._hist(self._clean_totals, scenario).record(total)

        top: Dict[str, int] = {}
        nested: Dict[str, int] = {}
        child_sum: Dict[str, int] = {}
        for visit in record.get("stages", []):
            dur = visit["end_ps"] - visit["start_ps"]
            if visit.get("nested"):
                stage = visit["stage"]
                nested[stage] = nested.get(stage, 0) + dur
                parent = NESTED_UNDER.get(stage, "buffer")
                child_sum[parent] = child_sum.get(parent, 0) + dur
            else:
                top[visit["stage"]] = top.get(visit["stage"], 0) + dur
        # top-level stages tile the journey, so the residual is fixed
        # before any exclusive-time bookkeeping below
        residual = total - sum(top.values())
        # each parent window contains its nested visits; report the
        # parent exclusive of them (nested tier.* spans live inside
        # memory.service, memory.* visits inside the buffer window)
        for parent, children_ps in child_sum.items():
            if parent in top:
                top[parent] = max(0, top[parent] - children_ps)
            elif parent in nested:
                nested[parent] = max(0, nested[parent] - children_ps)
        for stage, dur in top.items():
            self._stage_hist(scenario, stage).record(dur)
        for stage, dur in nested.items():
            self._stage_hist(scenario, stage).record(dur)
        self._hist(self._residuals, scenario).record(residual)

    def add_records(self, records) -> None:
        for record in records:
            if record.get("kind") == "journey" or "stages" in record:
                self.add_record(record)

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _hist(store: Dict[str, Histogram], key: str) -> Histogram:
        hist = store.get(key)
        if hist is None:
            hist = store[key] = Histogram(key)
        return hist

    def _stage_hist(self, scenario: str, stage: str) -> Histogram:
        return self._hist(self._stages, (scenario, stage))  # type: ignore[arg-type]

    @staticmethod
    def stage_kind(stage: str) -> str:
        return "queue" if stage in QUEUE_STAGES else "service"

    # -- queries ------------------------------------------------------------

    def scenarios(self) -> List[str]:
        return sorted(self._counts)

    def journey_count(self, scenario: str = "") -> int:
        return self._counts.get(scenario, 0)

    def fault_count(self, scenario: str = "") -> int:
        """Journeys of the scenario that overlapped a fault window."""
        return self._fault_counts.get(scenario, 0)

    def fault_split(
        self, scenario: str
    ) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
        """(clean, fault-affected) end-to-end summaries in ps, or ``None``
        when the scenario saw no fault-tagged journeys."""
        if not self._fault_counts.get(scenario):
            return None
        return (
            self._hist(self._clean_totals, scenario).summary(),
            self._hist(self._fault_totals, scenario).summary(),
        )

    def stages(self, scenario: str) -> List[str]:
        """Stages seen for a scenario, canonical order first."""
        seen = {st for (sc, st) in self._stages if sc == scenario}
        ordered = [s for s in STAGE_ORDER if s in seen]
        return ordered + sorted(seen - set(STAGE_ORDER))

    def end_to_end(self, scenario: str) -> Dict[str, float]:
        """Summary (count/mean/min/max/percentiles) of journey totals, ps."""
        return self._hist(self._totals, scenario).summary()

    def residual(self, scenario: str) -> Dict[str, float]:
        """Summary of per-journey unattributed time, ps."""
        return self._hist(self._residuals, scenario).summary()

    def stage_table(self, scenario: str) -> List[dict]:
        """One row per stage: classification, stats, and mean share.

        ``mean_ps`` is averaged over **all** journeys of the scenario (a
        journey without the stage contributes zero), so the rows' means
        sum to the end-to-end mean minus the residual; ``share`` is the
        stage's fraction of total scenario time.
        """
        count = self.journey_count(scenario)
        total_sum = self._hist(self._totals, scenario).total()
        rows = []
        for stage in self.stages(scenario):
            hist = self._stage_hist(scenario, stage)
            stats = hist.summary()
            rows.append({
                "stage": stage,
                "kind": self.stage_kind(stage),
                "count": hist.count,
                "mean_ps": hist.total() / count if count else 0.0,
                "p50_ps": stats["p50"],
                "p95_ps": stats["p95"],
                "p99_ps": stats["p99"],
                "max_ps": stats["max"],
                "share": hist.total() / total_sum if total_sum else 0.0,
            })
        return rows

    def critical_path(self, scenario: str) -> List[dict]:
        """Stage rows ordered by mean contribution, largest first."""
        return sorted(
            self.stage_table(scenario), key=lambda r: r["mean_ps"], reverse=True
        )

    def delta(self, scenario: str, baseline: str) -> List[dict]:
        """Per-stage mean difference ``scenario - baseline`` (ps)."""
        base = {r["stage"]: r["mean_ps"] for r in self.stage_table(baseline)}
        other = {r["stage"]: r["mean_ps"] for r in self.stage_table(scenario)}
        stages = [s for s in STAGE_ORDER if s in base or s in other]
        stages += sorted((set(base) | set(other)) - set(STAGE_ORDER))
        return [
            {
                "stage": stage,
                "mean_ps": other.get(stage, 0.0),
                "baseline_ps": base.get(stage, 0.0),
                "delta_ps": other.get(stage, 0.0) - base.get(stage, 0.0),
            }
            for stage in stages
        ]

    # -- self-check ---------------------------------------------------------

    def check(self, tolerance: float = 0.01) -> List[str]:
        """Consistency warnings; empty when the breakdown is trustworthy.

        The load-bearing check is the residual: per-scenario mean
        unattributed time must stay within ``tolerance`` of the mean
        end-to-end latency, or some stage hook did not fire.
        """
        warnings: List[str] = []
        if not self._counts:
            warnings.append("no journeys: attribution was disabled or nothing ran")
        for scenario in self.scenarios():
            total_mean = self._hist(self._totals, scenario).mean()
            residual_mean = abs(self._hist(self._residuals, scenario).mean())
            if total_mean > 0 and residual_mean > tolerance * total_mean:
                warnings.append(
                    f"scenario {scenario or '(unlabelled)'!r}: unattributed time "
                    f"{residual_mean:.0f}ps is {residual_mean / total_mean:.1%} of "
                    f"the {total_mean:.0f}ps mean latency (tolerance "
                    f"{tolerance:.0%}) — a stage hook is missing"
                )
            for stage in self.stages(scenario):
                if self._stage_hist(scenario, stage).min() < 0:
                    warnings.append(
                        f"scenario {scenario!r}: stage {stage!r} has a negative "
                        "duration — timestamps are inconsistent"
                    )
        return warnings

    def scenario_mean_ns(self, scenario: str) -> float:
        """Convenience: mean end-to-end journey latency in nanoseconds."""
        return self._hist(self._totals, scenario).mean() / 1_000.0
