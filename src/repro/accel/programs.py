"""A library of Access-processor microprograms.

Parameterized assembly kernels for the operations Section 4.3 attributes
to the Access processor: access generation on behalf of accelerators,
streaming scans, and block moves.  Each function returns assembled code
ready for :meth:`~repro.accel.access_processor.AccessProcessor.load_program`
(or for encoding into an on-DIMM executable image).

Register conventions used by these kernels:

* ``r1`` — source address cursor
* ``r2`` — destination address cursor (move kernels)
* ``r3`` — loop counter / remaining elements
* ``r4``/``r5`` — accumulators (sum, running min/max)
* ``r6``/``r7`` — scratch
"""

from __future__ import annotations

from typing import List

from ..errors import AssemblerError
from .isa import Instruction, assemble


def sum_words(base_addr: int, num_words: int) -> List[Instruction]:
    """Sum ``num_words`` 64-bit words starting at ``base_addr`` into r4."""
    if num_words < 1:
        raise AssemblerError("sum_words needs at least one word")
    return assemble(f"""
        ldi r1, {base_addr}
        ldi r3, {num_words}
        ldi r4, 0
        ldi r6, 0
        loop:
        ld r5, [r1]
        add r4, r4, r5
        addi r1, r1, 8
        addi r6, r6, 1
        bne r6, r3, loop
        halt
    """)


def minmax_words(base_addr: int, num_words: int) -> List[Instruction]:
    """Running min (r4) and max (r5) of 64-bit words (Table 5's kernel
    expressed as a microprogram rather than a hard engine)."""
    if num_words < 1:
        raise AssemblerError("minmax_words needs at least one word")
    return assemble(f"""
        ldi r1, {base_addr}
        ldi r3, {num_words}
        ld r4, [r1]          ; seed min with the first element
        mov r5, r4           ; seed max
        ldi r6, 1
        addi r1, r1, 8
        beq r6, r3, done
        loop:
        ld r7, [r1]
        min r4, r4, r7
        max r5, r5, r7
        addi r1, r1, 8
        addi r6, r6, 1
        bne r6, r3, loop
        done:
        halt
    """)


def block_move(src_addr: int, dst_addr: int, nbytes: int) -> List[Instruction]:
    """DMA a block from src to dst through the stream buffer."""
    if nbytes < 1:
        raise AssemblerError("block_move needs at least one byte")
    return assemble(f"""
        ldi r1, {src_addr}
        ldi r2, {dst_addr}
        ldi r3, {nbytes}
        dmard r4, r1, r3
        dmawr r5, r2, r3
        halt
    """)


def strided_gather(base_addr: int, stride_bytes: int, count: int) -> List[Instruction]:
    """Sum every ``stride_bytes``-th word — the address-generation pattern
    the Access processor performs 'on behalf of the attached accelerators'."""
    if count < 1 or stride_bytes < 8:
        raise AssemblerError("strided_gather needs count >= 1, stride >= 8")
    return assemble(f"""
        ldi r1, {base_addr}
        ldi r3, {count}
        ldi r4, 0
        ldi r6, 0
        loop:
        ld r5, [r1]
        add r4, r4, r5
        addi r1, r1, {stride_bytes}
        addi r6, r6, 1
        bne r6, r3, loop
        halt
    """)


def pointer_chase_program(head_addr: int, hops: int) -> List[Instruction]:
    """Follow a linked chain: each word holds the address of the next.

    The worst-case access pattern for memory latency (no MLP) — the class
    of computation the paper flags for further study.  r4 ends with the
    final address reached.
    """
    if hops < 1:
        raise AssemblerError("pointer_chase needs at least one hop")
    return assemble(f"""
        ldi r4, {head_addr}
        ldi r3, {hops}
        ldi r6, 0
        loop:
        ld r4, [r4]          ; the loaded value IS the next address
        addi r6, r6, 1
        bne r6, r3, loop
        halt
    """)
