"""Bandwidth arbitration between the POWER8 and the accelerators.

The Access processor "arbitrate[s] and schedule[s] the load and store
instructions to the DDR3 DIMMs, thereby supporting various schemes for
allocating and distributing the available memory bandwidth between the
POWER8 and the individual accelerators" (Section 4.3).

:class:`BandwidthArbiter` implements the allocation policies as a front
end over the DIMM ports: weighted shares with work conservation.  Requests
from a class that exceeds its share are delayed until its token bucket
refills; unused bandwidth flows to whoever is asking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AccelError
from ..sim import Signal, Simulator


@dataclass(frozen=True)
class SharePolicy:
    """Weighted bandwidth shares per requestor class."""

    shares: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.shares:
            raise AccelError("share policy needs at least one class")
        for name, share in self.shares.items():
            if share <= 0:
                raise AccelError(f"share for {name!r} must be positive")

    def fraction(self, name: str) -> float:
        if name not in self.shares:
            raise AccelError(f"unknown requestor class {name!r}")
        return self.shares[name] / sum(self.shares.values())


#: the default split the paper's experiments imply: the host keeps priority
#: but accelerators may consume everything the host leaves idle
HOST_PRIORITY = SharePolicy({"host": 3.0, "accel": 1.0})
EQUAL_SPLIT = SharePolicy({"host": 1.0, "accel": 1.0})


class BandwidthArbiter:
    """Token-bucket arbitration over an aggregate bandwidth budget."""

    def __init__(
        self,
        sim: Simulator,
        aggregate_gb_s: float,
        policy: SharePolicy = HOST_PRIORITY,
        window_us: float = 10.0,
        name: str = "arbiter",
    ):
        if aggregate_gb_s <= 0:
            raise AccelError("aggregate bandwidth must be positive")
        self.sim = sim
        self.aggregate_gb_s = aggregate_gb_s
        self.policy = policy
        self.window_ps = int(window_us * 1e6)
        self.name = name
        self._window_start_ps = 0
        self._consumed: Dict[str, int] = {}
        self.delays = 0

    def _budget_bytes(self, requestor: str) -> int:
        """Bytes ``requestor`` may move per accounting window."""
        window_s = self.window_ps / 1e12
        total = self.aggregate_gb_s * 1e9 * window_s
        return int(total * self.policy.fraction(requestor))

    def _roll_window(self) -> None:
        if self.sim.now_ps - self._window_start_ps >= self.window_ps:
            self._window_start_ps = self.sim.now_ps
            self._consumed = {}

    def request(self, requestor: str, nbytes: int) -> Signal:
        """Claim bandwidth for a transfer; fires when the transfer may start.

        Work-conserving: if the *other* classes are idle this window, a
        requestor may exceed its share.
        """
        self._roll_window()
        done = Signal(f"{self.name}.{requestor}")
        used = self._consumed.get(requestor, 0)
        others_active = any(k != requestor and v > 0 for k, v in self._consumed.items())
        budget = self._budget_bytes(requestor)
        over_budget = used + nbytes > budget
        self._consumed[requestor] = used + nbytes
        if over_budget and others_active:
            # delay to the next window boundary — the share was exhausted
            self.delays += 1
            resume = self._window_start_ps + self.window_ps
            self.sim.call_at(max(resume, self.sim.now_ps), done.trigger)
        else:
            self.sim.call_after(0, done.trigger)
        return done

    def consumed_gb_s(self, requestor: str) -> float:
        """Bandwidth the class has consumed in the current window."""
        elapsed_ps = max(1, self.sim.now_ps - self._window_start_ps)
        return self._consumed.get(requestor, 0) / (elapsed_ps / 1e12) / 1e9
