"""Near-memory FFT accelerator farm (Table 5, row 3).

Calculates 1024-point FFTs over 8-byte complex samples (two float32 per
sample).  Per the paper, "the FFTs are calculated in parallel on multiple
FFT accelerators, in such a way that ... sample and result transfers
between a given accelerator and the DIMMs are overlapped with computation
on the other accelerators" — so the farm, like the other kernels, runs at
the DIMM ports' bandwidth (1.3 Gsamples/s ~ 10.4 GB/s of sample reads).

The FFT is functionally real: each 1024-sample block is transformed with
an in-library radix-2 implementation (validated against ``numpy.fft``) and
the results are written back to the DIMMs, so a read-back sees actual
spectra.  Compute time per engine is modeled as a pipelined radix-2 core
at the fabric clock; with enough engines the transfers dominate.
"""

from __future__ import annotations

import numpy as np

from ..errors import AccelError
from .access_processor import DMA_CHUNK_BYTES
from .block import BlockAccelerator, ControlBlock

KERNEL_FFT = 0x12

FFT_POINTS = 1024
SAMPLE_BYTES = 8  # complex64
BLOCK_BYTES = FFT_POINTS * SAMPLE_BYTES  # 8 KiB — exactly one DMA chunk


def radix2_fft(samples: np.ndarray) -> np.ndarray:
    """Iterative radix-2 DIT FFT over complex64 samples.

    This is the algorithm the hardware pipeline implements; kept separate
    so tests can validate it against numpy's FFT.
    """
    n = len(samples)
    if n & (n - 1):
        raise AccelError(f"FFT size {n} is not a power of two")
    data = np.asarray(samples, dtype=np.complex128).copy()
    # bit-reversal permutation
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            data[i], data[j] = data[j], data[i]
    # butterflies
    length = 2
    while length <= n:
        ang = -2j * np.pi / length
        w_len = np.exp(ang * np.arange(length // 2))
        for start in range(0, n, length):
            half = length // 2
            # copy: the slice is a view and is overwritten before its second use
            even = data[start : start + half].copy()
            odd = data[start + half : start + length] * w_len
            data[start : start + half] = even + odd
            data[start + half : start + length] = even - odd
        length <<= 1
    return data.astype(np.complex64)


class FftEngineFarm(BlockAccelerator):
    """Multiple FFT engines fed round-robin by the Access processor."""

    resource_block = "fft_engine"

    #: fabric cycles one engine needs per 1024-point transform: a streaming
    #: multi-path radix core consumes 4 samples/cycle plus pipeline fill
    CYCLES_PER_BLOCK = FFT_POINTS // 4 + 64  # 320 cycles ~ 1.3 us

    def __init__(self, sim, access, num_engines: int = 8, name: str = ""):
        super().__init__(sim, access, name or "fftfarm")
        if num_engines < 1:
            raise AccelError("FFT farm needs at least one engine")
        self.num_engines = num_engines
        self._engine_free_ps = [0] * num_engines
        self.blocks_transformed = 0

    def _kernel(self, cb: ControlBlock):
        if cb.opcode != KERNEL_FFT:
            raise AccelError(f"{self.name}: unexpected opcode {cb.opcode:#x}")
        if cb.length % BLOCK_BYTES != 0:
            raise AccelError(
                f"{self.name}: length must be a multiple of {BLOCK_BYTES}B blocks"
            )
        num_blocks = cb.length // BLOCK_BYTES
        compute_ps = self.CYCLES_PER_BLOCK * self.access.clock.period_ps
        pending_write = None
        # stream several blocks per DMA so row bursts stay pipelined on both
        # ports; the Access processor schedules result transfers of one batch
        # under the sample transfers of the next
        blocks_per_batch = 32
        done_blocks = 0
        while done_blocks < num_blocks:
            batch = min(blocks_per_batch, num_blocks - done_blocks)
            src = cb.src + done_blocks * BLOCK_BYTES
            dst = cb.dst + done_blocks * BLOCK_BYTES
            read_proc = self.access.dma_read(src, batch * BLOCK_BYTES)
            yield read_proc.done
            raw = read_proc.result
            spectra = []
            farm_ready = self.sim.now_ps
            for b in range(batch):
                samples = np.frombuffer(
                    raw[b * BLOCK_BYTES : (b + 1) * BLOCK_BYTES], dtype=np.complex64
                )
                spectra.append(radix2_fft(samples).tobytes())
                # the farm retires one block per compute_ps / num_engines
                # once its pipelines are saturated
                farm_ready += compute_ps // self.num_engines
                self.blocks_transformed += 1
            if farm_ready > self.sim.now_ps + compute_ps:
                # compute-bound: wait for the farm to drain past the batch
                yield farm_ready - self.sim.now_ps
            if pending_write is not None and not pending_write.finished:
                yield pending_write.done
            pending_write = self.access.dma_write(dst, b"".join(spectra))
            done_blocks += batch
        if pending_write is not None and not pending_write.finished:
            yield pending_write.done
        return (num_blocks, 0)
