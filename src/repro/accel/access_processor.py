"""The Access processor: programmable DIMM-port scheduler (Section 4.3).

Runs assembled programs (see :mod:`repro.accel.isa`) at the 250 MHz fabric
clock, one instruction per cycle plus memory wait time.  Features modeled
from the paper's description:

* **multithreading** — hardware thread contexts; a thread yields the
  pipeline on ``YIELD`` and while waiting on memory, so transfers on one
  thread overlap with compute/control on another;
* **programmable address mapping** — a pluggable function rewrites
  addresses before they hit the DIMM ports, "changing the way data
  structures are mapped on the physical storage locations";
* **access generation on behalf of accelerators** — the ``DMARD``/``DMAWR``
  block ops stream whole buffers through a DIMM port in row-sized bursts;
* **performance monitoring** — counters for instructions, loads, stores,
  bytes moved, and stall time.

Programs are loaded from the DIMMs into internal instruction memory
("triggered by the reception of a special control block ... performed
dynamically without interrupting the base operation") via :meth:`load_program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import AccelError
from ..sim import ClockDomain, Process, Signal, Simulator, fabric_clock
from ..telemetry import probe
from ..telemetry.attribution import QUEUE
from .isa import NUM_REGISTERS, Instruction, Op

#: burst size for DMA block transfers: one DRAM row
DMA_CHUNK_BYTES = 8 << 10


@dataclass
class ThreadContext:
    """Architectural state of one hardware thread."""

    thread_id: int
    regs: List[int] = field(default_factory=lambda: [0] * NUM_REGISTERS)
    pc: int = 0
    halted: bool = False


class PerfCounters:
    """The Access processor's performance monitoring block."""

    def __init__(self) -> None:
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.dma_bytes_read = 0
        self.dma_bytes_written = 0
        self.mem_wait_ps = 0


class AccessProcessor:
    """Executes microprograms against the card's DIMM ports."""

    def __init__(
        self,
        sim: Simulator,
        ports: List[object],       # MemoryController-compatible ports
        clock: Optional[ClockDomain] = None,
        address_map: Optional[Callable[[int], int]] = None,
        name: str = "accessproc",
    ):
        if not ports:
            raise AccelError(f"{name}: needs at least one DIMM port")
        self.sim = sim
        self.ports = ports
        self.clock = clock or fabric_clock()
        self.address_map = address_map or (lambda addr: addr)
        self.name = name
        self.program: List[Instruction] = []
        self.perf = PerfCounters()
        #: DMA stream buffers per thread (functional contents)
        self._stream_buffers: Dict[int, bytes] = {}
        #: sustained per-port streaming bandwidth through the Access
        #: processor's scheduler (decimal GB/s).  The paper observed
        #: 10-12 GB/s combined over two ports; burst issue is paced to match.
        self.port_gb_s = 5.4
        self._port_next_issue_ps = [0] * len(ports)

    # -- program loading ------------------------------------------------------

    def load_program(self, program: List[Instruction]) -> None:
        """Load executable code into the internal instruction memory."""
        if not program:
            raise AccelError(f"{self.name}: empty program")
        self.program = list(program)

    def load_program_from_memory(self, addr: int, num_instructions: int) -> Process:
        """Fetch an executable image from the DIMMs and install it.

        The dynamic-reprogramming path of Section 4.3: code is "retrieved
        from the DDR3 DIMMs into an internal instruction memory ...
        performed dynamically without interrupting the base operation".
        The fetch streams through the DMA machinery, so it pays real memory
        time; installation happens at fetch completion.  The returned
        process's result is the instruction count installed.
        """
        from .isa import decode_program, image_size_bytes

        nbytes = image_size_bytes(num_instructions)

        def run():
            image = yield from self._dma_read(addr, nbytes)
            program = decode_program(image)
            self.load_program(program)
            return len(program)

        return Process(self.sim, run(), name=f"{self.name}.loadprog")

    # -- port helpers ----------------------------------------------------------

    def _port_for(self, addr: int) -> object:
        """Interleave row-sized blocks across the DIMM ports."""
        return self.ports[(addr // DMA_CHUNK_BYTES) % len(self.ports)]

    def stream_buffer(self, thread_id: int) -> bytes:
        """Contents of a thread's DMA stream buffer (for accelerators)."""
        return self._stream_buffers.get(thread_id, b"")

    def set_stream_buffer(self, thread_id: int, data: bytes) -> None:
        self._stream_buffers[thread_id] = data

    # -- execution ----------------------------------------------------------------

    def run(self, threads: int = 1, initial_regs: Optional[Dict[int, Dict[int, int]]] = None) -> Process:
        """Run the loaded program on ``threads`` hardware threads.

        ``initial_regs[t]`` maps register index -> value for thread ``t``.
        The returned process's result is the list of final
        :class:`ThreadContext` objects.
        """
        if not self.program:
            raise AccelError(f"{self.name}: no program loaded")
        if threads < 1:
            raise AccelError(f"{self.name}: need at least one thread")
        contexts = [ThreadContext(t) for t in range(threads)]
        for t, values in (initial_regs or {}).items():
            for reg, value in values.items():
                contexts[t].regs[reg] = value
        return Process(self.sim, self._interpret(contexts), name=self.name)

    def _interpret(self, contexts: List[ThreadContext]):
        """Round-robin interpreter: switch threads on YIELD and memory ops."""
        start_ps = self.sim.now_ps
        instructions_at_start = self.perf.instructions
        current = 0
        while any(not ctx.halted for ctx in contexts):
            ctx = contexts[current % len(contexts)]
            current += 1
            if ctx.halted:
                continue
            # run this thread until it yields, halts, or touches memory
            while not ctx.halted:
                if ctx.pc >= len(self.program):
                    ctx.halted = True
                    break
                instr = self.program[ctx.pc]
                ctx.pc += 1
                self.perf.instructions += 1
                yield self.clock.period_ps  # one issue slot per instruction
                if instr.op is Op.YIELD:
                    break
                if instr.is_memory:
                    yield from self._memory_op(ctx, instr)
                    break  # memory ops hand the pipeline to the next thread
                self._alu_op(ctx, instr)
        trace = probe.session  # re-fetch: program runs span many sim events
        if trace is not None:
            executed = self.perf.instructions - instructions_at_start
            trace.complete(
                "accel", f"program:{self.name}", start_ps, self.sim.now_ps,
                {"threads": len(contexts), "instructions": executed},
            )
            trace.count("accel.programs")
            trace.count("accel.instructions", executed)
        return contexts

    # -- ALU / control ---------------------------------------------------------------

    def _alu_op(self, ctx: ThreadContext, instr: Instruction) -> None:
        regs = ctx.regs
        op = instr.op
        if op is Op.LDI:
            regs[instr.rd] = instr.imm
        elif op is Op.MOV:
            regs[instr.rd] = regs[instr.ra]
        elif op is Op.ADD:
            regs[instr.rd] = regs[instr.ra] + regs[instr.rb]
        elif op is Op.SUB:
            regs[instr.rd] = regs[instr.ra] - regs[instr.rb]
        elif op is Op.ADDI:
            regs[instr.rd] = regs[instr.ra] + instr.imm
        elif op is Op.MIN:
            regs[instr.rd] = min(regs[instr.ra], regs[instr.rb])
        elif op is Op.MAX:
            regs[instr.rd] = max(regs[instr.ra], regs[instr.rb])
        elif op is Op.JMP:
            ctx.pc = instr.target
        elif op is Op.BEQ:
            if regs[instr.ra] == regs[instr.rb]:
                ctx.pc = instr.target
        elif op is Op.BNE:
            if regs[instr.ra] != regs[instr.rb]:
                ctx.pc = instr.target
        elif op is Op.BLT:
            if regs[instr.ra] < regs[instr.rb]:
                ctx.pc = instr.target
        elif op is Op.HALT:
            ctx.halted = True
        else:  # pragma: no cover - decode guarantees coverage
            raise AccelError(f"unexecutable op {op}")

    # -- memory ops --------------------------------------------------------------------

    def _wait(self, signal: Signal):
        t0 = self.sim.now_ps
        value = yield signal
        self.perf.mem_wait_ps += self.sim.now_ps - t0
        return value

    def _memory_op(self, ctx: ThreadContext, instr: Instruction):
        regs = ctx.regs
        if instr.op is Op.LD:
            addr = self.address_map(regs[instr.ra])
            port = self._port_for(addr)
            data = yield from self._wait(port.submit_read(self._local(addr), 8))
            regs[instr.rd] = int.from_bytes(data, "little")
            self.perf.loads += 1
        elif instr.op is Op.ST:
            addr = self.address_map(regs[instr.ra])
            port = self._port_for(addr)
            value = regs[instr.rb] & ((1 << 64) - 1)  # wrap to the 64-bit register width
            yield from self._wait(
                port.submit_write(self._local(addr), value.to_bytes(8, "little"))
            )
            self.perf.stores += 1
        elif instr.op is Op.DMARD:
            addr, length = self.address_map(regs[instr.ra]), regs[instr.rb]
            data = yield from self._dma_read(addr, length)
            self._stream_buffers[ctx.thread_id] = data
            regs[instr.rd] = len(data)
            self.perf.dma_bytes_read += len(data)
        elif instr.op is Op.DMAWR:
            addr, length = self.address_map(regs[instr.ra]), regs[instr.rb]
            data = self._stream_buffers.get(ctx.thread_id, b"")[:length]
            data = data + bytes(length - len(data))
            yield from self._dma_write(addr, data)
            regs[instr.rd] = length
            self.perf.dma_bytes_written += length

    def _local(self, addr: int) -> int:
        """Translate a flat accelerator address to a port-local address."""
        chunk = addr // DMA_CHUNK_BYTES
        offset = addr % DMA_CHUNK_BYTES
        local_chunk = chunk // len(self.ports)
        return local_chunk * DMA_CHUNK_BYTES + offset

    # -- DMA streaming (used by DMARD/DMAWR and by block accelerators) -----------------

    def _pace_port(self, addr: int, nbytes: int) -> int:
        """Reserve the port's next burst-issue slot; returns wait time (ps).

        Sustained streaming through the scheduler is bounded by
        ``port_gb_s`` per port (bank management, turnaround, arbitration —
        the reasons two DDR3-1333 ports observe 10-12 GB/s combined, not
        their 21.3 GB/s pin rate).
        """
        port_no = (addr // DMA_CHUNK_BYTES) % len(self.ports)
        interval = int(nbytes / (self.port_gb_s * 1e9) * 1e12)
        start = max(self.sim.now_ps, self._port_next_issue_ps[port_no])
        self._port_next_issue_ps[port_no] = start + interval
        return start - self.sim.now_ps

    def _begin_dma_journey(self, op: str, addr: int):
        """Open an ``accel.<op>`` journey for one DMA stream (or no-op).

        The stream's time partitions exactly into ``accel.pace`` (waiting
        for a port's next burst-issue slot — queueing) and ``accel.dma``
        (bursts in flight — service): the generator stamps ``accel.dma``
        up to each pacing gap and ``accel.pace`` across it, so the stage
        sums reproduce the end-to-end DMA latency with zero residual.
        """
        trace = probe.session
        journeys = trace.journeys if trace is not None else None
        if journeys is None:
            return None, None
        jid = journeys.begin(f"accel.{op}", addr, self.name, self.sim.now_ps)
        return journeys, jid

    def _dma_read(self, addr: int, length: int):
        """Row-burst streaming read across both ports with overlap."""
        journeys, jid = self._begin_dma_journey("dmard", addr)
        chunks: List[Signal] = []
        results: List[Signal] = []
        pos = 0
        while pos < length:
            take = min(DMA_CHUNK_BYTES - (addr + pos) % DMA_CHUNK_BYTES, length - pos)
            gap = self._pace_port(addr + pos, take)
            if gap > 0:
                if jid is not None:
                    journeys.stage_to(jid, "accel.dma", self.sim.now_ps)
                yield gap
                if jid is not None:
                    journeys.stage_to(jid, "accel.pace", self.sim.now_ps, QUEUE)
            port = self._port_for(addr + pos)
            # no nested controller spans: concurrent in-flight bursts
            # overlap, so per-chunk memory visits cannot be carved out of
            # the stream exclusively — the top-level pace/dma partition
            # is the meaningful accounting here
            sig = port.submit_read(self._local(addr + pos), take)
            results.append(sig)
            chunks.append(sig)
            pos += take
            if len(chunks) >= 2 * len(self.ports):
                oldest = chunks.pop(0)
                if not oldest.triggered:
                    yield from self._wait(oldest)
        for sig in chunks:
            if not sig.triggered:
                yield from self._wait(sig)
        if jid is not None:
            journeys.stage_to(jid, "accel.dma", self.sim.now_ps)
            journeys.finish(jid, self.sim.now_ps)
        return b"".join(sig.value for sig in results)

    def _dma_write(self, addr: int, data: bytes):
        journeys, jid = self._begin_dma_journey("dmawr", addr)
        chunks: List[Signal] = []
        pos = 0
        while pos < len(data):
            take = min(DMA_CHUNK_BYTES - (addr + pos) % DMA_CHUNK_BYTES, len(data) - pos)
            gap = self._pace_port(addr + pos, take)
            if gap > 0:
                if jid is not None:
                    journeys.stage_to(jid, "accel.dma", self.sim.now_ps)
                yield gap
                if jid is not None:
                    journeys.stage_to(jid, "accel.pace", self.sim.now_ps, QUEUE)
            port = self._port_for(addr + pos)
            sig = port.submit_write(self._local(addr + pos), data[pos : pos + take])
            chunks.append(sig)
            pos += take
            if len(chunks) >= 2 * len(self.ports):
                oldest = chunks.pop(0)
                if not oldest.triggered:
                    yield from self._wait(oldest)
        for sig in chunks:
            if not sig.triggered:
                yield from self._wait(sig)
        if jid is not None:
            journeys.stage_to(jid, "accel.dma", self.sim.now_ps)
            journeys.finish(jid, self.sim.now_ps)

    # -- public DMA services for block accelerators ----------------------------------------

    def dma_read(self, addr: int, length: int) -> Process:
        """Stream ``length`` bytes starting at ``addr``; result is the data."""
        def run():
            t0 = self.sim.now_ps
            data = yield from self._dma_read(addr, length)
            self.perf.dma_bytes_read += len(data)
            trace = probe.session  # re-fetch: stream spans many sim events
            if trace is not None:
                trace.complete(
                    "accel", f"dmard:{self.name}", t0, self.sim.now_ps,
                    {"bytes": len(data)},
                )
                trace.count("accel.dma_bytes_read", len(data))
            return data

        return Process(self.sim, run(), name=f"{self.name}.dmard")

    def dma_write(self, addr: int, data: bytes) -> Process:
        def run():
            t0 = self.sim.now_ps
            yield from self._dma_write(addr, data)
            self.perf.dma_bytes_written += len(data)
            trace = probe.session  # re-fetch: stream spans many sim events
            if trace is not None:
                trace.complete(
                    "accel", f"dmawr:{self.name}", t0, self.sim.now_ps,
                    {"bytes": len(data)},
                )
                trace.count("accel.dma_bytes_written", len(data))
            return len(data)

        return Process(self.sim, run(), name=f"{self.name}.dmawr")
