"""Software baselines for the Table 5 kernels.

Table 5 compares the ConTutto accelerators against software on the POWER8
using CDIMMs: memory copy 3.2 GB/s, min/max 0.5 GB/s, FFT 0.68 Gsamples/s
(the FFT number from Giefers et al., DATE'15, using 4 CDIMMs / 16 DIMM
ports).  The models below derive those throughputs from simple
machine-level arguments so they respond to configuration (core frequency,
latency) rather than being bare constants — but they are calibrated to the
published figures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SoftwareMachine:
    """The CPU-side parameters the baselines depend on."""

    core_freq_ghz: float = 4.0
    #: sustainable copy bandwidth per core: load+store through the cache
    #: hierarchy, limited by LSU throughput and miss handling
    copy_bytes_per_cycle: float = 0.8
    #: scalar compare loop: two data-dependent branches per int32 that
    #: mispredict on random data -> ~32 cycles per element
    minmax_elements_per_cycle: float = 1 / 32
    #: vectorized software FFT: cycles per butterfly (VSX, DATE'15-grade)
    fft_cycles_per_butterfly: float = 1.18


class SoftwareBaselines:
    """Throughput models for the three kernels run on the processor."""

    def __init__(self, machine: SoftwareMachine = SoftwareMachine()):
        self.machine = machine

    # -- memory copy ---------------------------------------------------------

    def memcopy_gb_s(self) -> float:
        """memcpy() of a large block: ~3.2 GB/s of payload copied."""
        return self.machine.copy_bytes_per_cycle * self.machine.core_freq_ghz

    def memcopy_time_s(self, nbytes: int) -> float:
        return nbytes / (self.memcopy_gb_s() * 1e9)

    # -- min/max scan -----------------------------------------------------------

    def minmax_gb_s(self) -> float:
        """Scalar scan of int32 data: ~0.5 GB/s."""
        elements_per_s = (
            self.machine.minmax_elements_per_cycle * self.machine.core_freq_ghz * 1e9
        )
        return elements_per_s * 4 / 1e9

    def minmax_time_s(self, nbytes: int) -> float:
        return nbytes / (self.minmax_gb_s() * 1e9)

    # -- FFT ----------------------------------------------------------------------

    def fft_gsamples_s(self, points: int = 1024) -> float:
        """1024-point FFT throughput: ~0.68 Gsamples/s (DATE'15, 16 ports)."""
        import math

        butterflies_per_sample = math.log2(points) / 2
        cycles_per_sample = butterflies_per_sample * self.machine.fft_cycles_per_butterfly
        return self.machine.core_freq_ghz / cycles_per_sample

    def fft_time_s(self, num_samples: int, points: int = 1024) -> float:
        return num_samples / (self.fft_gsamples_s(points) * 1e9)
