"""In-line acceleration (Figure 11): augmented command engines.

In-line accelerators sit *in* the regular ConTutto pipeline: special
load/store opcodes are executed by command engines augmented with the
required fine-grained operation, and "since the accelerator is in-line
with the main ConTutto pipeline, it has access to the upstream DMI channel
and can send direct response to the processor without the need for the
processor to poll".

The operations themselves (min-store, max-store, conditional swap, flush)
are implemented in the MBS pipeline (:mod:`repro.fpga.mbs` via
:mod:`repro.fpga.alu`).  This module provides the host-side helper that
drives them and measures the benefit over the software equivalent
(read - modify - write: two full DMI round trips instead of one).
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from ..errors import AccelError
from ..processor.host_mc import HostMemoryController
from ..sim import Signal, Simulator
from ..units import CACHE_LINE_BYTES

_LANES = CACHE_LINE_BYTES // 4
_PACK = struct.Struct(f"<{_LANES}i")


def pack_lanes(values: List[int]) -> bytes:
    """Pack 32 int32 lane values into one cache line."""
    if len(values) != _LANES:
        raise AccelError(f"a line holds {_LANES} int32 lanes, got {len(values)}")
    return _PACK.pack(*values)


def unpack_lanes(line: bytes) -> List[int]:
    return list(_PACK.unpack(line))


class InlineAccelClient:
    """Host-side driver for the in-line acceleration opcodes."""

    def __init__(self, sim: Simulator, host_mc: HostMemoryController):
        self.sim = sim
        self.host_mc = host_mc

    # -- one-round-trip accelerated ops ------------------------------------

    def min_store(self, addr: int, values: List[int]) -> Signal:
        """memory[addr] = elementwise_min(memory[addr], values); one command."""
        return self.host_mc.min_store(addr, pack_lanes(values))

    def max_store(self, addr: int, values: List[int]) -> Signal:
        return self.host_mc.max_store(addr, pack_lanes(values))

    def cswap(self, addr: int, expected: int, values: List[int]) -> Signal:
        """Compare lane 0 to ``expected``; on match replace the line.

        Fires with ``(swapped, old_values)`` — no polling: the response
        rides the upstream channel of the same command.
        """
        new_line = list(values)
        new_line[0] = expected
        result = Signal("cswap")
        inner = self.host_mc.cswap(addr, pack_lanes(new_line))

        def complete(resp) -> None:
            old = unpack_lanes(resp.data)
            result.trigger((old[0] == expected, old))

        inner.add_waiter(complete)
        return result

    # -- the software equivalent (for the comparison) --------------------------

    def software_min_store(self, addr: int, values: List[int]) -> Signal:
        """The same operation without the extension: load, merge, store —
        two dependent DMI round trips through the processor."""
        result = Signal("sw_min_store")

        def after_read(old_line: bytes) -> None:
            merged = [
                min(a, b) for a, b in zip(unpack_lanes(old_line), values)
            ]
            self.host_mc.write_line(addr, pack_lanes(merged)).add_waiter(
                result.trigger
            )

        self.host_mc.read_line(addr).add_waiter(after_read)
        return result
