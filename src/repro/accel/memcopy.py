"""Near-memory memory-copy accelerator (Table 5, row 1).

Copies a block from one DIMM location to another entirely on the card —
the data never crosses the DMI link.  Throughput is bound by the two DIMM
ports' combined bandwidth: every byte is read once and written once, so a
copy at aggregate bandwidth B moves B/2 bytes per second of payload.  The
paper measures 6 GB/s against 3.2 GB/s for the software copy through the
processor (which pays the DMI round trip both ways).
"""

from __future__ import annotations

from .access_processor import DMA_CHUNK_BYTES
from .block import BlockAccelerator, ControlBlock

KERNEL_MEMCOPY = 0x10


class MemcopyEngine(BlockAccelerator):
    """Streaming copy: read chunks from src, write to dst, pipelined."""

    resource_block = "memcopy_engine"

    def _kernel(self, cb: ControlBlock):
        if cb.opcode != KERNEL_MEMCOPY:
            raise_on = f"{self.name}: unexpected opcode {cb.opcode:#x}"
            raise ValueError(raise_on)
        copied = 0
        pending_write = None
        # large segments keep several row bursts outstanding per port; the
        # previous segment's write drains while the next segment reads
        segment = 64 * DMA_CHUNK_BYTES
        pos = 0
        while pos < cb.length:
            take = min(segment, cb.length - pos)
            read_proc = self.access.dma_read(cb.src + pos, take)
            yield read_proc.done
            data = read_proc.result
            if pending_write is not None and not pending_write.finished:
                yield pending_write.done
            pending_write = self.access.dma_write(cb.dst + pos, data)
            copied += take
            pos += take
        if pending_write is not None and not pending_write.finished:
            yield pending_write.done
        return (copied, 0)
