"""Near-memory min/max scan accelerator (Table 5, row 2).

Finds the minimum and maximum of a block of 32-bit integers "on-the-fly
while being retrieved from the DIMMs under control of the Access
processor" — a read-only stream, so throughput approaches the full
aggregate read bandwidth of the two DIMM ports (the paper measures
10.5 GB/s, versus 0.5 GB/s for the scalar software loop).
"""

from __future__ import annotations

import numpy as np

from ..errors import AccelError
from .access_processor import DMA_CHUNK_BYTES
from .block import BlockAccelerator, ControlBlock

KERNEL_MINMAX = 0x11


class MinMaxEngine(BlockAccelerator):
    """Streaming min/max over int32 data, compute hidden under transfer."""

    resource_block = "minmax_engine"

    def _kernel(self, cb: ControlBlock):
        if cb.opcode != KERNEL_MINMAX:
            raise AccelError(f"{self.name}: unexpected opcode {cb.opcode:#x}")
        if cb.length % 4 != 0:
            raise AccelError(f"{self.name}: length must be a multiple of int32")
        best_min = None
        best_max = None
        # stream in large segments so the Access processor keeps multiple
        # row bursts in flight on both DIMM ports; the compare tree keeps up
        # with the stream (no extra cycles — it computes as data arrives)
        segment = 64 * DMA_CHUNK_BYTES
        pos = 0
        while pos < cb.length:
            take = min(segment, cb.length - pos)
            read_proc = self.access.dma_read(cb.src + pos, take)
            yield read_proc.done
            values = np.frombuffer(read_proc.result, dtype="<i4")
            chunk_min = int(values.min())
            chunk_max = int(values.max())
            best_min = chunk_min if best_min is None else min(best_min, chunk_min)
            best_max = chunk_max if best_max is None else max(best_max, chunk_max)
            pos += take
        assert best_min is not None and best_max is not None
        return (best_min, best_max)
