"""Block acceleration framework (Figure 12).

A block accelerator "appears as a special memory-mapped region on the
Avalon bus": the processor sends a *control block* describing the task
(kernel, address range, destination) with store instructions targeting the
accelerator's buffer region, the accelerator runs the kernel against the
DIMMs through the Access processor, then "writes processing status and
completion information into specific fields in the control block", which
the processor retrieves with loads (polling).

The control block is one 128-byte cache line:

========  ======  ====================================================
offset    bytes   field
========  ======  ====================================================
0         4       kernel opcode (accelerator-defined)
4         4       status: 0 idle, 1 running, 2 done, 3 error
8         8       src address (accelerator/DIMM flat space)
16        8       dst address
24        8       length in bytes
32        8       param (kernel-specific)
40        8       result0 (kernel-defined, e.g. min)
48        8       result1 (e.g. max)
56        8       cycles consumed (performance reporting)
========  ======  ====================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import AccelError
from ..sim import Process, Signal, Simulator
from ..units import CACHE_LINE_BYTES
from .access_processor import AccessProcessor

CONTROL_BLOCK_BYTES = CACHE_LINE_BYTES

STATUS_IDLE = 0
STATUS_RUNNING = 1
STATUS_DONE = 2
STATUS_ERROR = 3

_CB_STRUCT = struct.Struct("<IIqqqqqqq")  # 60 bytes used, rest reserved


@dataclass
class ControlBlock:
    """Decoded control block."""

    opcode: int = 0
    status: int = STATUS_IDLE
    src: int = 0
    dst: int = 0
    length: int = 0
    param: int = 0
    result0: int = 0
    result1: int = 0
    cycles: int = 0

    def pack(self) -> bytes:
        body = _CB_STRUCT.pack(
            self.opcode, self.status, self.src, self.dst, self.length,
            self.param, self.result0, self.result1, self.cycles,
        )
        return body + bytes(CONTROL_BLOCK_BYTES - len(body))

    @classmethod
    def unpack(cls, raw: bytes) -> "ControlBlock":
        if len(raw) < _CB_STRUCT.size:
            raise AccelError("control block too short")
        fields = _CB_STRUCT.unpack(raw[: _CB_STRUCT.size])
        return cls(*fields)


class BlockAccelerator:
    """Base class: an Avalon slave driven by control blocks.

    Subclasses implement :meth:`_kernel`, a generator process that performs
    the work through the Access processor and returns
    ``(result0, result1)``.
    """

    #: resource-cost catalog entry for this engine (see fpga.resources)
    resource_block = "memcopy_engine"

    def __init__(self, sim: Simulator, access: AccessProcessor, name: str = ""):
        self.sim = sim
        self.access = access
        self.name = name or type(self).__name__.lower()
        self._cb = ControlBlock()
        self.tasks_completed = 0
        self.tasks_failed = 0

    # -- Avalon slave interface (control-block window) -------------------------

    @property
    def capacity_bytes(self) -> int:
        return CONTROL_BLOCK_BYTES

    def submit_read(self, addr: int, nbytes: int) -> Signal:
        """Host polls the control block (status / results)."""
        done = Signal(f"{self.name}.poll")
        raw = self._cb.pack()
        self.sim.call_after(0, done.trigger, raw[addr : addr + nbytes])
        return done

    def submit_write(self, addr: int, data: bytes) -> Signal:
        """Host stores a control block; a full-line store starts the task."""
        done = Signal(f"{self.name}.cbwr")
        if addr != 0 or len(data) != CONTROL_BLOCK_BYTES:
            raise AccelError(
                f"{self.name}: control block must be one full 128B line store"
            )
        cb = ControlBlock.unpack(data)
        if self._cb.status == STATUS_RUNNING:
            raise AccelError(f"{self.name}: task already running")
        self._cb = cb
        self._cb.status = STATUS_RUNNING
        self._start()
        self.sim.call_after(0, done.trigger, None)
        return done

    # -- task execution -----------------------------------------------------------

    def _start(self) -> None:
        start_ps = self.sim.now_ps

        def run():
            result = yield from self._kernel(self._cb)
            return result

        proc = Process(self.sim, run(), name=f"{self.name}.task")

        def finish(result) -> None:
            self._cb.cycles = (self.sim.now_ps - start_ps) // self.access.clock.period_ps
            if isinstance(result, tuple) and len(result) == 2:
                self._cb.result0, self._cb.result1 = result
                self._cb.status = STATUS_DONE
                self.tasks_completed += 1
            else:
                self._cb.status = STATUS_ERROR
                self.tasks_failed += 1

        proc.done.add_waiter(finish)

    def _kernel(self, cb: ControlBlock):
        raise NotImplementedError

    # -- host-side convenience (issue + poll through any store path) -----------------

    def run_to_completion(self, cb: ControlBlock) -> ControlBlock:
        """Drive a task directly (bypassing the DMI path) and run the sim."""
        self.submit_write(0, cb.pack())
        while self._cb.status == STATUS_RUNNING:
            if not self.sim.step():
                raise AccelError(f"{self.name}: task never completed")
        return self._cb
