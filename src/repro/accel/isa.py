"""Instruction set and assembler for the Access processor.

Section 4.3 describes the Access processor as "a programmable state
machine" that arbitrates and schedules loads/stores to the DDR3 DIMMs on
behalf of accelerators, supports multithreading, and is programmed by
loading pre-compiled executable code.  The paper defers its ISA to future
work; we define a small, regular register ISA sufficient for the published
functions (access generation, address mapping, streaming control):

====================  =============================================
``LDI rd, imm``       load a 64-bit immediate
``MOV rd, ra``        register copy
``ADD/SUB rd,ra,rb``  integer arithmetic
``ADDI rd, ra, imm``  add immediate
``MIN/MAX rd,ra,rb``  select ops (the min/max kernels)
``LD rd, [ra]``       load 8 bytes from DIMM space at address in ra
``ST [ra], rb``       store 8 bytes
``DMARD rd, ra, rb``  block read:  addr ra, len rb -> stream buffer, rd=bytes
``DMAWR rd, ra, rb``  block write: addr ra, len rb from stream buffer
``BEQ/BNE/BLT ra,rb,label``  conditional branches
``JMP label``         unconditional branch
``YIELD``             hand the pipeline to the next hardware thread
``HALT``              stop this thread
====================  =============================================

Sixteen 64-bit registers per hardware thread.  The assembler accepts one
instruction per line, ``;`` comments, and ``label:`` definitions.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import AssemblerError

NUM_REGISTERS = 16


class Op(enum.Enum):
    """Access-processor opcodes (see the module docstring for semantics)."""

    LDI = "ldi"
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    ADDI = "addi"
    MIN = "min"
    MAX = "max"
    LD = "ld"
    ST = "st"
    DMARD = "dmard"
    DMAWR = "dmawr"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    JMP = "jmp"
    YIELD = "yield"
    HALT = "halt"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: Op
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    target: int = 0  # resolved branch target (instruction index)

    @property
    def is_memory(self) -> bool:
        return self.op in (Op.LD, Op.ST, Op.DMARD, Op.DMAWR)

    @property
    def is_branch(self) -> bool:
        return self.op in (Op.BEQ, Op.BNE, Op.BLT, Op.JMP)


_REG_RE = re.compile(r"^r(\d+)$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")


def _reg(token: str, line_no: int) -> int:
    match = _REG_RE.match(token.strip())
    if not match:
        raise AssemblerError(f"line {line_no}: expected register, got {token!r}")
    reg = int(match.group(1))
    if not 0 <= reg < NUM_REGISTERS:
        raise AssemblerError(f"line {line_no}: register r{reg} out of range")
    return reg


def _imm(token: str, line_no: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: expected immediate, got {token!r}")


def _mem_operand(token: str, line_no: int) -> int:
    token = token.strip()
    if not (token.startswith("[") and token.endswith("]")):
        raise AssemblerError(f"line {line_no}: expected [reg], got {token!r}")
    return _reg(token[1:-1], line_no)


def assemble(source: str) -> List[Instruction]:
    """Assemble source text into an executable instruction list."""
    # pass 1: collect labels and raw statements
    statements: List[Tuple[int, str]] = []
    labels: Dict[str, int] = {}
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {name!r}")
            labels[name] = len(statements)
            continue
        statements.append((line_no, line))

    # pass 2: decode
    program: List[Instruction] = []
    for index, (line_no, line) in enumerate(statements):
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        args = [a for a in (part.strip() for part in rest.split(",")) if a]
        try:
            op = Op(mnemonic)
        except ValueError:
            raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        program.append(_decode(op, args, labels, line_no))
    _check_targets(program)
    return program


def _decode(op: Op, args: List[str], labels: Dict[str, int], line_no: int) -> Instruction:
    def need(n: int) -> None:
        if len(args) != n:
            raise AssemblerError(
                f"line {line_no}: {op.value} takes {n} operands, got {len(args)}"
            )

    def label(token: str) -> int:
        if token not in labels:
            raise AssemblerError(f"line {line_no}: undefined label {token!r}")
        return labels[token]

    if op is Op.LDI:
        need(2)
        return Instruction(op, rd=_reg(args[0], line_no), imm=_imm(args[1], line_no))
    if op is Op.MOV:
        need(2)
        return Instruction(op, rd=_reg(args[0], line_no), ra=_reg(args[1], line_no))
    if op in (Op.ADD, Op.SUB, Op.MIN, Op.MAX):
        need(3)
        return Instruction(
            op, rd=_reg(args[0], line_no), ra=_reg(args[1], line_no),
            rb=_reg(args[2], line_no),
        )
    if op is Op.ADDI:
        need(3)
        return Instruction(
            op, rd=_reg(args[0], line_no), ra=_reg(args[1], line_no),
            imm=_imm(args[2], line_no),
        )
    if op is Op.LD:
        need(2)
        return Instruction(op, rd=_reg(args[0], line_no), ra=_mem_operand(args[1], line_no))
    if op is Op.ST:
        need(2)
        return Instruction(op, ra=_mem_operand(args[0], line_no), rb=_reg(args[1], line_no))
    if op in (Op.DMARD, Op.DMAWR):
        need(3)
        return Instruction(
            op, rd=_reg(args[0], line_no), ra=_reg(args[1], line_no),
            rb=_reg(args[2], line_no),
        )
    if op in (Op.BEQ, Op.BNE, Op.BLT):
        need(3)
        return Instruction(
            op, ra=_reg(args[0], line_no), rb=_reg(args[1], line_no),
            target=label(args[2]),
        )
    if op is Op.JMP:
        need(1)
        return Instruction(op, target=label(args[0]))
    if op in (Op.YIELD, Op.HALT):
        need(0)
        return Instruction(op)
    raise AssemblerError(f"line {line_no}: unhandled op {op}")  # pragma: no cover


def _check_targets(program: List[Instruction]) -> None:
    for instr in program:
        if instr.is_branch and not 0 <= instr.target <= len(program):
            raise AssemblerError(f"branch target {instr.target} out of program")


# ---------------------------------------------------------------------------
# Binary encoding: "pre-compiled executable code ... retrieved from the DDR3
# DIMMs into an internal instruction memory" (Section 4.3)
# ---------------------------------------------------------------------------

#: fixed-width instruction word: op(1) rd(1) ra(1) rb(1) target(4) imm(8)
INSTRUCTION_BYTES = 16
PROGRAM_MAGIC = b"APv1"

_OP_CODES = {op: i for i, op in enumerate(Op)}
_CODE_OPS = {i: op for op, i in _OP_CODES.items()}


def encode_instruction(instr: Instruction) -> bytes:
    """Pack one instruction into its 16-byte executable form."""
    imm = instr.imm & ((1 << 64) - 1)
    return (
        bytes([_OP_CODES[instr.op], instr.rd, instr.ra, instr.rb])
        + instr.target.to_bytes(4, "little")
        + imm.to_bytes(8, "little")
    )


def decode_instruction(word: bytes) -> Instruction:
    if len(word) != INSTRUCTION_BYTES:
        raise AssemblerError(f"instruction word must be {INSTRUCTION_BYTES} bytes")
    code = word[0]
    if code not in _CODE_OPS:
        raise AssemblerError(f"unknown opcode byte {code}")
    imm = int.from_bytes(word[8:16], "little")
    if imm >= 1 << 63:
        imm -= 1 << 64
    return Instruction(
        op=_CODE_OPS[code], rd=word[1], ra=word[2], rb=word[3],
        target=int.from_bytes(word[4:8], "little"), imm=imm,
    )


def encode_program(program: List[Instruction]) -> bytes:
    """Executable image: magic + count + instruction words + checksum."""
    body = PROGRAM_MAGIC + len(program).to_bytes(4, "little")
    for instr in program:
        body += encode_instruction(instr)
    checksum = sum(body) & 0xFFFF_FFFF
    return body + checksum.to_bytes(4, "little")


def decode_program(image: bytes) -> List[Instruction]:
    """Parse and checksum-verify an executable image."""
    if len(image) < len(PROGRAM_MAGIC) + 8:
        raise AssemblerError("executable image truncated")
    if image[: len(PROGRAM_MAGIC)] != PROGRAM_MAGIC:
        raise AssemblerError("bad executable magic")
    body, trailer = image[:-4], image[-4:]
    if sum(body) & 0xFFFF_FFFF != int.from_bytes(trailer, "little"):
        raise AssemblerError("executable image checksum mismatch")
    count = int.from_bytes(image[4:8], "little")
    expected = len(PROGRAM_MAGIC) + 4 + count * INSTRUCTION_BYTES + 4
    if len(image) != expected:
        raise AssemblerError(
            f"executable image is {len(image)} bytes, expected {expected}"
        )
    program = []
    offset = 8
    for _ in range(count):
        program.append(decode_instruction(image[offset : offset + INSTRUCTION_BYTES]))
        offset += INSTRUCTION_BYTES
    _check_targets(program)
    return program


def image_size_bytes(num_instructions: int) -> int:
    """On-DIMM size of an executable with ``num_instructions``."""
    return len(PROGRAM_MAGIC) + 4 + num_instructions * INSTRUCTION_BYTES + 4
