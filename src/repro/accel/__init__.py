"""Near-memory acceleration: Access processor, block + in-line accelerators."""

from .access_processor import (
    DMA_CHUNK_BYTES,
    AccessProcessor,
    PerfCounters,
    ThreadContext,
)
from .block import (
    CONTROL_BLOCK_BYTES,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_IDLE,
    STATUS_RUNNING,
    BlockAccelerator,
    ControlBlock,
)
from .fft import BLOCK_BYTES, FFT_POINTS, KERNEL_FFT, FftEngineFarm, radix2_fft
from .inline import InlineAccelClient, pack_lanes, unpack_lanes
from .isa import (
    INSTRUCTION_BYTES,
    NUM_REGISTERS,
    Instruction,
    Op,
    assemble,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    image_size_bytes,
)
from .programs import (
    block_move,
    minmax_words,
    pointer_chase_program,
    strided_gather,
    sum_words,
)
from .memcopy import KERNEL_MEMCOPY, MemcopyEngine
from .minmax import KERNEL_MINMAX, MinMaxEngine
from .scheduler import (
    EQUAL_SPLIT,
    HOST_PRIORITY,
    BandwidthArbiter,
    SharePolicy,
)
from .software_baseline import SoftwareBaselines, SoftwareMachine

__all__ = [
    "AccessProcessor",
    "BLOCK_BYTES",
    "BandwidthArbiter",
    "BlockAccelerator",
    "CONTROL_BLOCK_BYTES",
    "ControlBlock",
    "DMA_CHUNK_BYTES",
    "EQUAL_SPLIT",
    "FFT_POINTS",
    "FftEngineFarm",
    "HOST_PRIORITY",
    "InlineAccelClient",
    "Instruction",
    "KERNEL_FFT",
    "KERNEL_MEMCOPY",
    "KERNEL_MINMAX",
    "MemcopyEngine",
    "MinMaxEngine",
    "NUM_REGISTERS",
    "Op",
    "PerfCounters",
    "STATUS_DONE",
    "STATUS_ERROR",
    "STATUS_IDLE",
    "STATUS_RUNNING",
    "SharePolicy",
    "SoftwareBaselines",
    "SoftwareMachine",
    "INSTRUCTION_BYTES",
    "ThreadContext",
    "assemble",
    "block_move",
    "decode_instruction",
    "decode_program",
    "encode_instruction",
    "encode_program",
    "image_size_bytes",
    "minmax_words",
    "pack_lanes",
    "pointer_chase_program",
    "radix2_fft",
    "strided_gather",
    "sum_words",
    "unpack_lanes",
]
