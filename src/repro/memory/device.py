"""Base interface for memory devices behind a memory controller.

A device is *functional* (it stores and returns real bytes) and *timed*
(each access reports when it completes, given when it starts).  Timing is
computed analytically inside the device from its internal state — bank
timers, endurance counters, power state — so the caller never needs to poll.

The contract:

* ``read(addr, nbytes, now_ps)`` returns ``(data, finish_ps)``,
* ``write(addr, data, now_ps)`` returns ``finish_ps``,

where ``finish_ps >= now_ps`` is the simulated completion time.  Devices are
in charge of serializing internal resources (a second access to a busy bank
starts only when the bank frees up), so calls made in simulated-time order
yield correct queueing behaviour.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import AlignmentError, MemoryError_
from .backing import SparseBacking


class MemoryDevice:
    """Abstract functional+timed memory device."""

    #: device category string used by SPD / firmware ("dram", "mram", ...)
    technology: str = "abstract"
    #: whether contents survive power removal
    non_volatile: bool = False

    def __init__(self, capacity_bytes: int, name: str = ""):
        self.capacity_bytes = capacity_bytes
        self.name = name or type(self).__name__
        self.backing = SparseBacking(capacity_bytes)
        self.powered = True
        # Stats
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- functional + timed access (implemented by subclasses) -------------

    def read(self, addr: int, nbytes: int, now_ps: int) -> Tuple[bytes, int]:
        """Read bytes; returns (data, completion time)."""
        raise NotImplementedError

    def write(self, addr: int, data: bytes, now_ps: int) -> int:
        """Write bytes; returns completion time."""
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------

    def _precheck(self, addr: int, nbytes: int) -> None:
        if not self.powered:
            raise MemoryError_(f"{self.name}: access while powered off")
        if nbytes <= 0:
            raise AlignmentError(f"{self.name}: access size must be positive")

    def _account_read(self, addr: int, nbytes: int) -> bytes:
        self.reads += 1
        self.bytes_read += nbytes
        return self.backing.read(addr, nbytes)

    def _account_write(self, addr: int, data: bytes) -> None:
        self.writes += 1
        self.bytes_written += len(data)
        self.backing.write(addr, data)

    # -- power events --------------------------------------------------------

    def power_off(self) -> None:
        """Remove power.  Volatile devices lose their contents."""
        self.powered = False
        if not self.non_volatile:
            self.backing.clear()

    def power_on(self) -> None:
        self.powered = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} "
            f"{self.capacity_bytes // (1 << 20)} MiB {self.technology}>"
        )
