"""Sparse byte-addressable backing store for memory devices.

Devices in this library are *functional*: a write followed by a read returns
the written bytes, across gigabyte-scale address spaces.  Allocating real
buffers for a 1 TB memory map is obviously out; :class:`SparseBacking` keeps
only the blocks that have ever been written and reads zeros elsewhere
(matching hardware that initializes to zero after ECC scrub).
"""

from __future__ import annotations

from typing import Dict

from ..errors import AddressRangeError

BLOCK_BYTES = 4096


class SparseBacking:
    """A sparse array of bytes with a fixed capacity."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise AddressRangeError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._blocks: Dict[int, bytearray] = {}

    def _check_range(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.capacity_bytes:
            raise AddressRangeError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside capacity "
                f"{self.capacity_bytes:#x}"
            )

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``addr`` (zeros where never written)."""
        self._check_range(addr, nbytes)
        out = bytearray(nbytes)
        pos = 0
        while pos < nbytes:
            block_no, offset = divmod(addr + pos, BLOCK_BYTES)
            take = min(BLOCK_BYTES - offset, nbytes - pos)
            block = self._blocks.get(block_no)
            if block is not None:
                out[pos : pos + take] = block[offset : offset + take]
            pos += take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr``."""
        self._check_range(addr, len(data))
        pos = 0
        while pos < len(data):
            block_no, offset = divmod(addr + pos, BLOCK_BYTES)
            take = min(BLOCK_BYTES - offset, len(data) - pos)
            block = self._blocks.get(block_no)
            if block is None:
                block = bytearray(BLOCK_BYTES)
                self._blocks[block_no] = block
            block[offset : offset + take] = data[pos : pos + take]
            pos += take

    def fill(self, addr: int, nbytes: int, value: int) -> None:
        """Fill a range with a byte value (used by scrub/erase models)."""
        self.write(addr, bytes([value]) * nbytes)

    def clear(self) -> None:
        """Drop all contents (power loss on a volatile device)."""
        self._blocks.clear()

    def copy_into(self, other: "SparseBacking") -> None:
        """Copy every written block into ``other`` (NVDIMM save/restore)."""
        for block_no, block in self._blocks.items():
            other.write(block_no * BLOCK_BYTES, bytes(block))

    @property
    def resident_bytes(self) -> int:
        """Bytes of host memory actually allocated (diagnostics)."""
        return len(self._blocks) * BLOCK_BYTES
