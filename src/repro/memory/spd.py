"""Serial Presence Detect (SPD) data for DIMMs.

Every DIMM carries an SPD EEPROM describing the module: type, capacity,
timings.  ConTutto's external FSI slave reads the SPD of the DIMMs plugged
into the card directly — "critical for detecting and controlling the
NVDIMMs" (Section 3.4).  Firmware uses the module type to decide memory-map
placement and driver flags.

The encoding here is a compact, checksummed byte layout in the *spirit* of
JEDEC SPD (we do not replicate the full 256-byte JEDEC table; firmware only
consumes the fields below).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FirmwareError

SPD_MAGIC = 0x5D
SPD_BYTES = 16

_MODULE_TYPES = {
    "dram": 1,
    "mram": 2,
    "nvdimm": 3,
    "nand": 4,
    "tiered": 5,
}
_TYPE_NAMES = {v: k for k, v in _MODULE_TYPES.items()}


@dataclass(frozen=True)
class SpdData:
    """Decoded SPD contents of one DIMM."""

    module_type: str          # "dram" | "mram" | "nvdimm" | "nand"
    capacity_bytes: int
    speed_mt_s: int = 1333    # data rate in MT/s
    vendor: str = "GEN"       # 3-character vendor tag
    contents_preserved: bool = False  # NVM with valid saved image

    @property
    def is_non_volatile(self) -> bool:
        return self.module_type in ("mram", "nvdimm", "nand")

    def encode(self) -> bytes:
        """Pack into the 16-byte on-EEPROM layout (with checksum)."""
        if self.module_type not in _MODULE_TYPES:
            raise FirmwareError(f"unknown module type {self.module_type!r}")
        if len(self.vendor) != 3 or not self.vendor.isascii():
            raise FirmwareError("vendor tag must be 3 ASCII characters")
        if self.capacity_bytes <= 0 or self.capacity_bytes >= 1 << 48:
            raise FirmwareError(f"capacity {self.capacity_bytes} out of range")
        body = bytearray()
        body.append(SPD_MAGIC)
        body.append(_MODULE_TYPES[self.module_type])
        body += self.capacity_bytes.to_bytes(6, "big")
        body += self.speed_mt_s.to_bytes(2, "big")
        body += self.vendor.encode("ascii")
        body.append(1 if self.contents_preserved else 0)
        body += bytes(SPD_BYTES - 1 - len(body))
        checksum = sum(body) & 0xFF
        body.append(checksum)
        return bytes(body)

    @classmethod
    def decode(cls, raw: bytes) -> "SpdData":
        """Parse and checksum-verify an SPD image."""
        if len(raw) != SPD_BYTES:
            raise FirmwareError(f"SPD image must be {SPD_BYTES} bytes, got {len(raw)}")
        if sum(raw[:-1]) & 0xFF != raw[-1]:
            raise FirmwareError("SPD checksum mismatch")
        if raw[0] != SPD_MAGIC:
            raise FirmwareError("SPD magic byte missing")
        type_code = raw[1]
        if type_code not in _TYPE_NAMES:
            raise FirmwareError(f"unknown SPD module type code {type_code}")
        return cls(
            module_type=_TYPE_NAMES[type_code],
            capacity_bytes=int.from_bytes(raw[2:8], "big"),
            speed_mt_s=int.from_bytes(raw[8:10], "big"),
            vendor=raw[10:13].decode("ascii"),
            contents_preserved=bool(raw[13]),
        )


def spd_for_device(device) -> SpdData:
    """Build the SPD a given :class:`~repro.memory.device.MemoryDevice` reports."""
    preserved = False
    if device.technology == "nvdimm":
        preserved = getattr(device, "contents_preserved", False)
    elif device.non_volatile:
        preserved = True
    return SpdData(
        module_type=device.technology,
        capacity_bytes=device.capacity_bytes,
        contents_preserved=preserved,
    )
