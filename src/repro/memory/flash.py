"""NAND flash device model.

Flash appears in two places in the platform: as the backup medium inside
NVDIMM-N modules (bulk save/restore of DRAM contents on power events) and as
the storage medium behind the PCIe-attached SSD/NVRAM baselines in the
FIO experiments (Figures 9 and 10).

The model captures what those experiments depend on:

* page-granularity reads (~50 us) and programs (~600 us),
* erase-before-program at block granularity (~3 ms),
* an internal FTL-like remap so callers can overwrite logical pages while
  the device erases/relocates underneath (modeled as amortized program cost
  plus periodic erase stalls),
* endurance accounting per erase block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..units import us_to_ps
from .device import MemoryDevice
from .endurance import ENDURANCE_MLC_NAND, EnduranceSpec, WearTracker


@dataclass(frozen=True)
class FlashTiming:
    """NAND operation latencies (MLC-era figures)."""

    page_bytes: int = 16 << 10          # 16 KiB page
    pages_per_block: int = 256          # 4 MiB erase block
    read_page_ps: int = us_to_ps(50)
    program_page_ps: int = us_to_ps(600)
    erase_block_ps: int = us_to_ps(3_000)
    #: fraction of programs that trigger a (modeled, amortized) erase
    erase_amortization: float = 1.0 / 256

    @property
    def block_bytes(self) -> int:
        return self.page_bytes * self.pages_per_block


class NandFlash(MemoryDevice):
    """A NAND flash die/package with page timing and wear tracking."""

    technology = "nand"
    non_volatile = True

    def __init__(
        self,
        capacity_bytes: int,
        timing: FlashTiming = FlashTiming(),
        spec: EnduranceSpec = ENDURANCE_MLC_NAND,
        name: str = "",
        enforce_endurance: bool = False,
    ):
        super().__init__(capacity_bytes, name)
        self.timing = timing
        self.wear = WearTracker(spec, timing.block_bytes, enforce=enforce_endurance)
        self._busy_until_ps = 0
        self._programs_since_erase = 0
        # Stats
        self.page_reads = 0
        self.page_programs = 0
        self.block_erases = 0

    def _pages_touched(self, addr: int, nbytes: int) -> int:
        first = addr // self.timing.page_bytes
        last = (addr + max(nbytes, 1) - 1) // self.timing.page_bytes
        return last - first + 1

    def read(self, addr: int, nbytes: int, now_ps: int) -> Tuple[bytes, int]:
        self._precheck(addr, nbytes)
        pages = self._pages_touched(addr, nbytes)
        start = max(now_ps, self._busy_until_ps)
        finish = start + pages * self.timing.read_page_ps
        self._busy_until_ps = finish
        self.page_reads += pages
        return self._account_read(addr, nbytes), finish

    def write(self, addr: int, data: bytes, now_ps: int) -> int:
        self._precheck(addr, len(data))
        pages = self._pages_touched(addr, len(data))
        start = max(now_ps, self._busy_until_ps)
        finish = start + pages * self.timing.program_page_ps
        # Erase cost is amortized: every (1/erase_amortization) programs the
        # FTL must reclaim a block before it can program.
        self._programs_since_erase += pages
        erase_every = max(1, int(round(1 / self.timing.erase_amortization)))
        while self._programs_since_erase >= erase_every:
            self._programs_since_erase -= erase_every
            finish += self.timing.erase_block_ps
            self.block_erases += 1
        self._busy_until_ps = finish
        self.page_programs += pages
        self.wear.record_write(addr, len(data))
        self._account_write(addr, data)
        return finish
