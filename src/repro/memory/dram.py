"""DDR3 SDRAM device with a JEDEC-style bank/row timing model.

The ConTutto card carries two industry-standard DDR3 DIMM slots; the base
design drives them with Altera's soft DDR3 controller (Section 3.3 (v)).
This module models the *device* side: 8 banks per rank, open-row tracking,
and the core timing parameters that decide an access's latency:

* row hit:   CAS latency + data burst,
* row miss:  activate (tRCD) + CAS + burst,
* row conflict: precharge (tRP) + activate + CAS + burst,

plus tRAS (minimum row-open time), tWR (write recovery before precharge)
and periodic refresh (all banks stall for tRFC every tREFI).

Cache-line transfers move 128 bytes over a 64-bit data bus at double data
rate: 16 beats = 8 memory-clock cycles = two BL8 bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import AlignmentError, ConfigurationError
from .device import MemoryDevice


@dataclass(frozen=True)
class Ddr3Timing:
    """DDR3 timing parameters, in picoseconds.

    Defaults correspond to DDR3-1333 CL9 (tCK = 1.5 ns), a typical DIMM for
    the platform's era.
    """

    tck_ps: int = 1_500          # memory clock period
    cl_cycles: int = 9           # CAS latency
    trcd_cycles: int = 9         # RAS-to-CAS delay (activate)
    trp_cycles: int = 9          # row precharge
    tras_cycles: int = 24        # minimum row active time
    twr_cycles: int = 10         # write recovery
    trfc_ps: int = 160_000       # refresh cycle time (4 Gb parts)
    trefi_ps: int = 7_800_000    # average refresh interval

    @property
    def cas_ps(self) -> int:
        return self.cl_cycles * self.tck_ps

    @property
    def trcd_ps(self) -> int:
        return self.trcd_cycles * self.tck_ps

    @property
    def trp_ps(self) -> int:
        return self.trp_cycles * self.tck_ps

    @property
    def tras_ps(self) -> int:
        return self.tras_cycles * self.tck_ps

    @property
    def twr_ps(self) -> int:
        return self.twr_cycles * self.tck_ps

    def burst_ps(self, nbytes: int) -> int:
        """Data-bus time for ``nbytes`` over a 64-bit DDR bus.

        16 bytes move per clock (8 bytes per edge), so a 128 B line takes
        8 clocks.
        """
        beats = -(-nbytes // 8)           # 8 bytes per beat
        clocks = -(-beats // 2)           # two beats per clock (DDR)
        return clocks * self.tck_ps


DDR3_1333 = Ddr3Timing()
DDR3_1066 = Ddr3Timing(tck_ps=1_875, cl_cycles=7, trcd_cycles=7, trp_cycles=7,
                       tras_cycles=20, twr_cycles=8)
DDR3_1600 = Ddr3Timing(tck_ps=1_250, cl_cycles=11, trcd_cycles=11, trp_cycles=11,
                       tras_cycles=28, twr_cycles=12)


@dataclass
class _Bank:
    open_row: int = -1
    ready_ps: int = 0        # earliest time a new column command may issue
    row_open_since: int = 0  # for tRAS enforcement


class DdrDram(MemoryDevice):
    """A DDR3 DRAM rank: 8 banks, open-page tracking, refresh stalls."""

    technology = "dram"
    non_volatile = False

    NUM_BANKS = 8
    ROW_BYTES = 8 << 10  # 8 KiB page per bank row

    def __init__(
        self,
        capacity_bytes: int,
        timing: Ddr3Timing = DDR3_1333,
        name: str = "",
        refresh_enabled: bool = True,
        ecc_enabled: bool = False,
    ):
        super().__init__(capacity_bytes, name)
        self.timing = timing
        self.refresh_enabled = refresh_enabled
        self.ecc_enabled = ecc_enabled
        self._banks: List[_Bank] = [_Bank() for _ in range(self.NUM_BANKS)]
        self._bus_free_ps = 0
        #: injected per-bank faults: bank -> ("slow", extra_ps) | ("fail", 0)
        self._bank_faults: Dict[int, Tuple[str, int]] = {}
        if ecc_enabled:
            from .backing import SparseBacking

            # one check byte per 8-byte word, stored on the ECC lane
            self._check_backing = SparseBacking(capacity_bytes // 8)
        # Stats
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.refresh_stalls = 0
        self.ecc_corrections = 0
        self.ecc_uncorrectable = 0

    # -- address mapping -----------------------------------------------------

    def _map(self, addr: int) -> Tuple[int, int]:
        """Map a byte address to (bank, row).

        Row bits above bank bits above column bits: consecutive cache lines
        within a row stay in one bank (good locality for streams), and rows
        interleave across banks.
        """
        row_global = addr // self.ROW_BYTES
        bank = row_global % self.NUM_BANKS
        row = row_global // self.NUM_BANKS
        return bank, row

    # -- timing core ---------------------------------------------------------

    def _refresh_penalty(self, start_ps: int) -> int:
        """Push ``start_ps`` past a refresh window if one lands on it.

        We model distributed refresh: in every tREFI interval the device is
        unavailable for the final tRFC.
        """
        if not self.refresh_enabled:
            return start_ps
        t = self.timing
        phase = start_ps % t.trefi_ps
        window_start = t.trefi_ps - t.trfc_ps
        if phase >= window_start:
            self.refresh_stalls += 1
            return start_ps + (t.trefi_ps - phase)
        return start_ps

    def _access_timing(self, addr: int, now_ps: int, is_write: bool, nbytes: int) -> int:
        t = self.timing
        bank_no, row = self._map(addr)
        bank = self._banks[bank_no]

        start = max(now_ps, bank.ready_ps)
        start = self._refresh_penalty(start)
        if self._bank_faults:
            fault = self._bank_faults.get(bank_no)
            if fault is not None and fault[0] == "slow":
                start += fault[1]

        if bank.open_row == row:
            self.row_hits += 1
            column_at = start
        elif bank.open_row == -1:
            self.row_misses += 1
            column_at = start + t.trcd_ps
            bank.row_open_since = start
        else:
            self.row_conflicts += 1
            # respect tRAS before precharging the currently open row
            precharge_at = max(start, bank.row_open_since + t.tras_ps)
            column_at = precharge_at + t.trp_ps + t.trcd_ps
            bank.row_open_since = precharge_at + t.trp_ps
        bank.open_row = row

        # data bus is shared across banks
        data_start = max(column_at + t.cas_ps, self._bus_free_ps)
        finish = data_start + t.burst_ps(nbytes)
        self._bus_free_ps = finish
        recovery = t.twr_ps if is_write else 0
        bank.ready_ps = finish + recovery
        return finish

    # -- MemoryDevice API ------------------------------------------------------

    def read(self, addr: int, nbytes: int, now_ps: int) -> Tuple[bytes, int]:
        self._precheck(addr, nbytes)
        if self._bank_faults:
            bank_no, _ = self._map(addr)
            fault = self._bank_faults.get(bank_no)
            if fault is not None and fault[0] == "fail":
                from .ecc import UncorrectableEccError

                self.ecc_uncorrectable += 1
                raise UncorrectableEccError(
                    f"{self.name}: bank {bank_no} failed (injected fault)"
                )
        if nbytes > self.ROW_BYTES:
            raise AlignmentError(
                f"{self.name}: single access of {nbytes}B exceeds a row"
            )
        finish = self._access_timing(addr, now_ps, is_write=False, nbytes=nbytes)
        data = self._account_read(addr, nbytes)
        if self.ecc_enabled:
            data = self._ecc_verify(addr, data)
        return data, finish

    def write(self, addr: int, data: bytes, now_ps: int) -> int:
        self._precheck(addr, len(data))
        if len(data) > self.ROW_BYTES:
            raise AlignmentError(
                f"{self.name}: single access of {len(data)}B exceeds a row"
            )
        finish = self._access_timing(addr, now_ps, is_write=True, nbytes=len(data))
        self._account_write(addr, data)
        if self.ecc_enabled:
            from .ecc import encode_line

            if addr % 8 or len(data) % 8:
                raise AlignmentError(
                    f"{self.name}: ECC writes must be 8-byte aligned"
                )
            self._check_backing.write(addr // 8, encode_line(data))
        return finish

    # -- ECC (SEC-DED per 64-bit word, see repro.memory.ecc) ----------------

    def _ecc_verify(self, addr: int, data: bytes) -> bytes:
        from .ecc import UncorrectableEccError, decode_line

        if addr % 8 or len(data) % 8:
            raise AlignmentError(f"{self.name}: ECC reads must be 8-byte aligned")
        checks = self._check_backing.read(addr // 8, len(data) // 8)
        try:
            corrected, fixes = decode_line(data, checks)
        except UncorrectableEccError:
            self.ecc_uncorrectable += 1
            raise
        if fixes:
            self.ecc_corrections += fixes
            # write-back correction: scrub the flipped cell
            self.backing.write(addr, corrected)
        return corrected

    def inject_bit_error(self, addr: int, bit: int) -> None:
        """Flip one stored data bit (cosmic ray / weak cell model)."""
        byte = bytearray(self.backing.read(addr + bit // 8, 1))
        byte[0] ^= 1 << (bit % 8)
        self.backing.write(addr + bit // 8, bytes(byte))

    # -- injected bank faults ---------------------------------------------------

    def set_bank_fault(self, bank: int, mode: str, extra_ps: int = 0) -> None:
        """Mark one bank ``"slow"`` (extra access latency) or ``"fail"``
        (reads raise :class:`UncorrectableEccError`; the controller poisons
        the line).  The nil-check on ``_bank_faults`` keeps the clean path
        free of per-access cost."""
        if mode not in ("slow", "fail"):
            raise ConfigurationError(f"{self.name}: bank fault mode {mode!r}")
        if not 0 <= bank < self.NUM_BANKS:
            raise ConfigurationError(f"{self.name}: no bank {bank}")
        if mode == "slow" and extra_ps <= 0:
            raise ConfigurationError(f"{self.name}: slow fault needs extra_ps > 0")
        self._bank_faults[bank] = (mode, extra_ps if mode == "slow" else 0)

    def clear_bank_fault(self, bank: int) -> None:
        self._bank_faults.pop(bank, None)

    # -- diagnostics -----------------------------------------------------------

    @property
    def row_buffer_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    def banks_busy(self, now_ps: int) -> int:
        """Banks still serving (or recovering from) an access at ``now_ps``."""
        return sum(1 for bank in self._banks if bank.ready_ps > now_ps)

    def bank_busy(self, bank: int, now_ps: int) -> bool:
        """Whether one bank is serving (or recovering from) an access."""
        return self._banks[bank].ready_ps > now_ps
