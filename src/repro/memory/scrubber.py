"""Patrol scrubber: background sweep that heals latent ECC errors.

Server memory controllers patrol the array at a low background rate,
reading every line so that single-bit upsets are corrected (and written
back) *before* a second hit in the same word turns them into uncorrectable
errors.  Centaur has such machinery among the "auxiliary functions" the
FPGA design omits; this scrubber can be attached to any ECC-enabled DRAM
device in the model.

The scrubber is a simulated process: it walks the device line by line at a
configurable rate, and its effectiveness is measurable — the UE rate under
continuous fault injection drops when the patrol interval beats the fault
arrival rate (see tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim import Process, Simulator
from ..units import CACHE_LINE_BYTES, us_to_ps
from .dram import DdrDram
from .ecc import UncorrectableEccError


@dataclass(frozen=True)
class ScrubConfig:
    """Patrol parameters."""

    #: pause between consecutive patrol reads (sets the sweep rate)
    interval_ps: int = us_to_ps(10)
    #: lines read per patrol step
    lines_per_step: int = 4


class PatrolScrubber:
    """Walks an ECC DRAM device, correcting what it finds."""

    def __init__(
        self,
        sim: Simulator,
        device: DdrDram,
        config: ScrubConfig = ScrubConfig(),
        name: str = "scrub",
    ):
        if not device.ecc_enabled:
            raise ConfigurationError(
                f"{name}: patrol scrubbing requires an ECC-enabled device"
            )
        if config.lines_per_step <= 0 or config.interval_ps <= 0:
            raise ConfigurationError(f"{name}: invalid scrub configuration")
        self.sim = sim
        self.device = device
        self.config = config
        self.name = name
        self._cursor = 0
        self._running = False
        # Stats
        self.lines_scrubbed = 0
        self.corrections = 0
        self.uncorrectable_found = 0
        self.sweeps_completed = 0

    @property
    def total_lines(self) -> int:
        return self.device.capacity_bytes // CACHE_LINE_BYTES

    def start(self) -> Process:
        """Begin patrolling; returns the (never-ending) scrub process.

        Stop by setting :attr:`stop_requested`; the process returns its
        sweep count.
        """
        if self._running:
            raise ConfigurationError(f"{self.name}: already running")
        self._running = True
        self.stop_requested = False
        return Process(self.sim, self._patrol(), name=self.name)

    def _patrol(self):
        while not self.stop_requested:
            for _ in range(self.config.lines_per_step):
                addr = self._cursor * CACHE_LINE_BYTES
                before = self.device.ecc_corrections
                try:
                    self.device.read(addr, CACHE_LINE_BYTES, self.sim.now_ps)
                except UncorrectableEccError:
                    self.uncorrectable_found += 1
                self.corrections += self.device.ecc_corrections - before
                self.lines_scrubbed += 1
                self._cursor += 1
                if self._cursor >= self.total_lines:
                    self._cursor = 0
                    self.sweeps_completed += 1
            yield self.config.interval_ps
        self._running = False
        return self.sweeps_completed

    def sweep_time_ps(self) -> int:
        """Time for one full pass over the device at the configured rate."""
        steps = -(-self.total_lines // self.config.lines_per_step)
        return steps * self.config.interval_ps
