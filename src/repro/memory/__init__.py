"""Memory devices: DRAM, STT-MRAM, NVDIMM-N, NAND flash, SPD, endurance."""

from .backing import BLOCK_BYTES, SparseBacking
from .ddr3_controller import MemoryController, MemoryControllerConfig
from .device import MemoryDevice
from .dram import DDR3_1066, DDR3_1333, DDR3_1600, Ddr3Timing, DdrDram
from .endurance import (
    ENDURANCE_3DXP,
    ENDURANCE_DRAM,
    ENDURANCE_MLC_NAND,
    ENDURANCE_RERAM,
    ENDURANCE_SLC_NAND,
    ENDURANCE_STT_MRAM,
    ENDURANCE_TLC_NAND,
    FIGURE8_TECHNOLOGIES,
    EnduranceSpec,
    WearTracker,
    memory_bus_lifetime_s,
)
from .ecc import (
    UncorrectableEccError,
    decode_line,
    decode_word,
    encode_line,
    encode_word,
)
from .flash import FlashTiming, NandFlash
from .nvdimm import NvdimmN, NvdimmState, SupercapSpec
from .scrubber import PatrolScrubber, ScrubConfig
from .spd import SPD_BYTES, SpdData, spd_for_device
from .sttmram import IMTJ_TIMING, PMTJ_TIMING, MramTiming, SttMram

__all__ = [
    "BLOCK_BYTES",
    "DDR3_1066",
    "DDR3_1333",
    "DDR3_1600",
    "Ddr3Timing",
    "DdrDram",
    "ENDURANCE_3DXP",
    "ENDURANCE_DRAM",
    "ENDURANCE_MLC_NAND",
    "ENDURANCE_RERAM",
    "ENDURANCE_SLC_NAND",
    "ENDURANCE_STT_MRAM",
    "ENDURANCE_TLC_NAND",
    "EnduranceSpec",
    "FIGURE8_TECHNOLOGIES",
    "FlashTiming",
    "IMTJ_TIMING",
    "MemoryController",
    "MemoryControllerConfig",
    "MemoryDevice",
    "MramTiming",
    "NandFlash",
    "NvdimmN",
    "NvdimmState",
    "PMTJ_TIMING",
    "PatrolScrubber",
    "ScrubConfig",
    "SPD_BYTES",
    "SparseBacking",
    "SpdData",
    "SttMram",
    "SupercapSpec",
    "UncorrectableEccError",
    "WearTracker",
    "decode_line",
    "decode_word",
    "encode_line",
    "encode_word",
    "memory_bus_lifetime_s",
    "spd_for_device",
]
