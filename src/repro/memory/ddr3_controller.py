"""Memory controller model (the Altera soft DDR3 controller analogue).

Sits between a bus port (Avalon on ConTutto, Centaur internals on a CDIMM)
and a :class:`~repro.memory.device.MemoryDevice`.  Adds the controller
pipeline overhead, bounds the number of requests in flight, and completes
requests through :class:`~repro.sim.event.Signal`.

Enabling a different memory technology on ConTutto "mainly requires changes
only to the memory controller" (Section 3.3(v)) — here that corresponds to
instantiating this controller over a different device and, for non-DRAM
parts, adjusting ``MemoryControllerConfig`` the way the memory vendors'
controller patches did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from ..sim import Signal, Simulator
from ..telemetry import probe
from .device import MemoryDevice


@dataclass(frozen=True)
class MemoryControllerConfig:
    """Controller pipeline parameters."""

    #: command-path latency: decode, bank scheduling, PHY launch
    command_overhead_ps: int = 10_000
    #: return-path latency: read data capture, ECC check, response mux
    response_overhead_ps: int = 8_000
    #: maximum requests the controller holds (beyond that, submits stall)
    queue_depth: int = 16


class MemoryController:
    """A queued, pipelined front end over one memory device."""

    #: advertises the optional ``journey=`` kwarg on submit_read/submit_write
    #: so callers (AvalonBus) can feature-test without importing this module
    accepts_journey = True

    def __init__(
        self,
        sim: Simulator,
        device: MemoryDevice,
        config: MemoryControllerConfig = MemoryControllerConfig(),
        name: str = "",
    ):
        if config.queue_depth <= 0:
            raise ConfigurationError("controller queue depth must be positive")
        self.sim = sim
        self.device = device
        self.config = config
        self.name = name or f"mc.{device.name}"
        self._in_flight = 0
        self._stalled: List[Signal] = []
        # Stats
        self.reads_submitted = 0
        self.writes_submitted = 0
        self.queue_full_stalls = 0
        self.uncorrectable_errors = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queue_full(self) -> bool:
        return self._in_flight >= self.config.queue_depth

    # -- submission -----------------------------------------------------------

    def submit_read(
        self, addr: int, nbytes: int, journey: Optional[int] = None
    ) -> Signal:
        """Issue a read; returned signal triggers with the data bytes."""
        done = Signal(f"{self.name}.rd@{addr:#x}")
        self._enqueue(
            lambda: self._do_read(addr, nbytes, done, journey),
            self._journey_probe(journey, done),
        )
        self.reads_submitted += 1
        trace = probe.session
        if trace is not None:
            self._trace_op(trace, done, "rd")
            trace.count("memory.reads")
        return done

    def submit_write(
        self, addr: int, data: bytes, journey: Optional[int] = None
    ) -> Signal:
        """Issue a write; returned signal triggers (with None) on completion."""
        done = Signal(f"{self.name}.wr@{addr:#x}")
        self._enqueue(
            lambda: self._do_write(addr, data, done, journey),
            self._journey_probe(journey, done),
        )
        self.writes_submitted += 1
        trace = probe.session
        if trace is not None:
            self._trace_op(trace, done, "wr")
            trace.count("memory.writes")
        return done

    def _trace_op(self, trace, done: Signal, op: str) -> None:
        """Span one controller operation: submit through completion."""
        t0 = self.sim.now_ps
        done.add_waiter(
            lambda _: trace.complete(
                "memory", f"{op}:{self.name}", t0, self.sim.now_ps
            )
        )

    def _journey_probe(self, journey: Optional[int], done: Signal):
        """Build a start hook attributing queue wait vs. service for one
        journey, or None when attribution is off (the common case)."""
        if journey is None:
            return None
        trace = probe.session
        if trace is None or trace.journeys is None:
            return None
        journeys = trace.journeys
        submit_ps = self.sim.now_ps

        def on_start() -> None:
            start_ps = self.sim.now_ps
            # queue-full stall: submit through the slot opening
            journeys.stage_span(journey, "memory.queue", submit_ps, start_ps, kind="queue")
            done.add_waiter(
                lambda _: journeys.stage_span(
                    journey, "memory.service", start_ps, self.sim.now_ps
                )
            )

        return on_start

    def _enqueue(self, action, on_start=None) -> None:
        if self.queue_full:
            self.queue_full_stalls += 1
            gate = Signal(f"{self.name}.stall")
            self._stalled.append(gate)
            gate.add_waiter(lambda _: self._start(action, on_start))
        else:
            self._start(action, on_start)

    def _start(self, action, on_start=None) -> None:
        self._in_flight += 1
        if on_start is not None:
            on_start()
        self.sim.call_after(self.config.command_overhead_ps, action)

    def _finish(self) -> None:
        self._in_flight -= 1
        if self._stalled:
            self._stalled.pop(0).trigger()

    #: the pattern returned for words lost to uncorrectable errors: real
    #: controllers "poison" the data so consumers can detect the loss
    POISON_BYTE = 0xDE

    def _journey_context(self, journey: Optional[int]):
        """The journey tracker to push ``journey`` onto around the device
        access, or None.  Tiered devices stage their per-tier visits into
        the enclosing journey through this ambient context."""
        if journey is None:
            return None
        trace = probe.session
        if trace is None or trace.journeys is None:
            return None
        return trace.journeys

    def _do_read(
        self, addr: int, nbytes: int, done: Signal,
        journey: Optional[int] = None,
    ) -> None:
        from .ecc import UncorrectableEccError

        journeys = self._journey_context(journey)
        if journeys is not None:
            journeys.push(journey)
        try:
            data, finish_ps = self.device.read(addr, nbytes, self.sim.now_ps)
        except UncorrectableEccError:
            # SUE handling: log, poison, complete — the machine keeps
            # running and RAS policy (FSP) decides what to do with the DIMM
            self.uncorrectable_errors += 1
            data = bytes([self.POISON_BYTE]) * nbytes
            finish_ps = self.sim.now_ps + self.config.command_overhead_ps
        finally:
            if journeys is not None:
                journeys.pop()
        complete_at = finish_ps + self.config.response_overhead_ps
        self.sim.call_at(complete_at, self._complete, done, data)

    def _do_write(
        self, addr: int, data: bytes, done: Signal,
        journey: Optional[int] = None,
    ) -> None:
        journeys = self._journey_context(journey)
        if journeys is not None:
            journeys.push(journey)
        try:
            finish_ps = self.device.write(addr, data, self.sim.now_ps)
        finally:
            if journeys is not None:
                journeys.pop()
        complete_at = finish_ps + self.config.response_overhead_ps
        self.sim.call_at(complete_at, self._complete, done, None)

    def _complete(self, done: Signal, value) -> None:
        self._finish()
        done.trigger(value)

    # -- latency estimate (for FRTL-style budgeting) -----------------------------

    def unloaded_read_latency_ps(self) -> int:
        """Idle-system read latency through controller + device (estimate).

        Probes the device with a real read of line 0 at the current simulated
        time.  Contents are untouched, but device timing state (bank timers,
        stat counters) advances — call this during bring-up, not mid-run.
        """
        _, finish = self.device.read(0, 128, self.sim.now_ps)
        base = finish - self.sim.now_ps
        return (
            self.config.command_overhead_ps + base + self.config.response_overhead_ps
        )
