"""SEC-DED ECC for the DRAM path (extended Hamming (72,64)).

Server DIMMs store eight check bits per 64-bit word; the memory controller
corrects any single-bit error per word and *detects* any double-bit error
(flagging it uncorrectable).  The DMI link already has CRC+replay for
transfer errors; ECC covers the cells themselves — and it is what lets the
FSP's error-log policy distinguish "correctable noise, keep going" from
"deconfigure the DIMM".

Implementation: classic extended Hamming.  Check bits live at power-of-two
positions of a 1-indexed 72-bit codeword, plus an overall parity bit.
Syndrome decoding:

=========  ==============  =======================================
syndrome   overall parity  meaning
=========  ==============  =======================================
0          even            clean word
s != 0     odd             single-bit error at position ``s`` — corrected
s != 0     even            double-bit error — uncorrectable
0          odd             error in the overall parity bit itself
=========  ==============  =======================================
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import MemoryError_

DATA_BITS = 64
#: parity bits at positions 1, 2, 4, 8, 16, 32, 64 of the 1-indexed codeword
_PARITY_POSITIONS = [1 << i for i in range(7)]
CODEWORD_BITS = DATA_BITS + len(_PARITY_POSITIONS)  # 71 + overall parity
WORD_BYTES = 8
CHECK_BYTES = 1  # 7 Hamming bits + 1 overall parity, packed into one byte


class UncorrectableEccError(MemoryError_):
    """A word suffered a multi-bit error beyond SEC-DED's reach."""


def _data_positions() -> List[int]:
    """Codeword positions (1-indexed) holding data bits, in order."""
    return [
        pos for pos in range(1, CODEWORD_BITS + 1) if pos not in _PARITY_POSITIONS
    ]


_DATA_POSITIONS = _data_positions()


def _spread(data: int) -> int:
    """Place 64 data bits into their codeword positions (parity bits zero)."""
    word = 0
    for bit_index, pos in enumerate(_DATA_POSITIONS):
        if (data >> bit_index) & 1:
            word |= 1 << (pos - 1)
    return word


def _collect(codeword: int) -> int:
    """Extract the 64 data bits back out of a codeword."""
    data = 0
    for bit_index, pos in enumerate(_DATA_POSITIONS):
        if (codeword >> (pos - 1)) & 1:
            data |= 1 << bit_index
    return data


def _parity_of(codeword: int, parity_pos: int) -> int:
    """Parity over all positions whose index has the parity bit set."""
    parity = 0
    for pos in range(1, CODEWORD_BITS + 1):
        if pos & parity_pos and pos != parity_pos:
            parity ^= (codeword >> (pos - 1)) & 1
    return parity


def encode_word(data: int) -> Tuple[int, int]:
    """Encode a 64-bit word; returns (codeword, check_byte).

    ``check_byte`` packs the seven Hamming parities (bits 0-6) plus the
    overall parity (bit 7) — the byte stored in the ECC device/lane.
    """
    if not 0 <= data < (1 << DATA_BITS):
        raise MemoryError_(f"ECC encodes 64-bit words, got {data.bit_length()} bits")
    codeword = _spread(data)
    check = 0
    for i, parity_pos in enumerate(_PARITY_POSITIONS):
        bit = _parity_of(codeword, parity_pos)
        if bit:
            codeword |= 1 << (parity_pos - 1)
            check |= 1 << i
    overall = bin(codeword).count("1") & 1
    check |= overall << 7
    return codeword, check


def decode_word(stored_data: int, check_byte: int) -> Tuple[int, int]:
    """Verify/correct a stored word against its check byte.

    Returns ``(corrected_data, corrected_bits)`` where ``corrected_bits``
    is 0 (clean) or 1 (single error fixed).  Raises
    :class:`UncorrectableEccError` on a double-bit error.
    """
    codeword = _spread(stored_data)
    for i, parity_pos in enumerate(_PARITY_POSITIONS):
        if (check_byte >> i) & 1:
            codeword |= 1 << (parity_pos - 1)
    stored_overall = (check_byte >> 7) & 1

    syndrome = 0
    for i, parity_pos in enumerate(_PARITY_POSITIONS):
        recomputed = _parity_of(codeword, parity_pos)
        stored = (codeword >> (parity_pos - 1)) & 1
        if recomputed != stored:
            syndrome |= parity_pos
    overall_now = bin(codeword).count("1") & 1
    overall_mismatch = overall_now != stored_overall

    if syndrome == 0 and not overall_mismatch:
        return _collect(codeword), 0
    if syndrome == 0 and overall_mismatch:
        # the overall parity bit itself flipped; data is intact
        return _collect(codeword), 1
    if overall_mismatch:
        # odd number of flips with a nonzero syndrome: single-bit error
        if syndrome > CODEWORD_BITS:
            raise UncorrectableEccError(
                f"syndrome {syndrome} points outside the codeword"
            )
        codeword ^= 1 << (syndrome - 1)
        return _collect(codeword), 1
    raise UncorrectableEccError(
        f"double-bit error detected (syndrome {syndrome:#x})"
    )


# -- line-level helpers (128 B = 16 words) -----------------------------------


def encode_line(line: bytes) -> bytes:
    """Check bytes for a cache line: one per 8-byte word."""
    if len(line) % WORD_BYTES:
        raise MemoryError_("ECC lines must be a multiple of 8 bytes")
    checks = bytearray()
    for offset in range(0, len(line), WORD_BYTES):
        word = int.from_bytes(line[offset : offset + WORD_BYTES], "little")
        _, check = encode_word(word)
        checks.append(check)
    return bytes(checks)


def decode_line(line: bytes, checks: bytes) -> Tuple[bytes, int]:
    """Verify/correct a line; returns (corrected line, bits corrected)."""
    if len(checks) * WORD_BYTES != len(line):
        raise MemoryError_("check bytes do not match line length")
    corrected = bytearray(line)
    fixes = 0
    for index, offset in enumerate(range(0, len(line), WORD_BYTES)):
        word = int.from_bytes(line[offset : offset + WORD_BYTES], "little")
        data, fixed = decode_word(word, checks[index])
        fixes += fixed
        if fixed:
            corrected[offset : offset + WORD_BYTES] = data.to_bytes(
                WORD_BYTES, "little"
            )
    return bytes(corrected), fixes
