"""NVDIMM-N: flash-backed DRAM with supercap-powered save/restore.

An NVDIMM-N runs at DRAM speed during normal operation.  When power is
removed, the module itself (not the FPGA or CPU) copies DRAM contents into
on-module flash, powered by a supercapacitor; on restore, contents are
copied back before the module reports ready.  The save/restore *sequence*
is vendor-specific on DDR3 (Section 4.2(iii)) — the firmware package drives
it via :mod:`repro.firmware`.

The model enforces the physics that make the engineering interesting:

* the supercap stores a finite energy budget; if the configured capacity
  cannot be saved within it, the save fails and contents are lost;
* accesses during SAVING/RESTORING are rejected;
* a restore after a successful save returns the exact pre-power-loss bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..errors import MemoryError_
from ..units import ms_to_ps, us_to_ps
from .device import MemoryDevice
from .dram import Ddr3Timing, DdrDram
from .flash import FlashTiming, NandFlash


class NvdimmState(enum.Enum):
    """Lifecycle of the module's save/restore machinery."""

    NORMAL = "normal"
    SAVING = "saving"
    SAVED = "saved"
    RESTORING = "restoring"
    LOST = "lost"  # save failed; contents gone


@dataclass(frozen=True)
class SupercapSpec:
    """Backup energy source: how long it can power a save."""

    hold_up_ms: float = 60_000.0  # 60 s of backup power (typical bank)
    #: save throughput from DRAM to on-module flash
    save_bandwidth_mb_s: float = 400.0

    def save_time_ms(self, capacity_bytes: int) -> float:
        return capacity_bytes / (self.save_bandwidth_mb_s * 1e6) * 1e3

    def can_save(self, capacity_bytes: int) -> bool:
        return self.save_time_ms(capacity_bytes) <= self.hold_up_ms


class NvdimmN(MemoryDevice):
    """Flash-backed DRAM DIMM (JEDEC NVDIMM-N style)."""

    technology = "nvdimm"
    non_volatile = True  # via the save/restore mechanism

    def __init__(
        self,
        capacity_bytes: int,
        dram_timing: Ddr3Timing = Ddr3Timing(),
        supercap: SupercapSpec = SupercapSpec(),
        name: str = "",
    ):
        super().__init__(capacity_bytes, name)
        self.dram = DdrDram(capacity_bytes, dram_timing, name=f"{self.name}.dram")
        self.flash = NandFlash(
            capacity_bytes, FlashTiming(), name=f"{self.name}.flash"
        )
        self.supercap = supercap
        self.state = NvdimmState.NORMAL
        # Stats
        self.saves = 0
        self.restores = 0
        self.failed_saves = 0

    # -- normal operation: DRAM speed ---------------------------------------

    def _check_operational(self) -> None:
        if self.state is not NvdimmState.NORMAL:
            raise MemoryError_(
                f"{self.name}: access while in {self.state.value} state"
            )

    def read(self, addr: int, nbytes: int, now_ps: int) -> Tuple[bytes, int]:
        self._check_operational()
        data, finish = self.dram.read(addr, nbytes, now_ps)
        self.reads += 1
        self.bytes_read += nbytes
        return data, finish

    def write(self, addr: int, data: bytes, now_ps: int) -> int:
        self._check_operational()
        finish = self.dram.write(addr, data, now_ps)
        self.writes += 1
        self.bytes_written += len(data)
        return finish

    # -- power events -----------------------------------------------------------

    def power_loss(self, now_ps: int) -> int:
        """Host power removed: save DRAM to flash on supercap energy.

        Returns the simulated completion time of the save.  If the supercap
        cannot hold up long enough, contents are lost and the device enters
        the LOST state.
        """
        self._check_operational()
        self.state = NvdimmState.SAVING
        if not self.supercap.can_save(self.capacity_bytes):
            self.failed_saves += 1
            self.dram.backing.clear()
            self.state = NvdimmState.LOST
            return now_ps + ms_to_ps(self.supercap.hold_up_ms)
        # copy DRAM contents into flash (module-internal bulk path)
        self.dram.backing.copy_into(self.flash.backing)
        self.dram.backing.clear()
        self.saves += 1
        self.state = NvdimmState.SAVED
        return now_ps + ms_to_ps(self.supercap.save_time_ms(self.capacity_bytes))

    def power_restore(self, now_ps: int) -> int:
        """Host power returns: restore flash contents into DRAM.

        Returns the completion time.  From the LOST state the module comes
        back empty (like a plain DIMM after power loss).
        """
        if self.state not in (NvdimmState.SAVED, NvdimmState.LOST):
            raise MemoryError_(
                f"{self.name}: power_restore from {self.state.value} state"
            )
        was_saved = self.state is NvdimmState.SAVED
        self.state = NvdimmState.RESTORING
        restore_ps = us_to_ps(100)
        if was_saved:
            self.flash.backing.copy_into(self.dram.backing)
            self.restores += 1
            restore_ps = ms_to_ps(self.supercap.save_time_ms(self.capacity_bytes))
        self.state = NvdimmState.NORMAL
        return now_ps + restore_ps

    @property
    def contents_preserved(self) -> bool:
        """Whether the last power cycle preserved contents."""
        return self.state is not NvdimmState.LOST
