"""STT-MRAM device model.

Spin-Transfer Torque Magnetic RAM presents a DDR3-compatible electrical
interface (which is why ConTutto can drive it with a modified DDR3
controller) but has different cell behaviour:

* non-volatile — contents survive power removal with no save operation;
* no refresh — the tREFI/tRFC machinery of DRAM does not exist;
* reads comparable to DRAM; writes noticeably slower (the MTJ switching
  time), which we model as an extra per-write cell-switching delay;
* enormous endurance (~1e15 cycles) — the property Figure 8 celebrates.

The paper's cards carried 256 MB MRAM DIMMs (two per card, 1 GB total
across two cards), first iMTJ then pMTJ parts; pMTJ improves the write
energy/latency, which the ``write_extra_ps`` parameter captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .device import MemoryDevice
from .dram import Ddr3Timing
from .endurance import ENDURANCE_STT_MRAM, WearTracker


@dataclass(frozen=True)
class MramTiming:
    """MRAM timing: DDR3 bus timing plus cell-switching overheads."""

    bus: Ddr3Timing = Ddr3Timing()
    #: extra read latency vs DRAM array access (sense-amp margin)
    read_extra_ps: int = 5_000
    #: extra write latency (MTJ switching); iMTJ ~ 30 ns, pMTJ ~ 15 ns
    write_extra_ps: int = 15_000


IMTJ_TIMING = MramTiming(write_extra_ps=30_000, read_extra_ps=8_000)
PMTJ_TIMING = MramTiming(write_extra_ps=15_000, read_extra_ps=5_000)


class SttMram(MemoryDevice):
    """An STT-MRAM DIMM behind a DDR3-style interface."""

    technology = "mram"
    non_volatile = True

    def __init__(
        self,
        capacity_bytes: int,
        timing: MramTiming = PMTJ_TIMING,
        name: str = "",
        enforce_endurance: bool = False,
    ):
        super().__init__(capacity_bytes, name)
        self.timing = timing
        self.wear = WearTracker(
            ENDURANCE_STT_MRAM, unit_bytes=128, enforce=enforce_endurance
        )
        self._busy_until_ps = 0

    def read(self, addr: int, nbytes: int, now_ps: int) -> Tuple[bytes, int]:
        self._precheck(addr, nbytes)
        t = self.timing
        start = max(now_ps, self._busy_until_ps)
        finish = (
            start + t.bus.trcd_ps + t.bus.cas_ps + t.read_extra_ps + t.bus.burst_ps(nbytes)
        )
        self._busy_until_ps = finish
        return self._account_read(addr, nbytes), finish

    def write(self, addr: int, data: bytes, now_ps: int) -> int:
        self._precheck(addr, len(data))
        t = self.timing
        start = max(now_ps, self._busy_until_ps)
        finish = (
            start + t.bus.trcd_ps + t.bus.cas_ps + t.write_extra_ps
            + t.bus.burst_ps(len(data))
        )
        self._busy_until_ps = finish
        self.wear.record_write(addr, len(data))
        self._account_write(addr, data)
        return finish
