"""Endurance models for non-volatile memory technologies.

Figure 8 of the paper compares write endurance across non-volatile memory
technologies (sourced from NVMW'16 / FMS'16 talks): NAND flash endures
thousands-to-tens-of-thousands of program/erase cycles per cell, while
STT-MRAM endures effectively unbounded writes (>= 1e12, often quoted 1e15) —
which is why MRAM is credible on a high-bandwidth memory bus and flash is
not.

:class:`WearTracker` counts writes per wear unit (a flash block or an MRAM
line) so long simulations can enforce — or just report — cell wear-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import EnduranceExceededError


@dataclass(frozen=True)
class EnduranceSpec:
    """Rated write endurance of a technology (cycles per cell)."""

    technology: str
    cycles: float
    note: str = ""


# The Figure 8 population: endurance in program/erase (or write) cycles.
ENDURANCE_TLC_NAND = EnduranceSpec("nand_tlc", 3e3, "3D TLC NAND")
ENDURANCE_MLC_NAND = EnduranceSpec("nand_mlc", 1e4, "MLC NAND")
ENDURANCE_SLC_NAND = EnduranceSpec("nand_slc", 1e5, "SLC NAND")
ENDURANCE_3DXP = EnduranceSpec("3dxpoint", 1e7, "phase-change class")
ENDURANCE_RERAM = EnduranceSpec("reram", 1e9, "resistive filament")
ENDURANCE_STT_MRAM = EnduranceSpec("stt_mram", 1e15, "magnetic tunnel junction")
ENDURANCE_DRAM = EnduranceSpec("dram", 1e16, "effectively unlimited (volatile)")

FIGURE8_TECHNOLOGIES: List[EnduranceSpec] = [
    ENDURANCE_TLC_NAND,
    ENDURANCE_MLC_NAND,
    ENDURANCE_SLC_NAND,
    ENDURANCE_3DXP,
    ENDURANCE_RERAM,
    ENDURANCE_STT_MRAM,
]


def memory_bus_lifetime_s(
    spec: EnduranceSpec,
    capacity_bytes: int,
    write_bandwidth_bytes_s: float,
    wear_leveling_efficiency: float = 1.0,
) -> float:
    """Seconds until a device wears out under sustained bus-rate writes.

    This is the quantitative argument behind Figure 8's qualitative message:
    at memory-bus write bandwidth, a flash device dies in hours while
    STT-MRAM outlives the machine.  Assumes ideal wear leveling scaled by
    ``wear_leveling_efficiency``.
    """
    if capacity_bytes <= 0 or write_bandwidth_bytes_s <= 0:
        raise ValueError("capacity and bandwidth must be positive")
    if not 0 < wear_leveling_efficiency <= 1:
        raise ValueError("wear_leveling_efficiency must be in (0, 1]")
    total_writable = spec.cycles * capacity_bytes * wear_leveling_efficiency
    return total_writable / write_bandwidth_bytes_s


class WearTracker:
    """Per-unit write counters with an endurance limit.

    ``unit_bytes`` is the wear granularity: an erase block for flash, a
    cache line for MRAM.  ``enforce`` decides whether exceeding the rating
    raises (device failure) or merely counts (reporting mode).
    """

    def __init__(self, spec: EnduranceSpec, unit_bytes: int, enforce: bool = True):
        if unit_bytes <= 0:
            raise ValueError("unit_bytes must be positive")
        self.spec = spec
        self.unit_bytes = unit_bytes
        self.enforce = enforce
        self._wear: Dict[int, int] = {}
        self.worn_out_units = 0

    def record_write(self, addr: int, nbytes: int) -> None:
        """Count one write cycle on every wear unit the range touches."""
        first = addr // self.unit_bytes
        last = (addr + max(nbytes, 1) - 1) // self.unit_bytes
        for unit in range(first, last + 1):
            count = self._wear.get(unit, 0) + 1
            self._wear[unit] = count
            if count == int(self.spec.cycles) + 1:
                self.worn_out_units += 1
                if self.enforce:
                    raise EnduranceExceededError(
                        f"{self.spec.technology}: unit {unit} exceeded "
                        f"{self.spec.cycles:.0e} write cycles"
                    )

    def wear_of(self, addr: int) -> int:
        """Write cycles consumed by the unit containing ``addr``."""
        return self._wear.get(addr // self.unit_bytes, 0)

    def max_wear(self) -> int:
        return max(self._wear.values(), default=0)

    def remaining_fraction(self, addr: int) -> float:
        """Fraction of rated endurance left for the unit containing ``addr``."""
        return max(0.0, 1.0 - self.wear_of(addr) / self.spec.cycles)

    def hottest_units(self, n: int = 5) -> List[Tuple[int, int]]:
        """The ``n`` most-written units as (unit, cycles), hottest first."""
        ranked = sorted(self._wear.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:n]
