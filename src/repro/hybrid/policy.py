"""Migration policies: when a :class:`TieredMemory` moves a page.

A policy's one entry point is :meth:`MigrationPolicy.maybe_migrate` —
called on every access *before* the demand request is served, with the
device and the (already heat-bumped) logical page.  It returns the
simulated time at which the demand access may proceed: ``now_ps`` when
nothing moved, or the completion time of the migration traffic when a
promotion ran (the demand access then lands in the fast tier and queues
behind the swap's bus commands).

Three policies, one per tiering philosophy:

``static``
    Pin the initial placement forever.  The baseline every migrating
    policy is measured against — and the model of systems that partition
    by address range (the paper's homogeneous cards are this).
``clock``
    Hot-promote / cold-demote: a slow page whose epoch-decayed counter
    reaches ``promote_threshold`` is swapped with a CLOCK second-chance
    victim immediately, whatever the traffic cost.
``budget``
    The ``clock`` trigger behind a migration-bandwidth budget: each
    epoch grants ``migrate_budget_bytes`` of migration traffic, a swap
    spends two pages' worth, and once the allowance is gone further
    promotions stall (counted, visible as ``tier.migration_stalls``)
    until the next epoch.  Models the migration-traffic throttles real
    tiering controllers ship so demand bandwidth is never starved.
"""

from __future__ import annotations

from typing import Dict, Type

from ..errors import ConfigurationError
from .device import SLOW, TieredMemory


class MigrationPolicy:
    """Decides, per access, whether migration traffic runs first."""

    name = "abstract"

    def maybe_migrate(
        self, device: TieredMemory, page: int, now_ps: int
    ) -> int:
        """Return when the demand access may start (>= ``now_ps``)."""
        raise NotImplementedError


class StaticPolicy(MigrationPolicy):
    """Never migrate: the initial page placement is permanent."""

    name = "static"

    def maybe_migrate(
        self, device: TieredMemory, page: int, now_ps: int
    ) -> int:
        return now_ps


class ClockPolicy(MigrationPolicy):
    """Promote slow pages that cross the hotness threshold, eagerly."""

    name = "clock"

    def maybe_migrate(
        self, device: TieredMemory, page: int, now_ps: int
    ) -> int:
        if device.tier_of(page) != SLOW:
            return now_ps
        if device.heat(page) < device.config.promote_threshold:
            return now_ps
        if device.migration_frozen:
            device.note_stall()
            return now_ps
        return self._admit(device, page, now_ps)

    def _admit(self, device: TieredMemory, page: int, now_ps: int) -> int:
        """Run the promotion; subclasses gate it behind a budget."""
        return device.promote(page, now_ps)


class BudgetPolicy(ClockPolicy):
    """CLOCK promotion behind a per-epoch migration-bandwidth budget."""

    name = "budget"

    def __init__(self) -> None:
        self._tokens = 0
        self._epoch = -1

    def _admit(self, device: TieredMemory, page: int, now_ps: int) -> int:
        epoch = now_ps // device.config.epoch_ps
        if epoch > self._epoch:
            self._epoch = epoch
            self._tokens = device.config.migrate_budget_bytes
        cost = 2 * device.config.page_bytes
        if self._tokens < cost:
            device.note_stall()
            return now_ps
        self._tokens -= cost
        return device.promote(page, now_ps)


#: the policy registry: ``CardSpec.tier_policy`` and the tuner's
#: ``tier.policy`` knob resolve names here
POLICIES: Dict[str, Type[MigrationPolicy]] = {
    StaticPolicy.name: StaticPolicy,
    ClockPolicy.name: ClockPolicy,
    BudgetPolicy.name: BudgetPolicy,
}


def make_policy(name: str) -> MigrationPolicy:
    """Instantiate a registered policy (fresh state per device)."""
    cls = POLICIES.get(name)
    if cls is None:
        known = ", ".join(sorted(POLICIES))
        raise ConfigurationError(
            f"unknown migration policy {name!r} (known: {known})"
        )
    return cls()
