"""Build a :class:`TieredMemory` from a declarative tiering spec.

:class:`TieringSpec` is the card-level face of the hybrid subsystem: a
:class:`~repro.core.system.CardSpec` with ``memory="tiered"`` carries one
and the system builder calls :func:`build_tiered` per DIMM slot.  The
fast tier is always DRAM (the point of tiering); the slow tier is any of
the emerging-memory models the paper swaps in homogeneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..memory import DdrDram, NvdimmN, SttMram
from .device import TieredConfig, TieredMemory
from .policy import POLICIES, make_policy

_SLOW_FACTORIES = {
    "mram": lambda cap, name: SttMram(cap, name=name),
    "nvdimm": lambda cap, name: NvdimmN(cap, name=name),
}


@dataclass(frozen=True)
class TieringSpec:
    """How a tiered card splits and manages its capacity."""

    #: share of the card's capacity given to the fast DRAM tier
    fast_fraction: float = 0.25
    #: slow-tier technology ("mram" | "nvdimm")
    slow_memory: str = "mram"
    #: migration policy name (see :data:`~repro.hybrid.policy.POLICIES`)
    policy: str = "clock"
    #: device knobs (page size, epoch, threshold, budget)
    config: TieredConfig = field(default_factory=TieredConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.fast_fraction < 1.0:
            raise ConfigurationError(
                f"tier fast_fraction must be in (0, 1), got {self.fast_fraction}"
            )
        if self.slow_memory not in _SLOW_FACTORIES:
            known = ", ".join(sorted(_SLOW_FACTORIES))
            raise ConfigurationError(
                f"unknown slow-tier memory {self.slow_memory!r} (known: {known})"
            )
        if self.policy not in POLICIES:
            known = ", ".join(sorted(POLICIES))
            raise ConfigurationError(
                f"unknown migration policy {self.policy!r} (known: {known})"
            )


def build_tiered(
    capacity_bytes: int, name: str, spec: TieringSpec
) -> TieredMemory:
    """One tiered device of ``capacity_bytes``, split per the spec.

    The fast share is rounded down to whole pages; both tiers keep at
    least one page so the device is genuinely two-tiered.
    """
    pb = spec.config.page_bytes
    if capacity_bytes % pb:
        raise ConfigurationError(
            f"tiered capacity {capacity_bytes} is not a multiple of the "
            f"{pb}B page"
        )
    pages = capacity_bytes // pb
    if pages < 2:
        raise ConfigurationError(
            f"tiered device needs >= 2 pages, got {pages}"
        )
    fast_pages = min(max(1, int(pages * spec.fast_fraction)), pages - 1)
    fast = DdrDram(fast_pages * pb, name=f"{name}.fast")
    slow = _SLOW_FACTORIES[spec.slow_memory](
        (pages - fast_pages) * pb, f"{name}.slow"
    )
    return TieredMemory(
        fast, slow, make_policy(spec.policy), spec.config, name=name
    )
