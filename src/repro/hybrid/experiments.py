"""The registered tiered-memory experiment: policy × replay workload.

``tiered_replay`` drives a ConTutto card carrying a :class:`TieredMemory`
with one synthesized replay workload (graph strides, key-value mix, or a
pointer-chase probe) under one migration policy, and reports the tier
hit rates, migration traffic, and end-to-end latency percentiles.  The
campaign engine sweeps ``policy`` × ``workload`` as scenario axes, so
one campaign renders the whole comparison matrix — byte-identically at
any worker count.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.results import ResultTable
from ..core.system import CardSpec, ContuttoSystem
from ..errors import ConfigurationError
from ..faults import FaultController, FaultPlan
from ..sim import derive_seed
from ..telemetry import probe
from ..units import MIB
from ..workloads.replay import generate, replay, replay_depth
from ..workloads.trace import TraceSpec
from .build import TieringSpec
from .device import TieredConfig
from .policy import POLICIES

#: capacity of each of the card's two tiered DIMM devices
_DIMM_BYTES = 64 * MIB

#: replayed working set: placed cold in the slow tier at build time,
#: small enough that a hot subset crosses the promotion threshold
#: within a CI-sized replay
_SPAN_BYTES = 256 * 1024

#: hotness epoch for experiment systems — short relative to a replay so
#: decay and budget refill actually happen within a run
_EPOCH_PS = 50_000_000

#: migration allowance per epoch — tight enough that the budget policy
#: visibly stalls promotions the clock policy would run
_BUDGET_BYTES = 32 * 1024


def _scenario(label: str) -> None:
    trace = probe.session
    if trace is not None and trace.journeys is not None:
        trace.journeys.set_scenario(label)


def _percentile(ordered: List[int], pct: float) -> int:
    return ordered[max(0, math.ceil(pct / 100 * len(ordered)) - 1)]


def run_tiered_replay(
    policy: str = "clock",
    workload: str = "graph",
    ops: int = 96,
    depth: int = 4,
    seed: int = 0,
    faults: Optional[str] = None,
) -> ResultTable:
    """Replay one workload against one migration policy; one table row.

    The scenario label is ``tiered:<policy>:<workload>`` so attribution
    artifacts from a policy × workload sweep aggregate per cell.
    """
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown migration policy {policy!r} "
            f"(known: {', '.join(sorted(POLICIES))})"
        )
    if ops < 2:
        raise ConfigurationError(f"tiered replay needs >= 2 ops, got {ops}")
    label = f"tiered:{policy}:{workload}"
    _scenario(f"{label}:boot")
    tiering = TieringSpec(
        policy=policy,
        config=TieredConfig(epoch_ps=_EPOCH_PS,
                            migrate_budget_bytes=_BUDGET_BYTES),
    )
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", memory="tiered",
                  capacity_per_dimm=_DIMM_BYTES, tiering=tiering)],
        seed=derive_seed(seed, "system"),
    )
    region = system.region_for_slot(0)
    spec = TraceSpec(
        base=region.base,
        size_bytes=min(region.os_size, _SPAN_BYTES),
        num_accesses=ops,
    )
    stream = generate(workload, spec, derive_seed(seed, label))

    controller = None
    plan = FaultPlan.load(faults) if faults else None
    if plan is not None:
        controller = FaultController(
            system.sim, plan, seed=derive_seed(seed, "faults")
        )
        controller.install(system).start()
    _scenario(label)
    latencies, elapsed_ps, errors = replay(
        system, stream, depth=replay_depth(workload, depth)
    )
    if controller is not None:
        controller.heal()
        controller.stop()

    devices = [port.device for port in system.cards[0].buffer.ports]
    fast_hits = sum(d.fast_hits for d in devices)
    slow_hits = sum(d.slow_hits for d in devices)
    accesses = fast_hits + slow_hits
    hit_rate = fast_hits / accesses if accesses else 0.0
    promotions = sum(d.promotions for d in devices)
    stalls = sum(d.migration_stalls for d in devices)
    migrated_kib = sum(d.migrated_bytes for d in devices) / 1024
    trace = probe.session
    if trace is not None:
        # the suite report reads these from the merged metrics snapshot
        trace.gauge_set("tier.fast_hit_rate", hit_rate)
        trace.gauge_set("tier.hot_slow_pages",
                        sum(d.hot_slow_pages for d in devices))
    ordered = sorted(latencies)
    table = ResultTable(
        "Tiered replay: migration policy vs workload",
        ["Policy", "Workload", "Ops", "Fast hits", "Slow hits", "Hit rate",
         "Promotions", "Stalls", "Migrated KiB", "Mean (ns)", "P99 (ns)",
         "Errors"],
    )
    table.add_row(
        policy, workload, len(stream), fast_hits, slow_hits,
        f"{hit_rate:.3f}", promotions, stalls, f"{migrated_kib:.0f}",
        f"{sum(ordered) / len(ordered) / 1_000:.1f}",
        f"{_percentile(ordered, 99) / 1_000:.1f}", errors,
    )
    table.add_note(
        f"2x {_DIMM_BYTES // MIB} MiB tiered DIMMs (25% DRAM fast tier), "
        f"{spec.size_bytes // 1024} KiB replay span, depth="
        f"{replay_depth(workload, depth)}; elapsed "
        f"{elapsed_ps / 1e6:.1f} us"
    )
    return table
