"""Hybrid-memory tiering: DRAM + NVM behind one port with page migration.

See ``docs/hybrid.md`` for the device model, the migration policies, the
tuning knobs, and the registered experiments.
"""

# NOTE: .experiments is deliberately not imported here — it builds
# systems through repro.core.system, which itself imports this package
# for the tiered card factory.  The campaign registry imports the
# experiment module directly.
from .build import TieringSpec, build_tiered
from .device import FAST, SLOW, TieredConfig, TieredMemory
from .policy import (
    POLICIES,
    BudgetPolicy,
    ClockPolicy,
    MigrationPolicy,
    StaticPolicy,
    make_policy,
)

__all__ = [
    "BudgetPolicy",
    "ClockPolicy",
    "FAST",
    "MigrationPolicy",
    "POLICIES",
    "SLOW",
    "StaticPolicy",
    "TieredConfig",
    "TieredMemory",
    "TieringSpec",
    "build_tiered",
    "make_policy",
]
