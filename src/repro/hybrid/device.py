"""Tiered hybrid memory: DRAM fast tier + NVM slow tier behind one port.

The paper swaps memory technologies *homogeneously* — a whole ConTutto
card becomes MRAM or NVDIMM.  :class:`TieredMemory` models the next step
(the FPGA hybrid-memory emulation systems in PAPERS.md): one device that
composes a small fast DRAM tier with a large slow NVM tier and migrates
hot pages between them, so a ConTutto card presents DRAM-class latency
for the hot set over NVM-class capacity.

The device keeps the functional+timed :class:`MemoryDevice` contract:

* real bytes live in the *sub-devices'* backings (the tiered layer only
  translates logical pages to tier frames), so migration moves actual
  data and a misrouted page is a data-corruption bug tests can catch;
* timing composes the sub-devices' own models — a demand access pays the
  resident tier's latency, and migration traffic is issued as real
  reads/writes against both tiers, so it competes with demand requests
  through the sub-devices' busy/bank timers exactly like extra bus
  commands would.

Hotness is tracked per logical page with epoch-decayed access counters
(sparse: untouched pages cost nothing), the fast tier runs a CLOCK hand
with reference bits for victim selection, and the *when to migrate*
decision is delegated to a pluggable :mod:`~repro.hybrid.policy`.

Attribution: when an access runs under an enclosing journey (the memory
controller pushes the journey context around the device call), the
device records nested ``tier.migrate`` / ``tier.fast`` / ``tier.slow``
spans inside the ``memory.service`` window — the breakdown layer
subtracts them so the stages still tile the journey with zero residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..memory.device import MemoryDevice
from ..telemetry import probe

#: tier indices (page-table encoding)
FAST = 0
SLOW = 1

#: cap on epoch-decay shift: beyond this every counter is zero anyway
_MAX_DECAY_SHIFT = 32


@dataclass(frozen=True)
class TieredConfig:
    """Knobs of the tiered device (exposed through ``repro.tune/v1``)."""

    #: migration granule; logical address space is split into these
    page_bytes: int = 4096
    #: hotness epoch: access counters halve every epoch (simulated time)
    epoch_ps: int = 1_000_000_000
    #: accesses within the decay horizon that make a slow page hot
    promote_threshold: int = 4
    #: migration-traffic allowance per epoch for the ``budget`` policy
    #: (bytes moved; a promotion swap costs two pages)
    migrate_budget_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.page_bytes % 128:
            raise ConfigurationError(
                f"tier page_bytes must be a positive multiple of 128, "
                f"got {self.page_bytes}"
            )
        if self.epoch_ps <= 0:
            raise ConfigurationError("tier epoch_ps must be positive")
        if self.promote_threshold < 1:
            raise ConfigurationError("tier promote_threshold must be >= 1")
        if self.migrate_budget_bytes < 0:
            raise ConfigurationError("tier migrate_budget_bytes must be >= 0")


class TieredMemory(MemoryDevice):
    """Two memory devices behind one address space with page migration."""

    technology = "tiered"
    #: the hot set lives in volatile DRAM — the device as a whole does
    #: not survive power removal even when the slow tier would
    non_volatile = False

    def __init__(
        self,
        fast: MemoryDevice,
        slow: MemoryDevice,
        policy,
        config: TieredConfig = TieredConfig(),
        name: str = "",
    ):
        pb = config.page_bytes
        for tier_name, dev in (("fast", fast), ("slow", slow)):
            if dev.capacity_bytes % pb:
                raise ConfigurationError(
                    f"{tier_name} tier capacity {dev.capacity_bytes} is not "
                    f"a multiple of the {pb}B page"
                )
        if fast.capacity_bytes == 0 or slow.capacity_bytes == 0:
            raise ConfigurationError("both tiers need nonzero capacity")
        super().__init__(fast.capacity_bytes + slow.capacity_bytes, name)
        self.fast = fast
        self.slow = slow
        self.policy = policy
        self.config = config
        fast_pages = fast.capacity_bytes // pb
        slow_pages = slow.capacity_bytes // pb
        total = fast_pages + slow_pages
        # Initial placement is cold-start: the low pages — the ones a
        # workload touches first — begin in the capacity (slow) tier and
        # must *earn* promotion; the fast tier starts holding the top of
        # the address space.  This is how tiering controllers admit new
        # data, and it gives the static policy an honest baseline.
        #: logical page -> resident tier (FAST | SLOW)
        self._page_tier = bytearray(
            bytes([SLOW]) * slow_pages + bytes([FAST]) * fast_pages
        )
        #: logical page -> frame index within its tier
        self._page_frame = list(range(slow_pages)) + list(range(fast_pages))
        #: fast frame -> resident logical page (for victim demotion)
        self._fast_page = list(range(slow_pages, total))
        #: slow frame -> resident logical page
        self._slow_page = list(range(slow_pages))
        #: sparse epoch-decayed access counters (zero entries absent)
        self._heat: Dict[int, int] = {}
        self._epoch = 0
        #: CLOCK state over the fast frames
        self._ref = bytearray(fast_pages)
        self._hand = 0
        #: injected fault state: migrations stall while frozen
        self.migration_frozen = False
        # Stats (occupancy sampler reads hot_slow_pages as a gauge)
        self.fast_hits = 0
        self.slow_hits = 0
        self.promotions = 0
        self.demotions = 0
        self.migrated_bytes = 0
        self.migration_stalls = 0
        self.hot_slow_pages = 0

    # -- geometry ------------------------------------------------------------

    @property
    def fast_frames(self) -> int:
        return len(self._fast_page)

    @property
    def pages(self) -> int:
        return len(self._page_frame)

    def tier_of(self, page: int) -> int:
        return self._page_tier[page]

    def heat(self, page: int) -> int:
        return self._heat.get(page, 0)

    # -- fault hooks (hybrid.migration_stall) --------------------------------

    def freeze_migration(self) -> None:
        self.migration_frozen = True

    def unfreeze_migration(self) -> None:
        self.migration_frozen = False

    def note_stall(self) -> None:
        """A migration the policy wanted but could not run (frozen tier
        or exhausted budget); demand proceeds from the slow tier."""
        self.migration_stalls += 1
        trace = probe.session
        if trace is not None:
            trace.count("tier.migration_stalls")

    # -- hotness -------------------------------------------------------------

    def _decay(self, now_ps: int) -> None:
        """Lazy epoch decay: halve every counter once per elapsed epoch."""
        epoch = now_ps // self.config.epoch_ps
        if epoch <= self._epoch:
            return
        shift = min(epoch - self._epoch, _MAX_DECAY_SHIFT)
        self._epoch = epoch
        thr = self.config.promote_threshold
        decayed: Dict[int, int] = {}
        for page, h in self._heat.items():
            nh = h >> shift
            if nh:
                decayed[page] = nh
            if self._page_tier[page] == SLOW and h >= thr > nh:
                self.hot_slow_pages -= 1
        self._heat = decayed

    def _bump(self, page: int) -> None:
        h = self._heat.get(page, 0) + 1
        self._heat[page] = h
        if self._page_tier[page] == SLOW and h == self.config.promote_threshold:
            self.hot_slow_pages += 1

    # -- migration mechanics -------------------------------------------------

    def _clock_victim(self) -> int:
        """Second-chance sweep: clear reference bits until one is cold."""
        n = self.fast_frames
        for _ in range(2 * n):
            frame = self._hand
            self._hand = (self._hand + 1) % n
            if self._ref[frame]:
                self._ref[frame] = 0
            else:
                return frame
        return self._hand

    def promote(self, page: int, start_ps: int) -> int:
        """Swap a hot slow page with a cold fast victim; returns when the
        migration traffic completes.  Both directions are real device
        reads/writes, so concurrent demand accesses queue behind them."""
        pb = self.config.page_bytes
        frame = self._clock_victim()
        victim = self._fast_page[frame]
        sframe = self._page_frame[page]
        fast_addr = frame * pb
        slow_addr = sframe * pb
        hot_data, t_hot = self.slow.read(slow_addr, pb, start_ps)
        cold_data, t_cold = self.fast.read(fast_addr, pb, start_ps)
        loaded = max(t_hot, t_cold)
        t_up = self.fast.write(fast_addr, hot_data, loaded)
        t_down = self.slow.write(slow_addr, cold_data, loaded)
        end_ps = max(t_up, t_down)
        # swap the mappings
        self._page_tier[page] = FAST
        self._page_frame[page] = frame
        self._fast_page[frame] = page
        self._page_tier[victim] = SLOW
        self._page_frame[victim] = sframe
        self._slow_page[sframe] = victim
        self._ref[frame] = 1
        # hot-set accounting: the promoted page leaves the hot-slow set,
        # the victim joins it if it was (still) hot
        thr = self.config.promote_threshold
        if self.heat(page) >= thr:
            self.hot_slow_pages -= 1
        if self.heat(victim) >= thr:
            self.hot_slow_pages += 1
        self.promotions += 1
        self.demotions += 1
        self.migrated_bytes += 2 * pb
        trace = probe.session
        if trace is not None:
            trace.count("tier.promotions")
            trace.count("tier.demotions")
            trace.count("tier.migrated_bytes", 2 * pb)
        return end_ps

    # -- access path ---------------------------------------------------------

    def _access(self, op: str, addr: int, payload, start_ps: int):
        """One within-page access: decay, bump, migrate, then serve."""
        pb = self.config.page_bytes
        page = addr // pb
        self._decay(start_ps)
        self._bump(page)
        migrate_end = self.policy.maybe_migrate(self, page, start_ps)
        tier = self._page_tier[page]
        frame = self._page_frame[page]
        local = frame * pb + (addr % pb)
        if tier == FAST:
            self._ref[frame] = 1
            self.fast_hits += 1
            device = self.fast
        else:
            self.slow_hits += 1
            device = self.slow
        if op == "read":
            data, end_ps = device.read(local, len(payload), migrate_end)
        else:
            data, end_ps = None, device.write(local, payload, migrate_end)
        trace = probe.session
        if trace is not None:
            trace.count("tier.fast_hits" if tier == FAST else "tier.slow_hits")
            journeys = trace.journeys
            jid = journeys.current() if journeys is not None else None
            if jid is not None:
                if migrate_end > start_ps:
                    journeys.stage_span(
                        jid, "tier.migrate", start_ps, migrate_end
                    )
                journeys.stage_span(
                    jid, "tier.fast" if tier == FAST else "tier.slow",
                    migrate_end, end_ps,
                )
        return data, end_ps

    def _chunks(self, addr: int, nbytes: int):
        """Split an access at page boundaries (accesses rarely cross)."""
        pb = self.config.page_bytes
        while nbytes > 0:
            take = min(nbytes, pb - addr % pb)
            yield addr, take
            addr += take
            nbytes -= take

    def read(self, addr: int, nbytes: int, now_ps: int) -> Tuple[bytes, int]:
        self._precheck(addr, nbytes)
        self.reads += 1
        self.bytes_read += nbytes
        parts = []
        t = now_ps
        for chunk_addr, take in self._chunks(addr, nbytes):
            data, t = self._access("read", chunk_addr, bytes(take), t)
            parts.append(data)
        return b"".join(parts), t

    def write(self, addr: int, data: bytes, now_ps: int) -> int:
        self._precheck(addr, len(data))
        self.writes += 1
        self.bytes_written += len(data)
        t = now_ps
        offset = 0
        for chunk_addr, take in self._chunks(addr, len(data)):
            _, t = self._access("write", chunk_addr,
                                data[offset:offset + take], t)
            offset += take
        return t

    # -- power ---------------------------------------------------------------

    def power_off(self) -> None:
        self.powered = False
        self.fast.power_off()
        self.slow.power_off()

    def power_on(self) -> None:
        self.powered = True
        self.fast.power_on()
        self.slow.power_on()
