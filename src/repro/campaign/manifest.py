"""The campaign manifest: a JSONL journal enabling ``--resume``.

One ``campaign`` header record, then one ``job`` record per completed
attempt, appended as jobs finish (the file is an append-only journal —
a crash mid-campaign loses at most the in-flight jobs).  Schema::

    {"schema": "repro.campaign/v1", "kind": "campaign", "base_seed": ...,
     "fingerprint": ..., "jobs": <total>}
    {"schema": "repro.campaign/v1", "kind": "job", "job_id": ...,
     "experiment": ..., "kwargs": {...}, "seed": ..., "key": <cache key>,
     "status": "ok"|"failed", "source": "run"|"cache", "attempts": N,
     "duration_s": ..., "error": ...?, "traceback": ...?}

Resume semantics: a job whose latest record is ``status="ok"`` is served
from the result cache (same content key); anything failed, missing, or
no longer cache-resident re-runs.  Records for jobs that are no longer
in the matrix are ignored.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

#: bump when record shapes change incompatibly
SCHEMA = "repro.campaign/v1"


def campaign_record(base_seed: int, fingerprint: str, total_jobs: int) -> dict:
    return {
        "schema": SCHEMA,
        "kind": "campaign",
        "base_seed": base_seed,
        "fingerprint": fingerprint,
        "jobs": total_jobs,
    }


def job_record(
    job,
    key: str,
    status: str,
    source: str,
    attempts: int,
    duration_s: float,
    error: Optional[str] = None,
    traceback: Optional[str] = None,
) -> dict:
    record = {
        "schema": SCHEMA,
        "kind": "job",
        "job_id": job.job_id,
        "experiment": job.experiment,
        "kwargs": job.kwargs_dict,
        "seed": job.seed,
        "key": key,
        "status": status,
        "source": source,
        "attempts": attempts,
        "duration_s": round(duration_s, 6),
    }
    if error:
        record["error"] = error
    if traceback:
        record["traceback"] = traceback
    return record


class ManifestWriter:
    """Append-only JSONL writer, flushed per record."""

    def __init__(self, path: str, append: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a" if append else "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":"), default=str))
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ManifestWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_manifest(path: str) -> List[dict]:
    """Every record of a manifest; missing file ⇒ empty, bad lines skipped.

    Tolerating a torn final line matters: resume reads manifests written
    right up to a crash.
    """
    records: List[dict] = []
    manifest = Path(path)
    if not manifest.exists():
        return records
    with open(manifest, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def canonical_manifest(records: List[dict]) -> List[dict]:
    """The deterministic core of a manifest: what a reproducible campaign
    must agree on across runs and worker counts.

    Keeps the campaign header and one record per job (latest wins),
    sorted by job_id, with the nondeterministic fields — wall-clock
    ``duration_s``, retry ``attempts``, ``source`` (cache vs run), and
    failure tracebacks — stripped.  Two campaigns of the same matrix,
    plan, and seed produce equal canonical manifests regardless of
    ``--jobs``, caching, or scheduling order.
    """
    header: Optional[dict] = None
    jobs: Dict[str, dict] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "campaign" and header is None:
            header = dict(record)
        elif kind == "job":
            cleaned = {
                k: v for k, v in record.items()
                if k not in ("duration_s", "attempts", "source", "traceback")
            }
            jobs[record.get("job_id", "")] = cleaned
    out = [header] if header is not None else []
    return out + [jobs[jid] for jid in sorted(jobs)]


def completed_job_ids(records: List[dict]) -> Dict[str, dict]:
    """Map job_id -> latest ``status="ok"`` record (later records win)."""
    done: Dict[str, dict] = {}
    for record in records:
        if record.get("kind") != "job":
            continue
        job_id = record.get("job_id")
        if record.get("status") == "ok":
            done[job_id] = record
        else:
            done.pop(job_id, None)
    return done
