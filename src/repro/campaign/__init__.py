"""Campaign engine: parallel, cached, fault-tolerant experiment sweeps.

Turns the one-table-at-a-time experiment harness into a scheduled
campaign: a declarative :class:`ScenarioMatrix` expands parameter grids
into individually seeded :class:`CampaignJob`s, a :class:`CampaignRunner`
executes them across a process pool with retries, per-job timeouts, and
a content-addressed :class:`ResultCache`, and every completion is
journaled to a JSONL manifest so a crashed or interrupted sweep resumes
where it stopped.  Per-worker telemetry snapshots merge into one
``repro.telemetry/v1`` artifact.

    from repro.campaign import CampaignRunner, ResultCache, ScenarioMatrix

    matrix = ScenarioMatrix(base_seed=42)
    matrix.add("table3", samples=[8, 24, 96])
    runner = CampaignRunner(matrix.expand(), workers=4,
                            cache=ResultCache(".campaign-cache"))
    report = runner.run()
    for table in report.tables():
        print(table.format())

See ``docs/campaign.md`` for the matrix format, manifest/cache layout,
and failure semantics; ``scripts/run_campaign.py`` is the CLI.
"""

from .cache import ResultCache, code_fingerprint, job_key
from .manifest import (
    ManifestWriter,
    campaign_record,
    canonical_manifest,
    completed_job_ids,
    job_record,
    read_manifest,
)
from .matrix import (
    CampaignJob,
    ScenarioMatrix,
    apply_fault_plan,
    canonical_kwargs,
)
from .registry import ALIASES, ExperimentSpec, experiment_names, get_experiment
from .runner import CampaignReport, CampaignRunner, JobOutcome
from .worker import execute_job, run_experiment, tables_of

__all__ = [
    "ALIASES",
    "CampaignJob",
    "CampaignReport",
    "CampaignRunner",
    "ExperimentSpec",
    "JobOutcome",
    "ManifestWriter",
    "ResultCache",
    "ScenarioMatrix",
    "apply_fault_plan",
    "campaign_record",
    "canonical_kwargs",
    "canonical_manifest",
    "code_fingerprint",
    "completed_job_ids",
    "execute_job",
    "experiment_names",
    "get_experiment",
    "job_key",
    "job_record",
    "read_manifest",
    "run_experiment",
    "tables_of",
]
