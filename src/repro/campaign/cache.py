"""Content-addressed on-disk cache of experiment results.

A cache entry's key is the SHA-256 of ``(experiment name, canonical
kwargs, seed, attribution mode, code fingerprint)``.  The fingerprint
hashes every ``repro`` source file, so *any* code change invalidates
every entry — deliberately coarse: a stale table silently served after
a model edit would poison EXPERIMENTS.md, while re-running a few
minutes of simulation is cheap.  The attribution mode is part of the
address because ``journeys`` and ``summary`` workers do different
telemetry work and produce different artifact payloads.

An entry holds the *whole* job payload — the result (the
:class:`~repro.core.results.ResultTable` or tuple of tables exactly as
the runner returned it) **plus** the metrics snapshot and attribution
records the traced run produced.  Caching only the result would make
warm re-runs lose their ``metrics.jsonl``/``attribution.jsonl``
content, and a suite ``report.json`` built from a cache hit would
differ from the run that populated the cache — the exact drift the
report diff gate exists to catch.  A small JSON sidecar describes what
produced each entry, so a cache directory is inspectable with ``ls``
and ``python -m json.tool``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .matrix import CampaignJob, canonical_kwargs

_FINGERPRINT_CACHE: Dict[str, str] = {}


def code_fingerprint(package_root: Optional[str] = None) -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Stable across processes and machines for identical sources (files are
    hashed in sorted relative-path order); memoized per process.
    """
    if package_root is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
    cached = _FINGERPRINT_CACHE.get(package_root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    root = Path(package_root)
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _FINGERPRINT_CACHE[package_root] = fingerprint
    return fingerprint


def job_key(
    job: CampaignJob, fingerprint: Optional[str] = None,
    mode: str = "journeys",
) -> str:
    """The content address of one job's payload under one attribution mode."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    material = "\0".join(
        [job.experiment, canonical_kwargs(job.kwargs_dict), str(job.seed),
         mode, fingerprint]
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """Filesystem cache: ``<dir>/<key[:2]>/<key>.pkl`` + ``.json`` sidecar."""

    def __init__(self, directory: str, fingerprint: Optional[str] = None):
        self.directory = Path(directory)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def _paths(self, key: str) -> tuple:
        shard = self.directory / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    def key_for(self, job: CampaignJob, mode: str = "journeys") -> str:
        return job_key(job, self.fingerprint, mode=mode)

    def get(self, job: CampaignJob, mode: str = "journeys"):
        """The cached entry dict, or None.  Corrupt entries count as misses.

        An entry has ``result``, ``metrics``, ``attribution``, and
        ``attribution_summaries`` keys — everything a replayed
        :class:`JobOutcome` needs to be artifact-identical to the run
        that populated the cache.
        """
        payload, _ = self._paths(self.key_for(job, mode))
        try:
            with open(payload, "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or "result" not in entry:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self, job: CampaignJob, result, *,
        metrics=None, attribution=None, attribution_summaries=None,
        mode: str = "journeys",
    ) -> str:
        """Store a job's full payload; returns the content key.

        Writes are atomic (tempfile + rename) so a crashed or parallel
        writer can never leave a half-written entry that a later
        :meth:`get` would trust.
        """
        key = self.key_for(job, mode)
        payload, sidecar = self._paths(key)
        payload.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "result": result,
            "metrics": metrics or {},
            "attribution": attribution or [],
            "attribution_summaries": attribution_summaries or [],
        }
        self._atomic_write(payload, pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))
        meta = {
            "experiment": job.experiment,
            "kwargs": job.kwargs_dict,
            "seed": job.seed,
            "mode": mode,
            "fingerprint": self.fingerprint,
            "job_id": job.job_id,
        }
        self._atomic_write(sidecar, json.dumps(meta, sort_keys=True, default=str).encode())
        return key

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, job: CampaignJob) -> bool:
        payload, _ = self._paths(self.key_for(job))
        return payload.exists()

    def contains(self, job: CampaignJob, mode: str = "journeys") -> bool:
        payload, _ = self._paths(self.key_for(job, mode))
        return payload.exists()

    def entry_count(self) -> int:
        return sum(1 for _ in self.directory.rglob("*.pkl")) if self.directory.exists() else 0
