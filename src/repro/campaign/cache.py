"""Content-addressed on-disk cache of experiment results.

A cache entry's key is the SHA-256 of ``(experiment name, canonical
kwargs, seed, code fingerprint)``.  The fingerprint hashes every
``repro`` source file, so *any* code change invalidates every entry —
deliberately coarse: a stale table silently served after a model edit
would poison EXPERIMENTS.md, while re-running a few minutes of
simulation is cheap.  Entries hold the pickled result (the
:class:`~repro.core.results.ResultTable` or tuple of tables exactly as
the runner returned it) next to a small JSON sidecar describing what
produced it, so a cache directory is inspectable with ``ls`` and
``python -m json.tool``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .matrix import CampaignJob, canonical_kwargs

_FINGERPRINT_CACHE: Dict[str, str] = {}


def code_fingerprint(package_root: Optional[str] = None) -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Stable across processes and machines for identical sources (files are
    hashed in sorted relative-path order); memoized per process.
    """
    if package_root is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
    cached = _FINGERPRINT_CACHE.get(package_root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    root = Path(package_root)
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _FINGERPRINT_CACHE[package_root] = fingerprint
    return fingerprint


def job_key(job: CampaignJob, fingerprint: Optional[str] = None) -> str:
    """The content address of one job's result."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    material = "\0".join(
        [job.experiment, canonical_kwargs(job.kwargs_dict), str(job.seed), fingerprint]
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """Filesystem cache: ``<dir>/<key[:2]>/<key>.pkl`` + ``.json`` sidecar."""

    def __init__(self, directory: str, fingerprint: Optional[str] = None):
        self.directory = Path(directory)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def _paths(self, key: str) -> tuple:
        shard = self.directory / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    def key_for(self, job: CampaignJob) -> str:
        return job_key(job, self.fingerprint)

    def get(self, job: CampaignJob):
        """The cached result, or None.  Corrupt entries count as misses."""
        payload, _ = self._paths(self.key_for(job))
        try:
            with open(payload, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, job: CampaignJob, result) -> str:
        """Store a job's result; returns the content key.

        Writes are atomic (tempfile + rename) so a crashed or parallel
        writer can never leave a half-written entry that a later
        :meth:`get` would trust.
        """
        key = self.key_for(job)
        payload, sidecar = self._paths(key)
        payload.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(payload, pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
        meta = {
            "experiment": job.experiment,
            "kwargs": job.kwargs_dict,
            "seed": job.seed,
            "fingerprint": self.fingerprint,
            "job_id": job.job_id,
        }
        self._atomic_write(sidecar, json.dumps(meta, sort_keys=True, default=str).encode())
        return key

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, job: CampaignJob) -> bool:
        payload, _ = self._paths(self.key_for(job))
        return payload.exists()

    def entry_count(self) -> int:
        return sum(1 for _ in self.directory.rglob("*.pkl")) if self.directory.exists() else 0
