"""The in-worker half of the campaign engine.

:func:`execute_job` is the only function a pool worker runs.  It must be
importable by name (``repro.campaign.worker.execute_job``) because the
job description — not a closure — is what crosses the process boundary.
Each invocation runs one experiment under its own
:class:`~repro.telemetry.TraceSession` and returns a plain dict:
pickle-friendly tables, the final metrics snapshot, wall-clock duration,
and (on failure) the formatted traceback.  Exceptions never escape: a
crashing experiment yields a ``status="failed"`` outcome so the parent
can retry or record it without losing the rest of the campaign.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Tuple

from ..telemetry import TraceSession, journey_record
from ..telemetry.attribution import stage_summary_records
from .matrix import CampaignJob
from .registry import get_experiment


def run_experiment(job: CampaignJob):
    """Run one job's experiment in-process; returns the raw result."""
    spec = get_experiment(job.experiment)
    return spec.runner(**job.kwargs_dict, seed=job.seed)


def execute_job(payload: Tuple[str, tuple, int]) -> Dict[str, object]:
    """Pool entry point: run one job, never raise.

    ``payload`` is ``(experiment, kwargs_pairs, seed)`` — rather than a
    :class:`CampaignJob` — so the pickled message stays a plain tuple.  An
    optional fourth element selects the attribution mode: ``"journeys"``
    (default — every journey record crosses back for an exact merge) or
    ``"summary"`` (the journeys are reduced to ``stage_summary`` records
    in-worker, so neither the pickle payload nor the parent's merge grows
    with journey count — the bounded-memory path for very large sweeps).
    """
    job = CampaignJob(*payload[:3])
    mode = payload[3] if len(payload) > 3 else "journeys"
    t0 = time.perf_counter()
    try:
        # traces are capped low: a campaign wants metrics, not span dumps
        # (journeys stay on — they are bounded and cross the pickle
        # boundary as plain dicts for campaign-level attribution merging)
        with TraceSession(f"campaign:{job.job_id}", max_events=0) as session:
            result = run_experiment(job)
        journeys = session.journeys
        if mode == "summary":
            attribution: List[dict] = []
            summaries = stage_summary_records(session.breakdown())
        else:
            attribution = (
                [journey_record(j) for j in journeys.completed]
                if journeys is not None else []
            )
            summaries = []
        return {
            "status": "ok",
            "job_id": job.job_id,
            "result": result,
            "metrics": session.registry.snapshot(),
            "attribution": attribution,
            "attribution_summaries": summaries,
            "duration_s": time.perf_counter() - t0,
        }
    except BaseException as exc:  # noqa: BLE001 — the whole point is containment
        return {
            "status": "failed",
            "job_id": job.job_id,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "duration_s": time.perf_counter() - t0,
        }


def tables_of(result) -> List:
    """Normalize a runner's return value to a list of ResultTables."""
    return list(result) if isinstance(result, tuple) else [result]
