"""Declarative scenario matrices: parameter grids that expand into jobs.

A :class:`ScenarioMatrix` is a list of scenarios, each an experiment name
plus per-axis value lists; :meth:`~ScenarioMatrix.expand` takes the cross
product of every scenario's axes and emits one :class:`CampaignJob` per
cell.  Example — the METICULOUS/EasyDRAM-style sensitivity sweep::

    matrix = ScenarioMatrix(base_seed=42)
    matrix.add("table3", samples=[8, 24, 96])
    matrix.add("fio", ios=[32, 128], iodepth=[1, 4, 16])
    jobs = matrix.expand()

Seeding
-------
Each job's seed is derived from ``base_seed`` and the job's identity via
:func:`repro.sim.rng.derive_seed` — the same platform-stable mix that
:meth:`Rng.fork` uses.  The seed depends only on ``(base_seed, job key)``:
never on expansion order, worker assignment, or how many other scenarios
the matrix holds, so a sweep's results are bit-identical whether it runs
serially, on 16 workers, or resumed across three crashes.  A scenario may
instead pin seeds explicitly with a ``seed=[...]`` axis (the paper matrix
pins ``seed=0`` — the harness defaults — so campaign output stays
byte-identical to the historical serial path).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..sim.rng import derive_seed
from .registry import experiment_names, get_experiment


def canonical_kwargs(kwargs: Dict[str, object]) -> str:
    """A stable text form of a kwargs dict (sorted keys, JSON values)."""
    return json.dumps(kwargs, sort_keys=True, separators=(",", ":"), default=str)


@dataclass(frozen=True)
class CampaignJob:
    """One schedulable unit: an experiment call with pinned kwargs + seed."""

    experiment: str
    kwargs: tuple                     # sorted (key, value) pairs — hashable
    seed: int

    @property
    def kwargs_dict(self) -> Dict[str, object]:
        return dict(self.kwargs)

    @property
    def job_id(self) -> str:
        """Stable human-readable identity, e.g. ``table3[samples=24]#s0``."""
        inner = ",".join(f"{k}={v}" for k, v in self.kwargs)
        return f"{self.experiment}[{inner}]#s{self.seed}"

    @staticmethod
    def make(experiment: str, kwargs: Dict[str, object], seed: int) -> "CampaignJob":
        # JSON matrices deliver list values (e.g. a rates axis); freeze
        # them so the job stays hashable and its identity canonical
        frozen = {
            k: tuple(v) if isinstance(v, list) else v
            for k, v in kwargs.items()
        }
        return CampaignJob(experiment, tuple(sorted(frozen.items())), seed)


@dataclass
class _Scenario:
    experiment: str
    axes: Dict[str, List[object]] = field(default_factory=dict)


class ScenarioMatrix:
    """A declarative grid of experiment configurations."""

    def __init__(self, base_seed: int = 0):
        self.base_seed = base_seed
        self._scenarios: List[_Scenario] = []

    # -- construction -------------------------------------------------------

    def add(self, experiment: str, **axes) -> "ScenarioMatrix":
        """Add one scenario; each axis is a value or a list of values.

        Unnamed axes fall back to the experiment's registry defaults.
        Returns ``self`` for chaining.
        """
        spec = get_experiment(experiment)
        merged: Dict[str, List[object]] = {
            k: [v] for k, v in spec.defaults.items()
        }
        for key, values in axes.items():
            if isinstance(values, (list, tuple)):
                values = list(values)
            else:
                values = [values]
            if not values:
                raise ConfigurationError(
                    f"{experiment}: axis {key!r} expanded to zero values"
                )
            merged[key] = values
        self._scenarios.append(_Scenario(spec.name, merged))
        return self

    @classmethod
    def paper(
        cls, only: Optional[Sequence[str]] = None, seed: int = 0
    ) -> "ScenarioMatrix":
        """The full paper regeneration: every experiment at its defaults.

        Seeds are pinned (not derived) so the expansion reproduces the
        historical serial ``regenerate_experiments.py`` output byte for
        byte.  ``only`` filters by experiment name, preserving
        EXPERIMENTS.md order regardless of the order names are given in.
        """
        matrix = cls(base_seed=seed)
        selected = set(only) if only else None
        for name in experiment_names():
            if selected is None:
                # non-paper experiments (fault drills) run only when named
                # explicitly, keeping the paper campaign's output stable
                if not get_experiment(name).paper:
                    continue
            elif name not in selected:
                continue
            matrix.add(name, seed=seed)
        return matrix

    # -- expansion ----------------------------------------------------------

    def expand(self) -> List[CampaignJob]:
        """Cross-product every scenario's axes into seeded jobs.

        Duplicate (experiment, kwargs, seed) cells collapse to one job.
        """
        jobs: List[CampaignJob] = []
        seen = set()
        for scenario in self._scenarios:
            axes = dict(scenario.axes)
            pinned_seeds = axes.pop("seed", None)
            keys = sorted(axes)
            for combo in itertools.product(*(axes[k] for k in keys)):
                kwargs = dict(zip(keys, combo))
                seeds: Iterable[int]
                if pinned_seeds is not None:
                    seeds = pinned_seeds
                else:
                    key = f"{scenario.experiment}|{canonical_kwargs(kwargs)}"
                    seeds = [derive_seed(self.base_seed, key)]
                for seed in seeds:
                    job = CampaignJob.make(scenario.experiment, kwargs, seed)
                    if job not in seen:
                        seen.add(job)
                        jobs.append(job)
        return jobs

    def __len__(self) -> int:
        return len(self.expand())


def apply_fault_plan(
    jobs: Sequence[CampaignJob], plan_json: str
) -> List[CampaignJob]:
    """Thread a canonical fault-plan JSON into every fault-capable job.

    The plan rides in job kwargs as a string (hashable, cache-key and
    seed-derivation stable); experiments that don't support faults are
    left untouched.
    """
    out: List[CampaignJob] = []
    for job in jobs:
        if get_experiment(job.experiment).supports_faults:
            kwargs = dict(job.kwargs_dict)
            kwargs["faults"] = plan_json
            job = CampaignJob.make(job.experiment, kwargs, job.seed)
        out.append(job)
    return out
