"""The campaign scheduler: parallel, cached, fault-tolerant execution.

:class:`CampaignRunner` drives a list of :class:`CampaignJob`s to
completion:

* **parallel** — jobs run on a ``ProcessPoolExecutor`` (``workers > 1``)
  or inline (``workers == 1``, no pickling, no pool spin-up — the mode
  ``regenerate_experiments.py`` uses);
* **cached** — with a :class:`~repro.campaign.cache.ResultCache`, a job
  whose ``(experiment, kwargs, seed, code fingerprint)`` already has a
  stored result is served without running;
* **fault-tolerant** — a failing job is retried up to ``retries`` times
  with exponential backoff, then recorded with its traceback; the rest
  of the campaign completes regardless.  A per-job ``timeout_s`` marks a
  stuck job failed (its worker is abandoned to finish in the background
  — a process pool cannot preempt a running task);
* **resumable** — every completion is journaled to a JSONL manifest;
  ``resume=True`` replays ``status="ok"`` journal entries from cache and
  re-runs only what is missing or failed.

Determinism: a job's seed is part of its identity (fixed at matrix
expansion), so scheduling order, worker count, retries, and cache state
cannot change any table's values.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..telemetry import (
    MetricsRegistry,
    fold_stage_summaries,
    merge_attribution,
    meta_record,
    result_record,
    snapshot_record,
    write_jsonl,
)
from .cache import ResultCache
from .manifest import (
    ManifestWriter,
    campaign_record,
    completed_job_ids,
    job_record,
    read_manifest,
)
from .matrix import CampaignJob
from .worker import execute_job, tables_of


@dataclass
class JobOutcome:
    """What happened to one job: result or error, and how it was obtained."""

    job: CampaignJob
    status: str                      # "ok" | "failed"
    source: str                      # "run" | "cache" | "resume"
    attempts: int = 0
    duration_s: float = 0.0
    result: object = None            # ResultTable or tuple of ResultTables
    metrics: Dict[str, float] = field(default_factory=dict)
    attribution: List[dict] = field(default_factory=list)  # journey records
    #: per-worker stage_summary/end_to_end records (summary mode only);
    #: O(scenarios × stages) however many journeys the job completed
    attribution_summaries: List[dict] = field(default_factory=list)
    error: Optional[str] = None
    traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def tables(self) -> List:
        return tables_of(self.result) if self.ok else []


@dataclass
class CampaignReport:
    """The completed campaign: outcomes in matrix order plus aggregates."""

    outcomes: List[JobOutcome]
    wall_clock_s: float
    workers: int

    @property
    def succeeded(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.source in ("cache", "resume"))

    def tables(self) -> List:
        """Every ResultTable of every successful job, in matrix order."""
        out: List = []
        for outcome in self.outcomes:
            out.extend(outcome.tables())
        return out

    def merged_metrics(self) -> Dict[str, float]:
        return MetricsRegistry.merge_snapshots(
            o.metrics for o in self.outcomes if o.metrics
        )

    def summary(self) -> str:
        return (
            f"{len(self.outcomes)} jobs: {len(self.succeeded)} ok "
            f"({self.cache_hits} from cache), {len(self.failed)} failed; "
            f"{self.wall_clock_s:.2f}s wall clock on {self.workers} worker(s)"
        )

    def write_telemetry(self, path: str, params: Optional[dict] = None) -> int:
        """One ``repro.telemetry/v1`` artifact for the whole campaign.

        Record stream: meta, one ``result`` per table, one ``snapshot``
        per executed job (labelled ``job:<id>``), then the merged final
        snapshot — so the artifact ends with campaign-level totals, the
        same "last snapshot wins" convention single-run artifacts use.
        """
        records = [meta_record("campaign", params or {}, summary=self.summary())]
        records += [result_record(t) for t in self.tables()]
        for outcome in self.outcomes:
            if outcome.metrics:
                records.append(
                    snapshot_record(f"job:{outcome.job.job_id}", None, outcome.metrics)
                )
        records.append(snapshot_record("merged", None, self.merged_metrics()))
        return write_jsonl(path, records)

    def write_attribution(self, path: str, name: str = "campaign") -> int:
        """One ``repro.attribution/v1`` artifact for the whole campaign.

        Per-job journey records merge the way metric snapshots do: sources
        sorted by job id, journeys tagged with their source, summaries
        recomputed over the union — deterministic for any worker count or
        completion order.  Cache/resume hits carry no journeys (the job
        never ran), so only executed jobs contribute.

        Campaigns run in summary attribution mode carry per-worker
        ``stage_summary`` records instead of journeys; those fold via
        :func:`fold_stage_summaries`, keeping the merge memory bounded.
        """
        folded = [
            (f"job:{o.job.job_id}", o.attribution_summaries)
            for o in self.outcomes
            if o.attribution_summaries
        ]
        if folded and not any(o.attribution for o in self.outcomes):
            return write_jsonl(path, fold_stage_summaries(folded, name=name))
        sources = [
            (f"job:{o.job.job_id}", o.attribution)
            for o in self.outcomes
            if o.attribution
        ]
        return write_jsonl(path, merge_attribution(sources, name=name))


class CampaignRunner:
    """Schedule jobs across workers with caching, retries, and a manifest."""

    def __init__(
        self,
        jobs: List[CampaignJob],
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        manifest_path: Optional[str] = None,
        resume: bool = False,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        backoff_s: float = 0.25,
        base_seed: int = 0,
        attribution_mode: str = "journeys",
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if resume and cache is None:
            raise ValueError("resume requires a result cache to replay from")
        if attribution_mode not in ("journeys", "summary"):
            raise ValueError("attribution_mode must be 'journeys' or 'summary'")
        self.jobs = list(jobs)
        self.workers = workers
        self.cache = cache
        self.manifest_path = manifest_path
        self.resume = resume
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.base_seed = base_seed
        #: "journeys" ships every journey record back for an exact merge;
        #: "summary" reduces them in-worker (bounded merge memory, folded
        #: percentiles — see ``fold_stage_summaries``)
        self.attribution_mode = attribution_mode

    # -- execution ----------------------------------------------------------

    def run(self) -> CampaignReport:
        t0 = time.perf_counter()
        outcomes: Dict[CampaignJob, JobOutcome] = {}
        manifest = None
        if self.manifest_path:
            previous = read_manifest(self.manifest_path) if self.resume else []
            manifest = ManifestWriter(self.manifest_path, append=self.resume)
            if not self.resume:
                fingerprint = self.cache.fingerprint if self.cache else ""
                manifest.write(campaign_record(self.base_seed, fingerprint, len(self.jobs)))
            done_before = completed_job_ids(previous)
        else:
            done_before = {}

        try:
            to_run: List[CampaignJob] = []
            for job in self.jobs:
                outcome = self._try_replay(job, done_before)
                if outcome is not None:
                    outcomes[job] = outcome
                    self._journal(manifest, outcome)
                else:
                    to_run.append(job)

            if to_run:
                if self.workers == 1:
                    executed = self._run_inline(to_run, manifest)
                else:
                    executed = self._run_pool(to_run, manifest)
                outcomes.update(executed)
        finally:
            if manifest is not None:
                manifest.close()

        ordered = [outcomes[job] for job in self.jobs]
        return CampaignReport(ordered, time.perf_counter() - t0, self.workers)

    # -- cache / resume replay ----------------------------------------------

    def _try_replay(self, job: CampaignJob, done_before: Dict[str, dict]):
        """Serve a job from the cache.

        A content-addressed hit is valid regardless of manifest state, so
        resume mode only changes the reported source: jobs the journal
        says completed are ``"resume"``, any other hit is ``"cache"``.
        """
        if self.cache is None:
            return None
        entry = self.cache.get(job, self.attribution_mode)
        if entry is None:
            return None
        source = "resume" if self.resume and job.job_id in done_before else "cache"
        return JobOutcome(
            job, "ok", source, attempts=0, duration_s=0.0,
            result=entry["result"],
            metrics=entry.get("metrics", {}),
            attribution=entry.get("attribution", []),
            attribution_summaries=entry.get("attribution_summaries", []),
        )

    # -- serial path --------------------------------------------------------

    def _run_inline(self, jobs: List[CampaignJob], manifest) -> Dict[CampaignJob, JobOutcome]:
        outcomes = {}
        for job in jobs:
            attempt = 0
            while True:
                attempt += 1
                raw = execute_job(
                    (job.experiment, job.kwargs, job.seed, self.attribution_mode)
                )
                if raw["status"] == "ok" or attempt > self.retries:
                    break
                time.sleep(self._backoff(attempt))
            outcome = self._finish(job, raw, attempt)
            outcomes[job] = outcome
            self._journal(manifest, outcome)
        return outcomes

    # -- parallel path ------------------------------------------------------

    def _run_pool(self, jobs: List[CampaignJob], manifest) -> Dict[CampaignJob, JobOutcome]:
        outcomes: Dict[CampaignJob, JobOutcome] = {}
        queue: List[tuple] = [(job, 1, 0.0) for job in jobs]  # (job, attempt, not_before)
        pending: Dict[object, tuple] = {}  # future -> (job, attempt, deadline)
        pool = ProcessPoolExecutor(max_workers=self.workers)
        abandoned = False
        try:
            while queue or pending:
                now = time.monotonic()
                still_waiting = []
                for job, attempt, not_before in queue:
                    if now >= not_before:
                        future = pool.submit(
                            execute_job,
                            (job.experiment, job.kwargs, job.seed,
                             self.attribution_mode),
                        )
                        deadline = now + self.timeout_s if self.timeout_s else None
                        pending[future] = (job, attempt, deadline)
                    else:
                        still_waiting.append((job, attempt, not_before))
                queue = still_waiting

                if not pending:
                    time.sleep(min(self.backoff_s, 0.05))
                    continue

                done, _ = wait(pending, timeout=0.05, return_when=FIRST_COMPLETED)
                now = time.monotonic()

                for future in done:
                    job, attempt, _ = pending.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        # worker death (BrokenProcessPool) or payload
                        # pickling trouble — treat like any job failure
                        raw = {
                            "status": "failed",
                            "error": f"{type(exc).__name__}: {exc}",
                            "traceback": None,
                            "duration_s": 0.0,
                        }
                    else:
                        raw = future.result()
                    if raw["status"] == "failed" and attempt <= self.retries:
                        queue.append((job, attempt + 1, now + self._backoff(attempt)))
                        continue
                    outcome = self._finish(job, raw, attempt)
                    outcomes[job] = outcome
                    self._journal(manifest, outcome)

                # enforce per-job deadlines; a running task cannot be
                # preempted, so the job is recorded failed (or requeued)
                # and its worker abandoned to drain in the background
                for future, (job, attempt, deadline) in list(pending.items()):
                    if deadline is None or now <= deadline:
                        continue
                    pending.pop(future)
                    if not future.cancel():
                        abandoned = True
                    raw = {
                        "status": "failed",
                        "error": f"TimeoutError: exceeded {self.timeout_s}s",
                        "traceback": None,
                        "duration_s": self.timeout_s,
                    }
                    if attempt <= self.retries:
                        queue.append((job, attempt + 1, now + self._backoff(attempt)))
                    else:
                        outcome = self._finish(job, raw, attempt)
                        outcomes[job] = outcome
                        self._journal(manifest, outcome)
        finally:
            # don't block campaign completion on an abandoned (timed-out)
            # worker; its process drains in the background
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        return outcomes

    # -- bookkeeping --------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        return self.backoff_s * (2 ** (attempt - 1))

    def _finish(self, job: CampaignJob, raw: dict, attempts: int) -> JobOutcome:
        if raw["status"] == "ok":
            outcome = JobOutcome(
                job, "ok", "run", attempts=attempts,
                duration_s=raw["duration_s"], result=raw["result"],
                metrics=raw.get("metrics", {}),
                attribution=raw.get("attribution", []),
                attribution_summaries=raw.get("attribution_summaries", []),
            )
            if self.cache is not None:
                self.cache.put(
                    job, raw["result"],
                    metrics=outcome.metrics,
                    attribution=outcome.attribution,
                    attribution_summaries=outcome.attribution_summaries,
                    mode=self.attribution_mode,
                )
            return outcome
        return JobOutcome(
            job, "failed", "run", attempts=attempts,
            duration_s=raw.get("duration_s", 0.0),
            error=raw.get("error"), traceback=raw.get("traceback"),
        )

    def _journal(self, manifest, outcome: JobOutcome) -> None:
        if manifest is None:
            return
        key = (self.cache.key_for(outcome.job, self.attribution_mode)
               if self.cache else "")
        manifest.write(
            job_record(
                outcome.job, key, outcome.status, outcome.source,
                outcome.attempts, outcome.duration_s,
                error=outcome.error, traceback=outcome.traceback,
            )
        )
