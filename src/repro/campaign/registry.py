"""The experiment registry: the campaign engine's view of the harness.

One :class:`ExperimentSpec` per paper table/figure, in EXPERIMENTS.md
section order.  This is the single source of truth for "what can a
campaign run": ``scripts/run_campaign.py``, ``scripts/
regenerate_experiments.py``, and ``scripts/trace_experiment.py`` all
resolve names through it, and worker processes look experiments up here
by name (a string crosses the process boundary; a closure would not).

Every runner accepts ``seed=`` (threaded through to the underlying
system builds) plus its own size knob, and returns one
:class:`~repro.core.results.ResultTable` — except ``fio``, which
returns the ``(fig9, fig10)`` pair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..core.experiment import (
    run_fig6,
    run_fig7,
    run_fig8,
    run_fio_matrix,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from ..errors import ConfigurationError
from ..faults.experiments import (
    run_ber_sweep,
    run_nvdimm_drill,
    run_storage_drill,
)
from ..hybrid.experiments import run_tiered_replay
from ..service.shard import run_service_calibrate, run_service_shard
from ..tune.trial import run_tune_trial


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: name, callable, default kwargs."""

    name: str
    runner: Callable
    defaults: Dict[str, object] = field(default_factory=dict)
    #: hidden specs (self-test fixtures) are excluded from CLIs and
    #: from the paper scenario matrix
    hidden: bool = False
    #: part of the paper reproduction set (``ScenarioMatrix.paper``);
    #: fault/resilience experiments opt out so the paper campaign's
    #: byte-identical artifacts stay stable
    paper: bool = True
    #: accepts a ``faults=`` kwarg (a canonical plan JSON string) —
    #: ``run_campaign.py --faults`` only threads plans into these
    supports_faults: bool = False


#: registration order mirrors EXPERIMENTS.md section order
_SPECS: List[ExperimentSpec] = [
    ExperimentSpec("table1", run_table1, {}),
    ExperimentSpec("table2", run_table2, {"samples": 24}),
    ExperimentSpec("fig6", run_fig6, {"samples": 24}),
    ExperimentSpec("table3", run_table3, {"samples": 24}),
    ExperimentSpec("fig7", run_fig7, {"samples": 24}),
    ExperimentSpec("fig8", run_fig8, {}),
    ExperimentSpec("table4", run_table4, {"writes": 24}),
    ExperimentSpec("fio", run_fio_matrix, {"ios": 32}),
    ExperimentSpec("table5", run_table5, {"size_mib": 16}),
    # fault & resilience experiments (docs/faults.md)
    ExperimentSpec("ber_sweep", run_ber_sweep, {"samples": 8},
                   paper=False, supports_faults=True),
    ExperimentSpec("nvdimm_drill", run_nvdimm_drill, {"lines": 16},
                   paper=False, supports_faults=True),
    ExperimentSpec("storage_drill", run_storage_drill, {"writes": 24},
                   paper=False, supports_faults=True),
    # hybrid-memory tiering: migration policy x replay workload
    # (docs/hybrid.md); swept as campaign axes, not part of the paper set
    ExperimentSpec("tiered_replay", run_tiered_replay,
                   {"policy": "clock", "workload": "graph", "ops": 96,
                    "depth": 4},
                   paper=False, supports_faults=True),
    # service-mode shard worker (docs/service.md) — scheduled by
    # scripts/run_service.py, one job per (repetition, shard); hidden
    # because a lone shard is half a result (the merge computes queueing)
    ExperimentSpec(
        "service_shard", run_service_shard,
        {"schedule": "", "shard": 0, "shards": 1, "repetition": 0,
         "calib_samples": 24},
        hidden=True, paper=False, supports_faults=True,
    ),
    # shared service calibration (docs/service.md) — one job per
    # run_service.py invocation; its table becomes the profiles artifact
    # every (repetition, shard) job reuses
    ExperimentSpec(
        "service_calibrate", run_service_calibrate,
        {"classes": "", "calib_samples": 24},
        hidden=True, paper=False, supports_faults=True,
    ),
    # autotuner trial worker (docs/tuning.md) — scheduled by the tune
    # driver, one job per (config, rung); hidden because a lone trial is
    # meaningless without the search that proposed it
    ExperimentSpec(
        "tune_trial", run_tune_trial,
        {"config": "{}", "workload": "mem_read", "samples": 32, "depth": 4},
        hidden=True, paper=False, supports_faults=True,
    ),
]

#: aliases: the fio matrix renders both Figure 9 and Figure 10
ALIASES = {"fig9": "fio", "fig10": "fio"}


# -- self-test fixtures -------------------------------------------------------
#
# Failure-path tests need an experiment that misbehaves on demand, and it
# must be importable by name inside a worker process — a test-local
# function cannot cross the pool boundary.  Hidden from every CLI.


def _selftest_echo(value: int = 1, seed: int = 0):
    from ..core.results import ResultTable

    table = ResultTable("selftest echo", ["value", "seed"])
    table.add_row(value, seed)
    return table


def _selftest_fail(fail_always: bool = True, seed: int = 0):
    raise RuntimeError(f"selftest failure (seed={seed})")


def _selftest_sleep(seconds: float = 5.0, seed: int = 0):
    time.sleep(seconds)
    return _selftest_echo(value=0, seed=seed)


_SPECS += [
    ExperimentSpec("_selftest_echo", _selftest_echo, {"value": 1}, hidden=True),
    ExperimentSpec("_selftest_fail", _selftest_fail, {}, hidden=True),
    ExperimentSpec("_selftest_sleep", _selftest_sleep, {"seconds": 5.0}, hidden=True),
]

REGISTRY: Dict[str, ExperimentSpec] = {spec.name: spec for spec in _SPECS}


def experiment_names(include_hidden: bool = False) -> List[str]:
    """Public experiment names in EXPERIMENTS.md order."""
    return [s.name for s in _SPECS if include_hidden or not s.hidden]


def get_experiment(name: str) -> ExperimentSpec:
    """Resolve a name (or alias) to its spec; raises ConfigurationError."""
    canonical = ALIASES.get(name, name)
    spec = REGISTRY.get(canonical)
    if spec is None:
        known = ", ".join(experiment_names())
        raise ConfigurationError(f"unknown experiment {name!r} (known: {known})")
    return spec
