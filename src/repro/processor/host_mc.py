"""Processor-side DMI host memory controller.

One of these fronts each populated DMI channel.  It owns the channel's
32-tag window (Section 2.3): every command acquires a tag at issue and
frees it when the buffer's *done* arrives.  When the buffer is slow enough
that all 32 tags are outstanding, issue stalls — the throughput-throttling
effect the paper calls out as a key design constraint for keeping the
FPGA's round-trip latency low.
"""

from __future__ import annotations

from typing import Optional

from ..dmi import Command, DmiChannel, Opcode, TagPool
from ..errors import ProtocolError
from ..sim import LatencyRecorder, Signal, Simulator
from ..telemetry import probe
from ..units import CACHE_LINE_BYTES


class HostMemoryController:
    """Tag-managed command issue over one DMI channel."""

    def __init__(
        self,
        sim: Simulator,
        channel: DmiChannel,
        name: str = "",
        num_tags: int = None,
    ):
        self.sim = sim
        self.channel = channel
        self.name = name or f"hmc.{channel.name}"
        self.tags = TagPool(sim) if num_tags is None else TagPool(sim, num_tags)
        self.latency = LatencyRecorder(f"{self.name}.cmd")

    # -- generic issue ------------------------------------------------------

    def _issue(self, opcode: Opcode, addr: int, data=None, byte_enable=None) -> Signal:
        """Acquire a tag (waiting if the window is full) and issue.

        The returned signal fires with the :class:`Response`; the tag is
        released and the round-trip latency recorded first.
        """
        result = Signal(f"{self.name}.{opcode.value}@{addr:#x}")
        issued_at = self.sim.now_ps
        trace = probe.session
        journeys = None
        jid = None
        if trace is not None:
            # every transaction passes here, so this is the arrival point
            # that drives periodic occupancy sampling
            if trace.occupancy is not None:
                trace.occupancy.maybe_sample(trace, issued_at)
            journeys = trace.journeys
            if journeys is not None:
                # a line command issued inside a storage transfer becomes a
                # *child* journey of it (separate ":lines" scenario lane)
                jid = journeys.begin(opcode.value, addr, self.channel.name,
                                     issued_at, parent=journeys.current(),
                                     depth=self.tags.in_flight_count)

        def with_tag(tag: int) -> None:
            if jid is not None:
                # only recorded when acquisition actually stalled (the
                # cursor advances regardless, so the partition holds)
                journeys.stage_to(jid, "host.tag_wait", self.sim.now_ps, kind="queue")
                journeys.bind(self.channel.name, tag, jid)
            command = Command(opcode, addr, tag, data, byte_enable, journey=jid)
            inner = self.channel.host.issue(command)

            def complete(response) -> None:
                self.tags.release(tag)
                self.latency.record(self.sim.now_ps - issued_at)
                trace = probe.session
                if trace is not None:
                    # tag acquire through done: includes any tag-window stall
                    trace.complete(
                        "processor", f"host.{opcode.value}",
                        issued_at, self.sim.now_ps, {"addr": addr},
                    )
                    trace.count("processor.commands")
                    trace.record("processor.cmd_ps", self.sim.now_ps - issued_at)
                if jid is not None:
                    journeys.unbind(self.channel.name, tag)
                    journeys.finish(jid, self.sim.now_ps)
                result.trigger(response)

            inner.add_waiter(complete)

        tag = self.tags.try_acquire()
        if tag is not None:
            with_tag(tag)
        else:
            self._wait_for_tag(with_tag)
        return result

    def _wait_for_tag(self, callback) -> None:
        gate = Signal(f"{self.name}.tagwait")
        self.tags._waiters.append(gate)
        self.tags.stall_events += 1
        stall_start = self.sim.now_ps

        def retry(_):
            tag = self.tags.try_acquire()
            if tag is None:
                self._wait_for_tag(callback)
            else:
                self.tags.stall_ps += self.sim.now_ps - stall_start
                callback(tag)

        gate.add_waiter(retry)

    # -- operations ------------------------------------------------------------

    def read_line(self, addr: int) -> Signal:
        """128B cache-line read; signal fires with the data bytes."""
        result = Signal(f"{self.name}.rdline@{addr:#x}")
        self._issue(Opcode.READ, addr).add_waiter(
            lambda resp: result.trigger(resp.data)
        )
        return result

    def write_line(self, addr: int, data: bytes) -> Signal:
        if len(data) != CACHE_LINE_BYTES:
            raise ProtocolError(f"write_line requires {CACHE_LINE_BYTES}B")
        return self._issue(Opcode.WRITE, addr, data)

    def partial_write(self, addr: int, data: bytes, byte_enable: bytes) -> Signal:
        return self._issue(Opcode.PARTIAL_WRITE, addr, data, byte_enable)

    def flush(self) -> Signal:
        """ConTutto extension: drain the buffer's write pipeline."""
        return self._issue(Opcode.FLUSH, 0)

    def min_store(self, addr: int, data: bytes) -> Signal:
        return self._issue(Opcode.MIN_STORE, addr, data)

    def max_store(self, addr: int, data: bytes) -> Signal:
        return self._issue(Opcode.MAX_STORE, addr, data)

    def cswap(self, addr: int, data: bytes) -> Signal:
        """Conditional swap; signal fires with the pre-swap line."""
        return self._issue(Opcode.CSWAP, addr, data)

    # -- diagnostics ---------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return self.tags.in_flight_count
