"""POWER8 host side: socket, host memory controller, caches, CPU model."""

from .caches import (
    POWER8_HIERARCHY,
    POWER8_L1D,
    POWER8_L2,
    POWER8_L3,
    CacheHierarchy,
    CacheLevel,
)
from .cpu_model import CpuModel, WorkloadProfile
from .host_mc import HostMemoryController
from .memmap import (
    MIN_DMI_REGION_BYTES,
    TOP_OF_MAP,
    MemoryMap,
    MemoryRegion,
)
from .power8 import (
    NUM_DMI_CHANNELS,
    ChannelSlot,
    Power8Socket,
    SocketConfig,
)

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "ChannelSlot",
    "CpuModel",
    "HostMemoryController",
    "MIN_DMI_REGION_BYTES",
    "MemoryMap",
    "MemoryRegion",
    "NUM_DMI_CHANNELS",
    "POWER8_HIERARCHY",
    "POWER8_L1D",
    "POWER8_L2",
    "POWER8_L3",
    "Power8Socket",
    "SocketConfig",
    "TOP_OF_MAP",
    "WorkloadProfile",
]
