"""The POWER8 socket: DMI channels, routing, and latency measurement.

A fully configured socket has eight DMI channels (Figure 1), each
terminated by a memory buffer — Centaur or ConTutto.  The socket:

* builds the physical links (14 lanes down / 21 up) per populated channel,
  running at 9.6 Gb/s against Centaur and 8 Gb/s against ConTutto, with CDR
  capture on the FPGA's receive side (Section 3.2);
* owns one :class:`HostMemoryController` (32-tag window) per channel;
* routes real addresses to channels through the firmware-built
  :class:`~repro.processor.memmap.MemoryMap`;
* measures latency-to-memory the way the paper does: the average round trip
  of single commands issued from the processor, including the host-side
  path (core, caches, nest) modeled as ``host_path_ps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..buffer.base import MemoryBuffer
from ..dmi import (
    DmiChannel,
    EndpointConfig,
    LinkErrorModel,
    LinkTrainer,
    SerialLink,
    TrainingConfig,
)
from ..errors import ConfigurationError, FirmwareError
from ..sim import Rng, Signal, Simulator, dmi_link_clock
from ..units import CACHE_LINE_BYTES, ns_to_ps
from .host_mc import HostMemoryController
from .memmap import MemoryMap

NUM_DMI_CHANNELS = 8


@dataclass(frozen=True)
class SocketConfig:
    """Host-side parameters of the socket."""

    #: one-way-pair constant for core + cache-miss handling + nest traversal,
    #: included in any software-measured latency to memory.  Calibrated so a
    #: latency-optimized Centaur measures ~97 ns end to end (Table 3).
    host_path_ps: int = ns_to_ps(16)
    #: the host silicon's limit on how late a buffer may start a replay
    max_replay_start_ps: int = ns_to_ps(24)
    #: frame corruption probability per link (0 for clean-channel studies)
    frame_error_rate: float = 0.0
    #: link rate against each buffer kind, in Gb/s
    centaur_link_gbps: float = 9.6
    contutto_link_gbps: float = 8.0
    #: per-channel command-tag window (None = the hardware 32); smaller
    #: windows throttle memory-level parallelism, a tunable axis
    num_tags: Optional[int] = None
    #: replay-buffer depth on both channel endpoints (None = the default);
    #: bounds how many unacknowledged frames may be in flight
    replay_depth: Optional[int] = None


@dataclass
class ChannelSlot:
    """Everything living behind one populated DMI channel."""

    index: int
    buffer: MemoryBuffer
    channel: DmiChannel
    host_mc: HostMemoryController
    trained: bool = False
    frtl_ps: int = 0


class Power8Socket:
    """One POWER8 processor socket with its DMI memory channels."""

    def __init__(
        self,
        sim: Simulator,
        config: SocketConfig = SocketConfig(),
        rng: Optional[Rng] = None,
        name: str = "p8",
    ):
        self.sim = sim
        self.config = config
        self.rng = rng or Rng(0, name)
        self.name = name
        self.slots: Dict[int, ChannelSlot] = {}
        self.memory_map = MemoryMap()

    # -- channel population ---------------------------------------------------

    def attach_buffer(self, channel_no: int, buffer: MemoryBuffer) -> ChannelSlot:
        """Wire ``buffer`` behind DMI channel ``channel_no``."""
        if not 0 <= channel_no < NUM_DMI_CHANNELS:
            raise ConfigurationError(
                f"channel {channel_no} outside 0..{NUM_DMI_CHANNELS - 1}"
            )
        if channel_no in self.slots:
            raise ConfigurationError(f"channel {channel_no} already populated")

        is_fpga = buffer.kind == "contutto"
        gbps = (
            self.config.contutto_link_gbps if is_fpga else self.config.centaur_link_gbps
        )
        clock = dmi_link_clock(gbps)
        # each link owns its error model so fault injectors can save and
        # restore per-link settings without aliasing
        down = SerialLink(
            self.sim, f"{self.name}.ch{channel_no}.down", 14, clock,
            cdr_capture=is_fpga, error_model=LinkErrorModel(),
            rng=self.rng.fork(f"ch{channel_no}.down"),
        )
        up = SerialLink(
            self.sim, f"{self.name}.ch{channel_no}.up", 21, clock,
            cdr_capture=False, error_model=LinkErrorModel(),
            rng=self.rng.fork(f"ch{channel_no}.up"),
        )
        # one source of truth for link-error configuration: the same helper
        # the dmi.bit_errors fault injector uses (validates the rate too)
        from ..faults.injectors import configure_link_errors

        configure_link_errors([down, up], self.config.frame_error_rate)
        tx, rx, prep, freeze = buffer.endpoint_overheads()
        depth_kwargs = (
            {} if self.config.replay_depth is None
            else {"replay_depth": self.config.replay_depth}
        )
        buffer_config = EndpointConfig(
            tx_overhead_ps=tx,
            rx_overhead_ps=rx,
            replay_prep_ps=prep,
            freeze_workaround=freeze,
            max_replay_start_ps=self.config.max_replay_start_ps,
            **depth_kwargs,
        )
        channel = DmiChannel(
            self.sim, down, up, EndpointConfig(**depth_kwargs), buffer_config,
            buffer.handle_command, name=f"{self.name}.dmi{channel_no}",
        )
        host_mc = HostMemoryController(
            self.sim, channel, num_tags=self.config.num_tags
        )
        slot = ChannelSlot(channel_no, buffer, channel, host_mc)
        self.slots[channel_no] = slot
        return slot

    # -- link training ------------------------------------------------------------

    def train_channel(
        self, channel_no: int, training: TrainingConfig = None
    ) -> "Signal":
        """Train one channel; returns the training process's done signal."""
        slot = self._slot(channel_no)
        trainer = LinkTrainer(
            self.sim, training or TrainingConfig(), self.rng.fork(f"train{channel_no}")
        )
        proc = trainer.train(slot.channel)

        def record(_):
            slot.trained = True
            slot.frtl_ps = proc.result.frtl_ps

        proc.done.add_waiter(record)
        return proc.done

    def train_all(self, training: TrainingConfig = None) -> None:
        """Train every populated channel to completion (runs the simulator)."""
        for channel_no in sorted(self.slots):
            done = self.train_channel(channel_no, training)
            self.sim.run_until_signal(done, timeout_ps=10**12)

    # -- address routing ----------------------------------------------------------

    def _slot(self, channel_no: int) -> ChannelSlot:
        slot = self.slots.get(channel_no)
        if slot is None:
            raise ConfigurationError(f"channel {channel_no} is not populated")
        return slot

    def _route(self, real_addr: int):
        region = self.memory_map.region_at(real_addr)
        slot = self._slot(region.channel)
        if not slot.trained:
            raise FirmwareError(
                f"channel {region.channel} accessed before link training"
            )
        return slot, real_addr - region.base

    def read_line(self, real_addr: int) -> Signal:
        """Read the 128B line at a real address; fires with the data after
        the full path including the host-side constant."""
        slot, local = self._route(real_addr)
        result = Signal(f"{self.name}.rd@{real_addr:#x}")
        inner = slot.host_mc.read_line(local)
        inner.add_waiter(
            lambda data: self.sim.call_after(
                self.config.host_path_ps, result.trigger, data
            )
        )
        return result

    def write_line(self, real_addr: int, data: bytes) -> Signal:
        slot, local = self._route(real_addr)
        result = Signal(f"{self.name}.wr@{real_addr:#x}")
        inner = slot.host_mc.write_line(local, data)
        inner.add_waiter(
            lambda resp: self.sim.call_after(
                self.config.host_path_ps, result.trigger, resp
            )
        )
        return result

    def flush_channel(self, channel_no: int) -> Signal:
        """Issue the ConTutto flush extension on a channel."""
        return self._slot(channel_no).host_mc.flush()

    # -- runtime channel recovery -------------------------------------------------

    def recover_channel(self, channel_no: int, training: TrainingConfig = None) -> bool:
        """Recover a failed channel without a system reboot.

        Resets both channel endpoints, releases the host tag window, waits
        for in-flight frames to drain (so the resynchronized scramblers
        start clean), then retrains.  Returns whether the channel came back.
        Outstanding commands are lost; callers re-drive them.
        """
        slot = self._slot(channel_no)
        slot.trained = False
        # drain the wire FIRST, while both endpoints are still in the failed
        # state and silently discard arrivals: a stale frame landing after
        # the reset would be accepted as new and desynchronize the sequence
        # space (and the scramblers) from the very first post-reset frame
        slot.channel.host_endpoint.failed = True
        slot.channel.buffer_endpoint.failed = True
        drain_until = max(
            slot.channel.down_link.next_free_ps, slot.channel.up_link.next_free_ps
        ) + slot.channel.down_link.latency_ps + ns_to_ps(100)
        self.sim.run(until_ps=drain_until)
        slot.channel.reset()
        for tag in list(slot.host_mc.tags._in_flight):
            slot.host_mc.tags.release(tag)
        done = self.train_channel(channel_no, training)
        try:
            self.sim.run_until_signal(done, timeout_ps=10**12)
        except Exception:
            return False
        return slot.trained

    # -- the paper's latency measurement ---------------------------------------------

    def measure_memory_latency_ns(
        self,
        region_base: int,
        region_bytes: int,
        samples: int = 64,
        rng: Optional[Rng] = None,
    ) -> float:
        """Measured latency to memory, averaged over single commands.

        Issues ``samples`` dependent (serialized) cache-line reads at random
        line addresses — the same methodology as Tables 2 and 3: total
        round-trip latency through software, processor, caches, nest, DMI
        link and the buffer.
        """
        rng = rng or self.rng.fork("latmeas")
        lines = region_bytes // CACHE_LINE_BYTES
        total_ps = 0
        for _ in range(samples):
            addr = region_base + rng.randint(0, lines - 1) * CACHE_LINE_BYTES
            t0 = self.sim.now_ps
            self.sim.run_until_signal(self.read_line(addr), timeout_ps=10**12)
            total_ps += self.sim.now_ps - t0
        return total_ps / samples / 1_000

    # -- diagnostics --------------------------------------------------------------------

    @property
    def populated_channels(self) -> List[int]:
        return sorted(self.slots)

    def total_capacity_bytes(self) -> int:
        return sum(slot.buffer.capacity_bytes for slot in self.slots.values())
