"""Analytical CPU performance model: CPI stacks vs memory latency.

The latency-variation experiments (Section 4.1) run complete applications
on real hardware; the observable is *end-to-end runtime as a function of
latency to memory*.  The mechanism behind the published curves is the
classic CPI decomposition:

    CPI(T) = CPI_base + (MPKI_mem / 1000) * exposed * T_cycles / MLP

* ``CPI_base`` — compute CPI with an ideal (zero-extra-latency) memory,
* ``MPKI_mem`` — off-chip (beyond-L3) misses per kilo-instruction,
* ``exposed`` — fraction of a miss's latency the out-of-order core cannot
  hide behind independent work,
* ``MLP`` — average number of overlapping outstanding misses.

Runtime is then ``instructions * CPI(T) / frequency``, and a SPEC-style
*ratio* is ``reference_runtime / runtime``.  An application's sensitivity to
memory latency collapses into ``s = MPKI_mem/1000 * exposed / MLP`` — CPI
added per cycle of memory latency — which is what distinguishes an mcf from
an hmmer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadProfile:
    """Latency-sensitivity characterization of one application."""

    name: str
    #: CPI with an ideal memory system
    base_cpi: float
    #: off-chip misses per kilo-instruction
    mem_mpki: float
    #: fraction of miss latency the core cannot hide
    exposed: float
    #: memory-level parallelism (overlapping misses)
    mlp: float
    #: dynamic instruction count of the (scaled) run
    instructions: float = 1e12
    #: SPEC reference runtime in seconds (for ratio reporting)
    reference_runtime_s: float = 10_000.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigurationError(f"{self.name}: base CPI must be positive")
        if self.mem_mpki < 0:
            raise ConfigurationError(f"{self.name}: MPKI cannot be negative")
        if not 0 <= self.exposed <= 1:
            raise ConfigurationError(f"{self.name}: exposed must be in [0, 1]")
        if self.mlp < 1:
            raise ConfigurationError(f"{self.name}: MLP cannot be below 1")

    @property
    def sensitivity(self) -> float:
        """CPI added per core cycle of memory latency."""
        return self.mem_mpki / 1000 * self.exposed / self.mlp


class CpuModel:
    """Evaluates workload profiles against a memory latency."""

    def __init__(self, core_freq_ghz: float = 4.0):
        if core_freq_ghz <= 0:
            raise ConfigurationError("core frequency must be positive")
        self.core_freq_ghz = core_freq_ghz

    def latency_cycles(self, memory_latency_ns: float) -> float:
        return memory_latency_ns * self.core_freq_ghz

    def cpi(self, profile: WorkloadProfile, memory_latency_ns: float) -> float:
        """CPI at the given loaded memory latency."""
        if memory_latency_ns < 0:
            raise ConfigurationError("memory latency cannot be negative")
        return profile.base_cpi + profile.sensitivity * self.latency_cycles(
            memory_latency_ns
        )

    def runtime_s(self, profile: WorkloadProfile, memory_latency_ns: float) -> float:
        """End-to-end runtime in seconds."""
        cycles = profile.instructions * self.cpi(profile, memory_latency_ns)
        return cycles / (self.core_freq_ghz * 1e9)

    def spec_ratio(self, profile: WorkloadProfile, memory_latency_ns: float) -> float:
        """SPEC-style ratio: reference runtime over measured runtime."""
        return profile.reference_runtime_s / self.runtime_s(
            profile, memory_latency_ns
        )

    def degradation(
        self,
        profile: WorkloadProfile,
        base_latency_ns: float,
        new_latency_ns: float,
    ) -> float:
        """Fractional runtime increase going from base to new latency."""
        base = self.runtime_s(profile, base_latency_ns)
        new = self.runtime_s(profile, new_latency_ns)
        return new / base - 1.0

    def memory_stall_fraction(
        self, profile: WorkloadProfile, memory_latency_ns: float
    ) -> float:
        """Fraction of runtime that is exposed memory stall."""
        total = self.cpi(profile, memory_latency_ns)
        stall = profile.sensitivity * self.latency_cycles(memory_latency_ns)
        return stall / total
