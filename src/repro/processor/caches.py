"""Analytical POWER8 cache hierarchy for the CPU performance model.

The latency-sensitivity experiments (Figures 6 and 7) run full applications;
simulating them at instruction granularity is neither possible nor needed —
what decides the result is how much of each application's time is exposed
memory latency.  The hierarchy model supplies the per-level hit latencies
and composes an average memory access time (AMAT) from per-workload hit
rates, which :mod:`repro.processor.cpu_model` folds into a CPI stack.

Level parameters approximate POWER8: 64 KB L1D (3 cycles), 512 KB L2
(13 cycles), 8 MB eDRAM L3 per core (27 cycles), at 4 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CacheLevel:
    """One level of the hierarchy."""

    name: str
    capacity_bytes: int
    hit_latency_cycles: float


POWER8_L1D = CacheLevel("L1D", 64 << 10, 3)
POWER8_L2 = CacheLevel("L2", 512 << 10, 13)
POWER8_L3 = CacheLevel("L3", 8 << 20, 27)


@dataclass(frozen=True)
class CacheHierarchy:
    """A stack of cache levels in front of memory."""

    levels: tuple = (POWER8_L1D, POWER8_L2, POWER8_L3)
    core_freq_ghz: float = 4.0

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.core_freq_ghz

    def amat_cycles(self, hit_rates: List[float], memory_latency_ns: float) -> float:
        """Average memory access time in core cycles.

        ``hit_rates[i]`` is the *local* hit rate of level i (fraction of
        accesses reaching level i that hit there).  Whatever misses the last
        level pays ``memory_latency_ns``.
        """
        if len(hit_rates) != len(self.levels):
            raise ConfigurationError(
                f"need {len(self.levels)} hit rates, got {len(hit_rates)}"
            )
        for rate in hit_rates:
            if not 0 <= rate <= 1:
                raise ConfigurationError(f"hit rate {rate} outside [0, 1]")
        amat = 0.0
        reach_prob = 1.0
        for level, rate in zip(self.levels, hit_rates):
            amat += reach_prob * rate * level.hit_latency_cycles
            reach_prob *= 1 - rate
        amat += reach_prob * memory_latency_ns * self.core_freq_ghz
        return amat

    def memory_access_fraction(self, hit_rates: List[float]) -> float:
        """Fraction of accesses that go all the way to memory."""
        reach = 1.0
        for rate in hit_rates:
            reach *= 1 - rate
        return reach


POWER8_HIERARCHY = CacheHierarchy()
