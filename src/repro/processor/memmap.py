"""System memory-map construction (Section 3.4, second challenge).

Firmware must place every buffer's memory into the real-address map under
these rules:

* DRAM regions are sorted to form one contiguous block starting at
  address 0 (Linux requires DRAM at the start of the map);
* non-volatile regions (MRAM, NVDIMM) are placed at the *top* of the map,
  tagged with their type and a contents-preserved flag so Linux can bind
  them to the right drivers (pmem / slram) instead of the page allocator;
* MRAM capacities are megabytes, but the smallest size POWER8 supports
  behind a DMI link is 4 GB — firmware "lies" to the processor, reserving a
  4 GB hardware window while reporting only the true size to Linux.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigurationError, FirmwareError
from ..units import GIB

#: smallest memory size POWER8 accepts behind a DMI link
MIN_DMI_REGION_BYTES = 4 * GIB

#: where the non-volatile window is anchored (top of a 2 TB real-address map)
TOP_OF_MAP = 2 << 40

#: module types placed in the OS-RAM block from address 0.  A tiered
#: hybrid card (DRAM + NVM with migration) is ordinary volatile RAM to
#: the OS — its hot set lives in DRAM and dies with power.
VOLATILE_TYPES = ("dram", "tiered")


@dataclass(frozen=True)
class MemoryRegion:
    """One entry in the real-address map."""

    base: int                 # real address as seen by the processor
    hw_size: int              # hardware window (the 4 GB "lie" for MRAM)
    os_size: int              # size reported to Linux (true capacity)
    memory_type: str          # "dram" | "tiered" | "mram" | "nvdimm"
    channel: int              # DMI channel that owns the region
    contents_preserved: bool = False

    @property
    def is_volatile(self) -> bool:
        return self.memory_type in VOLATILE_TYPES

    @property
    def end(self) -> int:
        return self.base + self.hw_size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.os_size


class MemoryMap:
    """The assembled real-address map."""

    def __init__(self) -> None:
        self.regions: List[MemoryRegion] = []

    # -- construction (used by firmware.boot) --------------------------------

    def build(self, entries: List[dict]) -> None:
        """Place regions from ``entries``: dicts with keys
        ``memory_type``, ``capacity_bytes``, ``channel``, ``contents_preserved``.
        """
        if self.regions:
            raise FirmwareError("memory map already built")
        dram = [e for e in entries if e["memory_type"] in VOLATILE_TYPES]
        nvm = [e for e in entries if e["memory_type"] not in VOLATILE_TYPES]

        # volatile RAM (DRAM, tiered): one contiguous block from address 0
        base = 0
        for entry in sorted(dram, key=lambda e: e["channel"]):
            self.regions.append(
                MemoryRegion(
                    base=base,
                    hw_size=entry["capacity_bytes"],
                    os_size=entry["capacity_bytes"],
                    memory_type=entry["memory_type"],
                    channel=entry["channel"],
                )
            )
            base += entry["capacity_bytes"]

        # non-volatile: at the top of the map, growing downward
        top = TOP_OF_MAP
        for entry in sorted(nvm, key=lambda e: e["channel"]):
            hw_size = max(entry["capacity_bytes"], MIN_DMI_REGION_BYTES)
            top -= hw_size
            if top < base:
                raise ConfigurationError("memory map overflow: NVM collides with DRAM")
            self.regions.append(
                MemoryRegion(
                    base=top,
                    hw_size=hw_size,
                    os_size=entry["capacity_bytes"],
                    memory_type=entry["memory_type"],
                    channel=entry["channel"],
                    contents_preserved=entry.get("contents_preserved", False),
                )
            )

    # -- queries ------------------------------------------------------------------

    def region_at(self, addr: int) -> MemoryRegion:
        for region in self.regions:
            if region.base <= addr < region.end:
                return region
        raise FirmwareError(f"address {addr:#x} not mapped")

    def dram_regions(self) -> List[MemoryRegion]:
        return [r for r in self.regions if r.is_volatile]

    def nvm_regions(self) -> List[MemoryRegion]:
        return [r for r in self.regions if not r.is_volatile]

    @property
    def dram_bytes(self) -> int:
        return sum(r.os_size for r in self.dram_regions())

    @property
    def dram_is_contiguous_from_zero(self) -> bool:
        """The Linux boot requirement the placement rules guarantee."""
        regions = sorted(self.dram_regions(), key=lambda r: r.base)
        expected = 0
        for region in regions:
            if region.base != expected:
                return False
            expected = region.end
        return bool(regions)

    def validate(self) -> None:
        """Check the invariants firmware promises the OS."""
        if not self.dram_is_contiguous_from_zero:
            raise FirmwareError("DRAM is not contiguous from address 0")
        spans = sorted((r.base, r.end) for r in self.regions)
        for (b1, e1), (b2, _) in zip(spans, spans[1:]):
            if b2 < e1:
                raise FirmwareError("memory map regions overlap")
        for region in self.nvm_regions():
            if region.hw_size < MIN_DMI_REGION_BYTES:
                raise FirmwareError(
                    f"NVM region on channel {region.channel} smaller than the "
                    f"4 GB DMI minimum"
                )
