"""Synthetic memory-access trace generators.

Drive the socket with realistic access patterns for integration tests,
bandwidth studies, and the pointer-chasing class of workloads the paper
flags as the open question for disaggregated memory ("graph and pointer
chasing applications where the performance degradation could be much
higher").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ConfigurationError
from ..sim import Rng
from ..units import CACHE_LINE_BYTES


@dataclass(frozen=True)
class TraceSpec:
    """Bounds of a generated trace."""

    base: int
    size_bytes: int
    num_accesses: int

    def __post_init__(self) -> None:
        if self.size_bytes < CACHE_LINE_BYTES:
            raise ConfigurationError("trace region smaller than one line")
        if self.num_accesses < 1:
            raise ConfigurationError("trace needs at least one access")

    @property
    def lines(self) -> int:
        return self.size_bytes // CACHE_LINE_BYTES


def sequential(spec: TraceSpec) -> Iterator[int]:
    """Streaming pattern: consecutive cache lines, wrapping."""
    for i in range(spec.num_accesses):
        yield spec.base + (i % spec.lines) * CACHE_LINE_BYTES


def strided(spec: TraceSpec, stride_lines: int) -> Iterator[int]:
    """Fixed-stride pattern (column walks, matrix transposes)."""
    if stride_lines < 1:
        raise ConfigurationError("stride must be >= 1 line")
    for i in range(spec.num_accesses):
        yield spec.base + ((i * stride_lines) % spec.lines) * CACHE_LINE_BYTES


def random_lines(spec: TraceSpec, rng: Rng) -> Iterator[int]:
    """Uniform random lines (the latency-measurement pattern)."""
    for _ in range(spec.num_accesses):
        yield spec.base + rng.randint(0, spec.lines - 1) * CACHE_LINE_BYTES


def pointer_chase(spec: TraceSpec, rng: Rng) -> List[int]:
    """A dependent chain: each address is 'stored' at the previous one.

    Built as a random cyclic permutation of the region's lines, truncated
    to ``num_accesses`` — every access depends on the previous load, so no
    memory-level parallelism is available.  This is the worst case for
    added memory latency.
    """
    line_count = min(spec.lines, spec.num_accesses)
    order = list(range(line_count))
    rng.shuffle(order)
    return [spec.base + line * CACHE_LINE_BYTES for line in order[: spec.num_accesses]]
