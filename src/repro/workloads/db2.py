"""DB2 BLU query workload model (Table 2).

The paper ran 29 DB2 BLU analytics queries at four Centaur latency settings
and found the total runtime grows only ~8% while latency to memory more
than triples (79 -> 249 ns): BLU's columnar scans are bandwidth-streaming
and prefetch-friendly, so exposed latency is a small part of query time.

Each query has a latency-insensitive base cost plus a (small) sensitivity
— seconds of extra runtime per nanosecond of added memory latency —
dominated by the scan-versus-join mix.  The population is calibrated so the
suite totals reproduce Table 2's runtimes at the measured latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

NUM_QUERIES = 29

#: the latency point Table 2's fastest row was measured at
CALIBRATION_LATENCY_NS = 79.0

#: Table 2 anchors: total 5387 s at 79 ns, 5802 s at 249 ns
_TOTAL_BASE_S = 5_387.0
_TOTAL_SENSITIVITY_S_PER_NS = (5_802.0 - 5_387.0) / (249.0 - 79.0)


@dataclass(frozen=True)
class Query:
    """One query: base seconds at the calibration point + sensitivity."""

    name: str
    base_s: float
    sensitivity_s_per_ns: float

    def runtime_s(self, memory_latency_ns: float) -> float:
        extra = self.sensitivity_s_per_ns * (memory_latency_ns - CALIBRATION_LATENCY_NS)
        return self.base_s + max(extra, -self.base_s * 0.5)


def _build_queries() -> List[Query]:
    """29 queries whose totals hit the Table 2 anchors.

    Base cost and sensitivity both vary across queries (join-heavy queries
    are the latency-sensitive tail; pure scans are nearly flat), with
    deterministic weights that sum to the calibrated totals.
    """
    base_weights = [1.0 + 0.6 * ((i * 7) % 13) / 13 for i in range(NUM_QUERIES)]
    sens_weights = [0.2 + ((i * 5) % 11) / 11 * 1.8 for i in range(NUM_QUERIES)]
    base_total = sum(base_weights)
    sens_total = sum(sens_weights)
    return [
        Query(
            name=f"Q{i + 1:02d}",
            base_s=_TOTAL_BASE_S * base_weights[i] / base_total,
            sensitivity_s_per_ns=_TOTAL_SENSITIVITY_S_PER_NS
            * sens_weights[i]
            / sens_total,
        )
        for i in range(NUM_QUERIES)
    ]


class Db2BluWorkload:
    """The 29-query run at a configurable memory latency."""

    def __init__(self) -> None:
        self.queries = _build_queries()

    def total_runtime_s(self, memory_latency_ns: float) -> float:
        """Suite runtime — the Table 2 observable."""
        return sum(q.runtime_s(memory_latency_ns) for q in self.queries)

    def per_query_runtimes(self, memory_latency_ns: float) -> Dict[str, float]:
        return {q.name: q.runtime_s(memory_latency_ns) for q in self.queries}

    def degradation(self, base_ns: float, new_ns: float) -> float:
        return self.total_runtime_s(new_ns) / self.total_runtime_s(base_ns) - 1.0

    def most_sensitive(self, n: int = 5) -> List[Query]:
        """Queries most affected by latency (the join-heavy tail)."""
        return sorted(
            self.queries, key=lambda q: q.sensitivity_s_per_ns, reverse=True
        )[:n]
