"""SPEC CINT2006 latency-sensitivity models (Figures 6 and 7).

Twelve workload profiles, one per CINT2006 benchmark, characterized by the
CPI-stack parameters of :mod:`repro.processor.cpu_model`.  The parameters
are calibrated so the *population shape* of the paper's Figure 7 holds at
the ConTutto latency points (Centaur 97 ns baseline, knob@7 = 558 ns,
i.e. ~6x latency):

* about half the suite degrades by less than 2%,
* about two-thirds stays under 10%,
* a tail sits in the 15–35% band (omnetpp / astar / xalancbmk-like),
* one benchmark — mcf-like pointer chasing — exceeds 50%.

Reference runtimes are the published SPEC CINT2006 reference times;
instruction counts are scaled so baseline ratios land in a POWER8-era
plausible range.  These profiles are sensitivity calibrations, not
microarchitectural measurements; what the reproduction preserves is the
curve shape the paper reports.
"""

from __future__ import annotations

from typing import Dict, List

from ..processor.cpu_model import CpuModel, WorkloadProfile

# name: (base_cpi, mem_mpki, exposed, mlp, ref_runtime_s)
_CINT2006 = {
    "400.perlbench": (0.55, 0.0133, 0.45, 2.0, 9_770),
    "401.bzip2": (0.70, 0.0286, 0.50, 2.5, 9_650),
    "403.gcc": (0.80, 0.1765, 0.60, 3.0, 8_050),
    "429.mcf": (0.90, 2.0238, 0.75, 5.0, 9_120),
    "445.gobmk": (0.75, 0.0181, 0.45, 2.0, 10_490),
    "456.hmmer": (0.45, 0.0061, 0.40, 2.0, 9_330),
    "458.sjeng": (0.65, 0.0236, 0.45, 2.0, 12_100),
    "462.libquantum": (0.60, 0.5970, 0.30, 6.0, 20_720),
    "464.h264ref": (0.50, 0.0272, 0.50, 2.5, 22_130),
    "471.omnetpp": (0.85, 0.7380, 0.70, 3.5, 6_250),
    "473.astar": (0.80, 0.3530, 0.65, 3.0, 7_020),
    "483.xalancbmk": (0.75, 0.5366, 0.70, 3.5, 6_900),
}

#: instructions per run, scaled for POWER8-era base ratios in the 20-40 range
_INSTRUCTIONS = 1.5e12


def cint2006_profiles() -> List[WorkloadProfile]:
    """The twelve benchmark profiles, in suite order."""
    return [
        WorkloadProfile(
            name=name,
            base_cpi=base,
            mem_mpki=mpki,
            exposed=exposed,
            mlp=mlp,
            instructions=_INSTRUCTIONS,
            reference_runtime_s=ref,
        )
        for name, (base, mpki, exposed, mlp, ref) in _CINT2006.items()
    ]


def profile_by_name(name: str) -> WorkloadProfile:
    for profile in cint2006_profiles():
        if profile.name == name or profile.name.split(".")[1] == name:
            return profile
    raise KeyError(f"unknown CINT2006 benchmark {name!r}")


class SpecSuite:
    """Runs the CINT2006 suite against a set of memory latencies."""

    def __init__(self, model: CpuModel = None):
        self.model = model or CpuModel()
        self.profiles = cint2006_profiles()

    def ratios(self, memory_latency_ns: float) -> Dict[str, float]:
        """SPEC ratio per benchmark at the given latency (a Fig. 6/7 column)."""
        return {
            p.name: self.model.spec_ratio(p, memory_latency_ns)
            for p in self.profiles
        }

    def degradations(
        self, base_latency_ns: float, new_latency_ns: float
    ) -> Dict[str, float]:
        """Fractional runtime increase per benchmark."""
        return {
            p.name: self.model.degradation(p, base_latency_ns, new_latency_ns)
            for p in self.profiles
        }

    def sweep(self, latencies_ns: List[float]) -> Dict[str, List[float]]:
        """Ratio series per benchmark across latency points (a full figure)."""
        return {
            p.name: [self.model.spec_ratio(p, lat) for lat in latencies_ns]
            for p in self.profiles
        }

    def population_summary(
        self, base_latency_ns: float, new_latency_ns: float
    ) -> Dict[str, float]:
        """The fractions the paper quotes for the ~6x latency point."""
        degs = list(self.degradations(base_latency_ns, new_latency_ns).values())
        n = len(degs)
        return {
            "under_2pct": sum(1 for d in degs if d < 0.02) / n,
            "under_10pct": sum(1 for d in degs if d < 0.10) / n,
            "band_15_to_35pct": sum(1 for d in degs if 0.15 <= d <= 0.35) / n,
            "over_50pct": sum(1 for d in degs if d > 0.50) / n,
            "max": max(degs),
        }
