"""Workload models: SPEC CINT2006, DB2 BLU, FIO, GPFS, synthetic traces,
and the replay engine for irregular access streams (docs/hybrid.md)."""

from .db2 import CALIBRATION_LATENCY_NS, NUM_QUERIES, Db2BluWorkload, Query
from .fio import FioJob, FioResult, FioRunner
from .gpfs import GpfsJob, GpfsResult, GpfsWriter
from .replay import (
    REPLAY_WORKLOADS,
    generate,
    graph_walk,
    kv_mix,
    pointer_probe,
    replay,
    replay_depth,
    trace_bytes,
)
from .spec import SpecSuite, cint2006_profiles, profile_by_name
from .trace import TraceSpec, pointer_chase, random_lines, sequential, strided

__all__ = [
    "CALIBRATION_LATENCY_NS",
    "Db2BluWorkload",
    "FioJob",
    "FioResult",
    "FioRunner",
    "GpfsJob",
    "GpfsResult",
    "GpfsWriter",
    "NUM_QUERIES",
    "Query",
    "REPLAY_WORKLOADS",
    "SpecSuite",
    "TraceSpec",
    "cint2006_profiles",
    "generate",
    "graph_walk",
    "kv_mix",
    "pointer_chase",
    "pointer_probe",
    "profile_by_name",
    "random_lines",
    "replay",
    "replay_depth",
    "sequential",
    "strided",
    "trace_bytes",
]
