"""Workload models: SPEC CINT2006, DB2 BLU, FIO, GPFS, synthetic traces."""

from .db2 import CALIBRATION_LATENCY_NS, NUM_QUERIES, Db2BluWorkload, Query
from .fio import FioJob, FioResult, FioRunner
from .gpfs import GpfsJob, GpfsResult, GpfsWriter
from .spec import SpecSuite, cint2006_profiles, profile_by_name
from .trace import TraceSpec, pointer_chase, random_lines, sequential, strided

__all__ = [
    "CALIBRATION_LATENCY_NS",
    "Db2BluWorkload",
    "FioJob",
    "FioResult",
    "FioRunner",
    "GpfsJob",
    "GpfsResult",
    "GpfsWriter",
    "NUM_QUERIES",
    "Query",
    "SpecSuite",
    "TraceSpec",
    "cint2006_profiles",
    "pointer_chase",
    "profile_by_name",
    "random_lines",
    "sequential",
    "strided",
]
