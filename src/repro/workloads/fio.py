"""FIO-style IO benchmark (Figures 9 and 10).

Drives any block-style store (PCIe card, SAS device, or a DMI pmem region
wrapped as a block device) with a configurable random read or write job and
reports IOPS and latency — the two metrics the paper's Figures 9 and 10
chart across technologies and attach points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import StorageError
from ..sim import Rng, Signal, Simulator
from ..telemetry import probe
from ..units import S


@dataclass(frozen=True)
class FioJob:
    """One FIO job description."""

    rw: str = "randread"        # "randread" | "randwrite"
    block_bytes: int = 4096
    iodepth: int = 1            # concurrent IOs kept in flight
    total_ios: int = 64         # IOs to run (sim-time budget, not wall time)
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.rw not in ("randread", "randwrite"):
            raise StorageError(f"unsupported rw mode {self.rw!r}")
        if self.iodepth < 1 or self.total_ios < 1:
            raise StorageError("iodepth and total_ios must be >= 1")


@dataclass(frozen=True)
class FioResult:
    """Measured outcome of one job."""

    job: FioJob
    iops: float
    mean_latency_us: float
    p99_latency_us: float
    duration_us: float
    #: IOs whose completion surfaced a StorageError (injected failures
    #: past the device's retry bound); their latency still counts
    errors: int = 0


class FioRunner:
    """Executes FIO jobs against a device in simulated time."""

    def __init__(self, sim: Simulator):
        self.sim = sim

    def run(self, device, job: FioJob) -> FioResult:
        """Run the job to completion; returns measured IOPS/latency."""
        rng = Rng(job.seed, "fio")
        blocks = device.capacity_bytes // job.block_bytes
        if blocks < 1:
            raise StorageError("device smaller than one block")

        latencies_ps: List[int] = []
        state = {"submitted": 0, "completed": 0, "errors": 0}
        finished = Signal("fio.done")
        start_ps = self.sim.now_ps
        device_name = getattr(device, "name", "storage")

        def submit_one() -> None:
            offset = rng.randint(0, blocks - 1) * job.block_bytes
            t0 = self.sim.now_ps
            trace = probe.session
            journeys = trace.journeys if trace is not None else None
            jid = None
            if journeys is not None:
                jid = journeys.begin(f"fio.{job.rw}", offset, device_name, t0)
                journeys.push(jid)
            if job.rw == "randread":
                sig = device.submit_read(offset, job.block_bytes)
            else:
                sig = device.submit_write(offset, job.block_bytes)
            if journeys is not None:
                journeys.pop()
            state["submitted"] += 1
            sig.add_waiter(lambda value: complete(t0, journeys, jid, value))

        def complete(t0: int, journeys, jid, value) -> None:
            now = self.sim.now_ps
            if isinstance(value, StorageError):
                state["errors"] += 1
                trace = probe.session
                if trace is not None:
                    trace.count("workload.fio_errors")
            latencies_ps.append(now - t0)
            if journeys is not None and jid is not None:
                # catch-all for devices that do not stage themselves; a
                # zero-length no-op when the device already covered the IO
                journeys.stage_to(jid, "storage.io", now)
                journeys.finish(jid, now)
            state["completed"] += 1
            if state["completed"] >= job.total_ios:
                finished.trigger()
            elif state["submitted"] < job.total_ios:
                submit_one()

        for _ in range(min(job.iodepth, job.total_ios)):
            submit_one()
        self.sim.run_until_signal(finished, timeout_ps=10**15)

        duration_ps = self.sim.now_ps - start_ps
        trace = probe.session
        if trace is not None:
            trace.complete(
                "workload", f"fio.{job.rw}", start_ps, self.sim.now_ps,
                {"iodepth": job.iodepth, "ios": job.total_ios},
            )
            trace.count("workload.fio_jobs")
            trace.count("workload.fio_ios", job.total_ios)
        ordered = sorted(latencies_ps)
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        return FioResult(
            job=job,
            iops=job.total_ios / (duration_ps / S),
            mean_latency_us=sum(latencies_ps) / len(latencies_ps) / 1e6,
            p99_latency_us=p99 / 1e6,
            duration_us=duration_ps / 1e6,
            errors=state["errors"],
        )

    def read_write_pair(self, device, iodepth: int = 1, total_ios: int = 64):
        """The Figure 9/10 measurement: one read job and one write job."""
        read = self.run(device, FioJob(rw="randread", iodepth=iodepth, total_ios=total_ios))
        write = self.run(device, FioJob(rw="randwrite", iodepth=iodepth, total_ios=total_ios))
        return read, write
