"""Workload replay: synthesized irregular access streams through the socket.

The paper's workloads stop at STREAM-like sweeps and FIO/GPFS storage
loads.  This engine generates the access-pattern classes the related
work flags as the hard cases for emerging-memory latency — and that a
tiering policy actually has to earn its keep on:

``graph``
    Graph-processing strides (BFS/PageRank frontier expansion): jump to
    a random vertex, then scan a short sequential burst of neighbour
    lines.  Mostly-random with bursty spatial locality; read-only.
``kv``
    Key-value / page-cache mix: a small hot set absorbs most accesses
    (the classic skewed-popularity shape) with a read/write mix, the
    rest scatter over the cold span.  The pattern tiering rewards most.
``pointer``
    The pointer-chase latency probe carried over from :mod:`.trace`: a
    random cyclic permutation where every load depends on the previous
    one, so no memory-level parallelism hides added latency.

Generation is split from execution so determinism is testable at the
byte level: :func:`generate` is a pure function of (workload, spec,
seed) and :func:`trace_bytes` is its canonical encoding — same seed,
same bytes, on any host at any worker count.  :func:`replay` then drives
a built system's socket with the generated operations, ``depth`` kept in
flight (forced to 1 for ``pointer``, which is serial by construction).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Tuple

from ..errors import ConfigurationError
from ..sim import Rng, Signal
from ..units import CACHE_LINE_BYTES
from .trace import TraceSpec, pointer_chase

#: one replayed operation: ("read" | "write", line-aligned address)
Op = Tuple[str, int]

#: per-op patience when replaying (generous against fault windows)
_OP_TIMEOUT_PS = 10**14

#: graph workload: neighbour-list burst length, in lines
GRAPH_BURST_LINES = 4

#: kv workload: hot-set geometry and mix.  Popularity skew is
#: page-granular (a hot key drags its whole 4 KiB object/page-cache
#: page along), which is exactly the locality page-granule tiering
#: can exploit — line-granular skew would be invisible to it.
KV_PAGE_BYTES = 4096
KV_HOT_FRACTION = 1 / 8       # of the region's pages
KV_HOT_BIAS = 0.875           # accesses that land in the hot set
KV_WRITE_FRACTION = 0.3


def graph_walk(spec: TraceSpec, rng: Rng) -> List[Op]:
    """Random vertex jumps, each followed by a sequential burst."""
    ops: List[Op] = []
    lines = spec.lines
    while len(ops) < spec.num_accesses:
        start = rng.randint(0, lines - 1)
        degree = 1 + rng.randint(0, GRAPH_BURST_LINES - 1)
        for i in range(degree):
            if len(ops) >= spec.num_accesses:
                break
            line = (start + i) % lines
            ops.append(("read", spec.base + line * CACHE_LINE_BYTES))
    return ops


def kv_mix(spec: TraceSpec, rng: Rng) -> List[Op]:
    """Skewed-popularity read/write mix over hot pages + a cold span."""
    lines = spec.lines
    lines_per_page = max(1, KV_PAGE_BYTES // CACHE_LINE_BYTES)
    pages = max(1, lines // lines_per_page)
    hot_pages = max(1, int(pages * KV_HOT_FRACTION))
    # the hot set is a random sample of the region's pages, not a
    # prefix — hot data scatters across tiers and the tiering policy
    # has to find it, exactly like real key popularity
    pool = list(range(pages))
    rng.shuffle(pool)
    hot = sorted(pool[:hot_pages])
    ops: List[Op] = []
    for _ in range(spec.num_accesses):
        if rng.random() < KV_HOT_BIAS:
            page = hot[rng.randint(0, hot_pages - 1)]
        else:
            page = rng.randint(0, pages - 1)
        line = page * lines_per_page + rng.randint(0, lines_per_page - 1)
        line %= lines
        op = "write" if rng.random() < KV_WRITE_FRACTION else "read"
        ops.append((op, spec.base + line * CACHE_LINE_BYTES))
    return ops


def pointer_probe(spec: TraceSpec, rng: Rng) -> List[Op]:
    """The dependent-chain latency probe, as replayable operations."""
    return [("read", addr) for addr in pointer_chase(spec, rng)]


#: the replayable workload registry (names are campaign axis values)
REPLAY_WORKLOADS: Dict[str, Callable[[TraceSpec, Rng], List[Op]]] = {
    "graph": graph_walk,
    "kv": kv_mix,
    "pointer": pointer_probe,
}


def generate(workload: str, spec: TraceSpec, seed: int) -> List[Op]:
    """Deterministically synthesize a workload's operation list."""
    generator = REPLAY_WORKLOADS.get(workload)
    if generator is None:
        known = ", ".join(sorted(REPLAY_WORKLOADS))
        raise ConfigurationError(
            f"unknown replay workload {workload!r} (known: {known})"
        )
    return generator(spec, Rng(seed, f"replay.{workload}"))


def trace_bytes(workload: str, spec: TraceSpec, seed: int) -> bytes:
    """Canonical byte encoding of a generated trace (determinism gate)."""
    ops = generate(workload, spec, seed)
    return json.dumps(
        {"workload": workload, "seed": seed, "base": spec.base,
         "size_bytes": spec.size_bytes, "ops": [[op, addr] for op, addr in ops]},
        separators=(",", ":"), sort_keys=True,
    ).encode("ascii")


def replay_depth(workload: str, depth: int) -> int:
    """Effective pipeline depth: pointer chases are serial by nature."""
    return 1 if workload == "pointer" else depth


def replay(system, ops: List[Op], depth: int = 4) -> Tuple[List[int], int, int]:
    """Drive the socket with ``ops``, ``depth`` kept in flight.

    Returns ``(per-op latencies ps, elapsed ps, errors)``.  Issue order
    is the generated order; with ``depth > 1`` completions interleave the
    way a real load/store window would.
    """
    if depth < 1:
        raise ConfigurationError(f"replay depth must be >= 1, got {depth}")
    if not ops:
        raise ConfigurationError("nothing to replay: empty operation list")
    sim = system.sim
    socket = system.socket
    payload = bytes(CACHE_LINE_BYTES)
    total = len(ops)
    latencies = [0] * total
    state = {"next": 0, "inflight": 0, "errors": 0}
    done = Signal("replay.done")

    def issue_next() -> None:
        i = state["next"]
        state["next"] += 1
        state["inflight"] += 1
        op, addr = ops[i]
        t0 = sim.now_ps
        if op == "write":
            signal = socket.write_line(addr, payload)
        else:
            signal = socket.read_line(addr)

        def complete(value, i=i, t0=t0) -> None:
            latencies[i] = sim.now_ps - t0
            if isinstance(value, Exception):
                state["errors"] += 1
            state["inflight"] -= 1
            if state["next"] < total:
                issue_next()
            elif state["inflight"] == 0:
                done.trigger(None)

        signal.add_waiter(complete)

    t_start = sim.now_ps
    for _ in range(min(depth, total)):
        issue_next()
    sim.run_until_signal(done, timeout_ps=_OP_TIMEOUT_PS)
    return latencies, sim.now_ps - t_start, state["errors"]
