"""GPFS small-random-write workload (Table 4).

A single-threaded writer issues small synchronous writes at random file
offsets — the IO pattern that motivates the NVM write cache.  Measured
against three persistent stores:

* the bare SAS HDD (every write seeks: ~75 IOPS),
* a SAS SSD (~15K IOPS),
* STT-MRAM behind ConTutto on the DMI link, used as a write cache in
  front of the HDD (~125K IOPS — 8.3x over the SSD).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError
from ..sim import Rng, Signal, Simulator
from ..telemetry import probe
from ..units import S


@dataclass(frozen=True)
class GpfsJob:
    """Single-threaded synchronous small-write workload."""

    write_bytes: int = 4096
    total_writes: int = 64
    file_bytes: int = 1 << 30
    seed: int = 99
    #: filesystem software path per write: allocation, token/metadata,
    #: recovery-log bookkeeping — paid regardless of the persistent store
    software_overhead_us: float = 5.5


@dataclass(frozen=True)
class GpfsResult:
    iops: float
    mean_latency_us: float
    total_writes: int
    #: writes whose store completion surfaced a StorageError
    errors: int = 0


class GpfsWriter:
    """Runs the GPFS-style writer against a store with a write() method."""

    def __init__(self, sim: Simulator):
        self.sim = sim

    def run(self, store, job: GpfsJob = GpfsJob()) -> GpfsResult:
        """Issue the writes one at a time (single thread, sync semantics)."""
        rng = Rng(job.seed, "gpfs")
        slots = job.file_bytes // job.write_bytes
        start_ps = self.sim.now_ps
        total_latency = 0
        errors = 0
        overhead_ps = int(job.software_overhead_us * 1e6)
        store_name = getattr(store, "name", "store")
        for _ in range(job.total_writes):
            offset = rng.randint(0, slots - 1) * job.write_bytes
            t0 = self.sim.now_ps
            trace = probe.session
            journeys = trace.journeys if trace is not None else None
            jid = None
            if journeys is not None:
                jid = journeys.begin("gpfs.write", offset, store_name, t0)
            # the filesystem software path runs before the store IO
            gate = Signal("gpfs.sw")
            self.sim.trigger_after(overhead_ps, gate)
            self.sim.run_until_signal(gate, timeout_ps=10**15)
            if journeys is not None and jid is not None:
                journeys.stage_to(jid, "gpfs.software", self.sim.now_ps)
                journeys.push(jid)
            done = store.write(offset, job.write_bytes)
            if journeys is not None and jid is not None:
                journeys.pop()
            value = self.sim.run_until_signal(done, timeout_ps=10**15)
            if isinstance(value, StorageError):
                errors += 1
                if probe.session is not None:
                    probe.session.count("workload.gpfs_errors")
            if journeys is not None and jid is not None:
                # catch-all for stores that do not stage themselves
                journeys.stage_to(jid, "storage.io", self.sim.now_ps)
                journeys.finish(jid, self.sim.now_ps)
            total_latency += self.sim.now_ps - t0
        duration_ps = self.sim.now_ps - start_ps
        return GpfsResult(
            iops=job.total_writes / (duration_ps / S),
            mean_latency_us=total_latency / job.total_writes / 1e6,
            total_writes=job.total_writes,
            errors=errors,
        )
