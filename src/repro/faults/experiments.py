"""Registered fault experiments: BER sweep, NVDIMM drill, storage drill.

Both are ordinary campaign experiments (``run_*`` returning a
:class:`~repro.core.results.ResultTable`) that drive a
:class:`FaultController` over a built system.  Each accepts a ``faults``
kwarg — ``None``, a plan dict, or canonical plan JSON (the form
``scripts/run_campaign.py --faults`` threads through job kwargs) — whose
entries are injected *in addition to* the experiment's own fault.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.results import ResultTable
from ..core.system import CardSpec, ContuttoSystem
from ..errors import ReproError
from ..sim import Rng, derive_seed
from ..telemetry import probe
from ..units import GIB, MIB, ms_to_ps, us_to_ps
from .controller import FaultController
from .plan import FaultPlan, FaultSpec

#: frame error rates the BER sweep visits by default
DEFAULT_BER_RATES = (0.0, 0.02, 0.05, 0.1)
#: per-read patience: generous against replay storms, but prompt enough
#: that a dead channel surfaces as a failure instead of hanging the sweep
_READ_TIMEOUT_PS = 10**9
_LINE = 128


def _scenario(label: str) -> None:
    trace = probe.session
    if trace is not None and trace.journeys is not None:
        trace.journeys.set_scenario(label)


def _merge_plan(name: str, base: List[FaultSpec], faults) -> FaultPlan:
    """The experiment's own specs plus any user-supplied plan entries."""
    extra = FaultPlan.load(faults)
    specs = tuple(base) + (extra.specs if extra is not None else ())
    return FaultPlan(name=name, specs=specs)


def _measure_reads(
    system: ContuttoSystem, rng: Rng, samples: int
) -> Tuple[int, int, Optional[ReproError]]:
    """Dependent serialized cache-line reads over slot 0's region.

    Returns (completed reads, elapsed ps, first error or None) — errors
    cover both a synchronous :class:`ReplayError` from a failed channel
    and a :class:`SimulationError` read timeout.
    """
    socket = system.socket
    region = system.region_for_slot(0)
    lines = region.os_size // _LINE
    t0 = system.sim.now_ps
    done = 0
    error: Optional[ReproError] = None
    for _ in range(samples):
        addr = region.base + rng.randint(0, lines - 1) * _LINE
        try:
            system.sim.run_until_signal(
                socket.read_line(addr), timeout_ps=_READ_TIMEOUT_PS
            )
        except ReproError as exc:
            error = exc
            break
        done += 1
    return done, system.sim.now_ps - t0, error


def _endpoint_stats(channel) -> Tuple[int, int]:
    """(replays, crc drops) summed over both endpoints."""
    eps = (channel.host_endpoint, channel.buffer_endpoint)
    return (
        sum(e.replays_triggered for e in eps),
        sum(e.crc_drops for e in eps),
    )


# ---------------------------------------------------------------------------
# BER sweep
# ---------------------------------------------------------------------------


def run_ber_sweep(
    samples: int = 8,
    rates=None,
    seed: int = 0,
    faults=None,
) -> ResultTable:
    """Frame error rate → replays → effective read latency/bandwidth.

    For each rate the sweep measures ``samples`` clean reads, then opens a
    ``dmi.bit_errors`` window and measures ``samples`` reads under error
    injection — once with the Section 3.3 freeze workaround (retransmit
    while preparing replay) and once without it, where a replay that
    cannot start within the host's ``max_replay_start_ps`` fails the
    channel and firmware recovery retrains it mid-measurement.
    """
    rates = tuple(DEFAULT_BER_RATES if rates is None else rates)
    table = ResultTable(
        "BER sweep: DMI frame errors vs replay cost",
        ["Error rate", "Freeze cheat", "Reads", "Replays", "CRC drops",
         "Failures", "Recoveries", "Clean (ns)", "Faulty (ns)", "Eff. MB/s"],
    )
    for freeze in (True, False):
        mode = "freeze" if freeze else "nofreeze"
        for rate in rates:
            label = f"ber:{rate:g}:{mode}"
            _scenario(f"{label}:boot")
            system = ContuttoSystem.build(
                [CardSpec(slot=0, kind="contutto",
                          capacity_per_dimm=256 * MIB, freeze=freeze)],
                seed=seed,
            )
            rng = Rng(derive_seed(seed, label), "measure")
            # clean and faulty reads share one scenario so the attribution
            # fault split (clean vs fault-affected) compares like with like
            _scenario(label)
            clean_n, clean_ps, _ = _measure_reads(system, rng.fork("clean"), samples)

            plan = _merge_plan(f"ber[{rate:g}]", [FaultSpec(
                "dmi.bit_errors", target="0", schedule="once", at_ps=0,
                duration_ps=10**12,
                params=(("max_flips", 1), ("rate", rate)), label="ber",
            )], faults)
            _scenario(label)
            measure_rng = rng.fork("faulty")
            remaining = samples
            ok_total = 0
            fault_ps = 0
            replays = 0
            crc_drops = 0
            failures = 0
            recoveries = 0
            while remaining > 0:
                controller = FaultController(system.sim, plan, seed=seed)
                controller.install(system).start()
                r0, c0 = _endpoint_stats(system.socket.slots[0].channel)
                done, elapsed, error = _measure_reads(
                    system, measure_rng, remaining
                )
                r1, c1 = _endpoint_stats(system.socket.slots[0].channel)
                controller.stop()  # closes the window, restores link models
                ok_total += done
                fault_ps += elapsed
                remaining -= done
                replays += r1 - r0
                crc_drops += c1 - c0
                if error is None:
                    break
                # the channel died mid-measurement: recover it like firmware
                # would, then resume with a fresh controller (the failed
                # read consumed its sample)
                failures += 1
                remaining -= 1
                if not system.socket.recover_channel(0):
                    break
                recoveries += 1
            clean_ns = clean_ps / clean_n / 1_000 if clean_n else float("nan")
            faulty_ns = fault_ps / ok_total / 1_000 if ok_total else float("nan")
            mb_s = ok_total * _LINE * 1e6 / fault_ps if fault_ps else 0.0
            table.add_row(
                f"{rate:g}", "yes" if freeze else "no", ok_total, replays,
                crc_drops, failures, recoveries,
                f"{clean_ns:.1f}", f"{faulty_ns:.1f}", f"{mb_s:.1f}",
            )
    table.add_note(
        "freeze cheat = Section 3.3 'retransmit while preparing replay'; "
        "without it a slow replay start fails the channel and firmware "
        "retrains it"
    )
    return table


# ---------------------------------------------------------------------------
# NVDIMM power-fail drill
# ---------------------------------------------------------------------------


def run_nvdimm_drill(lines: int = 16, seed: int = 0, faults=None) -> ResultTable:
    """Power-loss drill: save/restore on a healthy supercap, LOST on an
    undersized one, with data integrity checked end to end."""
    from ..memory import SupercapSpec  # local: keep module import light

    table = ResultTable(
        "NVDIMM power-fail drill",
        ["Case", "Hold-up (ms)", "Save time (ms)", "Saves", "Failed saves",
         "Outcome", "Data intact"],
    )
    cases = [
        ("healthy", SupercapSpec()),
        ("undersized", SupercapSpec(hold_up_ms=50.0)),
    ]
    for case, supercap in cases:
        label = f"nvdimm:{case}"
        _scenario(f"{label}:boot")
        # firmware wants DRAM contiguous from address 0, so the NVDIMM card
        # rides on channel 2 (even DMI slots only) behind a small DRAM card
        system = ContuttoSystem.build(
            [CardSpec(slot=0, kind="contutto", capacity_per_dimm=256 * MIB),
             CardSpec(slot=2, kind="contutto", memory="nvdimm",
                      capacity_per_dimm=1 * GIB)],
            seed=seed,
        )
        devices = [port.device for port in system.cards[2].buffer.ports]
        for device in devices:
            device.supercap = supercap
        save_ms = max(
            supercap.save_time_ms(d.capacity_bytes) for d in devices
        )
        _scenario(label)
        socket = system.socket
        region = system.region_for_slot(2)
        written = {}
        for i in range(lines):
            addr = region.base + i * _LINE
            data = bytes((i * 7 + j) % 256 for j in range(_LINE))
            written[addr] = data
            system.sim.run_until_signal(
                socket.write_line(addr, data), timeout_ps=_READ_TIMEOUT_PS
            )

        hold_ps = ms_to_ps(save_ms if supercap.can_save(devices[0].capacity_bytes)
                           else supercap.hold_up_ms)
        duration = hold_ps + us_to_ps(10)
        plan = _merge_plan(f"nvdimm[{case}]", [FaultSpec(
            "nvdimm.power_loss", target="2", schedule="once", at_ps=0,
            duration_ps=duration, label="drill",
        )], faults)
        controller = FaultController(system.sim, plan, seed=seed)
        controller.install(system).start()
        system.sim.run(until_ps=system.sim.now_ps + duration + 1)
        report = controller.stop()

        intact = True
        for addr, data in written.items():
            got = system.sim.run_until_signal(
                socket.read_line(addr), timeout_ps=_READ_TIMEOUT_PS
            )
            if got != data:
                intact = False
                break
        tally = report.tallies.get("drill")
        if tally is None or tally.injected == 0:
            outcome = "skipped"
        elif tally.lost:
            outcome = "LOST"
        elif tally.recovered:
            outcome = "recovered"
        else:
            outcome = "failed"
        table.add_row(
            case, f"{supercap.hold_up_ms:g}", f"{save_ms:.0f}",
            sum(d.saves for d in devices),
            sum(d.failed_saves for d in devices),
            outcome, "yes" if intact else "no",
        )
    table.add_note(
        "undersized supercap cannot complete the DRAM->flash save; contents "
        "are LOST and the restore comes back empty"
    )
    return table


# ---------------------------------------------------------------------------
# Storage fault drill
# ---------------------------------------------------------------------------


def run_storage_drill(writes: int = 24, seed: int = 0, faults=None) -> ResultTable:
    """GPFS-style writers under storage faults, against a clean baseline.

    Three measured cases:

    * ``wcache clean`` — the ConTutto MRAM write cache with no faults:
      the baseline the fault rows are read against;
    * ``ssd io_errors`` — a direct SSD store with forced IO failures
      (bounded retry; exhausted retries surface a ``StorageError`` to
      the workload as the completion value);
    * ``wcache faulted`` — the same cache with the destager frozen for a
      window and the backing HDD slowed, driving admission stalls.

    The cache geometry is deliberately tiny (16 KiB segments, 4 of them,
    threshold 2) so a handful of 4 KiB writes exercises destage
    backpressure — the paths the strict-admission and wrap-split fixes
    guard.  Each case attaches its devices as ``system.storage_devices``
    so plan entries resolve; extra ``faults`` entries should use empty
    targets (injectors filter by capability) since the device namespace
    differs per case.
    """
    from ..storage import (  # local: keep the module import light
        DirectStore,
        HardDiskDrive,
        NvWriteCache,
        PmemBlockDevice,
        SolidStateDrive,
        WriteCacheConfig,
    )
    from ..workloads import GpfsJob, GpfsWriter

    table = ResultTable(
        "Storage fault drill: GPFS writers under injected storage faults",
        ["Case", "Writes", "IOPS", "Mean lat (us)", "Errors", "Retries",
         "Stalls", "Destages", "Faults"],
    )
    # default seed=0 preserves the historical GpfsJob stream (seed 99)
    job = GpfsJob(total_writes=writes, seed=99 + seed)

    def build_cache(label):
        _scenario(f"storage:{label}:boot")
        system = ContuttoSystem.build(
            [CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
             CardSpec(slot=0, kind="contutto", memory="mram",
                      capacity_per_dimm=128 * MIB)],
            seed=seed,
        )
        log = PmemBlockDevice(system.pmem_region())
        hdd = HardDiskDrive(system.sim, 4 * GIB)
        cache = NvWriteCache(
            system.sim, log, hdd,
            WriteCacheConfig(segment_bytes=16 * 1024, segments=4,
                             destage_threshold=2),
        )
        system.storage_devices = {"hdd": hdd, "log": log, "wcache": cache}
        return system, log, hdd, cache

    # -- wcache clean (no faults): the comparison baseline -----------------
    system, log, hdd, cache = build_cache("wcache-clean")
    _scenario("storage:wcache-clean")
    result = GpfsWriter(system.sim).run(cache, job)
    table.add_row(
        "wcache clean", result.total_writes, f"{result.iops:.0f}",
        f"{result.mean_latency_us:.1f}", result.errors,
        log.io_retries + hdd.io_retries, cache.stalls, cache.destages, 0,
    )

    # -- direct SSD with forced IO failures --------------------------------
    _scenario("storage:ssd:boot")
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=256 * MIB)],
        seed=seed,
    )
    ssd = SolidStateDrive(system.sim, 1 * GIB)
    system.storage_devices = {"ssd": ssd}
    # force exactly 2 IOs' worth of exhausted retries: deterministic
    # error and retry counts independent of the stochastic rate
    plan = _merge_plan("storage[ssd]", [FaultSpec(
        "storage.io_errors", target="ssd", schedule="once", at_ps=0,
        duration_ps=10**12,
        params=(("rate", 0.0), ("force_failures", 6), ("max_retries", 2)),
        label="ssd-io",
    )], faults)
    _scenario("storage:ssd")
    controller = FaultController(system.sim, plan, seed=seed)
    controller.install(system).start()
    result = GpfsWriter(system.sim).run(DirectStore(ssd, name="ssd"), job)
    report = controller.stop()
    table.add_row(
        "ssd io_errors", result.total_writes, f"{result.iops:.0f}",
        f"{result.mean_latency_us:.1f}", result.errors, ssd.io_retries,
        "-", "-", report.total("injected"),
    )

    # -- wcache with a frozen destager and a slow backing disk -------------
    system, log, hdd, cache = build_cache("wcache-faulted")
    plan = _merge_plan("storage[wcache]", [
        FaultSpec(
            "storage.destage_stall", target="wcache", schedule="once",
            at_ps=us_to_ps(50), duration_ps=us_to_ps(400),
            label="destage-stall",
        ),
        FaultSpec(
            "storage.slow_disk", target="hdd", schedule="once", at_ps=0,
            duration_ps=10**12, params=(("extra_us", 2000.0),),
            label="slow-hdd",
        ),
    ], faults)
    _scenario("storage:wcache-faulted")
    controller = FaultController(system.sim, plan, seed=seed)
    controller.install(system).start()
    result = GpfsWriter(system.sim).run(cache, job)
    report = controller.stop()
    table.add_row(
        "wcache faulted", result.total_writes, f"{result.iops:.0f}",
        f"{result.mean_latency_us:.1f}", result.errors,
        log.io_retries + hdd.io_retries, cache.stalls, cache.destages,
        report.total("injected"),
    )
    table.add_note(
        "tiny log geometry (4 x 16 KiB segments) makes destage backpressure "
        "visible at drill scale; forced SSD failures exhaust the retry bound "
        "deterministically"
    )
    return table
