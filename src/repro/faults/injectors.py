"""The injector registry: binding fault specs to the existing primitives.

An *injector* is the glue between one :class:`~repro.faults.plan.FaultSpec`
and the simulation object it perturbs.  Injectors never reimplement fault
behaviour — they drive the error paths the model already has:

==================== =====================================================
``dmi.bit_errors``    raise a link's :class:`LinkErrorModel` frame error
                      rate for the window (CRC drops -> replay machinery)
``dmi.frame_drop``    force the next N frames to corrupt (guaranteed CRC
                      drop, independent of the stochastic rate)
``dmi.degrade``       hard-fail the channel; recovery retrains it through
                      :meth:`Power8Socket.recover_channel` (out of kernel)
``memory.bit_flips``  flip stored bits on ECC DIMMs (cosmic-ray model,
                      healed by SEC-DED on the next read or by patrol)
``memory.scrub_storm`` run an aggressive patrol scrubber for the window
``memory.bank_fault`` mark one DRAM bank slow or failed
``nvdimm.power_loss`` drop host power on NVDIMM-N modules (save to flash
                      or LOST on an undersized supercap); window end
                      restores power
``accel.engine_stall`` seize MBS command engines for the window
``fpga.clock_jitter`` thermal/clock instability on the FPGA fabric: every
                      MBS memory operation picks up a uniform extra delay
                      in ``[0, jitter_ps]`` for the window
``storage.io_errors`` install an :class:`IoFaultModel` on block devices:
                      IO attempts fail (by rate or forced count) and are
                      retried up to a bound before surfacing a
                      ``StorageError``
``storage.destage_stall`` freeze a write cache's destager for the window
                      (the log fills and admission stalls)
``storage.slow_disk`` add fixed extra latency to every IO of a device
==================== =====================================================

Storage injectors resolve their targets through the system's
``storage_devices`` attribute (a ``{name: device}`` dict the storage
experiments attach); on a system without one they skip, so mixed plans
run against both DMI-only and storage experiments.

Each injector reports an *outcome string*: ``inject`` returns
``"injected"`` or ``"skipped"`` (no eligible target), ``recover`` returns
``"recovered"``, ``"failed"``, ``"lost"``, or ``"noop"``.  Injectors whose
recovery cannot run inside a kernel event (channel retraining calls
``sim.run``) set ``needs_heal`` and do the real work in ``heal()``, which
the :class:`~repro.faults.controller.FaultController` invokes between
simulator runs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..dmi.link import LinkErrorModel, SerialLink
from ..errors import ConfigurationError, ReplayError
from ..memory.dram import DdrDram
from ..memory.nvdimm import NvdimmN, NvdimmState
from ..memory.scrubber import PatrolScrubber, ScrubConfig
from ..sim import Rng, Simulator
from ..storage.block import IoFaultModel
from ..units import us_to_ps
from .plan import FaultSpec

#: registered injector constructors, keyed by plan-entry name
INJECTORS: Dict[str, type] = {}


def register_injector(name: str) -> Callable[[type], type]:
    """Class decorator adding an injector to the registry."""

    def wrap(cls: type) -> type:
        cls.name = name
        INJECTORS[name] = cls
        return cls

    return wrap


def injector_names() -> List[str]:
    return sorted(INJECTORS)


def make_injector(spec: FaultSpec, sim: Simulator, rng: Rng) -> "Injector":
    cls = INJECTORS.get(spec.injector)
    if cls is None:
        raise ConfigurationError(
            f"unknown injector {spec.injector!r} (known: {', '.join(injector_names())})"
        )
    return cls(sim, spec, rng)


# ---------------------------------------------------------------------------
# Link-error configuration: the single source of truth
# ---------------------------------------------------------------------------


def configure_link_errors(
    links: Iterable[SerialLink], frame_error_rate: float, max_flips: int = 1
) -> List[Tuple[float, int]]:
    """Set the error model of each link; returns the previous settings.

    Every path that configures link errors — ``SocketConfig.
    frame_error_rate`` at attach time, the ``dmi.bit_errors`` injector at
    runtime — goes through here, so there is exactly one place that knows
    how a BER turns into :class:`LinkErrorModel` state.
    """
    if not 0.0 <= frame_error_rate <= 1.0:
        raise ConfigurationError(
            f"frame error rate {frame_error_rate} outside [0, 1]"
        )
    previous: List[Tuple[float, int]] = []
    for link in links:
        model = link.error_model
        previous.append((model.frame_error_rate, model.max_flips))
        model.frame_error_rate = frame_error_rate
        model.max_flips = max_flips
    return previous


# ---------------------------------------------------------------------------
# Target resolution
# ---------------------------------------------------------------------------


def _socket_of(system):
    """Accept a ContuttoSystem or a bare Power8Socket."""
    return getattr(system, "socket", system)


def _target_slots(system, target: str) -> List[Tuple[int, object]]:
    """(channel_no, ChannelSlot) pairs the target selector names.

    An empty target means every populated channel; otherwise the target is
    a channel number.
    """
    socket = _socket_of(system)
    if target == "":
        return [(no, socket.slots[no]) for no in sorted(socket.slots)]
    try:
        channel_no = int(target)
    except ValueError as exc:
        raise ConfigurationError(f"bad fault target {target!r}") from exc
    if channel_no not in socket.slots:
        raise ConfigurationError(f"fault target channel {channel_no} not populated")
    return [(channel_no, socket.slots[channel_no])]


def _dram_devices(slot) -> List[DdrDram]:
    """DRAM ranks behind a slot's buffer (an NVDIMM exposes its DRAM side)."""
    devices: List[DdrDram] = []
    for port in getattr(slot.buffer, "ports", []):
        device = port.device
        if isinstance(device, NvdimmN):
            devices.append(device.dram)
        elif isinstance(device, DdrDram):
            devices.append(device)
    return devices


def _nvdimm_devices(slot) -> List[NvdimmN]:
    return [
        port.device
        for port in getattr(slot.buffer, "ports", [])
        if isinstance(port.device, NvdimmN)
    ]


def _storage_devices(system, target: str) -> List[Tuple[str, object]]:
    """(name, device) pairs from the system's ``storage_devices`` dict.

    Storage experiments attach their stack as ``system.storage_devices =
    {"hdd": hdd, "ssd": ssd, ...}``.  A system without the attribute has
    no storage targets — the injector *skips* instead of erroring, so one
    plan can span DMI-only and storage experiments.  An empty target
    selects every device (sorted by name for determinism); a non-empty
    target must name one.
    """
    devices = getattr(system, "storage_devices", None)
    if not devices:
        return []
    if target == "":
        return sorted(devices.items())
    if target not in devices:
        raise ConfigurationError(
            f"fault target {target!r} not a storage device "
            f"(known: {', '.join(sorted(devices))})"
        )
    return [(target, devices[target])]


# ---------------------------------------------------------------------------
# Base class
# ---------------------------------------------------------------------------


class Injector:
    """One bound fault: knows its targets and how to perturb/restore them."""

    name = "base"
    #: recovery must run outside kernel events (controller.heal())
    needs_heal = False

    def __init__(self, sim: Simulator, spec: FaultSpec, rng: Rng):
        self.sim = sim
        self.spec = spec
        self.rng = rng

    def bind(self, system) -> None:
        raise NotImplementedError

    def inject(self, now_ps: int) -> str:
        raise NotImplementedError

    def recover(self, now_ps: int) -> str:
        return "noop"

    def heal(self, now_ps: int) -> str:
        return "noop"


# ---------------------------------------------------------------------------
# DMI injectors
# ---------------------------------------------------------------------------


@register_injector("dmi.bit_errors")
class DmiBitErrors(Injector):
    """Raise the frame error rate on a channel's links for the window."""

    def bind(self, system) -> None:
        self.links: List[SerialLink] = []
        for _, slot in _target_slots(system, self.spec.target):
            self.links += [slot.channel.down_link, slot.channel.up_link]
        self._saved: Optional[List[Tuple[float, int]]] = None

    def inject(self, now_ps: int) -> str:
        if not self.links:
            return "skipped"
        if self._saved is None:  # overlapping windows keep the first save
            self._saved = configure_link_errors(
                self.links,
                float(self.spec.param("rate", 0.05)),
                int(self.spec.param("max_flips", 1)),
            )
        return "injected"

    def recover(self, now_ps: int) -> str:
        if self._saved is None:
            return "noop"
        for link, (rate, flips) in zip(self.links, self._saved):
            link.error_model.frame_error_rate = rate
            link.error_model.max_flips = flips
        self._saved = None
        return "recovered"


@register_injector("dmi.frame_drop")
class DmiFrameDrop(Injector):
    """Force the next N frames on a link direction to fail CRC."""

    def bind(self, system) -> None:
        direction = str(self.spec.param("direction", "down"))
        if direction not in ("down", "up", "both"):
            raise ConfigurationError(
                f"{self.spec.label}: direction must be down/up/both"
            )
        self.models: List[LinkErrorModel] = []
        for _, slot in _target_slots(system, self.spec.target):
            if direction in ("down", "both"):
                self.models.append(slot.channel.down_link.error_model)
            if direction in ("up", "both"):
                self.models.append(slot.channel.up_link.error_model)

    def inject(self, now_ps: int) -> str:
        if not self.models:
            return "skipped"
        count = int(self.spec.param("count", 1))
        for model in self.models:
            model.force_drops += count
        return "injected"

    def recover(self, now_ps: int) -> str:
        # drops not yet consumed by traffic are cancelled at window end
        for model in self.models:
            model.force_drops = 0
        return "recovered"


@register_injector("dmi.degrade")
class DmiDegrade(Injector):
    """Hard link degrade: the channel fails and must be retrained.

    Injection marks the channel failed exactly as replay exhaustion does;
    recovery goes through the socket's firmware-style
    :meth:`recover_channel` flow, which runs the simulator itself and
    therefore happens in :meth:`heal` (between kernel runs), not at the
    in-kernel window close.
    """

    needs_heal = True

    def bind(self, system) -> None:
        self.socket = _socket_of(system)
        self.targets = _target_slots(system, self.spec.target)

    def inject(self, now_ps: int) -> str:
        hit = False
        for channel_no, slot in self.targets:
            if slot.channel.operational:
                slot.channel._on_fail(ReplayError(
                    f"injected link degrade ({self.spec.label}) on channel "
                    f"{channel_no}"
                ))
                hit = True
        return "injected" if hit else "skipped"

    def heal(self, now_ps: int) -> str:
        ok = True
        for channel_no, slot in self.targets:
            if not slot.channel.operational or not slot.trained:
                ok = self.socket.recover_channel(channel_no) and ok
        return "recovered" if ok else "failed"


# ---------------------------------------------------------------------------
# Memory injectors
# ---------------------------------------------------------------------------


@register_injector("memory.bit_flips")
class MemoryBitFlips(Injector):
    """Flip stored bits on ECC-enabled DRAM (SEC-DED heals them on read)."""

    def bind(self, system) -> None:
        self.devices: List[DdrDram] = []
        for _, slot in _target_slots(system, self.spec.target):
            self.devices += [d for d in _dram_devices(slot) if d.ecc_enabled]

    def inject(self, now_ps: int) -> str:
        if not self.devices:
            return "skipped"
        flips = int(self.spec.param("flips", 1))
        for device in self.devices:
            words = device.capacity_bytes // 8
            for _ in range(flips):
                addr = self.rng.randint(0, words - 1) * 8
                device.inject_bit_error(addr, self.rng.randint(0, 63))
        return "injected"


@register_injector("memory.scrub_storm")
class ScrubStorm(Injector):
    """Run an aggressive patrol scrub for the window (bandwidth thief)."""

    def bind(self, system) -> None:
        self.devices: List[DdrDram] = []
        for _, slot in _target_slots(system, self.spec.target):
            self.devices += [d for d in _dram_devices(slot) if d.ecc_enabled]
        self.scrubbers: List[PatrolScrubber] = []

    def inject(self, now_ps: int) -> str:
        if not self.devices:
            return "skipped"
        config = ScrubConfig(
            interval_ps=int(self.spec.param("interval_ps", us_to_ps(1))),
            lines_per_step=int(self.spec.param("lines_per_step", 32)),
        )
        for i, device in enumerate(self.devices):
            scrubber = PatrolScrubber(
                self.sim, device, config, name=f"{self.spec.label}.scrub{i}"
            )
            scrubber.start()
            self.scrubbers.append(scrubber)
        return "injected"

    def recover(self, now_ps: int) -> str:
        for scrubber in self.scrubbers:
            scrubber.stop_requested = True
        self.scrubbers.clear()
        return "recovered"


@register_injector("memory.bank_fault")
class BankFault(Injector):
    """Mark one DRAM bank slow (extra access latency) or failed (UEs)."""

    def bind(self, system) -> None:
        self.devices: List[DdrDram] = []
        for _, slot in _target_slots(system, self.spec.target):
            self.devices += _dram_devices(slot)
        self.bank = int(self.spec.param("bank", 0))
        self.mode = str(self.spec.param("mode", "slow"))
        self.extra_ps = int(self.spec.param("extra_ps", 100_000))

    def inject(self, now_ps: int) -> str:
        if not self.devices:
            return "skipped"
        for device in self.devices:
            device.set_bank_fault(self.bank, self.mode, self.extra_ps)
        return "injected"

    def recover(self, now_ps: int) -> str:
        for device in self.devices:
            device.clear_bank_fault(self.bank)
        return "recovered"


@register_injector("nvdimm.power_loss")
class NvdimmPowerLoss(Injector):
    """Drop host power on NVDIMM-N modules; window end restores it.

    Each module saves to flash on supercap energy (or loses contents when
    the supercap cannot hold up).  Recovery reports ``"lost"`` when any
    module came back empty.
    """

    def bind(self, system) -> None:
        self.devices: List[NvdimmN] = []
        for _, slot in _target_slots(system, self.spec.target):
            self.devices += _nvdimm_devices(slot)

    def inject(self, now_ps: int) -> str:
        hit = False
        for device in self.devices:
            if device.state is NvdimmState.NORMAL:
                device.power_loss(now_ps)
                hit = True
        return "injected" if hit else "skipped"

    def recover(self, now_ps: int) -> str:
        lost = False
        restored = False
        for device in self.devices:
            if device.state in (NvdimmState.SAVED, NvdimmState.LOST):
                lost = lost or device.state is NvdimmState.LOST
                device.power_restore(now_ps)
                restored = True
        if not restored:
            return "noop"
        return "lost" if lost else "recovered"


# ---------------------------------------------------------------------------
# Accelerator injector
# ---------------------------------------------------------------------------


@register_injector("accel.engine_stall")
class EngineStall(Injector):
    """Seize MBS command engines for the window, starving real traffic."""

    def bind(self, system) -> None:
        self.pools = [
            slot.buffer.mbs.engines
            for _, slot in _target_slots(system, self.spec.target)
            if hasattr(slot.buffer, "mbs")
        ]
        self._held: List[Tuple[object, object]] = []

    def inject(self, now_ps: int) -> str:
        if not self.pools:
            return "skipped"
        want = int(self.spec.param("engines", 8))
        seized = 0
        for pool in self.pools:
            for _ in range(want):
                engine = pool.try_allocate(-1)
                if engine is None:
                    break
                self._held.append((pool, engine))
                seized += 1
        return "injected" if seized else "skipped"

    def recover(self, now_ps: int) -> str:
        for pool, engine in self._held:
            pool.free(engine)
        self._held.clear()
        return "recovered"


@register_injector("fpga.clock_jitter")
class ClockJitter(Injector):
    """Thermal/clock instability on the FPGA fabric for the window.

    A prototyping platform's fabric clock is not a production ASIC's: a
    hot or marginal build closes timing with jitter.  Modeled as a
    uniform extra delay in ``[0, jitter_ps]`` on every MBS memory
    operation (the knob's delay-module path; flush is ordering, not a
    memory access, and is exempt).  Only ConTutto buffers have an MBS —
    on a Centaur-only system the injector skips.  The per-injector
    forked RNG keeps runs deterministic.
    """

    def bind(self, system) -> None:
        self.mbs = [
            slot.buffer.mbs
            for _, slot in _target_slots(system, self.spec.target)
            if hasattr(slot.buffer, "mbs")
        ]
        self._saved: Optional[List[Tuple[int, object]]] = None

    def inject(self, now_ps: int) -> str:
        if not self.mbs:
            return "skipped"
        if self._saved is None:  # overlapping windows keep the first save
            self._saved = [(m.jitter_ps, m.jitter_rng) for m in self.mbs]
        jitter = int(self.spec.param("jitter_ps", 2_000))
        if jitter < 0:
            raise ConfigurationError(
                f"{self.spec.label}: jitter_ps must be >= 0 (got {jitter})"
            )
        for i, mbs in enumerate(self.mbs):
            mbs.jitter_ps = jitter
            mbs.jitter_rng = self.rng.fork(f"jitter{i}")
        return "injected"

    def recover(self, now_ps: int) -> str:
        if self._saved is None:
            return "noop"
        for mbs, (jitter, rng) in zip(self.mbs, self._saved):
            mbs.jitter_ps = jitter
            mbs.jitter_rng = rng
        self._saved = None
        return "recovered"


# ---------------------------------------------------------------------------
# Storage injectors
# ---------------------------------------------------------------------------


@register_injector("storage.io_errors")
class StorageIoErrors(Injector):
    """Install an :class:`IoFaultModel` on block devices for the window.

    Attempts fail with probability ``rate`` (per-device forked RNG, so
    runs are deterministic) or for the next ``force_failures`` attempts;
    the device retries up to ``max_retries`` times before surfacing a
    typed ``StorageError`` as the completion value.
    """

    def bind(self, system) -> None:
        self.devices = [
            device
            for _, device in _storage_devices(system, self.spec.target)
            if hasattr(device, "io_fault")
        ]

    def inject(self, now_ps: int) -> str:
        if not self.devices:
            return "skipped"
        rate = float(self.spec.param("rate", 0.0))
        force = int(self.spec.param("force_failures", 0))
        retries = int(self.spec.param("max_retries", 2))
        for i, device in enumerate(self.devices):
            device.io_fault = IoFaultModel(
                rate=rate, force_failures=force, max_retries=retries,
                rng=self.rng.fork(f"io{i}"),
            )
        return "injected"

    def recover(self, now_ps: int) -> str:
        for device in self.devices:
            device.io_fault = None
        return "recovered"


@register_injector("hybrid.migration_stall")
class MigrationStall(Injector):
    """Freeze tiered-memory page migration for the window.

    Hot slow pages keep accumulating heat but stay resident in the slow
    tier — every would-be promotion counts a ``tier.migration_stalls``
    and demand traffic pays slow-tier latency.  Window end unfreezes the
    devices and the backlog (visible as the ``tier.*.hot_slow_pages``
    occupancy source) drains as the hot set re-promotes.
    """

    def bind(self, system) -> None:
        self.devices = []
        for _, slot in _target_slots(system, self.spec.target):
            for port in getattr(slot.buffer, "ports", []):
                if hasattr(port.device, "freeze_migration"):
                    self.devices.append(port.device)

    def inject(self, now_ps: int) -> str:
        if not self.devices:
            return "skipped"
        for device in self.devices:
            device.freeze_migration()
        return "injected"

    def recover(self, now_ps: int) -> str:
        for device in self.devices:
            device.unfreeze_migration()
        return "recovered"


@register_injector("storage.destage_stall")
class DestageStall(Injector):
    """Freeze write-cache destaging for the window.

    Staged writes keep landing in the NVM log; once it fills, admission
    stalls — the exact backpressure path the Table 4 cache bounds.
    Window end unfreezes the destager, which drains the backlog.
    """

    def bind(self, system) -> None:
        self.caches = [
            device
            for _, device in _storage_devices(system, self.spec.target)
            if hasattr(device, "freeze_destage")
        ]

    def inject(self, now_ps: int) -> str:
        if not self.caches:
            return "skipped"
        for cache in self.caches:
            cache.freeze_destage()
        return "injected"

    def recover(self, now_ps: int) -> str:
        for cache in self.caches:
            cache.unfreeze_destage()
        return "recovered"


@register_injector("storage.slow_disk")
class SlowDisk(Injector):
    """Add ``extra_us`` of latency to every IO of a device for the window."""

    def bind(self, system) -> None:
        self.devices = [
            device
            for _, device in _storage_devices(system, self.spec.target)
            if hasattr(device, "slow_extra_ps")
        ]
        self._saved: Optional[List[int]] = None

    def inject(self, now_ps: int) -> str:
        if not self.devices:
            return "skipped"
        if self._saved is None:  # overlapping windows keep the first save
            self._saved = [device.slow_extra_ps for device in self.devices]
        extra = us_to_ps(float(self.spec.param("extra_us", 1000.0)))
        for device in self.devices:
            device.slow_extra_ps = extra
        return "injected"

    def recover(self, now_ps: int) -> str:
        if self._saved is None:
            return "noop"
        for device, saved in zip(self.devices, self._saved):
            device.slow_extra_ps = saved
        self._saved = None
        return "recovered"
